test/test_invariants.ml: Alcotest Array Format Hashtbl List Network Pid QCheck QCheck_alcotest Registry Report Rng Scenario Sim_time Trace Vote
