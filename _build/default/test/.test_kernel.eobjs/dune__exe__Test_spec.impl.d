test/test_spec.ml: Alcotest Bounds Check Classify List Metrics Pid Props QCheck QCheck_alcotest Registry Scenario Sim_time String Vote Vset Witness
