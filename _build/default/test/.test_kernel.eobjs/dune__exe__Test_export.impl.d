test/test_export.ml: Alcotest Pid Registry Scenario Sim_time String Trace_export
