test/test_votes_exhaustive.ml: Alcotest Array Check Complexity List Network Pid Printf Registry Report Scenario Sim_time Vote
