test/test_inbac.mli:
