test/test_crash_matrix.ml: Alcotest Check Complexity List Measure Pid Printf Props Registry Rng Scenario Sim_time
