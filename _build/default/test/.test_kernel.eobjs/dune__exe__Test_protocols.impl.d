test/test_protocols.ml: Alcotest Array Check Complexity List Measure Metrics Network Pid Printf Props QCheck QCheck_alcotest Registry Report Rng Scenario Sim_time String Trace Vote Witness
