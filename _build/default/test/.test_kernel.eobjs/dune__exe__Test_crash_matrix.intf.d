test/test_crash_matrix.mli:
