test/test_consensus.ml: Alcotest Array Consensus_floodset Consensus_null Consensus_paxos Consensus_trivial Engine List Network Pid Proto QCheck QCheck_alcotest Report Rng Scenario Sim_time Trace Vote
