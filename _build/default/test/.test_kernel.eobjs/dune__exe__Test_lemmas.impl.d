test/test_lemmas.ml: Alcotest Array List Phases Pid Printf Reach Registry Report Scenario Sim_time Trace Witness
