test/test_votes_exhaustive.mli:
