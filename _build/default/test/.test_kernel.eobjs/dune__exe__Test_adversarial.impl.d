test/test_adversarial.ml: Alcotest Check List Network Pid Printf Props QCheck QCheck_alcotest Registry Rng Scenario Sim_time
