test/test_ablation.ml: Ablation Alcotest Check Complexity List Printf Registry Scenario Series String Witness
