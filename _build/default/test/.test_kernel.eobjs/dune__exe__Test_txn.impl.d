test/test_txn.ml: Alcotest Complexity Kv_store List Pid Printf QCheck QCheck_alcotest Rng Scenario Sim_time Txn Txn_system Workload
