test/test_witness.ml: Alcotest Check Classify List Pid Registry Report Scenario Sim_time Vote Witness
