test/test_tables.ml: Alcotest Ascii Complexity Figure_one Format List Measure Printf Props Registry Robustness String Table_compare Table_one Table_optimal Table_weak
