test/test_kernel.ml: Alcotest Gen Int64 List Pid QCheck QCheck_alcotest Rng Sim_time Trace Vote
