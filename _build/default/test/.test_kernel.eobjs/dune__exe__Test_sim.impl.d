test/test_sim.ml: Alcotest Array Consensus_null Engine Event_queue Format List Network Pid Proto QCheck QCheck_alcotest Report Rng Scenario Sim_time String Trace Vote
