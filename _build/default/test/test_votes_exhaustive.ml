(* Exhaustive failure-free coverage: every one of the 2^n vote patterns,
   for every strict protocol, must decide exactly the conjunction of the
   votes at every process — the full failure-free truth table of atomic
   commit. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let n = 4

let pattern_of_bits bits =
  Array.init n (fun i -> Vote.of_bool ((bits lsr i) land 1 = 1))

let test_protocol protocol =
  Alcotest.test_case protocol `Slow (fun () ->
      let runner = Registry.find_exn protocol in
      for bits = 0 to (1 lsl n) - 1 do
        let votes = pattern_of_bits bits in
        let expected =
          Vote.decision_of_vote
            (Array.fold_left Vote.logand Vote.yes votes)
        in
        let scenario = Scenario.make ~n ~f:1 ~votes () in
        let report = runner.Registry.run scenario in
        let verdict = Check.run report in
        check tbool
          (Printf.sprintf "%s votes=%d solves NBAC" protocol bits)
          true
          (Check.solves_nbac verdict);
        List.iter
          (fun pid ->
            match Report.decision_of report pid with
            | Some (_, d) ->
                check tbool
                  (Printf.sprintf "%s votes=%d %s decides AND" protocol bits
                     (Pid.to_string pid))
                  true
                  (Vote.decision_equal d expected)
            | None ->
                Alcotest.fail
                  (Printf.sprintf "%s votes=%d: %s undecided" protocol bits
                     (Pid.to_string pid)))
          (Pid.all ~n)
      done)

(* The same truth table under jittered (still synchronous) delays: the
   exact-U alignment must not be load-bearing in failure-free runs. *)
let test_protocol_jittered protocol =
  Alcotest.test_case (protocol ^ " (jittered)") `Slow (fun () ->
      let runner = Registry.find_exn protocol in
      let u = Sim_time.default_u in
      for bits = 0 to (1 lsl n) - 1 do
        let votes = pattern_of_bits bits in
        let scenario =
          Scenario.make ~n ~f:1 ~votes ~seed:bits
            ~network:(Network.jittered ~u) ()
        in
        let verdict = Check.run (runner.Registry.run scenario) in
        check tbool
          (Printf.sprintf "%s votes=%d jittered solves NBAC" protocol bits)
          true
          (Check.solves_nbac verdict)
      done)

let () =
  Alcotest.run "votes-exhaustive"
    [
      ("exact delays", List.map test_protocol Complexity.strict_names);
      ("jittered delays", List.map test_protocol_jittered Complexity.strict_names);
    ]
