(* INBAC-focused tests: backup topology, the 2U direct-decision path, the
   acknowledgement structure, the helping path, the fast-abort variant and
   INBAC's indulgence (full NBAC under crashes and network failures). *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let u = Sim_time.default_u
let run scenario = (Registry.find_exn "inbac").Registry.run scenario

let env ~n ~f rank =
  { Proto.n; f; u; self = Pid.of_rank rank }

(* ------------------------------------------------------------------ *)
(* Backup topology (Section 5.2) *)

let test_backups_low_ranks () =
  (* P_i, i <= f: backups are {P1..Pf, P_{f+1}} minus itself — f others *)
  let n = 6 and f = 3 in
  List.iter
    (fun i ->
      let b = Inbac.backups (env ~n ~f i) in
      check tint (Printf.sprintf "P%d has f backups" i) f (List.length b);
      check tbool "does not back up at itself" false
        (List.exists (fun q -> Pid.rank q = i) b);
      check tbool "all backups within P1..P_{f+1}" true
        (List.for_all (fun q -> Pid.rank q <= f + 1) b))
    [ 1; 2; 3 ]

let test_backups_high_ranks () =
  let n = 6 and f = 3 in
  List.iter
    (fun i ->
      let b = Inbac.backups (env ~n ~f i) in
      check (Alcotest.list tint) (Printf.sprintf "P%d backs up at P1..Pf" i)
        [ 1; 2; 3 ] (List.map Pid.rank b))
    [ 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Nice executions *)

let test_nice_two_delays_everywhere () =
  List.iter
    (fun (n, f) ->
      let report = run (Scenario.nice ~n ~f ()) in
      List.iter
        (fun p ->
          match Report.decision_of report p with
          | Some (at, d) ->
              check tbool
                (Printf.sprintf "n=%d f=%d %s decides commit at exactly 2U" n f
                   (Pid.to_string p))
                true
                (at = 2 * u && Vote.decision_equal d Vote.commit)
          | None -> Alcotest.fail "process did not decide")
        (Pid.all ~n))
    [ (2, 1); (3, 1); (3, 2); (5, 2); (8, 7); (13, 6) ]

let test_nice_message_structure () =
  let n = 5 and f = 2 in
  let report = run (Scenario.nice ~n ~f ()) in
  let sends = Trace.network_sends ~layer:Trace.Commit_layer report.Report.trace in
  let at_time t =
    List.length (List.filter (fun e -> Trace.time_of e = t) sends)
  in
  (* fn vote messages at time 0, fn consolidated acks at time U *)
  check tint "fn messages at time 0" (f * n) (at_time 0);
  check tint "fn messages at time U" (f * n) (at_time u);
  check tint "nothing else" (2 * f * n) (List.length sends)

let test_nice_acks_arrive_at_each_process () =
  let n = 6 and f = 2 in
  let report = run (Scenario.nice ~n ~f ()) in
  (* every process receives exactly f [C] acknowledgements at 2U *)
  List.iter
    (fun p ->
      let acks =
        List.filter
          (function
            | Trace.Deliver { at; dst; tag; src; _ } ->
                at = 2 * u && Pid.equal dst p
                && (not (Pid.equal src dst))
                && String.length tag >= 2
                && String.sub tag 0 2 = "[C"
            | _ -> false)
          (Trace.entries report.Report.trace)
      in
      check tint
        (Printf.sprintf "%s receives f acks" (Pid.to_string p))
        f (List.length acks))
    (Pid.all ~n)

let test_nice_no_consensus_no_help () =
  let report = run (Scenario.nice ~n:7 ~f:3 ()) in
  check tbool "consensus never invoked" false (Report.consensus_invoked report);
  let help_sent =
    List.exists
      (function
        | Trace.Send { tag = "[HELP]"; _ } -> true
        | _ -> false)
      (Trace.entries report.Report.trace)
  in
  check tbool "no HELP message" false help_sent

(* ------------------------------------------------------------------ *)
(* Decision paths *)

let decide_paths report =
  Trace.notes ~label:"decide-path" report.Report.trace
  |> List.map (fun (_, pid, _, value) -> (Pid.rank pid, value))

let test_direct_path_in_nice_runs () =
  let report = run (Scenario.nice ~n:5 ~f:2 ()) in
  check tbool "every decision is direct" true
    (List.for_all (fun (_, path) -> path = "direct") (decide_paths report))

let test_consensus_path_under_crash () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
      [
        (Pid.of_rank 1, Scenario.Before u); (Pid.of_rank 2, Scenario.Before u);
      ]
  in
  let report = run scenario in
  check tbool "NBAC" true (Check.solves_nbac (Check.run report));
  check tbool "someone used consensus" true
    (List.exists (fun (_, path) -> path = "consensus") (decide_paths report))

let test_helping_path_when_all_backups_die () =
  (* every backup of the high-rank processes dies at time 0: no [C] can
     ever arrive, cnt = 0, so they must HELP each other *)
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
      [
        (Pid.of_rank 1, Scenario.Before 0); (Pid.of_rank 2, Scenario.Before 0);
      ]
  in
  let report = run scenario in
  check tbool "NBAC" true (Check.solves_nbac (Check.run report));
  let helped =
    List.exists
      (function
        | Trace.Send { tag = "[HELP]"; src; dst; _ } -> not (Pid.equal src dst)
        | _ -> false)
      (Trace.entries report.Report.trace)
  in
  check tbool "the HELP protocol ran" true helped

let test_late_acks_force_but_do_not_break () =
  let report = run (Witness.inbac_slow_backup ~n:5 ~f:2) in
  check tbool "NBAC despite late acknowledgements" true
    (Check.solves_nbac (Check.run report));
  check tbool "commit preserved (all voted yes)" true
    (List.for_all
       (fun d -> Vote.decision_equal d Vote.commit)
       (Report.decided_values report))

(* ------------------------------------------------------------------ *)
(* Fast abort variant *)

let test_fast_abort_one_delay () =
  let scenario =
    Scenario.with_no_votes (Scenario.nice ~n:5 ~f:2 ()) [ Pid.of_rank 3 ]
  in
  let report = (Registry.find_exn "inbac-fast-abort").Registry.run scenario in
  check tbool "NBAC" true (Check.solves_nbac (Check.run report));
  List.iter
    (fun p ->
      match Report.decision_of report p with
      | Some (at, d) ->
          check tbool
            (Printf.sprintf "%s aborts within one delay" (Pid.to_string p))
            true
            (at <= u && Vote.decision_equal d Vote.abort)
      | None -> Alcotest.fail "process did not decide")
    (Pid.all ~n:5)

let test_fast_abort_nice_unchanged () =
  let std = Measure.nice_run ~protocol:"inbac" ~n:5 ~f:2 () in
  let fast = Measure.nice_run ~protocol:"inbac-fast-abort" ~n:5 ~f:2 () in
  check tint "same messages" std.Measure.metrics.Metrics.messages
    fast.Measure.metrics.Metrics.messages;
  check (Alcotest.float 1e-9) "same delays" std.Measure.metrics.Metrics.delays
    fast.Measure.metrics.Metrics.delays

let test_standard_abort_two_delays () =
  (* without the optimization, a failure-free abort costs the same two
     delays as a nice execution (the paper's remark) *)
  let scenario =
    Scenario.with_no_votes (Scenario.nice ~n:5 ~f:2 ()) [ Pid.of_rank 3 ]
  in
  let report = run scenario in
  List.iter
    (fun p ->
      match Report.decision_of report p with
      | Some (at, _) -> check tint "decides at 2U" (2 * u) at
      | None -> Alcotest.fail "process did not decide")
    (Pid.all ~n:5)

(* ------------------------------------------------------------------ *)
(* Lemma 5 tightness: f acknowledgements are necessary *)

let test_undershoot_breaks_agreement () =
  let scenario = Witness.inbac_undershoot_disagreement () in
  let under = (Registry.find_exn "inbac-undershoot").Registry.run scenario in
  let v = Check.run under in
  check tbool "f-1 acks: agreement broken" false v.Check.agreement;
  check tbool "the fast decider committed at 2U" true
    (match Report.decision_of under (Pid.of_rank 5) with
    | Some (at, d) -> at = 2 * u && Vote.decision_equal d Vote.commit
    | None -> false)

let test_real_inbac_survives_the_same_adversary () =
  let scenario = Witness.inbac_undershoot_disagreement () in
  let real = (Registry.find_exn "inbac").Registry.run scenario in
  let v = Check.run real in
  check tbool "f acks: agreement preserved" true v.Check.agreement;
  check tbool "validity preserved" true (Check.validity v)

let test_undershoot_nice_identical () =
  let std = Measure.nice_run ~protocol:"inbac" ~n:5 ~f:2 () in
  let under = Measure.nice_run ~protocol:"inbac-undershoot" ~n:5 ~f:2 () in
  check tint "same messages" std.Measure.metrics.Metrics.messages
    under.Measure.metrics.Metrics.messages;
  check (Alcotest.float 1e-9) "same delays" std.Measure.metrics.Metrics.delays
    under.Measure.metrics.Metrics.delays

(* ------------------------------------------------------------------ *)
(* Regression (found by the chaos fuzzer): a low-rank process must not
   decide directly when its own [C] broadcast was incomplete — late
   vote arrivals that complete its knowledge *after* the broadcast do
   not help the processes that acted on the broadcast. In this schedule
   P1's votes from P2/P3 land after U: P1's [C] carries only {P1}, so
   P2 and P3 propose 0; if P1 fast-commits on its late-completed
   knowledge, agreement breaks. *)

let test_stale_ack_snapshot_regression () =
  let n = 3 and f = 1 in
  let network =
    Network.adversary ~name:"late-votes-to-P1" (fun info ->
        let src = Pid.rank info.Network.src
        and dst = Pid.rank info.Network.dst in
        match info.Network.layer with
        | Trace.Commit_layer ->
            if dst = 1 && src <> 1 && info.Network.sent_at = 0 then
              (* votes to P1 arrive after its [C] broadcast, before 2U *)
              (2 * u) - 100
            else u / 2
        | Trace.Consensus_layer -> u / 2)
  in
  let scenario = Scenario.make ~n ~f ~network () in
  let report = (Registry.find_exn "inbac").Registry.run scenario in
  let v = Check.run report in
  check tbool "agreement preserved" true v.Check.agreement;
  check tbool "validity preserved" true (Check.validity v)

(* Regression (found by the chaos fuzzer): when the help-quorum guard
   fires on a late [C] acknowledgement, the direct decision must fold the
   acknowledged votes in — deciding from the stale local collection
   committed past a 0 vote. Reconstructed schedule: P2 votes 0, P1's
   complete [C] (carrying the 0) reaches P3 only after P3 started
   help-waiting. *)

let test_guard_decision_uses_acks_regression () =
  let n = 3 and f = 1 in
  let network =
    Network.adversary ~name:"late-C-into-guard" (fun info ->
        let src = Pid.rank info.Network.src
        and dst = Pid.rank info.Network.dst in
        match info.Network.layer with
        | Trace.Commit_layer ->
            if src = 1 && info.Network.sent_at >= u then
              (* P1's [C] lands during the HELP wait *)
              2 * u
            else if src = 1 && dst = 2 then 1100
            else u / 2
        | Trace.Consensus_layer -> u / 2)
  in
  let scenario =
    Scenario.with_no_votes (Scenario.make ~n ~f ~network ()) [ Pid.of_rank 2 ]
  in
  let report = (Registry.find_exn "inbac").Registry.run scenario in
  let v = Check.run report in
  check tbool "commit-validity preserved" true v.Check.commit_validity;
  check tbool "agreement preserved" true v.Check.agreement;
  check tbool "everyone aborts" true
    (List.for_all
       (Vote.decision_equal Vote.abort)
       (Report.decided_values report))

(* ------------------------------------------------------------------ *)
(* DESIGN.md reconstruction note 1: the naive backup reading cannot be
   the paper's protocol *)

module Inbac_naive = Inbac.Make (struct
  let variant_name = "inbac-naive-backups"
  let fast_abort = false
  let ack_undershoot = false
  let naive_backups = true
end)

module Naive_engine = Engine.Make (Inbac_naive) (Consensus_paxos)

let test_naive_backups_misses_the_bound () =
  let n = 5 and f = 2 in
  let report = Naive_engine.run (Scenario.nice ~n ~f ()) in
  (* without P_{f+1}'s role the nice execution costs 2fn - 2f messages —
     below the tight 2fn, so something must give... *)
  check tint "2fn - 2f messages" ((2 * f * n) - (2 * f))
    (Report.commit_messages report);
  (* ... and what gives is Lemma 1: the low ranks reach only f-1
     processes by t2 = U, so their votes are under-backed-up *)
  let reach = Reach.of_report report in
  List.iter
    (fun rank ->
      let reached = Reach.reached_set reach ~src:(Pid.of_rank rank) ~at:u in
      check tint
        (Printf.sprintf "P%d reaches only f-1 processes" rank)
        (f - 1) (List.length reached))
    [ 1; 2 ];
  (* the reconstructed protocol reaches f, as Lemma 1 demands *)
  let real = (Registry.find_exn "inbac").Registry.run (Scenario.nice ~n ~f ()) in
  let reach = Reach.of_report real in
  List.iter
    (fun rank ->
      check tint
        (Printf.sprintf "real INBAC: P%d reaches f processes" rank)
        f
        (List.length (Reach.reached_set reach ~src:(Pid.of_rank rank) ~at:u)))
    [ 1; 2 ]

(* ------------------------------------------------------------------ *)
(* Consensus substrate independence (Theorem 6's premise) *)

let test_consensus_independence () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
      [ (Pid.of_rank 1, Scenario.Before u) ]
  in
  let with_paxos =
    (Registry.find_exn "inbac").Registry.run ~consensus:Registry.Paxos scenario
  in
  let with_floodset =
    (Registry.find_exn "inbac").Registry.run ~consensus:Registry.Floodset
      scenario
  in
  check tbool "paxos run solves NBAC" true
    (Check.solves_nbac (Check.run with_paxos));
  check tbool "floodset run agreement+validity" true
    (let v = Check.run with_floodset in
     v.Check.agreement && Check.validity v)

(* ------------------------------------------------------------------ *)
(* Properties: indulgence *)

let prop_inbac_crash_nbac =
  QCheck.Test.make ~count:150 ~name:"INBAC solves NBAC under random crashes"
    QCheck.(pair small_int (int_range 4 9))
    (fun (seed, n) ->
      let f = min 2 ((n - 1) / 2) in
      let scenario = Witness.crash_storm ~n ~f ~seed in
      Check.solves_nbac (Check.run (run scenario)))

let prop_inbac_network_nbac =
  QCheck.Test.make ~count:100
    ~name:"INBAC solves NBAC under eventual synchrony"
    QCheck.(pair small_int (int_range 4 9))
    (fun (seed, n) ->
      let f = min 2 ((n - 1) / 2) in
      let scenario = Witness.eventual_synchrony ~n ~f ~seed in
      Check.solves_nbac (Check.run (run scenario)))

let prop_inbac_mixed_faults =
  QCheck.Test.make ~count:80
    ~name:"INBAC stays safe under crashes plus late messages"
    QCheck.(pair small_int (int_range 5 8))
    (fun (seed, n) ->
      let f = (n - 1) / 2 in
      let rng = Rng.create seed in
      let victim = Pid.of_rank (1 + Rng.int rng ~bound:n) in
      let scenario =
        Scenario.with_crashes
          (Witness.eventual_synchrony ~n ~f ~seed)
          [ (victim, Scenario.During_sends (Rng.int rng ~bound:(4 * u), 1)) ]
      in
      let v = Check.run (run scenario) in
      (* agreement and validity unconditionally; termination needs the
         correct majority, which one crash preserves here *)
      v.Check.agreement && Check.validity v && v.Check.termination)

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "inbac"
    [
      ( "backups",
        [
          quick "low ranks" test_backups_low_ranks;
          quick "high ranks" test_backups_high_ranks;
        ] );
      ( "nice executions",
        [
          quick "two delays everywhere" test_nice_two_delays_everywhere;
          quick "message structure" test_nice_message_structure;
          quick "f acks per process" test_nice_acks_arrive_at_each_process;
          quick "no consensus, no help" test_nice_no_consensus_no_help;
        ] );
      ( "decision paths",
        [
          quick "direct in nice runs" test_direct_path_in_nice_runs;
          quick "consensus under crash" test_consensus_path_under_crash;
          quick "helping when backups die" test_helping_path_when_all_backups_die;
          quick "late acks" test_late_acks_force_but_do_not_break;
        ] );
      ( "fast abort",
        [
          quick "one delay" test_fast_abort_one_delay;
          quick "nice unchanged" test_fast_abort_nice_unchanged;
          quick "standard abort is 2 delays" test_standard_abort_two_delays;
        ] );
      ( "reconstruction notes",
        [
          quick "naive backups miss the bound" test_naive_backups_misses_the_bound;
          quick "stale ack snapshot regression" test_stale_ack_snapshot_regression;
          quick "guard decision uses acks regression"
            test_guard_decision_uses_acks_regression;
        ] );
      ( "lemma 5 tightness",
        [
          quick "undershoot breaks agreement" test_undershoot_breaks_agreement;
          quick "real inbac survives" test_real_inbac_survives_the_same_adversary;
          quick "nice executions identical" test_undershoot_nice_identical;
        ] );
      ( "indulgence",
        [
          quick "consensus independence" test_consensus_independence;
          prop prop_inbac_crash_nbac;
          prop prop_inbac_network_nbac;
          prop prop_inbac_mixed_faults;
        ] );
    ]
