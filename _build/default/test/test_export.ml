(* Tests for the trace exporters (ASCII sequence chart, Graphviz). *)

let check = Alcotest.check
let tbool = Alcotest.bool
let u = Sim_time.default_u

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let nice_report () =
  (Registry.find_exn "inbac").Registry.run (Scenario.nice ~n:4 ~f:1 ())

let crash_report () =
  (Registry.find_exn "2pc").Registry.run
    (Scenario.with_crashes (Scenario.nice ~n:3 ~f:1 ())
       [ (Pid.of_rank 1, Scenario.Before u) ])

let test_msc_structure () =
  let msc = Trace_export.msc (nice_report ()) in
  check tbool "header names" true
    (contains msc "P1" && contains msc "P4");
  check tbool "arrows drawn" true (contains msc "o--" || contains msc "--o");
  check tbool "proposals marked" true (contains msc "P1 proposes 1");
  check tbool "decisions annotated" true (contains msc "decides commit");
  check tbool "message tags shown" true (contains msc "[V,1]");
  check tbool "times shown once per instant" true (contains msc "t=1000")

let test_msc_crash_and_discard () =
  let msc = Trace_export.msc (crash_report ()) in
  check tbool "crash marked" true (contains msc "P1 crashes");
  check tbool "discards shown" true (contains msc "discarded at crashed")

let test_msc_lifelines_stop_after_crash () =
  let msc = Trace_export.msc (crash_report ()) in
  (* after the crash annotation, P1's column (index 0, position 3) shows
     no lifeline; just assert the X marker made it in *)
  check tbool "X marker" true (contains msc "X")

let test_dot_structure () =
  let dot = Trace_export.dot (nice_report ()) in
  check tbool "digraph wrapper" true
    (contains dot "digraph execution" && contains dot "}");
  check tbool "message edges" true (contains dot "->");
  check tbool "labels escaped" true (contains dot "label=\"[V,1]\"");
  check tbool "decision boxes" true (contains dot "shape=box");
  check tbool "timeline edges dotted" true (contains dot "style=dotted")

let test_dot_consensus_dashed () =
  let report =
    (Registry.find_exn "1nbac").Registry.run
      (Scenario.with_crashes (Scenario.nice ~n:4 ~f:1 ())
         [ (Pid.of_rank 2, Scenario.Before 0) ])
  in
  let dot = Trace_export.dot report in
  check tbool "consensus edges dashed" true (contains dot "style=dashed")

let test_dot_crash_octagon () =
  let dot = Trace_export.dot (crash_report ()) in
  check tbool "crash node" true (contains dot "shape=octagon")

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "export"
    [
      ( "msc",
        [
          quick "structure" test_msc_structure;
          quick "crash and discard" test_msc_crash_and_discard;
          quick "crash marker" test_msc_lifelines_stop_after_crash;
        ] );
      ( "dot",
        [
          quick "structure" test_dot_structure;
          quick "consensus dashed" test_dot_consensus_dashed;
          quick "crash octagon" test_dot_crash_octagon;
        ] );
    ]
