(* Cross-protocol trace invariants: structural laws every execution of
   every protocol must satisfy, checked property-based over random
   scenarios. These pin down the engine/model semantics themselves. *)

let u = Sim_time.default_u

let protocols = Registry.names
let pick_protocol ix = List.nth protocols (ix mod List.length protocols)

(* A random scenario spanning all three execution classes. *)
let random_scenario seed n =
  let rng = Rng.create seed in
  let f = 1 + Rng.int rng ~bound:(max 1 ((n - 1) / 2)) in
  let votes = Array.init n (fun _ -> Vote.of_bool (Rng.int rng ~bound:4 > 0)) in
  let crashes =
    if Rng.bool rng then
      [
        ( Pid.of_rank (1 + Rng.int rng ~bound:n),
          if Rng.bool rng then Scenario.Before (Rng.int rng ~bound:(5 * u))
          else Scenario.During_sends (Rng.int rng ~bound:(5 * u), Rng.int rng ~bound:n)
        );
      ]
    else []
  in
  let network =
    match Rng.int rng ~bound:3 with
    | 0 -> Network.exact ~u
    | 1 -> Network.jittered ~u
    | _ -> Network.eventually_synchronous ~u ~gst:(8 * u) ~max_early_delay:(3 * u)
  in
  Scenario.make ~n ~f ~votes ~crashes ~network ~seed ()

let run_random (proto_ix, seed, n) =
  let scenario = random_scenario seed n in
  ((Registry.find_exn (pick_protocol proto_ix)).Registry.run scenario, scenario)

let gen = QCheck.(triple (int_range 0 20) small_int (int_range 3 8))

let for_all_entries report pred =
  List.for_all pred (Trace.entries report.Report.trace)

let prop_delivery_matches_send =
  QCheck.Test.make ~count:150 ~name:"every delivery matches an earlier send"
    gen
    (fun args ->
      let report, _ = run_random args in
      let sends = Hashtbl.create 64 in
      for_all_entries report (function
        | Trace.Send { src; dst; tag; deliver_at; _ } ->
            Hashtbl.replace sends (src, dst, tag, deliver_at) ();
            true
        | Trace.Deliver { src; dst; tag; at; _ } ->
            Hashtbl.mem sends (src, dst, tag, at)
        | _ -> true))

let prop_network_delay_bounded =
  QCheck.Test.make ~count:150
    ~name:"transmission delays respect the network bound" gen
    (fun args ->
      let report, scenario = run_random args in
      match Network.bound scenario.Scenario.network with
      | None -> true
      | Some bound ->
          for_all_entries report (function
            | Trace.Send { at; deliver_at; src; dst; _ } ->
                Pid.equal src dst || deliver_at - at <= bound
            | _ -> true))

let prop_trace_times_monotone =
  QCheck.Test.make ~count:150 ~name:"trace times are non-decreasing" gen
    (fun args ->
      let report, _ = run_random args in
      let rec ordered = function
        | a :: (b :: _ as rest) ->
            Trace.time_of a <= Trace.time_of b && ordered rest
        | [ _ ] | [] -> true
      in
      ordered (Trace.entries report.Report.trace))

let prop_dead_processes_stay_silent =
  QCheck.Test.make ~count:150
    ~name:"no send or decision after a Before-crash instant" gen
    (fun args ->
      let report, scenario = run_random args in
      let death =
        List.filter_map
          (fun (p, c) ->
            match c with
            | Scenario.Before t -> Some (p, t)
            | Scenario.During_sends _ -> None)
          scenario.Scenario.crashes
      in
      let dead_at pid t =
        List.exists (fun (p, dt) -> Pid.equal p pid && t >= dt) death
      in
      for_all_entries report (function
        | Trace.Send { src; at; _ } -> not (dead_at src at)
        | Trace.Decide { pid; at; _ } -> not (dead_at pid at)
        | Trace.Timeout { pid; at; _ } -> not (dead_at pid at)
        | _ -> true))

let prop_decision_stability =
  QCheck.Test.make ~count:150
    ~name:"a process never decides two different values" gen
    (fun args ->
      let report, _ = run_random args in
      let first = Hashtbl.create 8 in
      for_all_entries report (function
        | Trace.Decide { pid; decision; _ } -> (
            match Hashtbl.find_opt first pid with
            | None ->
                Hashtbl.add first pid decision;
                true
            | Some d -> Vote.decision_equal d decision)
        | _ -> true))

let prop_proposals_once_per_live_process =
  QCheck.Test.make ~count:150
    ~name:"each process proposes at most once, none after crashing at 0" gen
    (fun args ->
      let report, scenario = run_random args in
      let proposals = Trace.proposals report.Report.trace in
      let pids = List.map fst proposals in
      List.length (List.sort_uniq Pid.compare pids) = List.length pids
      && List.length proposals
         = scenario.Scenario.n
           - List.length
               (List.filter
                  (fun (_, c) ->
                    match c with
                    | Scenario.Before 0 -> true
                    | Scenario.Before _ | Scenario.During_sends _ -> false)
                  scenario.Scenario.crashes))

let prop_consensus_layer_only_when_used =
  QCheck.Test.make ~count:150
    ~name:"protocols that never use consensus never send consensus messages"
    gen
    (fun args ->
      let report, _ = run_random args in
      let runner = Registry.find_exn report.Report.protocol in
      runner.Registry.uses_consensus || Report.consensus_messages report = 0)

let prop_report_consistent_with_trace =
  QCheck.Test.make ~count:150
    ~name:"report decisions/crashes agree with the trace" gen
    (fun args ->
      let report, _ = run_random args in
      let trace_first_decisions = Hashtbl.create 8 in
      List.iter
        (fun (pid, at, d) ->
          if not (Hashtbl.mem trace_first_decisions pid) then
            Hashtbl.add trace_first_decisions pid (at, d))
        (Trace.decisions report.Report.trace);
      Pid.all ~n:report.Report.scenario.Scenario.n
      |> List.for_all (fun pid ->
             Report.decision_of report pid
             = Hashtbl.find_opt trace_first_decisions pid)
      && List.for_all
           (fun (pid, at) ->
             report.Report.crashed_at.(Pid.index pid) = Some at)
           (Trace.crashes report.Report.trace))

let prop_determinism_across_protocols =
  QCheck.Test.make ~count:60 ~name:"re-running a scenario is byte-identical"
    gen
    (fun args ->
      let a, scenario = run_random args in
      let b = (Registry.find_exn a.Report.protocol).Registry.run scenario in
      Format.asprintf "%a" Trace.pp a.Report.trace
      = Format.asprintf "%a" Trace.pp b.Report.trace)

let () =
  Alcotest.run "invariants"
    [
      ( "trace",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_delivery_matches_send;
            prop_network_delay_bounded;
            prop_trace_times_monotone;
            prop_dead_processes_stay_silent;
            prop_decision_stability;
            prop_proposals_once_per_live_process;
            prop_consensus_layer_only_when_used;
            prop_report_consistent_with_trace;
            prop_determinism_across_protocols;
          ] );
    ]
