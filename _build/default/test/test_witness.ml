(* The lower-bound witness executions: each scenario reconstructs one of
   the paper's proof constructions (the [E_0]/[E_async] adversaries of
   Lemmas 1, 3, 5) and must produce exactly the predicted violation — or,
   for the positive witnesses, exactly none. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let run name scenario = (Registry.find_exn name).Registry.run scenario

let test_two_pc_blocking_window () =
  List.iter
    (fun n ->
      let report = run "2pc" (Witness.two_pc_blocks ~n) in
      let v = Check.run report in
      check tbool "blocks" false v.Check.termination;
      check tbool "agreement intact" true v.Check.agreement;
      check tbool "validity intact" true (Check.validity v))
    [ 3; 5; 8 ]

let test_one_nbac_gap () =
  (* the (AVT, VT) cell: a 1-delay decider against consensus-based aborts *)
  List.iter
    (fun n ->
      let report = run "1nbac" (Witness.one_nbac_disagreement ~n) in
      let v = Check.run report in
      check tbool "network failure" true
        (Classify.of_report report = Classify.Network_failure);
      check tbool "agreement broken" false v.Check.agreement;
      check tbool "P1 fast-decided commit" true
        (match Report.decision_of report (Pid.of_rank 1) with
        | Some (at, d) ->
            at = Sim_time.default_u && Vote.decision_equal d Vote.commit
        | None -> false);
      check tbool "validity survives" true (Check.validity v))
    [ 3; 5; 7 ]

let test_one_nbac_same_schedule_is_safe_in_sync () =
  (* the same vote pattern without the delay adversary solves NBAC: the
     violation is caused by the network failure, nothing else *)
  let report = run "1nbac" (Scenario.nice ~n:5 ~f:1 ()) in
  check tbool "synchronous twin solves NBAC" true
    (Check.solves_nbac (Check.run report))

let test_chain_noop_gap () =
  List.iter
    (fun n ->
      let report = run "(n-1+f)nbac" (Witness.chain_nbac_disagreement ~n) in
      let v = Check.run report in
      check tbool "network failure" true
        (Classify.of_report report = Classify.Network_failure);
      check tbool "agreement broken" false v.Check.agreement;
      check tbool "P2 noop-decided commit" true
        (match Report.decision_of report (Pid.of_rank 2) with
        | Some (_, d) -> Vote.decision_equal d Vote.commit
        | None -> false))
    [ 4; 5; 6 ]

let test_star_positive_crash_witness () =
  (* Pn dies mid-broadcast of [B,1]: the relay machinery must keep the
     crash-failure guarantee (this is the agreement proof of E.4 at work) *)
  List.iter
    (fun keep ->
      let report = run "(2n-2)nbac" (Witness.star_nbac_partial_broadcast ~n:6 ~keep) in
      let v = Check.run report in
      check tbool "crash-failure execution" true
        (Classify.of_report report = Classify.Crash_failure);
      check tbool "agreement preserved" true v.Check.agreement;
      check tbool "termination preserved" true v.Check.termination)
    [ 0; 1; 2; 3; 4 ]

let test_star_negative_network_witness () =
  let report = run "(2n-2)nbac" (Witness.star_nbac_disagreement ~n:5) in
  let v = Check.run report in
  check tbool "agreement broken under network failure" false v.Check.agreement;
  check tbool "validity survives (VT cell)" true (Check.validity v);
  check tbool "termination survives (VT cell)" true v.Check.termination

let test_inbac_immune_to_all_witnesses () =
  (* indulgence: INBAC solves NBAC on every adversary we reconstructed *)
  List.iter
    (fun scenario ->
      let report = run "inbac" scenario in
      check tbool "INBAC solves NBAC" true (Check.solves_nbac (Check.run report)))
    [
      Witness.two_pc_blocks ~n:5;
      Witness.inbac_slow_backup ~n:5 ~f:2;
      Witness.crash_storm ~n:5 ~f:2 ~seed:11;
      Witness.eventual_synchrony ~n:5 ~f:2 ~seed:5;
    ]

let test_cycle_also_indulgent () =
  (* the message-optimal indulgent protocol shares INBAC's cell *)
  List.iter
    (fun scenario ->
      let report = run "(2n-2+f)nbac" scenario in
      check tbool "(2n-2+f)NBAC solves NBAC" true
        (Check.solves_nbac (Check.run report)))
    [
      Witness.crash_storm ~n:5 ~f:2 ~seed:3;
      Witness.eventual_synchrony ~n:5 ~f:2 ~seed:9;
    ]

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "witness"
    [
      ( "constructions",
        [
          quick "2pc blocking window" test_two_pc_blocking_window;
          quick "1nbac agreement gap" test_one_nbac_gap;
          quick "1nbac synchronous twin" test_one_nbac_same_schedule_is_safe_in_sync;
          quick "chain noop gap" test_chain_noop_gap;
          quick "star positive (crash)" test_star_positive_crash_witness;
          quick "star negative (network)" test_star_negative_network_witness;
          quick "inbac immune" test_inbac_immune_to_all_witnesses;
          quick "cycle indulgent" test_cycle_also_indulgent;
        ] );
    ]
