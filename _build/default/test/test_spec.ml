(* Tests for ac_spec: the property lattice and the 27 cells, the bound
   formulas of Table 1, execution classification and the NBAC checker —
   plus the Vset collection type from ac_protocols. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let u = Sim_time.default_u

(* ------------------------------------------------------------------ *)
(* Props *)

let test_props_cells_count () =
  check tint "exactly 27 cells" 27 (List.length Props.cells);
  check tint "8 subsets" 8 (List.length Props.all_subsets)

let test_props_cells_valid () =
  List.iter
    (fun (c : Props.cell) ->
      check tbool "nf subset of cf" true (Props.subset c.Props.nf c.Props.cf))
    Props.cells

let test_props_cell_invalid () =
  Alcotest.match_raises "nf must be below cf"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Props.cell ~cf:Props.a ~nf:Props.avt))

let test_props_subset_lattice () =
  check tbool "empty below all" true (Props.subset Props.empty Props.avt);
  check tbool "av below avt" true (Props.subset Props.av Props.avt);
  check tbool "at not below av" false (Props.subset Props.at Props.av);
  check tbool "union" true
    (Props.equal (Props.union Props.av Props.t_) Props.avt)

let test_props_to_string () =
  check Alcotest.string "avt" "AVT" (Props.to_string Props.avt);
  check Alcotest.string "av" "AV" (Props.to_string Props.av);
  check Alcotest.string "empty" "\xe2\x88\x85" (Props.to_string Props.empty)

let prop_cell_le_partial_order =
  QCheck.Test.make ~count:200 ~name:"cell_le is a partial order"
    QCheck.(pair (int_range 0 26) (int_range 0 26))
    (fun (i, j) ->
      let ci = List.nth Props.cells i and cj = List.nth Props.cells j in
      (* reflexive, antisymmetric *)
      Props.cell_le ci ci
      && (not (Props.cell_le ci cj && Props.cell_le cj ci) || ci = cj))

(* ------------------------------------------------------------------ *)
(* Bounds *)

let cell cf nf = Props.cell ~cf ~nf

let test_bounds_delays () =
  check tint "least robust" 1 (Bounds.delays (cell Props.empty Props.empty));
  check tint "(AVT, A)" 2 (Bounds.delays (cell Props.avt Props.a));
  check tint "(AVT, AVT)" 2 (Bounds.delays (cell Props.avt Props.avt));
  check tint "(AVT, VT)" 1 (Bounds.delays (cell Props.avt Props.vt));
  check tint "(AV, AV)" 1 (Bounds.delays (cell Props.av Props.av))

let test_bounds_two_delay_cells () =
  let two =
    List.filter (fun c -> Bounds.delays c = 2) Props.cells
  in
  (* exactly the four cells (AVT, Y) with A in Y *)
  check tint "four 2-delay cells" 4 (List.length two)

let test_bounds_messages () =
  let n = 10 and f = 3 in
  check tint "validity-free cells cost 0" 0
    (Bounds.messages ~n ~f (cell Props.at Props.at));
  check tint "(AV, A) = n-1+f" (n - 1 + f)
    (Bounds.messages ~n ~f (cell Props.av Props.a));
  check tint "(AVT, T) = n-1+f" (n - 1 + f)
    (Bounds.messages ~n ~f (cell Props.avt Props.t_));
  check tint "(AV, AV) = 2n-2" ((2 * n) - 2)
    (Bounds.messages ~n ~f (cell Props.av Props.av));
  check tint "(AVT, AVT) = 2n-2+f" ((2 * n) - 2 + f)
    (Bounds.messages ~n ~f (cell Props.avt Props.avt))

let test_bounds_given_delays () =
  let n = 10 and f = 3 in
  check tint "1-delay validity cells need n(n-1)" (n * (n - 1))
    (Bounds.messages_given_optimal_delays ~n ~f (cell Props.av Props.av));
  check tint "2-delay cells need 2fn" (2 * f * n)
    (Bounds.messages_given_optimal_delays ~n ~f (cell Props.avt Props.avt));
  check tint "validity-free stays 0" 0
    (Bounds.messages_given_optimal_delays ~n ~f (cell Props.at Props.at))

let test_bounds_tradeoff_count () =
  let tradeoffs = List.filter Bounds.has_tradeoff Props.cells in
  check tint "18 of 27 cells trade delays against messages" 18
    (List.length tradeoffs)

let prop_bounds_monotone_in_robustness =
  QCheck.Test.make ~count:300
    ~name:"bounds are monotone along the robustness order"
    QCheck.(pair (int_range 0 26) (int_range 0 26))
    (fun (i, j) ->
      let ci = List.nth Props.cells i and cj = List.nth Props.cells j in
      if Props.cell_le ci cj then
        Bounds.delays ci <= Bounds.delays cj
        && Bounds.messages ~n:10 ~f:3 ci <= Bounds.messages ~n:10 ~f:3 cj
      else true)

(* ------------------------------------------------------------------ *)
(* Classify and Check, through real runs *)

let run name scenario = (Registry.find_exn name).Registry.run scenario

let test_classify_runs () =
  let nice = run "inbac" (Scenario.nice ~n:4 ~f:1 ()) in
  check tbool "nice run is failure-free" true
    (Classify.of_report nice = Classify.Failure_free);
  check tbool "nice run is nice" true (Classify.is_nice nice);
  let crash =
    run "inbac"
      (Scenario.with_crashes (Scenario.nice ~n:4 ~f:1 ())
         [ (Pid.of_rank 2, Scenario.Before u) ])
  in
  check tbool "crash run classified" true
    (Classify.of_report crash = Classify.Crash_failure);
  let slow = run "inbac" (Witness.eventual_synchrony ~n:4 ~f:1 ~seed:1) in
  check tbool "slow run classified" true
    (Classify.of_report slow = Classify.Network_failure);
  check tbool "failure-free run has no failure" false (Classify.failure_occurred nice);
  check tbool "crash is a failure" true (Classify.failure_occurred crash)

let test_classify_zero_vote_not_nice () =
  let report =
    run "inbac"
      (Scenario.with_no_votes (Scenario.nice ~n:4 ~f:1 ()) [ Pid.of_rank 1 ])
  in
  check tbool "still failure-free" true
    (Classify.of_report report = Classify.Failure_free);
  check tbool "but not nice" false (Classify.is_nice report)

let test_check_verdicts () =
  let good = Check.run (run "inbac" (Scenario.nice ~n:4 ~f:1 ())) in
  check tbool "nice run solves NBAC" true (Check.solves_nbac good);
  check tbool "no violations recorded" true (good.Check.violations = []);
  let blocked = Check.run (run "2pc" (Witness.two_pc_blocks ~n:4)) in
  check tbool "termination violation recorded" true
    (List.exists
       (fun s -> String.length s >= 11 && String.sub s 0 11 = "termination")
       blocked.Check.violations);
  let split = Check.run (run "1nbac" (Witness.one_nbac_disagreement ~n:4)) in
  check tbool "agreement violation recorded" true
    (List.exists
       (fun s -> String.length s >= 9 && String.sub s 0 9 = "agreement")
       split.Check.violations)

let test_check_holds () =
  let v = Check.run (run "2pc" (Witness.two_pc_blocks ~n:4)) in
  check tbool "holds AV" true (Check.holds v Props.av);
  check tbool "does not hold T" false (Check.holds v Props.t_);
  check tbool "holds empty" true (Check.holds v Props.empty)

let test_metrics_guards () =
  Alcotest.match_raises "of_nice rejects non-nice"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () ->
      let report =
        run "inbac"
          (Scenario.with_no_votes (Scenario.nice ~n:4 ~f:1 ()) [ Pid.of_rank 1 ])
      in
      ignore (Metrics.of_nice report));
  Alcotest.match_raises "of_report needs a decision"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () ->
      let report = run "2pc" (Witness.two_pc_blocks ~n:4) in
      (* only P1's unilateral... nobody decided here: coordinator crashed
         before announcing and all votes were yes *)
      ignore (Metrics.of_report report))

(* ------------------------------------------------------------------ *)
(* Vset *)

let p = Pid.of_rank

let test_vset_basics () =
  let s = Vset.add (p 2) Vote.yes (Vset.singleton (p 1) Vote.no) in
  check tint "cardinal" 2 (Vset.cardinal s);
  check tbool "mem" true (Vset.mem (p 1) s);
  check tbool "find" true (Vset.find (p 2) s = Some Vote.yes);
  check tbool "conjunction sees the 0" true
    (Vote.equal (Vset.conjunction s) Vote.no);
  check tbool "covers" true (Vset.covers s [ p 1; p 2 ]);
  check tbool "not covers" false (Vset.covers s [ p 1; p 3 ]);
  check tbool "complete" true (Vset.complete ~n:2 s);
  check tbool "empty conjunction is yes" true
    (Vote.equal (Vset.conjunction Vset.empty) Vote.yes)

let test_vset_first_vote_wins () =
  let s = Vset.add (p 1) Vote.no (Vset.singleton (p 1) Vote.yes) in
  check tint "no duplicate" 1 (Vset.cardinal s);
  check tbool "first binding kept" true (Vset.find (p 1) s = Some Vote.yes)

let prop_vset_sorted_canonical =
  QCheck.Test.make ~count:300 ~name:"Vset bindings are sorted and unique"
    QCheck.(small_list (pair (int_range 1 20) bool))
    (fun entries ->
      let s =
        List.fold_left
          (fun acc (rank, b) -> Vset.add (p rank) (Vote.of_bool b) acc)
          Vset.empty entries
      in
      let ranks = List.map (fun (q, _) -> Pid.rank q) (Vset.bindings s) in
      ranks = List.sort_uniq compare ranks)

let prop_vset_union_commutes_on_domains =
  QCheck.Test.make ~count:300 ~name:"Vset union covers both operands"
    QCheck.(
      pair
        (small_list (pair (int_range 1 20) bool))
        (small_list (pair (int_range 1 20) bool)))
    (fun (xs, ys) ->
      let build entries =
        List.fold_left
          (fun acc (rank, b) -> Vset.add (p rank) (Vote.of_bool b) acc)
          Vset.empty entries
      in
      let a = build xs and b = build ys in
      let union = Vset.union a b in
      List.for_all (fun (q, _) -> Vset.mem q union) (Vset.bindings a)
      && List.for_all (fun (q, _) -> Vset.mem q union) (Vset.bindings b))

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "spec"
    [
      ( "props",
        [
          quick "27 cells" test_props_cells_count;
          quick "cells valid" test_props_cells_valid;
          quick "cell invalid" test_props_cell_invalid;
          quick "lattice" test_props_subset_lattice;
          quick "to_string" test_props_to_string;
          prop prop_cell_le_partial_order;
        ] );
      ( "bounds",
        [
          quick "delays" test_bounds_delays;
          quick "two-delay cells" test_bounds_two_delay_cells;
          quick "messages" test_bounds_messages;
          quick "given delays" test_bounds_given_delays;
          quick "tradeoff count" test_bounds_tradeoff_count;
          prop prop_bounds_monotone_in_robustness;
        ] );
      ( "classify/check",
        [
          quick "classify runs" test_classify_runs;
          quick "zero vote not nice" test_classify_zero_vote_not_nice;
          quick "verdicts" test_check_verdicts;
          quick "holds" test_check_holds;
          quick "metrics guards" test_metrics_guards;
        ] );
      ( "vset",
        [
          quick "basics" test_vset_basics;
          quick "first vote wins" test_vset_first_vote_wins;
          prop prop_vset_sorted_canonical;
          prop prop_vset_union_commutes_on_domains;
        ] );
    ]
