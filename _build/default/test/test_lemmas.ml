(* Mechanized checks of the structural facts the paper's lower-bound
   proofs assert about nice executions — computed on the real traces of
   our protocols with the reachability relation of Definitions 2/4 and
   the send/receive-phase analysis of Section 6.1. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let u = Sim_time.default_u
let run name scenario = (Registry.find_exn name).Registry.run scenario

(* ------------------------------------------------------------------ *)
(* Reachability on a hand-built trace *)

let hand_report () =
  (* P1 -(0..U)-> P2 -(U..2U)-> P3; P3 -(2U..3U)-> P1 *)
  let trace = Trace.create () in
  let send src dst at deliver_at =
    Trace.add trace
      (Trace.Send
         {
           at;
           src = Pid.of_rank src;
           dst = Pid.of_rank dst;
           layer = Trace.Commit_layer;
           tag = "m";
           deliver_at;
         })
  in
  send 1 2 0 u;
  send 2 3 u (2 * u);
  send 3 1 (2 * u) (3 * u);
  {
    Report.scenario = Scenario.nice ~n:3 ~f:1 ();
    protocol = "hand";
    consensus = None;
    trace;
    decisions = Array.make 3 None;
    crashed_at = Array.make 3 None;
    outcome = Report.Quiescent (3 * u);
  }

let test_reach_chains () =
  let reach = Reach.of_report (hand_report ()) in
  let p = Pid.of_rank in
  check tbool "P1 reaches P2 at U" true
    (Reach.reached_at reach ~src:(p 1) ~dst:(p 2) = Some u);
  check tbool "P1 reaches P3 via the chain at 2U" true
    (Reach.reached_at reach ~src:(p 1) ~dst:(p 3) = Some (2 * u));
  check tbool "P2 reaches P1 via P3 at 3U" true
    (Reach.reached_at reach ~src:(p 2) ~dst:(p 1) = Some (3 * u));
  check tbool "P2 never reaches... itself excluded" true
    (Reach.reached_at reach ~src:(p 2) ~dst:(p 2) = None);
  check tbool "no reverse chain P2 -> P1 before 3U" false
    (Reach.reaches_by reach ~src:(p 2) ~dst:(p 1) ~at:(2 * u));
  check tbool "round trip P1 -> P2/P3 -> P1 completes at 3U" true
    (Reach.round_trip_by reach ~src:(p 1) ~via:(p 2) ~at:(3 * u));
  check tbool "round trip not earlier" false
    (Reach.round_trip_by reach ~src:(p 1) ~via:(p 2) ~at:((3 * u) - 1))

let test_reach_respects_chain_timing () =
  (* a message that leaves before the enabling one arrives must not
     extend a chain *)
  let trace = Trace.create () in
  let send src dst at deliver_at =
    Trace.add trace
      (Trace.Send
         {
           at;
           src = Pid.of_rank src;
           dst = Pid.of_rank dst;
           layer = Trace.Commit_layer;
           tag = "m";
           deliver_at;
         })
  in
  (* P2 -> P3 leaves at 0, long before P1 -> P2 arrives at U *)
  send 1 2 0 u;
  send 2 3 0 u;
  let report =
    {
      Report.scenario = Scenario.nice ~n:3 ~f:1 ();
      protocol = "hand";
      consensus = None;
      trace;
      decisions = Array.make 3 None;
      crashed_at = Array.make 3 None;
      outcome = Report.Quiescent u;
    }
  in
  let reach = Reach.of_report report in
  check tbool "P1 does not reach P3 through a too-early hop" true
    (Reach.reached_at reach ~src:(Pid.of_rank 1) ~dst:(Pid.of_rank 3) = None)

(* ------------------------------------------------------------------ *)
(* Lemma 1: f backups by t2, on INBAC's nice executions *)

let test_lemma1_backups () =
  List.iter
    (fun (n, f) ->
      let report = run "inbac" (Scenario.nice ~n ~f ()) in
      let reach = Reach.of_report report in
      (* every process decides at 2U; the last pre-decision message
         leaves at t2 = U *)
      List.iter
        (fun p ->
          let reached = Reach.reached_set reach ~src:p ~at:u in
          check tbool
            (Printf.sprintf "n=%d f=%d: %s reached >= f processes by t2" n f
               (Pid.to_string p))
            true
            (List.length reached >= f))
        (Pid.all ~n))
    [ (3, 1); (5, 2); (8, 3); (8, 7) ]

(* ------------------------------------------------------------------ *)
(* Lemma 5: f quick acknowledgements by decision time, on INBAC *)

let test_lemma5_acknowledgers () =
  List.iter
    (fun (n, f) ->
      let report = run "inbac" (Scenario.nice ~n ~f ()) in
      let reach = Reach.of_report report in
      List.iter
        (fun p ->
          let theta = Reach.acknowledgers reach ~src:p ~at:(2 * u) in
          check tbool
            (Printf.sprintf "n=%d f=%d: |Theta(%s)| >= f" n f (Pid.to_string p))
            true
            (List.length theta >= f))
        (Pid.all ~n))
    [ (3, 1); (5, 2); (8, 3) ]

let test_lemma5_bites_2pc () =
  (* a 2PC participant's only round trip by decision time goes through
     the coordinator: one acknowledger, short of Lemma 5's f = 2 —
     consistent with 2PC not solving the (CF-NBAC, NF-A) problem the
     lemma is about *)
  let report = run "2pc" (Scenario.nice ~n:5 ~f:2 ()) in
  let reach = Reach.of_report report in
  let p3 = Pid.of_rank 3 in
  let theta = Reach.acknowledgers reach ~src:p3 ~at:(2 * u) in
  check tint "exactly the coordinator acknowledges" 1 (List.length theta);
  check tbool "fewer than f" true (List.length theta < 2)

(* ------------------------------------------------------------------ *)
(* Lemma 3: with validity under network failures, every process reaches
   every decider by its decision time *)

let lemma3_protocols =
  [ "1nbac"; "avnbac-delay"; "avnbac-msg"; "(2n-2)nbac"; "(2n-2+f)nbac"; "inbac" ]

let test_lemma3_everyone_reaches_deciders () =
  List.iter
    (fun protocol ->
      let n = 5 and f = 2 in
      let report = run protocol (Scenario.nice ~n ~f ()) in
      let reach = Reach.of_report report in
      List.iter
        (fun p ->
          match Report.decision_of report p with
          | None -> Alcotest.fail (protocol ^ ": nice run did not decide")
          | Some (decided_at, _) ->
              List.iter
                (fun q ->
                  if not (Pid.equal p q) then
                    check tbool
                      (Printf.sprintf "%s: %s reaches decider %s by %d"
                         protocol (Pid.to_string q) (Pid.to_string p)
                         decided_at)
                      true
                      (Reach.reaches_by reach ~src:q ~dst:p ~at:decided_at))
                (Pid.all ~n))
        (Pid.all ~n))
    lemma3_protocols

let test_lemma3_spares_0nbac () =
  (* 0NBAC keeps validity only in failure-free executions; accordingly no
     message flows at all in its nice runs — the lemma's conclusion does
     not apply and indeed fails *)
  let report = run "0nbac" (Scenario.nice ~n:4 ~f:1 ()) in
  let reach = Reach.of_report report in
  check tbool "nobody reaches anybody in a silent execution" true
    (Reach.reached_at reach ~src:(Pid.of_rank 1) ~dst:(Pid.of_rank 2) = None)

(* ------------------------------------------------------------------ *)
(* Section 6.1: phase structure of synchronous NBAC *)

let test_phases_one_nbac () =
  (* the paper's refined picture: a 1-delay synchronous NBAC decider
     shows two send phases and one receive phase before deciding *)
  let report = run "1nbac" (Scenario.nice ~n:5 ~f:2 ()) in
  List.iter
    (fun p ->
      let phases = Phases.of_report report p in
      check tbool
        (Printf.sprintf "%s: send -> receive -> send" (Pid.to_string p))
        true
        (phases = [ Phases.Send_phase; Phases.Receive_phase; Phases.Send_phase ]);
      check tbool "counts" true (Phases.count phases = (2, 1)))
    (Pid.all ~n:5)

let test_phases_avnbac_delay () =
  (* dropping termination lets a 1-delay protocol decide after a single
     send phase — the contrast that makes the 6.1 claim meaningful *)
  let report = run "avnbac-delay" (Scenario.nice ~n:5 ~f:2 ()) in
  List.iter
    (fun p ->
      let phases = Phases.of_report report p in
      check tbool
        (Printf.sprintf "%s: send -> receive only" (Pid.to_string p))
        true
        (phases = [ Phases.Send_phase; Phases.Receive_phase ]))
    (Pid.all ~n:5)

let test_phases_inbac () =
  (* INBAC's low-rank processes: send votes, receive votes, send acks,
     receive acks, decide — (2, 2); high ranks skip the backup role *)
  let report = run "inbac" (Scenario.nice ~n:5 ~f:2 ()) in
  let phases_of rank = Phases.of_report report (Pid.of_rank rank) in
  check tbool "P1 alternates twice" true (Phases.count (phases_of 1) = (2, 2));
  check tbool "P5 sends once, receives acks" true
    (Phases.count (phases_of 5) = (1, 1))

let test_phases_undeciding_process_is_empty () =
  let report = run "2pc" (Witness.two_pc_blocks ~n:4) in
  check tbool "blocked participant has no phase list" true
    (Phases.of_report report (Pid.of_rank 2) = [])

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "lemmas"
    [
      ( "reachability",
        [
          quick "chains" test_reach_chains;
          quick "chain timing" test_reach_respects_chain_timing;
        ] );
      ("lemma 1", [ quick "f backups" test_lemma1_backups ]);
      ( "lemma 5",
        [
          quick "f acknowledgers" test_lemma5_acknowledgers;
          quick "2pc has none" test_lemma5_bites_2pc;
        ] );
      ( "lemma 3",
        [
          quick "everyone reaches deciders" test_lemma3_everyone_reaches_deciders;
          quick "0nbac exempt" test_lemma3_spares_0nbac;
        ] );
      ( "section 6.1 phases",
        [
          quick "1nbac: 2 sends + 1 receive" test_phases_one_nbac;
          quick "avnbac-delay: 1 send" test_phases_avnbac_delay;
          quick "inbac structure" test_phases_inbac;
          quick "blocked process empty" test_phases_undeciding_process_is_empty;
        ] );
    ]
