(* Unit and property tests for ac_kernel: pids, votes, time, RNG, traces. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Pid *)

let test_pid_roundtrip () =
  for i = 1 to 20 do
    check tint "rank roundtrip" i (Pid.rank (Pid.of_rank i));
    check tint "index roundtrip" (i - 1) (Pid.index (Pid.of_rank i))
  done

let test_pid_invalid () =
  Alcotest.check_raises "of_rank 0" (Invalid_argument "Pid.of_rank: rank must be >= 1")
    (fun () -> ignore (Pid.of_rank 0));
  Alcotest.check_raises "of_index -1"
    (Invalid_argument "Pid.of_index: negative index") (fun () ->
      ignore (Pid.of_index (-1)))

let test_pid_all () =
  let pids = Pid.all ~n:4 in
  check tint "four pids" 4 (List.length pids);
  check (Alcotest.list tint) "ranks in order" [ 1; 2; 3; 4 ]
    (List.map Pid.rank pids)

let test_pid_others () =
  let p2 = Pid.of_rank 2 in
  check (Alcotest.list tint) "others excludes self" [ 1; 3; 4 ]
    (List.map Pid.rank (Pid.others ~n:4 p2))

let test_pid_ring () =
  let n = 5 in
  check tint "successor wraps" 1 (Pid.rank (Pid.successor ~n (Pid.of_rank 5)));
  check tint "predecessor wraps" 5
    (Pid.rank (Pid.predecessor ~n (Pid.of_rank 1)));
  List.iter
    (fun p ->
      check tbool "pred . succ = id" true
        (Pid.equal p (Pid.predecessor ~n (Pid.successor ~n p))))
    (Pid.all ~n)

let test_pid_pp () =
  check Alcotest.string "pretty prints rank" "P3" (Pid.to_string (Pid.of_rank 3))

(* ------------------------------------------------------------------ *)
(* Vote *)

let test_vote_logand () =
  let open Vote in
  check tbool "1&1" true (equal (logand yes yes) yes);
  check tbool "1&0" true (equal (logand yes no) no);
  check tbool "0&1" true (equal (logand no yes) no);
  check tbool "0&0" true (equal (logand no no) no)

let test_vote_conversions () =
  check tint "yes = 1" 1 (Vote.to_int Vote.yes);
  check tint "no = 0" 0 (Vote.to_int Vote.no);
  check tbool "of_int 1" true (Vote.equal (Vote.of_int 1) Vote.yes);
  check tbool "of_bool false" true (Vote.equal (Vote.of_bool false) Vote.no);
  Alcotest.check_raises "of_int 2"
    (Invalid_argument "Vote.of_int: 2 is not a vote") (fun () ->
      ignore (Vote.of_int 2))

let test_vote_decision () =
  check tbool "yes -> commit" true
    (Vote.decision_equal (Vote.decision_of_vote Vote.yes) Vote.commit);
  check tbool "no -> abort" true
    (Vote.decision_equal (Vote.decision_of_vote Vote.no) Vote.abort);
  check tint "commit = 1" 1 (Vote.decision_to_int Vote.commit);
  check tbool "roundtrip" true
    (Vote.equal (Vote.vote_of_decision (Vote.decision_of_vote Vote.no)) Vote.no)

let test_vote_all_yes () =
  check tbool "empty" true (Vote.all_yes []);
  check tbool "all yes" true (Vote.all_yes [ Vote.yes; Vote.yes ]);
  check tbool "one no" false (Vote.all_yes [ Vote.yes; Vote.no ])

(* ------------------------------------------------------------------ *)
(* Sim_time *)

let test_time_delays () =
  let u = 1000 in
  check tint "of_delays" 3000 (Sim_time.of_delays ~u 3);
  check (Alcotest.float 1e-9) "delays" 2.5 (Sim_time.delays ~u 2500)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check tbool "same stream" true (Int64.equal (Rng.next64 a) (Rng.next64 b))
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 7 and b = Rng.create 8 in
  let va = List.init 10 (fun _ -> Rng.next64 a) in
  let vb = List.init 10 (fun _ -> Rng.next64 b) in
  check tbool "different seeds differ" false (va = vb)

let test_rng_copy () =
  let a = Rng.create 13 in
  ignore (Rng.next64 a);
  let b = Rng.copy a in
  check tbool "copy continues identically" true
    (Int64.equal (Rng.next64 a) (Rng.next64 b))

let test_rng_invalid () =
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int (Rng.create 1) ~bound:0))

let prop_rng_int_in_bound =
  QCheck.Test.make ~count:500 ~name:"Rng.int is within bound"
    QCheck.(pair small_int (int_range 1 1_000_000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng ~bound in
      v >= 0 && v < bound)

let prop_rng_int_in_range =
  QCheck.Test.make ~count:500 ~name:"Rng.int_in is within range"
    QCheck.(triple small_int (int_range (-1000) 1000) (int_range 0 1000))
    (fun (seed, lo, width) ->
      let rng = Rng.create seed in
      let v = Rng.int_in rng ~lo ~hi:(lo + width) in
      v >= lo && v <= lo + width)

let prop_rng_shuffle_permutation =
  QCheck.Test.make ~count:200 ~name:"Rng.shuffle is a permutation"
    QCheck.(pair small_int (small_list int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      List.sort compare (Rng.shuffle rng xs) = List.sort compare xs)

let prop_rng_pick_member =
  QCheck.Test.make ~count:200 ~name:"Rng.pick returns a member"
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 20) int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      List.mem (Rng.pick rng xs) xs)

let prop_rng_float_unit =
  QCheck.Test.make ~count:500 ~name:"Rng.float in [0,1)" QCheck.small_int
    (fun seed ->
      let rng = Rng.create seed in
      let v = Rng.float rng in
      v >= 0.0 && v < 1.0)

(* ------------------------------------------------------------------ *)
(* Trace *)

let sample_trace () =
  let t = Trace.create () in
  let p1 = Pid.of_rank 1 and p2 = Pid.of_rank 2 in
  Trace.add t (Trace.Propose { at = 0; pid = p1; vote = Vote.yes });
  Trace.add t
    (Trace.Send
       {
         at = 0;
         src = p1;
         dst = p2;
         layer = Trace.Commit_layer;
         tag = "[V,1]";
         deliver_at = 10;
       });
  Trace.add t
    (Trace.Send
       {
         at = 0;
         src = p1;
         dst = p1;
         layer = Trace.Commit_layer;
         tag = "[V,1]";
         deliver_at = 0;
       });
  Trace.add t
    (Trace.Send
       {
         at = 5;
         src = p2;
         dst = p1;
         layer = Trace.Consensus_layer;
         tag = "prepare(1)";
         deliver_at = 15;
       });
  Trace.add t (Trace.Decide { at = 20; pid = p2; decision = Vote.commit });
  Trace.add t (Trace.Crash { at = 30; pid = p1 });
  Trace.add t (Trace.Note { at = 31; pid = p2; label = "phase"; value = "2" });
  t

let test_trace_order () =
  let t = sample_trace () in
  check tint "length" 7 (Trace.length t);
  match Trace.entries t with
  | Trace.Propose _ :: _ -> ()
  | _ -> Alcotest.fail "entries not in append order"

let test_trace_network_sends () =
  let t = sample_trace () in
  check tint "self-sends excluded" 2 (List.length (Trace.network_sends t));
  check tint "commit layer only" 1
    (List.length (Trace.network_sends ~layer:Trace.Commit_layer t));
  check tint "consensus layer only" 1
    (List.length (Trace.network_sends ~layer:Trace.Consensus_layer t))

let test_trace_accessors () =
  let t = sample_trace () in
  check tint "one decision" 1 (List.length (Trace.decisions t));
  check tint "one crash" 1 (List.length (Trace.crashes t));
  check tint "one proposal" 1 (List.length (Trace.proposals t));
  check tint "note filter hit" 1 (List.length (Trace.notes ~label:"phase" t));
  check tint "note filter miss" 0 (List.length (Trace.notes ~label:"other" t))

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "kernel"
    [
      ( "pid",
        [
          quick "roundtrip" test_pid_roundtrip;
          quick "invalid" test_pid_invalid;
          quick "all" test_pid_all;
          quick "others" test_pid_others;
          quick "ring" test_pid_ring;
          quick "pp" test_pid_pp;
        ] );
      ( "vote",
        [
          quick "logand" test_vote_logand;
          quick "conversions" test_vote_conversions;
          quick "decision" test_vote_decision;
          quick "all_yes" test_vote_all_yes;
        ] );
      ("time", [ quick "delays" test_time_delays ]);
      ( "rng",
        [
          quick "determinism" test_rng_determinism;
          quick "seed sensitivity" test_rng_seed_sensitivity;
          quick "copy" test_rng_copy;
          quick "invalid" test_rng_invalid;
          prop prop_rng_int_in_bound;
          prop prop_rng_int_in_range;
          prop prop_rng_shuffle_permutation;
          prop prop_rng_pick_member;
          prop prop_rng_float_unit;
        ] );
      ( "trace",
        [
          quick "order" test_trace_order;
          quick "network sends" test_trace_network_sends;
          quick "accessors" test_trace_accessors;
        ] );
    ]
