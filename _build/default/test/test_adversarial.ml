(* Unconditional safety under a fully adversarial network: random
   per-message delays with no stabilization time at all. Termination is
   not owed in such executions (runs may be cut off at max-time), but
   every property a protocol claims for network-failure executions —
   agreement and validity for the indulgent protocols — must hold in
   every single run. This is the strongest safety hammer in the suite. *)

let u = Sim_time.default_u

(* Deterministic per-message delay derived from (seed, message seq):
   anything from 1 tick to [spread] * U, uncorrelated across messages,
   reproducible across runs. *)
let chaos_network ~seed ~spread =
  Network.adversary ~name:(Printf.sprintf "chaos(seed=%d)" seed) (fun info ->
      let rng = Rng.create ((seed * 1_000_003) + info.Network.seq) in
      1 + Rng.int rng ~bound:(spread * u))

let chaos_scenario ~seed ~n ~f ~spread ~zeros ~crash =
  let scenario =
    Scenario.make ~n ~f ~seed
      ~network:(chaos_network ~seed ~spread)
      ~max_time:(200 * u) ()
  in
  let scenario = Scenario.with_no_votes scenario zeros in
  match crash with
  | None -> scenario
  | Some (pid, at) -> Scenario.with_crashes scenario [ (pid, Scenario.Before at) ]

let gen = QCheck.(triple small_int (int_range 3 7) (int_range 1 12))

let safety_prop ~name ~protocol ~required =
  QCheck.Test.make ~count:150 ~name gen (fun (seed, n, spread) ->
      let f = max 1 ((n - 1) / 2) in
      let rng = Rng.create (seed + 31337) in
      let zeros =
        if Rng.int rng ~bound:3 = 0 then [ Pid.of_rank (1 + Rng.int rng ~bound:n) ]
        else []
      in
      let crash =
        if Rng.bool rng then
          Some (Pid.of_rank (1 + Rng.int rng ~bound:n), Rng.int rng ~bound:(8 * u))
        else None
      in
      let scenario = chaos_scenario ~seed ~n ~f ~spread ~zeros ~crash in
      let report = (Registry.find_exn protocol).Registry.run scenario in
      Check.holds (Check.run report) required)

let inbac_safety =
  safety_prop ~name:"INBAC: agreement + validity under chaos"
    ~protocol:"inbac" ~required:Props.av

let cycle_safety =
  safety_prop ~name:"(2n-2+f)NBAC: agreement + validity under chaos"
    ~protocol:"(2n-2+f)nbac" ~required:Props.av

let two_pc_agreement =
  safety_prop ~name:"2PC: agreement under chaos" ~protocol:"2pc"
    ~required:Props.a

let av_nbac_msg_safety =
  safety_prop ~name:"avNBAC(msg): agreement + validity under chaos"
    ~protocol:"avnbac-msg" ~required:Props.av

let anbac_agreement =
  safety_prop ~name:"aNBAC: agreement under chaos" ~protocol:"anbac"
    ~required:Props.a

let zero_nbac_at =
  safety_prop ~name:"0NBAC: agreement + termination under chaos"
    ~protocol:"0nbac" ~required:Props.at

let calvin_termination =
  safety_prop ~name:"calvin: termination under chaos"
    ~protocol:"calvin-commit" ~required:Props.t_

(* Paxos itself, under the same chaos: uniform agreement and validity
   always, via the consensus probe of the protocols that delegate fully. *)
let one_nbac_validity =
  safety_prop ~name:"1NBAC: validity under chaos" ~protocol:"1nbac"
    ~required:Props.v

let fast_abort_safety =
  safety_prop ~name:"INBAC-fast-abort: agreement + validity under chaos"
    ~protocol:"inbac-fast-abort" ~required:Props.av

let two_pc_classic_agreement =
  safety_prop ~name:"classic 2PC: agreement under chaos"
    ~protocol:"2pc-classic" ~required:Props.a

let three_pc_validity =
  safety_prop ~name:"3PC: validity under chaos" ~protocol:"3pc"
    ~required:Props.v

let paxos_commit_validity =
  safety_prop ~name:"Paxos Commit: validity under chaos"
    ~protocol:"paxos-commit" ~required:Props.v

let faster_paxos_commit_validity =
  safety_prop ~name:"Faster Paxos Commit: validity under chaos"
    ~protocol:"faster-paxos-commit" ~required:Props.v

let star_validity_termination =
  safety_prop ~name:"(2n-2)NBAC: validity + termination under chaos"
    ~protocol:"(2n-2)nbac" ~required:Props.vt

(* And the liveness counterpart: once the chaos is bounded by a GST, the
   indulgent protocols also terminate (already covered elsewhere for
   specific seeds; here across the generator's whole range). *)
let inbac_liveness_after_gst =
  QCheck.Test.make ~count:60
    ~name:"INBAC terminates once delays stabilize (GST chaos)"
    QCheck.(pair small_int (int_range 4 7))
    (fun (seed, n) ->
      let f = (n - 1) / 2 in
      let scenario =
        Scenario.make ~n ~f ~seed
          ~network:
            (Network.eventually_synchronous ~u ~gst:(12 * u)
               ~max_early_delay:(6 * u))
          ()
      in
      let report = (Registry.find_exn "inbac").Registry.run scenario in
      Check.solves_nbac (Check.run report))

let () =
  Alcotest.run "adversarial"
    [
      ( "chaos safety",
        List.map QCheck_alcotest.to_alcotest
          [
            inbac_safety;
            cycle_safety;
            two_pc_agreement;
            av_nbac_msg_safety;
            anbac_agreement;
            zero_nbac_at;
            calvin_termination;
            one_nbac_validity;
            fast_abort_safety;
            two_pc_classic_agreement;
            three_pc_validity;
            paxos_commit_validity;
            faster_paxos_commit_validity;
            star_validity_termination;
          ] );
      ( "liveness after stabilization",
        [ QCheck_alcotest.to_alcotest inbac_liveness_after_gst ] );
    ]
