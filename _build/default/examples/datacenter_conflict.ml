(* Cross-datacenter conflict detection, after the paper's introduction
   (the Helios scenario): each datacenter votes to abort any transaction
   involved in a serializability conflict it detects locally. The commit
   protocol is the coordination that terminates the transaction.

   The example contrasts 2PC (what most systems deploy) with INBAC on the
   executions that matter:
   - the nice execution, where both take two message delays, and
   - the coordinator-crash execution, where 2PC blocks every surviving
     datacenter while INBAC still terminates.

     dune exec examples/datacenter_conflict.exe *)

type tx = { id : string; reads : string list; writes : string list }

type datacenter = { name : string; in_flight : tx list }

let conflicts a b =
  let intersects xs ys = List.exists (fun x -> List.mem x ys) xs in
  intersects a.writes b.writes || intersects a.writes b.reads
  || intersects a.reads b.writes

let vote_of_datacenter dc ~tx =
  Vote.of_bool (not (List.exists (conflicts tx) dc.in_flight))

let datacenters =
  [
    { name = "us-east"; in_flight = [] };
    { name = "eu-west"; in_flight = [] };
    {
      name = "ap-south";
      in_flight =
        [ { id = "tx-17"; reads = [ "inventory:42" ]; writes = [ "cart:9" ] } ];
    };
    { name = "sa-east"; in_flight = [] };
  ]

let run ~protocol ~tx ~crash_coordinator =
  let n = List.length datacenters in
  let votes =
    Array.of_list (List.map (vote_of_datacenter ~tx) datacenters)
  in
  let crashes =
    if crash_coordinator then
      [ (Pid.of_rank 1, Scenario.Before Sim_time.default_u) ]
    else []
  in
  let scenario = Scenario.make ~n ~f:1 ~votes ~crashes () in
  let report = (Registry.find_exn protocol).Registry.run scenario in
  let verdict = Check.run report in
  let describe pid =
    let dc = List.nth datacenters (Pid.index pid) in
    match Report.decision_of report pid with
    | Some (at, d) ->
        Printf.sprintf "%s: %s after %.0f delays" dc.name
          (Format.asprintf "%a" Vote.pp_decision d)
          (Sim_time.delays ~u:scenario.Scenario.u at)
    | None ->
        if report.Report.crashed_at.(Pid.index pid) <> None then
          dc.name ^ ": crashed"
        else dc.name ^ ": BLOCKED (never decides)"
  in
  Format.printf "  %-22s %s | termination %b@." protocol
    (String.concat "; " (List.map describe (Pid.all ~n)))
    verdict.Check.termination

let () =
  let clean_tx =
    { id = "tx-1"; reads = [ "users:7" ]; writes = [ "sessions:7" ] }
  in
  let conflicted_tx =
    { id = "tx-2"; reads = [ "cart:9" ]; writes = [ "inventory:42" ] }
  in

  Format.printf "== nice execution: no conflict anywhere ==@.";
  run ~protocol:"2pc" ~tx:clean_tx ~crash_coordinator:false;
  run ~protocol:"inbac" ~tx:clean_tx ~crash_coordinator:false;

  Format.printf "@.== ap-south detects a conflict: transaction aborts ==@.";
  run ~protocol:"2pc" ~tx:conflicted_tx ~crash_coordinator:false;
  run ~protocol:"inbac" ~tx:conflicted_tx ~crash_coordinator:false;

  Format.printf
    "@.== coordinator datacenter crashes after one delay: 2PC blocks, \
     INBAC terminates ==@.";
  run ~protocol:"2pc" ~tx:clean_tx ~crash_coordinator:true;
  run ~protocol:"inbac" ~tx:clean_tx ~crash_coordinator:true
