(* Bank transfer: mapping an application onto atomic commit votes.

   A transfer debits accounts held on different database nodes. Each node
   checks its local constraint (sufficient funds) and votes accordingly;
   the commit protocol guarantees that either every node applies its part
   of the transfer or none does — even if a node crashes mid-protocol.

     dune exec examples/bank_transfer.exe *)

type account = { owner : string; balance : int }
type node = { name : string; accounts : account list }

(* One debit/credit leg of a transfer, located on one node. *)
type leg = { node : string; account : string; amount : int }

let cluster =
  [
    { name = "frankfurt"; accounts = [ { owner = "alice"; balance = 120 } ] };
    { name = "zurich"; accounts = [ { owner = "bank-float"; balance = 10_000 } ] };
    { name = "lisbon"; accounts = [ { owner = "bob"; balance = 15 } ] };
  ]

(* A node votes yes iff applying its legs keeps every balance >= 0. *)
let local_vote node legs =
  let applies_cleanly account =
    let delta =
      List.fold_left
        (fun acc leg ->
          if leg.node = node.name && leg.account = account.owner then
            acc + leg.amount
          else acc)
        0 legs
    in
    account.balance + delta >= 0
  in
  Vote.of_bool (List.for_all applies_cleanly node.accounts)

let run_transfer ~label ~legs ~crash =
  let n = List.length cluster in
  let f = 1 in
  let votes =
    Array.of_list (List.map (fun node -> local_vote node legs) cluster)
  in
  let crashes =
    match crash with
    | None -> []
    | Some (rank, delays) ->
        [ (Pid.of_rank rank, Scenario.Before (delays * Sim_time.default_u)) ]
  in
  let scenario = Scenario.make ~n ~f ~votes ~crashes () in
  let report = (Registry.find_exn "inbac").Registry.run scenario in
  Format.printf "@.== %s ==@." label;
  List.iteri
    (fun i node ->
      Format.printf "  %-10s votes %a%s@." node.name Vote.pp votes.(i)
        (match crash with
        | Some (rank, d) when rank = i + 1 ->
            Printf.sprintf "  (crashes after %d delays)" d
        | Some _ | None -> ""))
    cluster;
  let outcome =
    match Report.decided_values report with
    | d :: _ -> Format.asprintf "%a" Vote.pp_decision d
    | [] -> "no decision"
  in
  let verdict = Check.run report in
  Format.printf "  outcome: %s (agreement %b, validity %b, termination %b)@."
    outcome verdict.Check.agreement (Check.validity verdict)
    verdict.Check.termination

let () =
  (* 1. A clean transfer: alice sends 100 to bob via the float account. *)
  run_transfer ~label:"alice -> bob, 100 (all constraints hold)" ~crash:None
    ~legs:
      [
        { node = "frankfurt"; account = "alice"; amount = -100 };
        { node = "zurich"; account = "bank-float"; amount = 0 };
        { node = "lisbon"; account = "bob"; amount = 100 };
      ];

  (* 2. Insufficient funds on one node: lisbon votes no, all abort. *)
  run_transfer ~label:"bob -> alice, 50 (bob holds only 15: abort)"
    ~crash:None
    ~legs:
      [
        { node = "lisbon"; account = "bob"; amount = -50 };
        { node = "zurich"; account = "bank-float"; amount = 0 };
        { node = "frankfurt"; account = "alice"; amount = 50 };
      ];

  (* 3. The coordinator-free guarantee: frankfurt (P1) crashes mid-commit,
     yet with INBAC every surviving node still reaches the same decision
     — the blocking scenario that would freeze 2PC. *)
  run_transfer
    ~label:"alice -> bob, 100, frankfurt crashes after one delay (INBAC \
            still terminates)"
    ~crash:(Some (1, 1))
    ~legs:
      [
        { node = "frankfurt"; account = "alice"; amount = -100 };
        { node = "zurich"; account = "bank-float"; amount = 0 };
        { node = "lisbon"; account = "bob"; amount = 100 };
      ]
