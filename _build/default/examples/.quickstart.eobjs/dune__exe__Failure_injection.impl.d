examples/failure_injection.ml: Ascii Check Format List Pid Printf Registry Scenario Sim_time String Witness
