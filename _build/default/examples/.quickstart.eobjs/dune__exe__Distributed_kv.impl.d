examples/distributed_kv.ml: Format List Pid Scenario Sim_time Txn Txn_system
