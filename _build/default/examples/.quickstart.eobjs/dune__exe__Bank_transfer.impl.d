examples/bank_transfer.ml: Array Check Format List Pid Printf Registry Report Scenario Sim_time Vote
