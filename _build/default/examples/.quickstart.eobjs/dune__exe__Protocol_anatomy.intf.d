examples/protocol_anatomy.mli:
