examples/quickstart.mli:
