examples/quickstart.ml: Check Format List Metrics Pid Registry Report Scenario Sim_time Vote
