examples/datacenter_conflict.ml: Array Check Format List Pid Printf Registry Report Scenario Sim_time String Vote
