examples/datacenter_conflict.mli:
