examples/protocol_anatomy.ml: Check Format Lemma_report Pid Registry Report Scenario Sim_time Trace_export
