examples/distributed_kv.mli:
