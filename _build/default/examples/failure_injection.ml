(* Failure injection: sweep crash instants and network conditions across
   protocols and tabulate what survives.

   This is the library's fault-injection API in one page: build scenarios
   with [Scenario.with_crashes] / adversarial [Network]s, run any
   registered protocol, and let [Check] grade the outcome against NBAC.

     dune exec examples/failure_injection.exe *)

let u = Sim_time.default_u

let protocols = [ "2pc"; "3pc"; "paxos-commit"; "inbac"; "(n-1+f)nbac" ]

let grade report =
  let v = Check.run report in
  if Check.solves_nbac v then "NBAC"
  else
    String.concat ""
      [
        (if v.Check.agreement then "A" else "-");
        (if Check.validity v then "V" else "-");
        (if v.Check.termination then "T" else "-");
      ]

let () =
  let n = 5 and f = 2 in
  let nice = Scenario.nice ~n ~f () in

  Format.printf
    "Outcome per protocol when P1 crashes at a given instant (n=%d, f=%d).@."
    n f;
  Format.printf
    "NBAC = all three properties held; letters = which ones survived.@.@.";
  let table =
    Ascii.create
      ~header:
        ("crash of P1 at" :: protocols)
  in
  List.iter
    (fun delays ->
      let scenario =
        Scenario.with_crashes nice
          [ (Pid.of_rank 1, Scenario.Before (delays * u)) ]
      in
      Ascii.add_row table
        (Printf.sprintf "%d delays" delays
        :: List.map
             (fun p -> grade ((Registry.find_exn p).Registry.run scenario))
             protocols))
    [ 0; 1; 2; 3; 4 ];
  Ascii.print table;

  Format.printf
    "@.Same sweep, but P1 dies mid-broadcast (one message escapes):@.@.";
  let table =
    Ascii.create ~header:("partial crash at" :: protocols)
  in
  List.iter
    (fun delays ->
      let scenario =
        Scenario.with_crashes nice
          [ (Pid.of_rank 1, Scenario.During_sends (delays * u, 1)) ]
      in
      Ascii.add_row table
        (Printf.sprintf "%d delays" delays
        :: List.map
             (fun p -> grade ((Registry.find_exn p).Registry.run scenario))
             protocols))
    [ 0; 1; 2; 3; 4 ];
  Ascii.print table;

  Format.printf
    "@.Eventually-synchronous network (GST = 10U), three seeds, no crash:@.@.";
  let table = Ascii.create ~header:("seed" :: protocols) in
  List.iter
    (fun seed ->
      let scenario = Witness.eventual_synchrony ~n ~f ~seed in
      Ascii.add_row table
        (string_of_int seed
        :: List.map
             (fun p -> grade ((Registry.find_exn p).Registry.run scenario))
             protocols))
    [ 1; 2; 3 ];
  Ascii.print table;
  Format.printf
    "@.(2PC keeps agreement but blocks; the chain protocol noops into \
     disagreement risk only under targeted schedules — see `actable \
     witness`; INBAC keeps full NBAC.)@."
