(* A distributed transactional key-value store on top of the commit
   protocols: the full stack of the paper's motivating scenario.

   Five database nodes partition a keyspace; transactions read with
   optimistic version validation and write through atomic commit. We run
   the same workload over INBAC and over 2PC and watch the difference
   when a node crashes mid-commit.

     dune exec examples/distributed_kv.exe *)

let show outcome = Format.printf "%a@.@." Txn_system.pp_outcome outcome

let () =
  Format.printf "== A session against the INBAC-backed store ==@.@.";
  let db = Txn_system.create ~n:5 ~f:2 ~protocol:"inbac" () in

  (* Seed some data. *)
  let t1 =
    Txn.make ~id:"t1"
      ~writes:[ ("alice", "100"); ("bob", "15"); ("carol", "40") ]
      ()
  in
  show (Txn_system.submit db t1);

  (* A read-validate-write transfer: alice -> bob. *)
  let reads = Txn_system.snapshot_reads db [ "alice"; "bob" ] in
  let t2 = Txn.make ~id:"t2" ~reads ~writes:[ ("alice", "60"); ("bob", "55") ] () in
  show (Txn_system.submit db t2);

  (* Two conflicting transfers validated against the same snapshot: the
     second one's reads go stale when the first commits, so its owner
     node votes 0 and the protocol aborts it — the Helios-style conflict
     vote from the paper's introduction. *)
  Format.printf
    "== Concurrent conflicting transfers (same snapshot): second aborts ==@.@.";
  let snapshot = Txn_system.snapshot_reads db [ "bob"; "carol" ] in
  let t3 =
    Txn.make ~id:"t3" ~reads:snapshot
      ~writes:[ ("bob", "45"); ("carol", "50") ]
      ()
  in
  let t4 =
    Txn.make ~id:"t4" ~reads:snapshot
      ~writes:[ ("bob", "0"); ("carol", "95") ]
      ()
  in
  List.iter show (Txn_system.submit_batch db [ t3; t4 ]);

  (* A node crashes in the middle of the commit round: INBAC still
     terminates, the crashed node recovers from its staged writes, and
     atomicity holds. *)
  Format.printf "== Node P1 crashes mid-commit: INBAC terminates anyway ==@.@.";
  let reads = Txn_system.snapshot_reads db [ "alice" ] in
  let t5 = Txn.make ~id:"t5" ~reads ~writes:[ ("alice", "0"); ("dave", "60") ] () in
  show
    (Txn_system.submit
       ~crashes:[ (Pid.of_rank 1, Scenario.During_sends (Sim_time.default_u, 1)) ]
       db t5);

  (* The same crash under 2PC: if the coordinator dies before announcing,
     every node blocks with the writes staged — the classic 2PC window. *)
  Format.printf "== The same workload on 2PC: the blocking window ==@.@.";
  let db2 = Txn_system.create ~n:5 ~f:1 ~protocol:"2pc" () in
  show (Txn_system.submit db2 t1);
  show
    (Txn_system.submit
       ~crashes:[ (Pid.of_rank 1, Scenario.Before Sim_time.default_u) ]
       db2
       (Txn.make ~id:"t6" ~writes:[ ("alice", "0") ] ()));

  Format.printf "Final store contents (INBAC database):@.";
  List.iter
    (fun key ->
      match Txn_system.read db ~key with
      | Some (v, version) -> Format.printf "  %s = %s (v%d)@." key v version
      | None -> ())
    [ "alice"; "bob"; "carol"; "dave" ]
