(* Quickstart: commit one distributed transaction with INBAC.

   Five database nodes vote on a transaction; we run the paper's INBAC
   protocol in a nice execution and inspect the outcome, the message
   complexity (2fn) and the latency (two message delays).

     dune exec examples/quickstart.exe *)

let () =
  let n = 5 and f = 2 in
  (* A scenario fixes everything about the run: system size, resilience,
     votes, network behaviour, crash schedule, seed. The default is the
     paper's nice execution: no failure, every vote yes, every message
     delay exactly U. *)
  let scenario = Scenario.nice ~n ~f () in

  (* Protocols are looked up in the registry and all expose the same
     [run] function. *)
  let inbac = Registry.find_exn "inbac" in
  let report = inbac.Registry.run scenario in

  (* Every process decided commit: *)
  List.iter
    (fun pid ->
      match Report.decision_of report pid with
      | Some (at, decision) ->
          Format.printf "%a decided %a after %.1f message delays@." Pid.pp pid
            Vote.pp_decision decision
            (Sim_time.delays ~u:scenario.Scenario.u at)
      | None -> Format.printf "%a never decided@." Pid.pp pid)
    (Pid.all ~n);

  (* The paper's Theorem 6, observed: 2fn messages, 2 delays, and the
     consensus service never invoked. *)
  let metrics = Metrics.of_nice report in
  Format.printf "@.messages exchanged: %d (expected 2fn = %d)@."
    metrics.Metrics.messages (2 * f * n);
  Format.printf "message delays: %.0f (optimal: 2)@." metrics.Metrics.delays;
  Format.printf "consensus invoked: %b (INBAC never needs it when nothing \
                 fails)@."
    metrics.Metrics.consensus_invoked;

  (* The property checker validates the NBAC contract on the trace. *)
  let verdict = Check.run report in
  Format.printf "@.NBAC verdict:@.%a@." Check.pp verdict
