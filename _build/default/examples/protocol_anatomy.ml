(* Protocol anatomy: visualize what a commit protocol actually does.

   Renders INBAC's nice execution and a crash execution as ASCII message
   sequence charts, exports the Graphviz space-time diagram, and prints
   the reachability structure that the paper's lower-bound proofs count
   (Lemma 1's backups, Lemma 5's acknowledgement round trips).

     dune exec examples/protocol_anatomy.exe *)

let u = Sim_time.default_u

let () =
  let n = 4 and f = 1 in
  let inbac = Registry.find_exn "inbac" in

  Format.printf "== INBAC, nice execution (n=%d, f=%d) ==@.@." n f;
  let nice = inbac.Registry.run (Scenario.nice ~n ~f ()) in
  print_string (Trace_export.msc nice);

  Format.printf
    "@.Every [V,1] lands at a backup; every backup consolidates its \
     acknowledgement@.into one [C] message; 2fn = %d messages, everyone \
     decides at 2U.@."
    (Report.commit_messages nice);

  Format.printf "@.== The same protocol when P1 dies mid-acknowledgement ==@.@.";
  let crashed =
    inbac.Registry.run
      (Scenario.with_crashes (Scenario.nice ~n ~f ())
         [ (Pid.of_rank 1, Scenario.During_sends (u, 1)) ])
  in
  print_string (Trace_export.msc crashed);
  let verdict = Check.run crashed in
  Format.printf "@.still NBAC: %b (the HELP round and consensus kick in)@."
    (Check.solves_nbac verdict);

  Format.printf "@.== The structure the lower-bound proofs count ==@.@.";
  print_string (Lemma_report.render_inbac ~n ~f ());

  (* The Graphviz view of the nice run, ready for `dot -Tsvg`. *)
  Format.printf "@.== Graphviz export (pipe into `dot -Tsvg`) ==@.@.";
  print_string (Trace_export.dot nice)
