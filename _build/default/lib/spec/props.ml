type t = { a : bool; v : bool; t : bool }

let empty = { a = false; v = false; t = false }
let a = { empty with a = true }
let v = { empty with v = true }
let t_ = { empty with t = true }
let av = { a = true; v = true; t = false }
let at = { a = true; v = false; t = true }
let vt = { a = false; v = true; t = true }
let avt = { a = true; v = true; t = true }
let make ~a ~v ~t = { a; v; t }

let subset x y =
  (Bool.not x.a || y.a) && (Bool.not x.v || y.v) && (Bool.not x.t || y.t)

let union x y = { a = x.a || y.a; v = x.v || y.v; t = x.t || y.t }
let equal (x : t) y = x = y
let all_subsets = [ empty; a; v; t_; av; at; vt; avt ]

let to_string x =
  if x = empty then "\xe2\x88\x85" (* ∅ *)
  else
    String.concat ""
      [
        (if x.a then "A" else "");
        (if x.v then "V" else "");
        (if x.t then "T" else "");
      ]

let pp ppf x = Format.pp_print_string ppf (to_string x)

type cell = { cf : t; nf : t }

let cell ~cf ~nf =
  if not (subset nf cf) then
    invalid_arg "Props.cell: network-failure properties must be a subset of \
                 crash-failure properties";
  { cf; nf }

let cells =
  List.concat_map
    (fun cf ->
      List.filter_map
        (fun nf -> if subset nf cf then Some { cf; nf } else None)
        all_subsets)
    all_subsets

let cell_le x y = subset x.cf y.cf && subset x.nf y.nf

let pp_cell ppf { cf; nf } =
  Format.fprintf ppf "(%s, %s)" (to_string cf) (to_string nf)
