let two_delay_cell (c : Props.cell) = Props.equal c.cf Props.avt && c.nf.Props.a
let delays c = if two_delay_cell c then 2 else 1

let messages ~n ~f (c : Props.cell) =
  if two_delay_cell c then (2 * n) - 2 + f
  else if c.nf.Props.v then (2 * n) - 2
  else if c.cf.Props.v then n - 1 + f
  else 0

let messages_given_optimal_delays ~n ~f (c : Props.cell) =
  if two_delay_cell c then 2 * f * n
  else if c.cf.Props.v then n * (n - 1)
  else 0

let has_tradeoff c =
  (* validity anywhere forces either n(n-1) messages at 1 delay or the
     smaller counts at more delays; the four most robust cells trade
     2fn messages at 2 delays against 2n-2+f at more *)
  two_delay_cell c || c.cf.Props.v
