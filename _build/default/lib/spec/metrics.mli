(** The paper's best-case complexity measures, extracted from a report. *)

type t = {
  messages : int;  (** network messages, commit + consensus layers *)
  commit_messages : int;
  consensus_messages : int;
  delays : float;
      (** time of the last decision divided by [U] — the number of message
          delays when every delay is exactly [U] (Section 2.4) *)
  first_decision_delays : float;
  all_decided : bool;
  consensus_invoked : bool;
}

val of_report : Report.t -> t
(** @raise Invalid_argument when no process decided (no complexity to
    measure). *)

val of_nice : Report.t -> t
(** Like {!of_report} but insists the execution was nice
    ({!Classify.is_nice}); raises otherwise — guards benches against
    accidentally measuring a non-nice run. *)

val pp : Format.formatter -> t -> unit
