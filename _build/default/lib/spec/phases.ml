type phase = Send_phase | Receive_phase

(* Chronological send/receive events of one process up to its decision.
   The trace interleaves events of all processes; at one instant a
   process's deliveries precede its sends-in-reaction (engine ordering),
   and the trace preserves that order. *)
let events_until_decision (r : Report.t) pid =
  match Report.decision_of r pid with
  | None -> None
  | Some (decided_at, _) ->
      let events =
        List.filter_map
          (function
            | Trace.Send { at; src; dst; _ }
              when Pid.equal src pid && (not (Pid.equal src dst))
                   && at <= decided_at ->
                Some Send_phase
            | Trace.Deliver { at; dst; src; _ }
              when Pid.equal dst pid && (not (Pid.equal src dst))
                   && at <= decided_at ->
                Some Receive_phase
            | Trace.Propose _ | Trace.Send _ | Trace.Deliver _
            | Trace.Discard _ | Trace.Timeout _ | Trace.Guard _
            | Trace.Decide _ | Trace.Crash _ | Trace.Note _ ->
                None)
          (Trace.entries r.Report.trace)
      in
      Some events

let collapse events =
  List.fold_left
    (fun acc e ->
      match acc with
      | last :: _ when last = e -> acc
      | _ -> e :: acc)
    [] events
  |> List.rev

let of_report r pid =
  match events_until_decision r pid with
  | None -> []
  | Some events -> collapse events

let count phases =
  List.fold_left
    (fun (s, rcv) -> function
      | Send_phase -> (s + 1, rcv)
      | Receive_phase -> (s, rcv + 1))
    (0, 0) phases

let pp_phase ppf = function
  | Send_phase -> Format.pp_print_string ppf "send"
  | Receive_phase -> Format.pp_print_string ppf "receive"

let pp ppf phases =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " -> ")
    pp_phase ppf phases
