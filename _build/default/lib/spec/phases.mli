(** Send/receive phase counting, after the round-model discussion of
    Section 6.1.

    Charron-Bost and Schiper's round lower bound says two {e rounds} are
    necessary for synchronous NBAC, where a round is one send phase plus
    one receive phase; combined with the paper's one-message-delay bound
    the picture becomes: "a process can decide at the earliest by the end
    of the first message delay, and if so, it has to send messages before
    its decision — two send phases and one receive phase are necessary".

    This module extracts, per process, the alternating send/receive
    phases that precede its decision in a trace, so the claim can be
    checked on the implemented protocols (see the tests): 1NBAC's
    deciders exhibit exactly send, receive, send before deciding. *)

type phase = Send_phase | Receive_phase

val of_report : Report.t -> Pid.t -> phase list
(** The maximal alternation of phases at this process, up to and
    including its decision instant: consecutive sends (resp. deliveries)
    collapse into one phase; a block containing both at one instant is
    split receive-then-send when the sends react to the deliveries
    (deliveries are processed first at equal time). Empty when the
    process never decided. *)

val count : phase list -> int * int
(** [(send phases, receive phases)]. *)

val pp_phase : Format.formatter -> phase -> unit
val pp : Format.formatter -> phase list -> unit
