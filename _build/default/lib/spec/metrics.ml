type t = {
  messages : int;
  commit_messages : int;
  consensus_messages : int;
  delays : float;
  first_decision_delays : float;
  all_decided : bool;
  consensus_invoked : bool;
}

let of_report (r : Report.t) =
  let u = r.scenario.Scenario.u in
  let times =
    Array.to_list r.decisions |> List.filter_map (Option.map fst)
  in
  match times with
  | [] -> invalid_arg "Metrics.of_report: no process decided"
  | t0 :: _ ->
      let last = List.fold_left max t0 times in
      let first = List.fold_left min t0 times in
      {
        messages = Report.total_messages r;
        commit_messages = Report.commit_messages r;
        consensus_messages = Report.consensus_messages r;
        delays = Sim_time.delays ~u last;
        first_decision_delays = Sim_time.delays ~u first;
        all_decided = Report.all_correct_decided r;
        consensus_invoked = Report.consensus_invoked r;
      }

let of_nice r =
  if not (Classify.is_nice r) then
    invalid_arg "Metrics.of_nice: execution is not nice";
  of_report r

let pp ppf m =
  Format.fprintf ppf "%d msgs (%d commit + %d cons), %.1f delays%s" m.messages
    m.commit_messages m.consensus_messages m.delays
    (if m.consensus_invoked then ", consensus invoked" else "")
