(** Classify an executed trace into the paper's execution classes, from
    what actually happened (as opposed to {!Scenario.classify}, which is a
    conservative static classification of what could happen). *)

type class_ = Failure_free | Crash_failure | Network_failure

val of_report : Report.t -> class_
(** [Network_failure] when some delivered or in-flight message took more
    than [U]; else [Crash_failure] when some process crashed; else
    [Failure_free]. *)

val failure_occurred : Report.t -> bool
(** A crash or a late message — the "or a failure occurs" escape hatch of
    abort-validity. *)

val is_nice : Report.t -> bool
(** Failure-free and every process proposed 1. *)

val to_string : class_ -> string
val pp : Format.formatter -> class_ -> unit
