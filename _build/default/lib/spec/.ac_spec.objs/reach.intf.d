lib/spec/reach.mli: Pid Report Sim_time Trace
