lib/spec/phases.ml: Format List Pid Report Trace
