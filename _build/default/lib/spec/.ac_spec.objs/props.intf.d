lib/spec/props.mli: Format
