lib/spec/metrics.mli: Format Report
