lib/spec/bounds.mli: Props
