lib/spec/props.ml: Bool Format List String
