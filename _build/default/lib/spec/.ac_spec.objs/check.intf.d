lib/spec/check.mli: Format Props Report
