lib/spec/bounds.ml: Props
