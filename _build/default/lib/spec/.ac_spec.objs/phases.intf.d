lib/spec/phases.mli: Format Pid Report
