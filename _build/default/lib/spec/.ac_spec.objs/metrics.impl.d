lib/spec/metrics.ml: Array Classify Format List Option Report Scenario Sim_time
