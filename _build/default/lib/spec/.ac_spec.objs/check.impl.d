lib/spec/check.ml: Bool Classify Format List Pid Props Report String Trace Vote
