lib/spec/classify.mli: Format Report
