lib/spec/reach.ml: Array List Pid Report Scenario Sim_time Trace
