lib/spec/classify.ml: Array Format List Option Pid Report Scenario Trace Vote
