(** The paper's tight lower bounds (Table 1, Theorems 1, 2 and 5), as
    closed-form functions of the cell and of [n], [f]. *)

val delays : Props.cell -> int
(** Optimal number of message delays in nice executions: 2 when the
    crash-failure requirement is full NBAC and agreement is required under
    network failures (Theorem 1), else 1. *)

val messages : n:int -> f:int -> Props.cell -> int
(** Optimal number of messages in nice executions (Theorem 2 and
    Section 3.2): [2n-2+f] for the four most robust cells, [2n-2] when
    validity is required under network failures, [n-1+f] when validity is
    required under crash failures only, and [0] otherwise. *)

val messages_given_optimal_delays : n:int -> f:int -> Props.cell -> int
(** Optimal number of messages among protocols that also achieve the
    optimal number of delays: [n(n-1)] for the 1-delay cells that require
    validity somewhere (every process must reach every other within one
    delay, Section 3.2), [2fn] for the 2-delay cells (Theorem 5), and the
    plain optimum elsewhere. *)

val has_tradeoff : Props.cell -> bool
(** Whether delay- and message-optimality cannot be achieved by one
    protocol (18 of the 27 cells; Section 3.2 and Theorem 5). *)
