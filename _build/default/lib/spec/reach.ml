type message = {
  src : Pid.t;
  dst : Pid.t;
  leave : Sim_time.t;
  arrive : Sim_time.t;
}

type t = { n : int; messages : message list (* sorted by arrival *) }

let of_report ?layer (r : Report.t) =
  let messages =
    Trace.network_sends ?layer r.Report.trace
    |> List.filter_map (function
         | Trace.Send { at; src; dst; deliver_at; _ } ->
             Some { src; dst; leave = at; arrive = deliver_at }
         | Trace.Propose _ | Trace.Deliver _ | Trace.Discard _
         | Trace.Timeout _ | Trace.Guard _ | Trace.Decide _ | Trace.Crash _
         | Trace.Note _ ->
             None)
    |> List.sort (fun a b -> Sim_time.compare a.arrive b.arrive)
  in
  { n = r.Report.scenario.Scenario.n; messages }

(* Temporal reachability from [origin], using only chains whose first
   message leaves [origin] at or after [not_before]. One linear pass over
   the arrival-sorted messages computes every earliest arrival: a chain's
   enabling prefix always arrives no later than the extending message
   leaves, hence no later than it arrives, so it has been processed. *)
let reach_from t ~origin ~not_before =
  let earliest = Array.make t.n None in
  List.iter
    (fun m ->
      let enabled =
        (Pid.equal m.src origin && m.leave >= not_before)
        ||
        match earliest.(Pid.index m.src) with
        | Some reached -> m.leave >= reached
        | None -> false
      in
      if enabled && not (Pid.equal m.dst origin) then
        match earliest.(Pid.index m.dst) with
        | Some existing when existing <= m.arrive -> ()
        | Some _ | None -> earliest.(Pid.index m.dst) <- Some m.arrive)
    t.messages;
  earliest

let reached_at t ~src ~dst =
  (reach_from t ~origin:src ~not_before:Sim_time.zero).(Pid.index dst)

let reaches_by t ~src ~dst ~at =
  match reached_at t ~src ~dst with Some r -> r <= at | None -> false

let reached_set t ~src ~at =
  let earliest = reach_from t ~origin:src ~not_before:Sim_time.zero in
  Pid.all ~n:t.n
  |> List.filter (fun q ->
         (not (Pid.equal q src))
         &&
         match earliest.(Pid.index q) with
         | Some r -> r <= at
         | None -> false)

let round_trip_by t ~src ~via ~at =
  match reached_at t ~src ~dst:via with
  | None -> false
  | Some forward ->
      forward <= at
      &&
      let back = reach_from t ~origin:via ~not_before:forward in
      (match back.(Pid.index src) with Some r -> r <= at | None -> false)

let acknowledgers t ~src ~at =
  Pid.all ~n:t.n
  |> List.filter (fun q ->
         (not (Pid.equal q src)) && round_trip_by t ~src ~via:q ~at)
