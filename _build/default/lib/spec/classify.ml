type class_ = Failure_free | Crash_failure | Network_failure

let some_late_message (r : Report.t) =
  let u = r.scenario.Scenario.u in
  List.exists
    (function
      | Trace.Send { at; src; dst; deliver_at; _ } ->
          (not (Pid.equal src dst)) && deliver_at - at > u
      | Trace.Propose _ | Trace.Deliver _ | Trace.Discard _ | Trace.Timeout _
      | Trace.Guard _ | Trace.Decide _ | Trace.Crash _ | Trace.Note _ ->
          false)
    (Trace.entries r.trace)

let some_crash (r : Report.t) = Array.exists Option.is_some r.crashed_at

let of_report r =
  if some_late_message r then Network_failure
  else if some_crash r then Crash_failure
  else Failure_free

let failure_occurred r = of_report r <> Failure_free

let is_nice r =
  of_report r = Failure_free
  && Array.for_all (Vote.equal Vote.yes) r.scenario.Scenario.votes

let to_string = function
  | Failure_free -> "failure-free"
  | Crash_failure -> "crash-failure"
  | Network_failure -> "network-failure"

let pp ppf c = Format.pp_print_string ppf (to_string c)
