(** Process reachability (Definitions 2 and 4 of the paper), computed on
    executed traces.

    [P] {e reaches} [Q] at time [t] when a chain of messages
    [m1, ..., ml] exists with source of [m1] = [P], destination of [ml] =
    [Q], each [m_{i+1}] leaving its source no earlier than [m_i] arrived
    there, and [ml] arriving at [t] — the earliest such [t] is what we
    compute. Reachability is what the lower-bound proofs count: Lemma 1
    ("at least [f] backups"), Lemma 3 ("every process reaches the
    decider"), Lemma 5 ("[f] quick acknowledgements": [P] reaches [Q] and
    subsequently [Q] reaches [P]).

    The test suite uses this module to check the lemmas' structural
    preconditions on the nice executions of the optimal protocols —
    e.g. in INBAC's nice run every process has reached [f] others by the
    time the last pre-decision message leaves, and [f] round trips
    complete by decision time. *)

type t

val of_report : ?layer:Trace.layer -> Report.t -> t
(** Build the reachability relation from the trace's network messages
    (restricted to [layer] when given). Self-addressed messages are
    ignored, as in the paper. *)

val reached_at : t -> src:Pid.t -> dst:Pid.t -> Sim_time.t option
(** Earliest time at which [src] reaches [dst], if ever. *)

val reaches_by : t -> src:Pid.t -> dst:Pid.t -> at:Sim_time.t -> bool

val reached_set : t -> src:Pid.t -> at:Sim_time.t -> Pid.t list
(** Everyone [src] has reached by [at] (inclusive), excluding itself. *)

val round_trip_by : t -> src:Pid.t -> via:Pid.t -> at:Sim_time.t -> bool
(** Definition 4's acknowledgement pattern: [src] reaches [via], and
    subsequently [via] reaches [src], completing by [at]. Computed
    exactly: the return chain may only start after the forward chain has
    arrived at [via]. *)

val acknowledgers : t -> src:Pid.t -> at:Sim_time.t -> Pid.t list
(** The set [Θ] of Lemma 5: processes [Q] such that [src] reaches [Q] and
    subsequently [Q] reaches [src] by [at]. *)
