(** Subsets of the NBAC properties {agreement, validity, termination} and
    the 27 cells of the paper's Table 1.

    A cell is a pair [(cf, nf)]: the properties required in every
    crash-failure execution and in every network-failure execution. Since
    a property that holds in every network-failure execution also holds in
    every crash-failure one, a cell is meaningful only when [nf] is a
    subset of [cf] — there are exactly 27 such pairs. *)

type t = { a : bool; v : bool; t : bool }

val empty : t
val a : t
val v : t
val t_ : t
val av : t
val at : t
val vt : t
val avt : t

val make : a:bool -> v:bool -> t:bool -> t
val subset : t -> t -> bool
val union : t -> t -> t
val equal : t -> t -> bool
val all_subsets : t list
(** The 8 subsets, in the paper's column order: ∅, A, V, T, AV, AT, VT,
    AVT. *)

val to_string : t -> string
(** "∅", "A", "AV", "AVT", ... *)

val pp : Format.formatter -> t -> unit

type cell = { cf : t; nf : t }

val cell : cf:t -> nf:t -> cell
(** @raise Invalid_argument when [nf] is not a subset of [cf]. *)

val cells : cell list
(** All 27 valid cells, row-major in the paper's table order. *)

val cell_le : cell -> cell -> bool
(** The paper's robustness order: [(x, y) <= (u, w)] iff [x ⊆ u] and
    [y ⊆ w]. *)

val pp_cell : Format.formatter -> cell -> unit
