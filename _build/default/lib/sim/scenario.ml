type crash = Before of Sim_time.t | During_sends of Sim_time.t * int

type t = {
  n : int;
  f : int;
  u : Sim_time.t;
  votes : Vote.t array;
  crashes : (Pid.t * crash) list;
  network : Network.t;
  seed : int;
  max_time : Sim_time.t;
  deliveries_first : bool;
}

let crash_time = function Before t -> t | During_sends (t, _) -> t

let validate t =
  if t.n < 2 then invalid_arg "Scenario: n must be >= 2";
  if t.f < 1 then invalid_arg "Scenario: f must be >= 1";
  if t.f > t.n - 1 then invalid_arg "Scenario: f must be <= n - 1";
  if Array.length t.votes <> t.n then
    invalid_arg "Scenario: votes must have length n";
  if t.u < 1 then invalid_arg "Scenario: u must be >= 1";
  List.iter
    (fun (p, c) ->
      if Pid.index p >= t.n then invalid_arg "Scenario: crash of unknown pid";
      if crash_time c < 0 then invalid_arg "Scenario: negative crash time";
      match c with
      | During_sends (_, k) when k < 0 ->
          invalid_arg "Scenario: negative send budget"
      | During_sends _ | Before _ -> ())
    t.crashes;
  let pids = List.map fst t.crashes in
  if List.length (List.sort_uniq Pid.compare pids) <> List.length pids then
    invalid_arg "Scenario: a process crashes twice";
  t

let make ?u ?votes ?crashes ?network ?seed ?max_time ?(deliveries_first = true)
    ~n ~f () =
  let u = Option.value u ~default:Sim_time.default_u in
  let votes =
    match votes with Some v -> v | None -> Array.make n Vote.yes
  in
  let network = Option.value network ~default:(Network.exact ~u) in
  validate
    {
      n;
      f;
      u;
      votes;
      crashes = Option.value crashes ~default:[];
      network;
      seed = Option.value seed ~default:42;
      max_time = Option.value max_time ~default:(1000 * u);
      deliveries_first;
    }

let nice ?u ~n ~f () = make ?u ~n ~f ()

let with_no_votes t zeros =
  let votes = Array.copy t.votes in
  List.iter (fun p -> votes.(Pid.index p) <- Vote.no) zeros;
  validate { t with votes }

let with_crashes t crashes = validate { t with crashes }
let with_network t network = validate { t with network }
let with_seed t seed = { t with seed }

let classify t =
  let synchronous =
    match Network.bound t.network with
    | Some b -> b <= t.u
    | None -> false
  in
  if not synchronous then `Network_failure
  else if t.crashes <> [] then `Crash_failure
  else `Failure_free

let is_nice t =
  classify t = `Failure_free && Array.for_all (Vote.equal Vote.yes) t.votes

let pp ppf t =
  let zeros =
    Array.to_list t.votes
    |> List.mapi (fun i v -> (i, v))
    |> List.filter (fun (_, v) -> v = Vote.no)
    |> List.map (fun (i, _) -> Pid.to_string (Pid.of_index i))
  in
  Format.fprintf ppf
    "@[<h>n=%d f=%d u=%d seed=%d net=%a no-votes=[%s] crashes=[%s]@]" t.n t.f
    t.u t.seed Network.pp t.network
    (String.concat "," zeros)
    (String.concat ","
       (List.map
          (fun (p, c) ->
            match c with
            | Before at -> Printf.sprintf "%s@%d" (Pid.to_string p) at
            | During_sends (at, k) ->
                Printf.sprintf "%s@%d(sends=%d)" (Pid.to_string p) at k)
          t.crashes))
