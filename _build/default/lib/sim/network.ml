type info = {
  src : Pid.t;
  dst : Pid.t;
  layer : Trace.layer;
  sent_at : Sim_time.t;
  seq : int;
}

type t = {
  name : string;
  bound : Sim_time.t option;
  delay : Rng.t -> info -> Sim_time.t;
}

let name t = t.name
let bound t = t.bound
let delay t rng info = max 1 (t.delay rng info)

let exact ~u =
  { name = Printf.sprintf "exact(U=%d)" u; bound = Some u; delay = (fun _ _ -> u) }

let jittered ~u =
  {
    name = Printf.sprintf "jittered(U=%d)" u;
    bound = Some u;
    delay = (fun rng _ -> Rng.int_in rng ~lo:1 ~hi:u);
  }

let eventually_synchronous ~u ~gst ~max_early_delay =
  if max_early_delay < 1 then
    invalid_arg "Network.eventually_synchronous: max_early_delay must be >= 1";
  {
    name = Printf.sprintf "eventually-synchronous(U=%d,GST=%d)" u gst;
    bound = Some (max u max_early_delay);
    delay =
      (fun rng info ->
        if info.sent_at >= gst then Rng.int_in rng ~lo:1 ~hi:u
        else Rng.int_in rng ~lo:1 ~hi:max_early_delay);
  }

let adversary ~name fn = { name; bound = None; delay = (fun _ info -> fn info) }
let pp ppf t = Format.pp_print_string ppf t.name
