(** Result of one simulated execution. *)

type outcome =
  | Quiescent of Sim_time.t
      (** No event left in the queue; argument is the time of the last
          processed event. *)
  | Max_time_reached
      (** The engine stopped at [Scenario.max_time] with events pending —
          a diverging execution (e.g. consensus that cannot terminate). *)

type t = {
  scenario : Scenario.t;
  protocol : string;
  consensus : string option;
  trace : Trace.t;
  decisions : (Sim_time.t * Vote.decision) option array;
      (** First decision of each process, indexed by pid. *)
  crashed_at : Sim_time.t option array;
  outcome : outcome;
}

val decision_of : t -> Pid.t -> (Sim_time.t * Vote.decision) option
val decided_values : t -> Vote.decision list
(** Decisions taken, one per deciding process, in pid order. *)

val correct_pids : t -> Pid.t list
(** Processes that never crashed. *)

val all_correct_decided : t -> bool

val commit_messages : t -> int
(** Network messages (src <> dst) of the commit layer. *)

val consensus_messages : t -> int
val total_messages : t -> int

val last_decision_time : t -> Sim_time.t option
(** Time at which the last deciding process decided. *)

val delays_to_last_decision : t -> float option
(** The paper's best-case time metric: with all transmission delays equal
    to [U] and instantaneous local steps, the number of message delays of
    the execution is [last decision time / U]. Meaningful for nice
    executions (elsewhere it is just the normalized makespan). *)

val consensus_invoked : t -> bool
(** Whether any process proposed to the consensus service. *)

val pp_summary : Format.formatter -> t -> unit
