(** Network delay models.

    A network model assigns a transmission delay (in ticks) to every
    message at the moment it is sent. The paper's execution classes map
    onto models as follows:

    - {e failure-free / crash-failure executions} (a synchronous system):
      every delay is in [\[1, U\]] — see {!exact}, {!jittered};
    - {e nice executions}: no crash, all votes 1, and (for the complexity
      metric) every delay exactly [U] — {!exact};
    - {e network-failure executions}: some delay exceeds [U] — see
      {!eventually_synchronous} (delays bounded only after a global
      stabilization time) and {!adversary} (full control, used to build
      the lower-bound witness executions of Lemmas 1, 3 and 5). *)

type info = {
  src : Pid.t;
  dst : Pid.t;
  layer : Trace.layer;
  sent_at : Sim_time.t;
  seq : int;  (** global send sequence number, for adversaries *)
}

type t

val name : t -> string

val bound : t -> Sim_time.t option
(** A static upper bound on the delays this model can produce, when one is
    known ([None] for {!adversary}). Used by {!Scenario.classify}. *)

val delay : t -> Rng.t -> info -> Sim_time.t
(** The delay assigned to this message; always clamped to [>= 1] tick by
    the engine (messages are never instantaneous between distinct
    processes). *)

val exact : u:Sim_time.t -> t
(** Every message takes exactly [u]: the canonical synchronous network of
    nice executions. *)

val jittered : u:Sim_time.t -> t
(** Uniform random delay in [\[1, u\]]: still a synchronous system (no
    delay exceeds [U]), exercising races that [exact] cannot. *)

val eventually_synchronous :
  u:Sim_time.t -> gst:Sim_time.t -> max_early_delay:Sim_time.t -> t
(** Messages sent before [gst] suffer an arbitrary (seeded-random) delay in
    [\[1, max_early_delay\]] — typically well beyond [u] — while messages
    sent at or after [gst] take at most [u]. This is the paper's
    eventually-synchronous system. *)

val adversary : name:string -> (info -> Sim_time.t) -> t
(** Full adversarial control: [fn info] is the delay of each message.
    Used to reconstruct the proofs' crafted executions. *)

val pp : Format.formatter -> t -> unit
