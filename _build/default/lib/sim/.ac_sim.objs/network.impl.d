lib/sim/network.ml: Format Pid Printf Rng Sim_time Trace
