lib/sim/scenario.ml: Array Format List Network Option Pid Printf Sim_time String Vote
