lib/sim/proto.ml: Format Pid Sim_time Vote
