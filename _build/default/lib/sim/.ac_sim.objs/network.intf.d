lib/sim/network.mli: Format Pid Rng Sim_time Trace
