lib/sim/report.ml: Array Format List Option Pid Printf Scenario Sim_time String Trace Vote
