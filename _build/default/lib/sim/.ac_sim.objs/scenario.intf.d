lib/sim/scenario.mli: Format Network Pid Sim_time Vote
