lib/sim/report.mli: Format Pid Scenario Sim_time Trace Vote
