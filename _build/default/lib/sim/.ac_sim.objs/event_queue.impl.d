lib/sim/event_queue.ml: Array Int Sim_time
