lib/sim/engine.ml: Array Event_queue Format List Network Pid Printf Proto Report Rng Scenario Sim_time Trace Vote
