lib/sim/engine.mli: Proto Report Scenario
