(** Execution scenarios: everything that determines a run.

    A scenario fixes the system size [n], the resilience parameter [f],
    the delay bound [u], every process's vote, the crash schedule, the
    network model and the RNG seed. Together with a protocol (and a
    consensus implementation, if the protocol uses one), a scenario
    determines an execution {e uniquely}. *)

(** How a process crashes. The paper's proofs need both flavours:
    - [Before t]: the process is dead from instant [t] on — it executes no
      handler at or after [t] ("crashes before sending any message that it
      is expected to send upon the message received at [t]");
    - [During_sends (t, k)]: the process executes its handlers at instant
      [t] but only its first [k] sends of that instant are transmitted; it
      is dead from the moment the budget is exhausted (and in any case
      after instant [t]) — "crashes while sending". *)
type crash = Before of Sim_time.t | During_sends of Sim_time.t * int

type t = {
  n : int;
  f : int;
  u : Sim_time.t;
  votes : Vote.t array;  (** [votes.(i)] is the vote of [Pid.of_index i]. *)
  crashes : (Pid.t * crash) list;  (** each process crashes at most once *)
  network : Network.t;
  seed : int;
  max_time : Sim_time.t;  (** safety stop for the engine *)
  deliveries_first : bool;
      (** Event priority at equal instants. [true] (the default) is the
          paper's appendix remark (b): "a message delivery event has a
          higher priority than a timeout event". [false] flips it — an
          ablation knob showing that remark (b) is load-bearing (the
          exact-delay protocols spuriously time out without it). *)
}

val crash_time : crash -> Sim_time.t

val make :
  ?u:Sim_time.t ->
  ?votes:Vote.t array ->
  ?crashes:(Pid.t * crash) list ->
  ?network:Network.t ->
  ?seed:int ->
  ?max_time:Sim_time.t ->
  ?deliveries_first:bool ->
  n:int ->
  f:int ->
  unit ->
  t
(** Defaults: all votes [Yes], no crash, {!Network.exact} with
    [u = Sim_time.default_u], seed 42, [max_time = 1000 * u].
    @raise Invalid_argument if [n < 2], [f < 1], [f > n - 1], or
    [Array.length votes <> n]. *)

val nice : ?u:Sim_time.t -> n:int -> f:int -> unit -> t
(** The paper's nice execution: failure-free, every process votes 1,
    every delay exactly [U]. *)

val with_no_votes : t -> Pid.t list -> t
(** Same scenario but the given processes vote 0. *)

val with_crashes : t -> (Pid.t * crash) list -> t
val with_network : t -> Network.t -> t
val with_seed : t -> int -> t

val classify : t -> [ `Failure_free | `Crash_failure | `Network_failure ]
(** The paper's execution classes. A scenario is [`Network_failure] when
    its network model can exceed [u] (anything except {!Network.exact} and
    {!Network.jittered} at bound [u]); otherwise [`Crash_failure] when
    some crash is scheduled; otherwise [`Failure_free]. Adversarial
    networks are conservatively classified as network-failure; use
    {!Spec.Classify} (in [ac_spec]) to classify a {e trace} exactly. *)

val is_nice : t -> bool
(** Failure-free, all votes 1. *)

val pp : Format.formatter -> t -> unit
