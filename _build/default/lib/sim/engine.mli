(** The simulation engine.

    [Make (P) (C)] interprets the pure automata of protocol [P], composed
    with one co-hosted instance of consensus [C] per process, over a
    {!Scenario}. The engine owns all effects: message transmission through
    the network model, timers, crash injection, decision recording and
    trace building.

    Event ordering at equal simulated time (appendix remark (b) of the
    paper, extended to crashes): crashes, then proposals, then message
    deliveries, then timeouts; ties broken by scheduling order. *)

module Make (P : Proto.PROTOCOL) (C : Proto.CONSENSUS) : sig
  val run : Scenario.t -> Report.t
  (** Execute the scenario to quiescence (or [Scenario.max_time]).
      Deterministic: equal scenarios produce equal reports. *)
end

val guard_fuel : int
(** Maximum guard firings per handler invocation before the engine raises
    [Failure] — a protocol whose guard does not falsify its own predicate
    is broken. *)
