type outcome = Quiescent of Sim_time.t | Max_time_reached

type t = {
  scenario : Scenario.t;
  protocol : string;
  consensus : string option;
  trace : Trace.t;
  decisions : (Sim_time.t * Vote.decision) option array;
  crashed_at : Sim_time.t option array;
  outcome : outcome;
}

let decision_of t p = t.decisions.(Pid.index p)

let decided_values t =
  Array.to_list t.decisions |> List.filter_map (Option.map snd)

let correct_pids t =
  Pid.all ~n:t.scenario.Scenario.n
  |> List.filter (fun p -> t.crashed_at.(Pid.index p) = None)

let all_correct_decided t =
  List.for_all (fun p -> decision_of t p <> None) (correct_pids t)

let count_layer t layer =
  List.length (Trace.network_sends ~layer t.trace)

let commit_messages t = count_layer t Trace.Commit_layer
let consensus_messages t = count_layer t Trace.Consensus_layer
let total_messages t = commit_messages t + consensus_messages t

let last_decision_time t =
  Array.fold_left
    (fun acc d ->
      match d with
      | None -> acc
      | Some (at, _) -> (
          match acc with None -> Some at | Some m -> Some (max m at)))
    None t.decisions

let delays_to_last_decision t =
  Option.map
    (fun at -> Sim_time.delays ~u:t.scenario.Scenario.u at)
    (last_decision_time t)

let consensus_invoked t =
  List.exists
    (function
      | Trace.Note { label; _ } -> String.equal label "consensus-propose"
      | Trace.Propose _ | Trace.Send _ | Trace.Deliver _ | Trace.Discard _
      | Trace.Timeout _ | Trace.Guard _ | Trace.Decide _ | Trace.Crash _ ->
          false)
    (Trace.entries t.trace)

let pp_summary ppf t =
  let pp_decision ppf = function
    | None -> Format.pp_print_string ppf "-"
    | Some (at, d) -> Format.fprintf ppf "%a@%d" Vote.pp_decision d at
  in
  Format.fprintf ppf "@[<v>protocol %s (%s)@,%a@,outcome: %s@,"
    t.protocol
    (Option.value t.consensus ~default:"no consensus")
    Scenario.pp t.scenario
    (match t.outcome with
    | Quiescent at -> Printf.sprintf "quiescent at %d" at
    | Max_time_reached -> "max-time reached");
  Array.iteri
    (fun i d ->
      Format.fprintf ppf "%a: %a%s@," Pid.pp (Pid.of_index i) pp_decision d
        (match t.crashed_at.(i) with
        | None -> ""
        | Some at -> Printf.sprintf " (crashed@%d)" at))
    t.decisions;
  Format.fprintf ppf "messages: %d commit + %d consensus@]" (commit_messages t)
    (consensus_messages t)
