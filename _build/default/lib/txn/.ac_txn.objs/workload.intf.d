lib/txn/workload.mli: Format Txn_system
