lib/txn/txn_system.mli: Format Kv_store Network Pid Registry Report Scenario Txn Vote
