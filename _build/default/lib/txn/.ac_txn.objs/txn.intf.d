lib/txn/txn.mli: Format Kv_store
