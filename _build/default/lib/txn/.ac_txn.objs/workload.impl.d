lib/txn/workload.ml: Float Format List Pid Printf Report Rng Scenario Sim_time Txn Txn_system
