lib/txn/kv_store.ml: Format Hashtbl List
