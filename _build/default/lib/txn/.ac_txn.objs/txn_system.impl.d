lib/txn/txn_system.ml: Array Char Format Kv_store List Pid Printf Registry Report Scenario String Txn Vote
