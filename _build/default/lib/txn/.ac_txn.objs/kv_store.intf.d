lib/txn/kv_store.mli: Format
