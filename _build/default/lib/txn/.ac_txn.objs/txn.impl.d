lib/txn/txn.ml: Format Kv_store List Printf String
