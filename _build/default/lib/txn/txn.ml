type t = {
  id : string;
  reads : (string * int) list;
  writes : (string * Kv_store.value) list;
}

let no_duplicates what keys =
  if List.length (List.sort_uniq compare keys) <> List.length keys then
    invalid_arg (Printf.sprintf "Txn.make: duplicate %s key" what)

let make ~id ?(reads = []) ~writes () =
  if id = "" then invalid_arg "Txn.make: empty id";
  no_duplicates "read" (List.map fst reads);
  no_duplicates "write" (List.map fst writes);
  { id; reads; writes }

let keys t =
  List.sort_uniq compare (List.map fst t.reads @ List.map fst t.writes)

let pp ppf t =
  Format.fprintf ppf "@[<h>%s: reads [%s] writes [%s]@]" t.id
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s@v%d" k v) t.reads))
    (String.concat ", "
       (List.map (fun (k, v) -> Printf.sprintf "%s:=%S" k v) t.writes))
