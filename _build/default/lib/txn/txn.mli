(** Distributed transactions: a read set with expected versions (for
    optimistic validation) and a write set, spanning keys placed on
    several database nodes. *)

type t = {
  id : string;
  reads : (string * int) list;
      (** key, version observed when the transaction executed *)
  writes : (string * Kv_store.value) list;
}

val make :
  id:string ->
  ?reads:(string * int) list ->
  writes:(string * Kv_store.value) list ->
  unit ->
  t
(** @raise Invalid_argument on an empty id, duplicate read keys or
    duplicate write keys. *)

val keys : t -> string list
(** Every key the transaction touches, deduplicated, sorted. *)

val pp : Format.formatter -> t -> unit
