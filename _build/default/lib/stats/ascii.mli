(** Minimal ASCII table rendering for the reproduction harness. *)

type t

val create : header:string list -> t
val add_row : t -> string list -> unit
(** @raise Invalid_argument when the row width differs from the header. *)

val add_separator : t -> unit
val render : t -> string
(** Fixed-width layout with column separators, e.g.:
    {v
    | protocol | messages | delays |
    |----------+----------+--------|
    | inbac    |       20 |      2 |
    v} *)

val print : t -> unit
