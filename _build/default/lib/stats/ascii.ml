type row = Cells of string list | Separator

type t = { header : string list; width : int; mutable rev_rows : row list }

let create ~header = { header; width = List.length header; rev_rows = [] }

let add_row t cells =
  if List.length cells <> t.width then
    invalid_arg "Ascii.add_row: row width differs from header";
  t.rev_rows <- Cells cells :: t.rev_rows

let add_separator t = t.rev_rows <- Separator :: t.rev_rows

(* Display width in characters: count UTF-8 code points, not bytes, so
   that "∅" does not distort the layout. *)
let display_width s =
  let n = ref 0 in
  String.iter (fun c -> if Char.code c land 0xC0 <> 0x80 then incr n) s;
  !n

let render t =
  let rows = List.rev t.rev_rows in
  let widths = Array.of_list (List.map display_width t.header) in
  List.iter
    (function
      | Separator -> ()
      | Cells cells ->
          List.iteri
            (fun i c -> widths.(i) <- max widths.(i) (display_width c))
            cells)
    rows;
  let pad i s =
    let missing = widths.(i) - display_width s in
    s ^ String.make (max 0 missing) ' '
  in
  let buf = Buffer.create 1024 in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad i c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let emit_separator () =
    Buffer.add_char buf '|';
    Array.iteri
      (fun i w ->
        if i > 0 then Buffer.add_char buf '+';
        Buffer.add_string buf (String.make (w + 2) '-'))
      widths;
    Buffer.add_string buf "|\n"
  in
  emit_cells t.header;
  emit_separator ();
  List.iter
    (function Separator -> emit_separator () | Cells cells -> emit_cells cells)
    rows;
  Buffer.contents buf

let print t = print_string (render t)
