let dot =
  {|digraph inbac_process {
  rankdir=LR;
  node [shape=box, fontname="Helvetica"];
  start    [label="propose v\n(send [V,v] to backups)"];
  phase0   [label="phase 0\ncollect [V] as backup"];
  phase1   [label="phase 1\nsend [C] acks, collect [C]"];
  phase2   [label="phase 2\nmerge collections"];
  direct   [label="decide AND(votes)\n(direct, 2 delays)", style=bold];
  propose  [label="propose to iuc\n(AND if complete, else 0)"];
  wait     [label="wait: send [HELP]\nto P_{f+1}..P_n"];
  cons     [label="decide iuc outcome", style=bold];
  start  -> phase0 [label="rank <= f+1"];
  start  -> phase1 [label="rank > f+1"];
  phase0 -> phase1 [label="timeout U"];
  phase1 -> phase2 [label="timeout 2U"];
  phase2 -> direct  [label="f complete acks"];
  phase2 -> propose [label="some acks (cnt >= 1)\nor rank <= f"];
  phase2 -> wait    [label="no ack, rank > f"];
  wait   -> direct  [label="late acks complete"];
  wait   -> propose [label="cnt + cnt_help >= n - f"];
  propose -> cons   [label="iuc decides"];
}
|}

let transitions (r : Report.t) =
  let per_pid = Hashtbl.create 8 in
  List.iter
    (fun (at, pid, label, value) ->
      let entry =
        match label with
        | "phase" -> Some ("phase " ^ value)
        | "decide-path" -> Some ("decide via " ^ value)
        | _ -> None
      in
      match entry with
      | None -> ()
      | Some e ->
          let prev = Option.value (Hashtbl.find_opt per_pid pid) ~default:[] in
          Hashtbl.replace per_pid pid ((at, e) :: prev))
    (Trace.notes r.trace);
  Pid.all ~n:r.scenario.Scenario.n
  |> List.filter_map (fun pid ->
         Hashtbl.find_opt per_pid pid
         |> Option.map (fun log -> (pid, List.rev log)))

let render_log title report =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf title;
  Buffer.add_char buf '\n';
  List.iter
    (fun (pid, log) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s\n" (Pid.to_string pid)
           (String.concat " -> "
              (List.map
                 (fun (at, e) -> Printf.sprintf "%s@%d" e at)
                 log))))
    (transitions report);
  Buffer.contents buf

let render ?(n = 5) ?(f = 2) () =
  let run = (Registry.find_exn "inbac").Registry.run in
  let nice = run (Scenario.nice ~n ~f ()) in
  let crash =
    run
      (Scenario.with_crashes (Scenario.nice ~n ~f ())
         [ (Pid.of_rank 1, Scenario.Before Sim_time.default_u) ])
  in
  let slow = run (Witness.inbac_slow_backup ~n ~f) in
  String.concat "\n"
    [
      "Figure 1 - INBAC state transitions\n";
      dot;
      render_log "Observed transitions, nice execution:" nice;
      render_log "Observed transitions, P1 crashes at U:" crash;
      render_log "Observed transitions, P1's acknowledgements late:" slow;
    ]
