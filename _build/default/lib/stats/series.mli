(** Complexity series — the "figures" of the reproduction: messages and
    delays as functions of [n] (at fixed [f]) or of [f] (at fixed [n]),
    per protocol, measured on nice executions. Rendered as aligned tables
    and as CSV for external plotting. *)

type point = { x : int; messages : int; delays : float }
type series = { protocol : string; points : point list }

val over_n : protocols:string list -> f:int -> ns:int list -> series list
(** Skips (n, f) combinations with [f > n-1]. *)

val over_f : protocols:string list -> n:int -> fs:int list -> series list

val crossover_f1 : ns:int list -> (int * int * int) list
(** The paper's f = 1 comparison: [(n, inbac messages, 2pc messages)] —
    INBAC pays exactly 2 extra messages over 2PC at every n. *)

val to_csv : x_label:string -> series list -> string
(** One line per (protocol, x): [protocol,x,messages,delays]. *)

val render_over_n : protocols:string list -> f:int -> ns:int list -> string
val render_over_f : protocols:string list -> n:int -> fs:int list -> string
