(** Reproduction of the paper's Figure 1: the state transitions of a
    process in INBAC, both as a static diagram (Graphviz DOT) and as
    observed transition logs extracted from traced executions (a nice
    run, a crash run, and a slow-network run). *)

val dot : string
(** The state machine: phase 0 → 1 → 2, then direct decision, consensus
    proposal, or the wait/help path, and the consensus decision. *)

val transitions : Report.t -> (Pid.t * (Sim_time.t * string) list) list
(** Per process, the sequence of phase transitions and decision-path
    notes, in order. *)

val render : ?n:int -> ?f:int -> unit -> string
(** DOT plus the three observed transition logs (defaults n = 5, f = 2). *)
