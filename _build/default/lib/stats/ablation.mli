(** Ablations of the design decisions DESIGN.md calls out: each function
    runs the experiment and reports what changes, so the benches can show
    the decision is load-bearing (or harmless where it should be). *)

type flip_row = {
  protocol : string;
  nbac_with_priority : bool;
      (** nice run solves NBAC under the paper's delivery-before-timeout
          rule (must be true) *)
  nbac_flipped : bool;  (** ... with timeouts processed first *)
}

val priority_flip : ?n:int -> ?f:int -> unit -> flip_row list
(** Appendix remark (b) ablation: the exact-delay protocols whose
    messages land exactly on timer boundaries (INBAC, the chain protocols,
    1NBAC...) spuriously time out and lose validity or termination when
    timeouts preempt deliveries; event-driven protocols (2PC) survive. *)

type consensus_row = {
  scenario_label : string;
  paxos_decisions : Vote.decision list;
  floodset_decisions : Vote.decision list;
  same_outcome : bool;
  paxos_cons_messages : int;
  floodset_cons_messages : int;
}

val consensus_choice : ?n:int -> ?f:int -> unit -> consensus_row list
(** Theorem 6's modularity: INBAC's decisions are identical under Paxos
    and FloodSet consensus on the same crash scenarios; only the cost of
    the fallback differs. *)

type latency_row = {
  variant : string;
  nice_messages : int;
  nice_delays : float;
  abort_delays : float;  (** failure-free execution with one 0 vote *)
}

val fast_abort : ?n:int -> ?f:int -> unit -> latency_row list
(** The Section 5.2 optimization: identical nice executions, aborts one
    delay faster. *)

val normalization : ?n:int -> unit -> latency_row list
(** The Section 6 normalization quantified: spontaneous 2PC vs classic
    coordinator-initiated 2PC (one delay and [n-1] messages apart). *)

val render : ?n:int -> ?f:int -> unit -> string
