(** The robustness matrix: which NBAC properties each protocol actually
    kept, per execution class, over a battery of generated scenarios —
    checked against the cell the protocol claims (Table 1 captions /
    Section 6).

    Observed properties are the conjunction over all runs of a class: a
    property is "observed" only if no run of the battery violated it.
    Passing means claimed ⊆ observed (an adversary battery can only
    refute, never prove). *)

type row = {
  protocol : string;
  claimed : Props.cell;
  observed_ff : Props.t;  (** failure-free battery; must be AVT *)
  observed_cf : Props.t;
  observed_nf : Props.t;
  runs : int;
  ok : bool;
}

val batteries :
  n:int -> f:int -> seeds:int list ->
  (Classify.class_ * Scenario.t) list
(** The generated scenarios, tagged with their intended class. *)

val matrix : ?n:int -> ?f:int -> ?seeds:int list -> unit -> row list
(** Defaults: n = 5, f = 2 (a correct majority survives, as the
    consensus-based protocols' termination claims require), seeds
    [1; 2; 3]. *)

val render : ?n:int -> ?f:int -> ?seeds:int list -> unit -> string
val all_ok : ?n:int -> ?f:int -> ?seeds:int list -> unit -> bool
