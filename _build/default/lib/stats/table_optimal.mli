(** Reproduction of the paper's Table 2 (delay-optimal protocols) and
    Table 3 (message-optimal protocols): one row per protocol and (n, f)
    pair, measured against the closed form. *)

val delay_optimal_protocols : (string * Props.cell) list
val message_optimal_protocols : (string * Props.cell) list

val render_delay_optimal : pairs:(int * int) list -> string
val render_message_optimal : pairs:(int * int) list -> string

val all_ok : pairs:(int * int) list -> bool
(** Every protocol of both tables achieves its closed form over the
    sweep. *)
