type row = {
  protocol : string;
  nice_messages : int;
  nice_delays : float;
  nbac_gap : string;
  gap_demonstrated : bool;
  own_contract_holds : bool;
}


(* calvin: a 0-voter crashing before its broadcast leaves the others
   committing against a 0 proposal — validity (and uniform agreement with
   the crashed process's abort) break in a crash-failure execution. *)
let calvin_row ~n =
  let runner = Registry.find_exn "calvin-commit" in
  let nice = Metrics.of_nice (runner.Registry.run (Scenario.nice ~n ~f:1 ())) in
  let gap_scenario =
    Scenario.with_crashes
      (Scenario.with_no_votes (Scenario.nice ~n ~f:1 ()) [ Pid.of_rank 2 ])
      [ (Pid.of_rank 2, Scenario.During_sends (0, 0)) ]
  in
  let gap_report = runner.Registry.run gap_scenario in
  let v = Check.run gap_report in
  let survivors_commit =
    List.exists
      (Vote.decision_equal Vote.commit)
      (Report.decided_values gap_report)
  in
  (* its own contract: NBAC in failure-free executions, termination
     everywhere *)
  let ff =
    Check.run
      (runner.Registry.run
         (Scenario.with_no_votes (Scenario.nice ~n ~f:1 ()) [ Pid.of_rank 3 ]))
  in
  {
    protocol = "calvin-commit";
    nice_messages = nice.Metrics.messages;
    nice_delays = nice.Metrics.delays;
    nbac_gap = "commit-validity under a crashed 0-voter";
    gap_demonstrated = survivors_commit && not (Check.validity v);
    own_contract_holds = Check.solves_nbac ff && v.Check.termination;
  }

(* majority-commit: commits over a minority of 0 votes in a failure-free
   execution — NBAC's commit-validity is out by design. Its own contract:
   decide 1 iff a majority voted 1, agreement and termination in
   failure-free executions. *)
let majority_row ~n =
  let runner = Registry.find_exn "majority-commit" in
  let nice = Metrics.of_nice (runner.Registry.run (Scenario.nice ~n ~f:1 ())) in
  let one_no =
    Scenario.with_no_votes (Scenario.nice ~n ~f:1 ()) [ Pid.of_rank 2 ]
  in
  let gap_report = runner.Registry.run one_no in
  let v = Check.run gap_report in
  let committed_over_a_no =
    List.for_all
      (Vote.decision_equal Vote.commit)
      (Report.decided_values gap_report)
  in
  let majority_no =
    Scenario.with_no_votes (Scenario.nice ~n ~f:1 ())
      (List.filteri (fun i _ -> i <= n / 2) (Pid.all ~n))
  in
  let no_report = runner.Registry.run majority_no in
  let own_contract_holds =
    committed_over_a_no && v.Check.agreement && v.Check.termination
    && List.for_all
         (Vote.decision_equal Vote.abort)
         (Report.decided_values no_report)
  in
  {
    protocol = "majority-commit";
    nice_messages = nice.Metrics.messages;
    nice_delays = nice.Metrics.delays;
    nbac_gap = "commit-validity even failure-free (majority overrides a 0)";
    gap_demonstrated = committed_over_a_no && not (Check.validity v);
    own_contract_holds;
  }

let rows ?(n = 5) () = [ calvin_row ~n; majority_row ~n ]

let render ?(n = 5) () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Section 6.3 - low-latency commit with weak semantics\n\
     (each solves a weaker problem than NBAC; the gap is demonstrated by a\n\
     concrete execution and the protocol's own weaker contract is checked)\n\n";
  let t =
    Ascii.create
      ~header:
        [
          "protocol"; "nice msgs"; "nice delays"; "NBAC property given up";
          "gap shown"; "own contract";
        ]
  in
  List.iter
    (fun r ->
      Ascii.add_row t
        [
          r.protocol;
          string_of_int r.nice_messages;
          Printf.sprintf "%.0f" r.nice_delays;
          r.nbac_gap;
          (if r.gap_demonstrated then "yes" else "NO");
          (if r.own_contract_holds then "holds" else "BROKEN");
        ])
    (rows ~n ());
  Buffer.add_string buf (Ascii.render t);

  Buffer.contents buf

let all_ok ?n () =
  List.for_all
    (fun r -> r.gap_demonstrated && r.own_contract_holds)
    (rows ?n ())
