let column_width = 6

let col i = (i * column_width) + (column_width / 2)

(* A canvas line with every process's lifeline drawn, to be overwritten. *)
let lifeline n crashed =
  let b = Bytes.make (n * column_width) ' ' in
  for i = 0 to n - 1 do
    Bytes.set b (col i) (if crashed.(i) then ' ' else '|')
  done;
  b

let draw_arrow b ~from_col ~to_col =
  let lo = min from_col to_col and hi = max from_col to_col in
  for x = lo to hi do
    Bytes.set b x '-'
  done;
  Bytes.set b from_col 'o';
  Bytes.set b to_col (if to_col > from_col then '>' else '<')

let mark b ~at c = Bytes.set b at c

let msc (report : Report.t) =
  let n = report.Report.scenario.Scenario.n in
  let crashed = Array.make n false in
  let buf = Buffer.create 4096 in
  (* header *)
  let header = Bytes.make (n * column_width) ' ' in
  List.iter
    (fun pid ->
      let name = Pid.to_string pid in
      let start = col (Pid.index pid) - (String.length name / 2) in
      String.iteri
        (fun k c ->
          let x = start + k in
          if x >= 0 && x < Bytes.length header then Bytes.set header x c)
        name)
    (Pid.all ~n);
  Buffer.add_string buf (Bytes.to_string header);
  Buffer.add_char buf '\n';
  let emit line annotation =
    Buffer.add_string buf (Bytes.to_string line);
    Buffer.add_string buf "   ";
    Buffer.add_string buf annotation;
    Buffer.add_char buf '\n'
  in
  let last_time = ref (-1) in
  let time_prefix at =
    if at <> !last_time then begin
      last_time := at;
      Printf.sprintf "t=%-7d " at
    end
    else "          "
  in
  List.iter
    (fun entry ->
      let line = lifeline n crashed in
      match (entry : Trace.entry) with
      | Trace.Deliver { at; src; dst; tag; sent_at; layer } ->
          if not (Pid.equal src dst) then begin
            draw_arrow line ~from_col:(col (Pid.index src))
              ~to_col:(col (Pid.index dst));
            emit line
              (Printf.sprintf "%s%s  %s -> %s (sent %d%s)" (time_prefix at) tag
                 (Pid.to_string src) (Pid.to_string dst) sent_at
                 (match layer with
                 | Trace.Commit_layer -> ""
                 | Trace.Consensus_layer -> ", consensus"))
          end
      | Trace.Decide { at; pid; decision } ->
          mark line ~at:(col (Pid.index pid)) 'D';
          emit line
            (Printf.sprintf "%s%s decides %s" (time_prefix at)
               (Pid.to_string pid)
               (Format.asprintf "%a" Vote.pp_decision decision))
      | Trace.Crash { at; pid } ->
          mark line ~at:(col (Pid.index pid)) 'X';
          crashed.(Pid.index pid) <- true;
          emit line (Printf.sprintf "%s%s crashes" (time_prefix at) (Pid.to_string pid))
      | Trace.Propose { at; pid; vote } ->
          mark line ~at:(col (Pid.index pid)) '*';
          emit line
            (Printf.sprintf "%s%s proposes %d" (time_prefix at)
               (Pid.to_string pid) (Vote.to_int vote))
      | Trace.Discard { at; dst; tag } ->
          mark line ~at:(col (Pid.index dst)) '#';
          emit line
            (Printf.sprintf "%s%s discarded at crashed %s" (time_prefix at) tag
               (Pid.to_string dst))
      | Trace.Timeout _ | Trace.Guard _ | Trace.Send _ | Trace.Note _ -> ())
    (Trace.entries report.Report.trace);
  Buffer.contents buf

let dot (report : Report.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph execution {\n  rankdir=TB;\n  node [shape=point];\n";
  let node pid at = Printf.sprintf "\"%s@%d\"" (Pid.to_string pid) at in
  let seen = Hashtbl.create 64 in
  let declare pid at ?label ?(shape = "point") () =
    let key = (pid, at) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      Buffer.add_string buf
        (Printf.sprintf "  %s [shape=%s%s];\n" (node pid at) shape
           (match label with
           | Some l -> Printf.sprintf ", label=\"%s\", fontsize=9" l
           | None -> ""))
    end
  in
  (* timeline edges per process *)
  let times = Hashtbl.create 16 in
  let touch pid at =
    let prev = Option.value (Hashtbl.find_opt times pid) ~default:[] in
    Hashtbl.replace times pid (at :: prev)
  in
  (* styled nodes (decisions, crashes) are declared first so that a
     message endpoint at the same instant cannot downgrade them *)
  List.iter
    (fun entry ->
      match (entry : Trace.entry) with
      | Trace.Decide { at; pid; decision } ->
          declare pid at
            ~label:
              (Printf.sprintf "%s %s" (Pid.to_string pid)
                 (Format.asprintf "%a" Vote.pp_decision decision))
            ~shape:"box" ();
          touch pid at
      | Trace.Crash { at; pid } ->
          declare pid at ~label:(Pid.to_string pid ^ " crash") ~shape:"octagon" ();
          touch pid at
      | Trace.Propose _ | Trace.Send _ | Trace.Deliver _ | Trace.Discard _
      | Trace.Timeout _ | Trace.Guard _ | Trace.Note _ ->
          ())
    (Trace.entries report.Report.trace);
  List.iter
    (fun entry ->
      match (entry : Trace.entry) with
      | Trace.Send { at; src; dst; tag; deliver_at; layer } ->
          if not (Pid.equal src dst) then begin
            declare src at ();
            declare dst deliver_at ();
            touch src at;
            touch dst deliver_at;
            Buffer.add_string buf
              (Printf.sprintf
                 "  %s -> %s [label=\"%s\", fontsize=8%s];\n"
                 (node src at) (node dst deliver_at) (String.escaped tag)
                 (match layer with
                 | Trace.Commit_layer -> ""
                 | Trace.Consensus_layer -> ", style=dashed"))
          end
      | Trace.Propose _ | Trace.Deliver _ | Trace.Discard _ | Trace.Timeout _
      | Trace.Guard _ | Trace.Decide _ | Trace.Crash _ | Trace.Note _ ->
          ())
    (Trace.entries report.Report.trace);
  Hashtbl.iter
    (fun pid ats ->
      let sorted = List.sort_uniq compare ats in
      let rec chain = function
        | a :: (b :: _ as rest) ->
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s [style=dotted, arrowhead=none];\n"
                 (node pid a) (node pid b));
            chain rest
        | [ _ ] | [] -> ()
      in
      chain sorted)
    times;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
