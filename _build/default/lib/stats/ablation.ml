type flip_row = {
  protocol : string;
  nbac_with_priority : bool;
  nbac_flipped : bool;
}

let flip_protocols =
  [ "inbac"; "1nbac"; "(n-1+f)nbac"; "(2n-2)nbac"; "0nbac"; "2pc" ]

let priority_flip ?(n = 5) ?(f = 2) () =
  List.map
    (fun protocol ->
      let runner = Registry.find_exn protocol in
      let nbac_of deliveries_first =
        let scenario = Scenario.make ~n ~f ~deliveries_first () in
        Check.solves_nbac (Check.run (runner.Registry.run scenario))
      in
      {
        protocol;
        nbac_with_priority = nbac_of true;
        nbac_flipped = nbac_of false;
      })
    flip_protocols

type consensus_row = {
  scenario_label : string;
  paxos_decisions : Vote.decision list;
  floodset_decisions : Vote.decision list;
  same_outcome : bool;
  paxos_cons_messages : int;
  floodset_cons_messages : int;
}

let consensus_choice ?(n = 5) ?(f = 2) () =
  let u = Sim_time.default_u in
  let runner = Registry.find_exn "inbac" in
  let scenarios =
    [
      ( "P1 crashes at U",
        Scenario.with_crashes (Scenario.nice ~n ~f ())
          [ (Pid.of_rank 1, Scenario.Before u) ] );
      ( "P1, P2 crash at U (all low-rank backups)",
        Scenario.with_crashes (Scenario.nice ~n ~f ())
          [
            (Pid.of_rank 1, Scenario.Before u);
            (Pid.of_rank 2, Scenario.Before u);
          ] );
      ( "P3 votes 0, P1 crashes at 0",
        Scenario.with_crashes
          (Scenario.with_no_votes (Scenario.nice ~n ~f ()) [ Pid.of_rank 3 ])
          [ (Pid.of_rank 1, Scenario.Before 0) ] );
    ]
  in
  List.map
    (fun (scenario_label, scenario) ->
      let paxos = runner.Registry.run ~consensus:Registry.Paxos scenario in
      let floodset = runner.Registry.run ~consensus:Registry.Floodset scenario in
      let paxos_decisions = Report.decided_values paxos in
      let floodset_decisions = Report.decided_values floodset in
      {
        scenario_label;
        paxos_decisions;
        floodset_decisions;
        same_outcome =
          (match (paxos_decisions, floodset_decisions) with
          | a :: _, b :: _ -> Vote.decision_equal a b
          | [], [] -> true
          | _, _ -> false);
        paxos_cons_messages = Report.consensus_messages paxos;
        floodset_cons_messages = Report.consensus_messages floodset;
      })
    scenarios

type latency_row = {
  variant : string;
  nice_messages : int;
  nice_delays : float;
  abort_delays : float;
}

let latency_of protocol ~n ~f =
  let runner = Registry.find_exn protocol in
  let nice = Metrics.of_nice (runner.Registry.run (Scenario.nice ~n ~f ())) in
  let abort_scenario =
    Scenario.with_no_votes (Scenario.nice ~n ~f ()) [ Pid.of_rank ((n / 2) + 1) ]
  in
  let abort = Metrics.of_report (runner.Registry.run abort_scenario) in
  {
    variant = protocol;
    nice_messages = nice.Metrics.messages;
    nice_delays = nice.Metrics.delays;
    abort_delays = abort.Metrics.delays;
  }

let fast_abort ?(n = 5) ?(f = 2) () =
  [ latency_of "inbac" ~n ~f; latency_of "inbac-fast-abort" ~n ~f ]

let normalization ?(n = 5) () =
  [ latency_of "2pc" ~n ~f:1; latency_of "2pc-classic" ~n ~f:1 ]

let render ?(n = 5) ?(f = 2) () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Ablation 1 - appendix remark (b): deliveries must preempt timeouts\n\
     (nice executions; 'flipped' processes timeouts first)\n\n";
  let t = Ascii.create ~header:[ "protocol"; "NBAC (paper rule)"; "NBAC (flipped)" ] in
  List.iter
    (fun r ->
      Ascii.add_row t
        [
          r.protocol;
          (if r.nbac_with_priority then "yes" else "NO");
          (if r.nbac_flipped then "yes" else "no — remark (b) is load-bearing");
        ])
    (priority_flip ~n ~f ());
  Buffer.add_string buf (Ascii.render t);
  Buffer.add_string buf
    "\nAblation 2 - Theorem 6 modularity: INBAC under Paxos vs FloodSet\n\n";
  let t =
    Ascii.create
      ~header:
        [ "crash scenario"; "same outcome"; "paxos cons msgs"; "floodset cons msgs" ]
  in
  List.iter
    (fun r ->
      Ascii.add_row t
        [
          r.scenario_label;
          (if r.same_outcome then "yes" else "NO");
          string_of_int r.paxos_cons_messages;
          string_of_int r.floodset_cons_messages;
        ])
    (consensus_choice ~n ~f ());
  Buffer.add_string buf (Ascii.render t);
  let latency_table title rows =
    Buffer.add_string buf title;
    let t =
      Ascii.create
        ~header:[ "variant"; "nice msgs"; "nice delays"; "failure-free abort delays" ]
    in
    List.iter
      (fun r ->
        Ascii.add_row t
          [
            r.variant;
            string_of_int r.nice_messages;
            Printf.sprintf "%.0f" r.nice_delays;
            Printf.sprintf "%.0f" r.abort_delays;
          ])
      rows;
    Buffer.add_string buf (Ascii.render t)
  in
  latency_table
    "\nAblation 3 - the Section 5.2 fast-abort optimization\n\n"
    (fast_abort ~n ~f ());
  latency_table
    "\nAblation 4 - the Section 6 normalization (spontaneous vs classic 2PC)\n\n"
    (normalization ~n ());
  Buffer.contents buf
