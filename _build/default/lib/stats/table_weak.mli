(** Reproduction of the paper's Section 6.3 discussion: low-latency commit
    protocols with weak semantics "solve different (and weaker) problems
    than classical atomic commit". For each such baseline we measure its
    nice-execution complexity, demonstrate the NBAC property it gives up
    with a concrete execution, and check the weaker contract it does
    offer. *)

type row = {
  protocol : string;
  nice_messages : int;
  nice_delays : float;
  nbac_gap : string;  (** which property breaks, and when *)
  gap_demonstrated : bool;  (** the violating execution was observed *)
  own_contract_holds : bool;
}

val rows : ?n:int -> unit -> row list
val render : ?n:int -> unit -> string
val all_ok : ?n:int -> unit -> bool
(** Every gap demonstrated, every weaker contract intact. *)
