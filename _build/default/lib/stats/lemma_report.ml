let u = Sim_time.default_u

let render_inbac ?(n = 5) ?(f = 2) () =
  let report = (Registry.find_exn "inbac").Registry.run (Scenario.nice ~n ~f ()) in
  let reach = Reach.of_report report in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "Lemmas 1 and 5 on INBAC's nice execution (n=%d, f=%d):\n\
        every process must reach >= f processes by t2 = U (backups) and\n\
        complete >= f acknowledgement round trips by its decision at 2U.\n\n"
       n f);
  let table =
    Ascii.create
      ~header:
        [ "process"; "reached by U (Lemma 1)"; "round trips by 2U (Lemma 5)" ]
  in
  List.iter
    (fun p ->
      let backups = Reach.reached_set reach ~src:p ~at:u in
      let theta = Reach.acknowledgers reach ~src:p ~at:(2 * u) in
      let names pids = String.concat "," (List.map Pid.to_string pids) in
      Ascii.add_row table
        [
          Pid.to_string p;
          Printf.sprintf "%d [%s]" (List.length backups) (names backups);
          Printf.sprintf "%d [%s]" (List.length theta) (names theta);
        ])
    (Pid.all ~n);
  Buffer.add_string buf (Ascii.render table);
  Buffer.contents buf

let render_phases ?(n = 5) ?(f = 2) ~protocols () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Section 6.1 phase profile: alternating send/receive phases before the\n\
     decision (synchronous NBAC needs two send phases and one receive phase\n\
     before any process decides; protocols that give up termination get away\n\
     with less).\n\n";
  let table =
    Ascii.create ~header:[ "protocol"; "process"; "phases before deciding" ]
  in
  List.iter
    (fun protocol ->
      let report =
        (Registry.find_exn protocol).Registry.run (Scenario.nice ~n ~f ())
      in
      List.iter
        (fun p ->
          let phases = Phases.of_report report p in
          if phases <> [] then
            Ascii.add_row table
              [
                protocol;
                Pid.to_string p;
                Format.asprintf "%a" Phases.pp phases;
              ])
        [ Pid.of_rank 1; Pid.of_rank n ];
      Ascii.add_separator table)
    protocols;
  Buffer.add_string buf (Ascii.render table);
  Buffer.contents buf

let render ?n ?f () =
  render_inbac ?n ?f ()
  ^ "\n"
  ^ render_phases ?n ?f
      ~protocols:[ "1nbac"; "avnbac-delay"; "inbac"; "2pc"; "(n-1+f)nbac" ]
      ()
