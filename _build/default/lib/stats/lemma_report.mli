(** The lower-bound lemmas, observed: renders, for nice executions of the
    implemented protocols, the reachability structure the proofs of
    Lemmas 1, 3, 5 count (backups reached by [t2], acknowledgement round
    trips by decision time, who-reaches-the-deciders) and the Section 6.1
    send/receive phase profile. *)

val render_inbac : ?n:int -> ?f:int -> unit -> string
(** Lemma 1 and Lemma 5 structure of INBAC's nice execution, per
    process. *)

val render_phases : ?n:int -> ?f:int -> protocols:string list -> unit -> string
(** Phase profile per protocol (first and last deciding process). *)

val render : ?n:int -> ?f:int -> unit -> string
