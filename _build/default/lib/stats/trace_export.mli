(** Trace exporters: render an execution as an ASCII message-sequence
    chart (one column per process, time flowing down) or as a Graphviz
    space-time diagram. Wired into [actable run --msc / --dot]. *)

val msc : Report.t -> string
(** One row per event:
    {v
      P1    P2    P3
      o----------->    [V,1]   P1 -> P3  (sent 0, recv 1000)
      |     C      |           P2 decides commit @2000
      |     |      X           P3 crashes
    v}
    Deliveries draw the arrow (send instants appear in the annotation);
    decisions, crashes, timeouts and consensus notes are annotated rows. *)

val dot : Report.t -> string
(** A Graphviz digraph: per-process timelines of event nodes, message
    edges across them (consensus-layer edges dashed). Render with
    [dot -Tsvg]. *)
