lib/stats/figure_one.mli: Pid Report Sim_time
