lib/stats/measure.mli: Metrics Registry
