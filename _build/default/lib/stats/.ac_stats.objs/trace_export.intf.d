lib/stats/trace_export.mli: Report
