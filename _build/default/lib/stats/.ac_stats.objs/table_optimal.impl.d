lib/stats/table_optimal.ml: Ascii Bounds Buffer Format List Measure Metrics Props
