lib/stats/figure_one.ml: Buffer Hashtbl List Option Pid Printf Registry Report Scenario Sim_time String Trace Witness
