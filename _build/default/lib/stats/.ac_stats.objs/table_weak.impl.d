lib/stats/table_weak.ml: Ascii Buffer Check List Metrics Pid Printf Registry Report Scenario Vote
