lib/stats/trace_export.ml: Array Buffer Bytes Format Hashtbl List Option Pid Printf Report Scenario String Trace Vote
