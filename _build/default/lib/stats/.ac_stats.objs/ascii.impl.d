lib/stats/ascii.ml: Array Buffer Char List String
