lib/stats/table_compare.ml: Ascii Buffer Complexity Format List Measure Metrics Printf Props
