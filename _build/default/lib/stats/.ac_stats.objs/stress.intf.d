lib/stats/stress.mli:
