lib/stats/ascii.mli:
