lib/stats/measure.ml: Complexity Float List Metrics Registry Scenario
