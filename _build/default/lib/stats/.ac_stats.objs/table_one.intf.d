lib/stats/table_one.mli: Measure Props
