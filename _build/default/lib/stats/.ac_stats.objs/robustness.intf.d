lib/stats/robustness.mli: Classify Props Scenario
