lib/stats/table_optimal.mli: Props
