lib/stats/ablation.ml: Ascii Buffer Check List Metrics Pid Printf Registry Report Scenario Sim_time Vote
