lib/stats/table_weak.mli:
