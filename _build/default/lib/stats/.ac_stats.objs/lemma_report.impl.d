lib/stats/lemma_report.ml: Ascii Buffer Format List Phases Pid Printf Reach Registry Scenario Sim_time String
