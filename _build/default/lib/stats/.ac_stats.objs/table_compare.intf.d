lib/stats/table_compare.mli:
