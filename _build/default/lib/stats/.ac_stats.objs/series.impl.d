lib/stats/series.ml: Ascii Buffer List Measure Metrics Printf
