lib/stats/series.mli:
