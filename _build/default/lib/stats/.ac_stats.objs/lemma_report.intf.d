lib/stats/lemma_report.mli:
