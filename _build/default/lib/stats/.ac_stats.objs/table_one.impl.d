lib/stats/table_one.ml: Ascii Bounds Buffer Float Format List Measure Metrics Printf Props
