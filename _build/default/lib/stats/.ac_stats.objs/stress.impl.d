lib/stats/stress.ml: Ascii Buffer Check Float List Pid Printf Registry Report Rng Scenario Sim_time Witness
