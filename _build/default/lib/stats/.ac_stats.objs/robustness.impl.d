lib/stats/robustness.ml: Ascii Buffer Check Classify Complexity Format List Network Pid Props Registry Scenario Sim_time Witness
