lib/stats/ablation.mli: Vote
