type t = Yes | No

let yes = Yes
let no = No
let of_bool b = if b then Yes else No

let to_bool = function
  | Yes -> true
  | No -> false

let of_int = function
  | 1 -> Yes
  | 0 -> No
  | n -> invalid_arg (Printf.sprintf "Vote.of_int: %d is not a vote" n)

let to_int = function
  | Yes -> 1
  | No -> 0

let logand a b =
  match (a, b) with
  | Yes, Yes -> Yes
  | Yes, No | No, Yes | No, No -> No

let all_yes votes = List.for_all (fun v -> v = Yes) votes
let equal (a : t) b = a = b

let pp ppf = function
  | Yes -> Format.pp_print_string ppf "yes"
  | No -> Format.pp_print_string ppf "no"

type decision = Commit | Abort

let commit = Commit
let abort = Abort

let decision_of_vote = function
  | Yes -> Commit
  | No -> Abort

let vote_of_decision = function
  | Commit -> Yes
  | Abort -> No

let decision_of_int i = decision_of_vote (of_int i)
let decision_to_int d = to_int (vote_of_decision d)
let decision_equal (a : decision) b = a = b

let pp_decision ppf = function
  | Commit -> Format.pp_print_string ppf "commit"
  | Abort -> Format.pp_print_string ppf "abort"
