type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let next64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (next64 t) }

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next64 t) mask) in
  v mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t ~bound:(hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L

let float t =
  let v = Int64.shift_right_logical (next64 t) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

let shuffle t xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  for i = n - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | xs -> List.nth xs (int t ~bound:(List.length xs))
