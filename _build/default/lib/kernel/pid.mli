(** Process identifiers.

    The paper considers a set [Omega] of [n] processes named [P1 ... Pn].
    Internally a pid is a 0-based index; [rank] exposes the paper's 1-based
    naming so that protocol code can be written to match the pseudo-code
    (e.g. "if 1 <= i <= f then ..."). *)

type t
(** An opaque process identifier, valid for a given system size [n]. *)

val of_index : int -> t
(** [of_index i] is the process with 0-based index [i].
    @raise Invalid_argument if [i < 0]. *)

val of_rank : int -> t
(** [of_rank i] is the paper's process [P_i] (1-based).
    @raise Invalid_argument if [i < 1]. *)

val index : t -> int
(** 0-based index. *)

val rank : t -> int
(** 1-based rank: [rank (of_rank i) = i]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints as ["P3"]. *)

val to_string : t -> string

val all : n:int -> t list
(** [all ~n] is [[P1; ...; Pn]] in rank order.
    @raise Invalid_argument if [n < 1]. *)

val others : n:int -> t -> t list
(** [others ~n p] is every process of the [n]-process system except [p],
    in rank order. *)

val successor : n:int -> t -> t
(** Ring successor: [successor ~n Pn = P1]. Used by the chain/cycle
    protocols whose pseudo-code writes [P_{(i+1) % n}] with the paper's
    "% maps 0 to n" convention. *)

val predecessor : n:int -> t -> t
(** Ring predecessor: [predecessor ~n P1 = Pn]. *)
