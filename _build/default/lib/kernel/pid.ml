type t = int

let of_index i =
  if i < 0 then invalid_arg "Pid.of_index: negative index";
  i

let of_rank i =
  if i < 1 then invalid_arg "Pid.of_rank: rank must be >= 1";
  i - 1

let index p = p
let rank p = p + 1
let equal = Int.equal
let compare = Int.compare
let hash p = p
let pp ppf p = Format.fprintf ppf "P%d" (rank p)
let to_string p = Format.asprintf "%a" pp p

let all ~n =
  if n < 1 then invalid_arg "Pid.all: n must be >= 1";
  List.init n of_index

let others ~n p = List.filter (fun q -> not (equal p q)) (all ~n)
let successor ~n p = (p + 1) mod n
let predecessor ~n p = (p + n - 1) mod n
