(** Votes and decisions of the atomic commit problem.

    A process votes [Yes] (the paper's 1: willing to commit) or [No] (0).
    The outcome of the protocol is a {!decision}: [Commit] (1) or [Abort]
    (0). The two types are kept distinct so that the type checker separates
    inputs from outputs, but both convert to the paper's 0/1 encoding. *)

type t = Yes | No

val yes : t
val no : t

val of_bool : bool -> t
(** [of_bool true = Yes]. *)

val to_bool : t -> bool
val of_int : int -> t
(** [of_int 1 = Yes], [of_int 0 = No].
    @raise Invalid_argument on any other value. *)

val to_int : t -> int
val logand : t -> t -> t
(** The paper's logical AND of votes. *)

val all_yes : t list -> bool
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

type decision = Commit | Abort

val commit : decision
val abort : decision

val decision_of_vote : t -> decision
(** [Yes -> Commit], [No -> Abort]: the paper's protocols decide the
    logical AND of votes, represented as a vote, and we convert at the
    decision boundary. *)

val vote_of_decision : decision -> t
val decision_of_int : int -> decision
val decision_to_int : decision -> int
val decision_equal : decision -> decision -> bool
val pp_decision : Format.formatter -> decision -> unit
