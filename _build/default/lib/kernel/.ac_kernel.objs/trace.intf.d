lib/kernel/trace.mli: Format Pid Sim_time Vote
