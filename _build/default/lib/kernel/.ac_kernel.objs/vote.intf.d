lib/kernel/vote.mli: Format
