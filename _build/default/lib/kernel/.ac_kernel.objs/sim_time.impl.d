lib/kernel/sim_time.ml: Format Int Stdlib
