lib/kernel/vote.ml: Format List Printf
