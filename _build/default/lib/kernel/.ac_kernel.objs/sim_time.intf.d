lib/kernel/sim_time.mli: Format
