lib/kernel/pid.ml: Format Int List
