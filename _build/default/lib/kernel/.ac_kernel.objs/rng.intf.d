lib/kernel/rng.mli:
