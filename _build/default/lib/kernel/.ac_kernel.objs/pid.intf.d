lib/kernel/pid.mli: Format
