lib/kernel/trace.ml: Format List Pid Sim_time String Vote
