(** Deterministic pseudo-random number generator (splitmix64).

    Every source of randomness in the simulator goes through an explicit
    [Rng.t] so that an execution is a pure function of its seed: same seed,
    same trace, byte for byte. The global [Random] module is never used. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Two generators created with the
    same seed produce the same stream. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** A new generator whose stream is statistically independent from the
    parent's subsequent stream. Advances the parent. *)

val next64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> bound:int -> int
(** [int t ~bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [\[lo, hi\]].
    @raise Invalid_argument if [hi < lo]. *)

val bool : t -> bool
val float : t -> float
(** Uniform in [\[0, 1)]. *)

val shuffle : t -> 'a list -> 'a list
(** Fisher-Yates shuffle. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list.
    @raise Invalid_argument on the empty list. *)
