(** Simulated time.

    Time is a non-negative integer number of abstract ticks. The
    synchronous message-delay bound [U] of the paper is a run parameter
    (see {!val:default_u}); in a nice execution every message takes exactly
    [U] ticks, local computation is instantaneous, and therefore the
    paper's "number of message delays" of an execution equals
    [makespan / U] (Section 2.4 of the paper). *)

type t = int

val zero : t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val max : t -> t -> t
val min : t -> t -> t

val default_u : t
(** Default synchronous delay bound [U] (1000 ticks). Kept coarse so that
    adversarial schedules can express delays strictly between 0 and [U],
    or slightly above [U], with integer arithmetic. *)

val of_delays : u:t -> int -> t
(** [of_delays ~u k] is the instant [k * u]: the end of the [k]-th message
    delay. Mirrors the pseudo-code's "set timer to time k". *)

val delays : u:t -> t -> float
(** [delays ~u t] is [t / u] as a float: how many message delays have
    elapsed at instant [t]. *)

val pp : Format.formatter -> t -> unit
