type t = int

let zero = 0
let compare = Int.compare
let equal = Int.equal
let ( + ) = Stdlib.( + )
let ( - ) = Stdlib.( - )
let max = Stdlib.max
let min = Stdlib.min
let default_u = 1000
let of_delays ~u k = k * u
let delays ~u t = float_of_int t /. float_of_int u
let pp ppf t = Format.fprintf ppf "%d" t
