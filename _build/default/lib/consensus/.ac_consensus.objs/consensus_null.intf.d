lib/consensus/consensus_null.mli: Format Pid Proto Vote
