lib/consensus/consensus_null.ml:
