lib/consensus/consensus_floodset.mli: Format Pid Proto Vote
