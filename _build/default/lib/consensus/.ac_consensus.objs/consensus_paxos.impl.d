lib/consensus/consensus_paxos.ml: Format List Pid Printf Proto String Vote
