lib/consensus/consensus_trivial.mli: Format Pid Proto Vote
