lib/consensus/consensus_paxos.mli: Format Pid Proto Sim_time Vote
