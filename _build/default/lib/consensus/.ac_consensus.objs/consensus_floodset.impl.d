lib/consensus/consensus_floodset.ml: Format List Pid Printf Proto String Vote
