lib/consensus/consensus_trivial.ml: Proto Vote
