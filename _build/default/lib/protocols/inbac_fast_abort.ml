include Inbac.Make (struct
  let variant_name = "inbac-fast-abort"
  let fast_abort = true
  let ack_undershoot = false
  let naive_backups = false
end)
