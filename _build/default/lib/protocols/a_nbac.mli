(** aNBAC — Appendix E.3, cell (AV, A) of Table 1: [n-1+f] messages in
    every nice execution, with agreement preserved even under network
    failures.

    It is the (n-1+f)NBAC chain with a 0NBAC-style overlay: a 0-voter
    broadcasts [V,0] and decides 0 only once {e everyone} acknowledged; a
    1-voter that saw a [V,0] relays [B,0] and decides 0 only once everyone
    acknowledged that. A process that cannot collect all acknowledgements
    sets a [noop] flag and never decides (termination is not in the
    contract once a failure occurs); a process decides 1 at the chain's
    deadline only if it saw no zero and no [noop] cause. *)

include Proto.PROTOCOL
