(** Paxos Commit (Gray & Lamport), spontaneous-start, with the paper's
    Section-6 normalization and the co-location / [f+1]-active-acceptor
    optimization.

    Nice execution: every resource manager sends its ballot-0 "prepared"
    vote to the [f+1] active acceptors [P1..P_{f+1}] (delay 1); each
    acceptor reports its bundled state to the leader [P1] (delay 2); the
    leader broadcasts the outcome (delay 3). Three message delays and
    [(n-1)(f+2) + f] messages — fewer messages than INBAC for [f >= 2]
    but one more delay, the tradeoff the paper highlights.

    Fault handling is a synchronous-schedule port: an undecided process
    re-queries the active acceptors and proposes the outcome it can
    justify to uniform consensus (commit only when every reply is a
    complete all-yes bundle — exactly the evidence a committed leader
    implies at every surviving acceptor). This solves NBAC in crash-failure
    executions; under network failures agreement relies on the same
    evidence rule and is exercised, not proven, here (the original
    protocol is fully indulgent; EXPERIMENTS.md records the
    simplification). *)

include Proto.PROTOCOL
