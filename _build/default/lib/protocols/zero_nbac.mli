(** 0NBAC — Appendix E.1, cell (AT, AT) of Table 1: {e zero} messages and
    one message delay in every nice execution, both optimal, with no
    tradeoff.

    Votes to commit are implicit: a process voting 1 sends nothing and, if
    it hears nothing for one delay, decides 1. A process voting 0
    broadcasts [V,0]; recipients acknowledge and the 0-voter (category 1)
    and the 1-voters that saw a zero (category 2, which also broadcast
    [B,0]) later propose to uniform consensus: 0 if all [n-1]
    acknowledgements arrived (nobody can have fast-decided 1), 1 otherwise.
    Validity is only guaranteed in failure-free executions — exactly the
    (AT, AT) contract. *)

include Proto.PROTOCOL
