(** Faster Paxos Commit (Gray & Lamport's optimization), spontaneous-start:
    the acceptors broadcast their bundled ballot-0 state directly to every
    process, eliminating the leader aggregation round.

    Nice execution: {e two} message delays — matching INBAC and the
    Theorem 1 lower bound — at the cost of [2(n-1)(f+1)] messages, never
    fewer than INBAC's optimal [2fn] (Theorem 5's tightness in practice).

    A process decides commit when all [f+1] active-acceptor bundles
    arrived, complete and unanimously yes; decides abort directly only on
    an explicit no; anything else falls back to a re-query of the
    acceptors plus uniform consensus, with the same evidence rule as our
    {!Paxos_commit} port (and the same documented simplification). *)

include Proto.PROTOCOL
