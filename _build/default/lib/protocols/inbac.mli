(** INBAC — the paper's optimal indulgent atomic commit protocol
    (Section 5 and Appendix A).

    Solves indulgent atomic commit: every network-failure execution solves
    NBAC (given an indulgent uniform consensus service with a correct
    majority for termination). In every nice execution, each process
    decides after exactly two message delays and the [n] processes
    exchange exactly [2*f*n] messages — both optimal (Theorems 1, 5, 6).

    Outline of a nice execution: at time 0 every process sends its vote to
    its [f] backup processes; at time [U] each backup acknowledges all the
    votes it holds in a single consolidated [C] message; at time [2U]
    every process has [f] complete acknowledgements, decides the
    conjunction of all votes, and consensus is never invoked.

    Two details of the appendix pseudo-code are typeset ambiguously in our
    source text and were reconstructed from the complexity and agreement
    proofs (DESIGN.md records this): (a) the backup set of [P_i] with
    [i <= f] is [{P1..Pf, P_{f+1}} \ {P_i}] and every such [P_i] also
    sends its vote to [P_{f+1}]; (b) at time [U] each [P_j], [j <= f],
    sends its [C] acknowledgement to every other process while [P_{f+1}]
    sends it to [P1..Pf] — this is the unique assignment that yields the
    claimed [2*f*n] messages with [f] acknowledgements arriving at every
    process. *)

module type CONFIG = sig
  val variant_name : string

  val fast_abort : bool
  (** The Section 5.2 optimization: a process voting 0 broadcasts its vote
      and decides 0 at time 0, and any process receiving a 0 vote decides
      0 immediately, so a failure-free aborting execution finishes within
      one message delay. Off in the standard protocol. *)

  val ack_undershoot : bool
  (** Decide with [f-1] acknowledgements instead of Lemma 5's [f] — a
      deliberately unsound variant demonstrating that the lemma's bound
      is tight (agreement breaks under a crafted network failure). Off in
      the standard protocol. *)

  val naive_backups : bool
  (** Drop the reconstructed [P_{f+1}] role: every process backs its vote
      up at [P1..Pf] only. Demonstrates that the naive reading of the
      OCR-damaged pseudo-code cannot be the paper's — nice executions
      then use [2fn - 2f] messages and the low ranks reach only [f-1]
      processes, short of Lemma 1. Off in the standard protocol. *)
end

module Make (_ : CONFIG) : Proto.PROTOCOL

include Proto.PROTOCOL

val backups : Proto.env -> Pid.t list
(** The backup set [B_P] of the calling process, exposed for tests. *)
