(** Classic coordinator-initiated two-phase commit, {e without} the
    paper's spontaneous-start normalization: the coordinator solicits
    votes with a prepare round first.

    Three message delays and [3n-3] messages — exactly one delay and
    [n-1] messages more than the normalized {!Two_pc}, which is the
    adjustment footnote of Section 6 ("1 delay from 2PC ... and n-1
    messages ... are removed"). Behaviour under faults is the same as
    {!Two_pc}: cell (AV, A), blocking on coordinator crash. *)

include Proto.PROTOCOL
