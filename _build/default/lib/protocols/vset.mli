(** Finite maps from processes to votes — the "collections" that the
    paper's pseudo-code accumulates ([collection0], [collection_help],
    the payload of [C] and [HELPED] messages, ...).

    Kept canonical (sorted by pid, no duplicate) so that structural
    equality of two collections is meaningful. Adding a second vote for
    the same pid keeps the first: perfect links never deliver conflicting
    votes from a correct process, and keeping the first makes replays
    idempotent. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : Pid.t -> Vote.t -> t
val add : Pid.t -> Vote.t -> t -> t
val union : t -> t -> t
val mem : Pid.t -> t -> bool
val find : Pid.t -> t -> Vote.t option
val cardinal : t -> int
val bindings : t -> (Pid.t * Vote.t) list

val covers : t -> Pid.t list -> bool
(** Does the collection contain a vote for every listed process? *)

val complete : n:int -> t -> bool
(** [covers] the whole system [P1..Pn]. *)

val conjunction : t -> Vote.t
(** Logical AND of all votes present ([Yes] on the empty collection). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
