(** 1NBAC — the delay-optimal synchronous NBAC protocol (Section 4.1 and
    Appendix D), for cell (AVT, VT) of Table 1.

    Nice execution: every process broadcasts its vote at time 0, collects
    all [n] votes at time [U], broadcasts the conjunction [D] and decides —
    after exactly {e one} message delay, which the paper proves optimal for
    synchronous NBAC. Costs [2n(n-1)] messages (the paper proves any
    1-delay protocol needs at least [n(n-1)]).

    If votes are missing at the first timeout, the process waits one more
    delay for somebody's [D] message and then falls through to uniform
    consensus. Under network failures agreement can be violated (a fast
    decider's [D] conflicting with a consensus decision) — the execution
    witnessing this is in the test suite. *)

include Proto.PROTOCOL
