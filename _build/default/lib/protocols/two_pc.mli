(** Two-phase commit, in the paper's spontaneous-start normalization
    (Section 6): every process sends its vote to the coordinator [P1] at
    time 0; [P1] broadcasts the decision as soon as it holds all [n]
    votes.

    Cell (AV, A) behaviour: agreement always (only the coordinator's
    conjunction is ever decided), validity in synchronous executions
    ([P1] aborts at its timeout only when a vote is missing, i.e. after a
    failure), and {e no} termination guarantee — a participant blocks
    forever when the coordinator crashes, the classic 2PC blocking window
    the paper contrasts INBAC against.

    Nice execution: 2 message delays, [2n-2] messages. *)

include Proto.PROTOCOL
