(** (2n-2+f)NBAC — Appendix E.6, the message-optimal protocol for
    indulgent atomic commit, cell (AVT, AVT) of Table 1: [2n-2+f]
    messages in every nice execution (tight), at the price of more
    message delays than INBAC (the other side of Theorem 5's tradeoff).

    Nice execution (each hop one delay slot): the votes' conjunction
    travels the chain [P1 -> ... -> Pn] ([V], [n-1] messages); [Pn] sends
    it around the full ring as a [B] token ([n] messages: [Pn -> P1 -> ...
    -> Pn]); processes of rank [>= f] decide when the [B] token passes,
    [Pn] when it returns, and [P1..P_{f-1}] only when a final [Z]
    confirmation chain from [Pn] reaches them ([f-1] messages) — they are
    the backups that keep agreement safe if the token stalls. On any
    missing message a process falls back to uniform consensus, or asks
    [{P1..Pf, Pn}] for [HELPED] values first when it is mid-ring.

    The E.6 pseudo-code is heavily garbled in our source text; this
    reconstruction follows the message-count arithmetic
    [(n-1) + n + (f-1) = 2n-2+f] and the appendix's correctness
    arguments (see DESIGN.md). *)

include Proto.PROTOCOL
