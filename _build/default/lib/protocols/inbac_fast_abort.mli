(** INBAC with the Section 5.2 fast-abort optimization: a failure-free
    execution in which some process votes 0 terminates within one message
    delay (nice executions are unchanged). *)

include Proto.PROTOCOL
