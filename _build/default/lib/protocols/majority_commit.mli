(** Majority commit, after Replicated Commit as discussed in Section 6.3:
    "the votes from a majority of processes are already sufficient to
    commit".

    Every process broadcasts its vote; after one message delay it commits
    iff it counted a strict majority of yes votes (its own included).
    One delay, [n(n-1)] messages.

    This deliberately solves a {e weaker problem} than atomic commit: a
    transaction can commit over a minority of 0 votes, violating NBAC's
    commit-validity even in failure-free executions. Its own contract —
    majority-validity: decide 1 iff a majority voted 1, and agreement /
    termination in failure-free executions — is what the tests check. *)

include Proto.PROTOCOL
