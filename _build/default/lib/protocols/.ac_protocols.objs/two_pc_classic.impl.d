lib/protocols/two_pc_classic.ml: Format List Pid Proto Proto_util Vote
