lib/protocols/faster_paxos_commit.ml: Format List Pid Proto Proto_util Vote Vset
