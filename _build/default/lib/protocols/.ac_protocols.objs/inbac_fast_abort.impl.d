lib/protocols/inbac_fast_abort.ml: Inbac
