lib/protocols/av_nbac_msg.mli: Proto
