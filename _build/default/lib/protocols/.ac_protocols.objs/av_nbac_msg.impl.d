lib/protocols/av_nbac_msg.ml: Format List Pid Proto Proto_util Vote
