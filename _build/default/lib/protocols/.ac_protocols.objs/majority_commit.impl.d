lib/protocols/majority_commit.ml: Format Proto Proto_util Vote
