lib/protocols/paxos_commit.mli: Proto
