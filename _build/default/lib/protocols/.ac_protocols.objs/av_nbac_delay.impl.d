lib/protocols/av_nbac_delay.ml: Format List Pid Proto Proto_util Vote
