lib/protocols/majority_commit.mli: Proto
