lib/protocols/three_pc.mli: Proto
