lib/protocols/one_nbac.ml: Format List Pid Proto Proto_util Vote
