lib/protocols/calvin_commit.ml: Format Proto_util Vote
