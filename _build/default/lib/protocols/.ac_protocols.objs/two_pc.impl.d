lib/protocols/two_pc.ml: Format List Pid Proto Proto_util Vote
