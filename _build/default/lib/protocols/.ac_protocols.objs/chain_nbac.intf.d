lib/protocols/chain_nbac.mli: Proto
