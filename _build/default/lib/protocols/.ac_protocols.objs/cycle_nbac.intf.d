lib/protocols/cycle_nbac.mli: Proto
