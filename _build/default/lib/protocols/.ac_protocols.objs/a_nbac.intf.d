lib/protocols/a_nbac.mli: Proto
