lib/protocols/calvin_commit.mli: Proto
