lib/protocols/inbac_undershoot.mli: Proto
