lib/protocols/inbac.ml: Format List Pid Proto Proto_util Vote Vset
