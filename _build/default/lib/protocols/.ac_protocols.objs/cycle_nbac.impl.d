lib/protocols/cycle_nbac.ml: Format List Pid Proto Proto_util Vote
