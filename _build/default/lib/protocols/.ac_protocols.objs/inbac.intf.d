lib/protocols/inbac.mli: Pid Proto
