lib/protocols/proto_util.ml: List Pid Proto Vote
