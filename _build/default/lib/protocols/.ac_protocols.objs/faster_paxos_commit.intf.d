lib/protocols/faster_paxos_commit.mli: Proto
