lib/protocols/vset.mli: Format Pid Vote
