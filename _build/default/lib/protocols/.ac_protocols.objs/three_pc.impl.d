lib/protocols/three_pc.ml: Format List Pid Printf Proto Proto_util String Vote
