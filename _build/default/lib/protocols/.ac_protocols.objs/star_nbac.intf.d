lib/protocols/star_nbac.mli: Proto
