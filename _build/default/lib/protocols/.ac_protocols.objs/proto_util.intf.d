lib/protocols/proto_util.mli: Pid Proto Vote
