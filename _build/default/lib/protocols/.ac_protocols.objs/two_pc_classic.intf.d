lib/protocols/two_pc_classic.mli: Proto
