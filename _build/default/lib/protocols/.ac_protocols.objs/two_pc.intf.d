lib/protocols/two_pc.mli: Proto
