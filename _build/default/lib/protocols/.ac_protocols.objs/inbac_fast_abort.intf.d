lib/protocols/inbac_fast_abort.mli: Proto
