lib/protocols/one_nbac.mli: Proto
