lib/protocols/zero_nbac.mli: Proto
