lib/protocols/vset.ml: Format List Pid Printf String Vote
