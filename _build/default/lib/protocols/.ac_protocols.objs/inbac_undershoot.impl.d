lib/protocols/inbac_undershoot.ml: Inbac
