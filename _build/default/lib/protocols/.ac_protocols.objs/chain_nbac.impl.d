lib/protocols/chain_nbac.ml: Format Pid Proto Proto_util Vote
