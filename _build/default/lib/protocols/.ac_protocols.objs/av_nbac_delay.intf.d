lib/protocols/av_nbac_delay.mli: Proto
