(** Small helpers shared by all protocol modules. *)

let send q m = Proto.Send (q, m)

let send_each pids m = List.map (fun q -> Proto.Send (q, m)) pids

let broadcast_others env m =
  send_each (Pid.others ~n:env.Proto.n env.Proto.self) m

let timer_at id k = Proto.Set_timer { id; fire = Proto.At_delay k }
let decide d = Proto.Decide d
let decide_vote v = Proto.Decide (Vote.decision_of_vote v)
let rank env = Pid.rank env.Proto.self

(** [P1; ...; Pk] — the paper's frequent "forall q in {P1..Pf}" sets. *)
let first_ranked k = List.init k (fun i -> Pid.of_rank (i + 1))

(** [P_{j}; ...; P_{n}]. *)
let ranked_from env j =
  let n = env.Proto.n in
  if j > n then [] else List.init (n - j + 1) (fun i -> Pid.of_rank (j + i))
