(** Small helpers shared by all protocol modules: action constructors and
    the paper's recurring process sets. *)

val send : Pid.t -> 'msg -> 'msg Proto.action
val send_each : Pid.t list -> 'msg -> 'msg Proto.action list
val broadcast_others : Proto.env -> 'msg -> 'msg Proto.action list

val timer_at : string -> int -> 'msg Proto.action
(** [timer_at id k] fires at the absolute instant [k * U] (the
    pseudo-code's "set timer to time k"). *)

val decide : Vote.decision -> 'msg Proto.action
val decide_vote : Vote.t -> 'msg Proto.action
val rank : Proto.env -> int
(** 1-based rank of the calling process. *)

val first_ranked : int -> Pid.t list
(** [[P1; ...; Pk]] — the paper's "forall q in {P1..Pf}" sets. *)

val ranked_from : Proto.env -> int -> Pid.t list
(** [[P_j; ...; P_n]]. *)
