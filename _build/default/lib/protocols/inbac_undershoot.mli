(** INBAC with one acknowledgement fewer than Lemma 5 requires — a
    deliberately unsound variant that mechanizes the tightness of the
    paper's lower bound on quick acknowledgements: with only [f-1]
    acknowledgements per backup, a crafted network-failure execution
    ([Witness.inbac_undershoot_disagreement]) makes a fast decider commit
    while the isolated rest abort through consensus. Identical to INBAC
    in every nice execution. *)

include Proto.PROTOCOL
