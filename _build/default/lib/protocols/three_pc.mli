(** Three-phase commit (Skeen), spontaneous-start, with a rotating-backup
    termination protocol.

    Adds a pre-commit/acknowledgement round to 2PC so that no process
    commits while another is still "uncertain": this removes the blocking
    window under crash failures — (AVT, ?) behaviour: solves NBAC in every
    crash-failure execution. The termination protocol elects backups
    [P2, P3, ...] on a fixed synchronous schedule; a backup collects
    everyone's state and applies the classic rule (any committed ->
    commit; any aborted -> abort; any pre-committed -> re-run
    pre-commit/ack then commit; all uncertain -> abort). Under network
    failures two backups can act on inconsistent views and agreement can
    break — the flaw the paper (and [19, 21]) attributes to 3PC and its
    variants.

    Nice execution: 4 message delays (vote, pre-commit, ack, commit) and
    [4n-4] messages — one delay and [2n-2] messages over spontaneous 2PC. *)

include Proto.PROTOCOL
