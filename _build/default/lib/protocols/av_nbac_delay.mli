(** avNBAC (delay-optimal flavour) — Section 4.1, cell (AV, AV) of
    Table 1; the paper reuses the name "avNBAC" for two protocols and this
    is the Table-2 one.

    Every process broadcasts its vote; at the end of the first message
    delay it decides the conjunction if and only if it collected all [n]
    votes — otherwise it never decides (termination is not required once a
    failure occurred). One message delay, [n(n-1)] messages. *)

include Proto.PROTOCOL
