(** avNBAC (message-optimal flavour) — Appendix E.5, cell (AV, AV) of
    Table 1 with [2n-2] messages (tight).

    A star through [Pn]: every other process sends its vote to [Pn]
    ([n-1] messages); [Pn], having all votes, broadcasts their conjunction
    [B] ([n-1] messages) and decides; everyone else decides on receipt.
    Agreement and validity hold in {e every} execution (all decisions
    equal [Pn]'s conjunction); termination only in failure-free ones. *)

include Proto.PROTOCOL
