(** (2n-2)NBAC — Appendix E.4, cell (AVT, VT) of Table 1: [2n-2]
    messages in every nice execution (tight).

    Every process sends its vote to [Pn]; [Pn] broadcasts the conjunction
    [B]; everyone then noops for [f+1] delays and decides — a process
    relays a [B,0] (or turns silence from [Pn] into one) exactly once, so
    that in any crash-failure execution at least one relayer reaches every
    correct process before the common decision instant. Solves NBAC in
    crash-failure executions; keeps validity and termination (but not
    agreement) under network failures. *)

include Proto.PROTOCOL
