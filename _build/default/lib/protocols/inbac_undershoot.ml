include Inbac.Make (struct
  let variant_name = "inbac-undershoot"
  let fast_abort = false
  let ack_undershoot = true
  let naive_backups = false
end)
