(** Calvin-style deterministic commit (Section 6.3 of the paper).

    Calvin's deterministic locking removes the explicit commit protocol:
    every node reaches the same outcome independently, and only a local
    failure check must be disseminated — a node votes 0 by broadcasting
    it, everyone else decides after one message delay on the absence of
    zeros. Nice executions cost {e zero} messages and one delay.

    As the paper notes, "NBAC is only solved in failure-free executions":
    a 0-voter that crashes before (or while) broadcasting leaves the
    survivors committing against a 0 proposal — both agreement and
    validity can break in crash-failure executions; only termination is
    kept everywhere (cell (T, T) of Table 1, whose 1-delay/0-message
    bound this protocol matches). *)

include Proto.PROTOCOL
