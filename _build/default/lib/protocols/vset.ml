type t = (Pid.t * Vote.t) list
(* sorted by pid, at most one binding per pid *)

let empty = []
let is_empty t = t = []
let singleton p v = [ (p, v) ]

let rec add p v = function
  | [] -> [ (p, v) ]
  | (q, w) :: rest as t ->
      let c = Pid.compare p q in
      if c < 0 then (p, v) :: t
      else if c = 0 then t (* first vote wins *)
      else (q, w) :: add p v rest

let union a b = List.fold_left (fun acc (p, v) -> add p v acc) a b
let mem p t = List.exists (fun (q, _) -> Pid.equal p q) t
let find p t = List.assoc_opt p t
let cardinal = List.length
let bindings t = t
let covers t pids = List.for_all (fun p -> mem p t) pids
let complete ~n t = cardinal t = n
let conjunction t = List.fold_left (fun acc (_, v) -> Vote.logand acc v) Vote.yes t

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (p, v) (q, w) -> Pid.equal p q && Vote.equal v w)
       a b

let pp ppf t =
  Format.fprintf ppf "{%s}"
    (String.concat ","
       (List.map
          (fun (p, v) ->
            Printf.sprintf "%s:%d" (Pid.to_string p) (Vote.to_int v))
          t))
