(** (n-1+f)NBAC — Appendix E.2, the message-optimal synchronous NBAC
    protocol, cell (AVT, T) of Table 1: [n-1+f] messages in every nice
    execution (tight, generalizing Dwork and Skeen's [2n-2] for
    [f = n-1]).

    Nice execution: the vote conjunction travels along the chain
    [P1 -> P2 -> ... -> Pn] ([n-1] messages, one per delay slot) and then
    along the suffix [Pn -> P1 -> ... -> Pf] ([f] more messages); everyone
    then noops until time [n+2f] and decides 1 — silence is an implicit
    yes. A process that votes 0, or misses its predecessor's message,
    stays silent in the chain; in the suffix it broadcasts 0, and any
    process receiving a 0 relays it once to everyone. Termination is by
    the fixed decision instant; agreement can break under network failures
    (the noop-based implicit yes), which the test suite witnesses. *)

include Proto.PROTOCOL
