let u = Sim_time.default_u
let far = 1000 * u (* "later than max(t1, t3)": effectively never in time *)

let two_pc_blocks ~n =
  (* votes arrive at U; the crash event at U precedes their delivery, so
     P1 dies holding no announcement and every participant blocks *)
  Scenario.make ~n ~f:1 ~crashes:[ (Pid.of_rank 1, Scenario.Before u) ] ()

let one_nbac_disagreement ~n =
  if n < 3 then invalid_arg "one_nbac_disagreement: n must be >= 3";
  let p1 = Pid.of_rank 1 in
  let network =
    Network.adversary ~name:"cut-P1-after-decision" (fun info ->
        match info.Network.layer with
        | Trace.Commit_layer ->
            if Pid.equal info.Network.src p1 && not (Pid.equal info.Network.dst p1)
            then far
            else u
        | Trace.Consensus_layer -> u)
  in
  Scenario.make ~n ~f:1 ~network ()

let chain_nbac_disagreement ~n =
  if n < 4 then invalid_arg "chain_nbac_disagreement: n must be >= 4";
  let p2 = Pid.of_rank 2 in
  let pn = Pid.of_rank n in
  let p_pred = Pid.of_rank (n - 1) in
  let network =
    Network.adversary ~name:"stall-chain-isolate-P2" (fun info ->
        (* the chain message P_{n-1} -> P_n is late, so P_n broadcasts 0;
           every 0 (anything sent after the chain prefix completed)
           addressed to P2 is late, so P2 noop-decides 1 *)
        if Pid.equal info.Network.src p_pred && Pid.equal info.Network.dst pn
        then far
        else if
          Pid.equal info.Network.dst p2 && info.Network.sent_at >= (n - 2) * u
        then far
        else u)
  in
  Scenario.make ~n ~f:1 ~network ()

let star_nbac_partial_broadcast ~n ~keep =
  (* P_n broadcasts [B,1] at absolute U (pseudo-code time 2) and crashes
     after [keep] copies *)
  Scenario.make ~n ~f:1
    ~crashes:[ (Pid.of_rank n, Scenario.During_sends (u, keep)) ]
    ()

let star_nbac_disagreement ~n =
  if n < 3 then invalid_arg "star_nbac_disagreement: n must be >= 3";
  let p1 = Pid.of_rank 1 in
  let pn = Pid.of_rank n in
  let network =
    Network.adversary ~name:"isolate-P1-from-B" (fun info ->
        (* P1's vote at time 0 is on time; Pn's [B,1] to P1 and P1's
           defensive [B,0] relay (sent at 2U) are late *)
        if Pid.equal info.Network.src pn && Pid.equal info.Network.dst p1 then
          far
        else if Pid.equal info.Network.src p1 && info.Network.sent_at >= u
        then far
        else u)
  in
  Scenario.make ~n ~f:1 ~network ()

let inbac_undershoot_disagreement () =
  let n = 5 and f = 2 in
  let p1 = Pid.of_rank 1 and p2 = Pid.of_rank 2 and p5 = Pid.of_rank 5 in
  let network =
    Network.adversary ~name:"lemma5-tightness" (fun info ->
        let src = info.Network.src and dst = info.Network.dst in
        match info.Network.layer with
        | Trace.Commit_layer ->
            (* P1 reaches only P5 in time; P2 hears nothing in time, so
               its consolidated ack stays incomplete and it proposes 0 *)
            if Pid.equal src p1 && not (Pid.equal dst p5) then far
            else if Pid.equal dst p2 then far
            else u
        | Trace.Consensus_layer ->
            (* P1's (commit-leaning) ballots are late: the isolated
               majority P2..P4 settles consensus on 0 first *)
            if Pid.equal src p1 || Pid.equal dst p1 then far else u)
  in
  Scenario.make ~n ~f ~network ()

let inbac_slow_backup ~n ~f =
  let p1 = Pid.of_rank 1 in
  let network =
    Network.adversary ~name:"slow-P1-acks" (fun info ->
        match info.Network.layer with
        | Trace.Commit_layer ->
            (* P1's consolidated [C] acknowledgements (sent at U) are late *)
            if Pid.equal info.Network.src p1 && info.Network.sent_at >= u then
              20 * u
            else u
        | Trace.Consensus_layer -> u)
  in
  Scenario.make ~n ~f ~network ()

let crash_storm ~n ~f ~seed =
  let rng = Rng.create seed in
  let victims = ref [] in
  while List.length !victims < f do
    let p = Pid.of_index (Rng.int rng ~bound:n) in
    if not (List.exists (Pid.equal p) !victims) then victims := p :: !victims
  done;
  let crashes =
    List.map
      (fun p ->
        let at = Rng.int rng ~bound:(6 * u) in
        if Rng.bool rng then (p, Scenario.Before at)
        else (p, Scenario.During_sends (at, Rng.int rng ~bound:n)))
      !victims
  in
  Scenario.make ~n ~f ~crashes ~seed ~network:(Network.jittered ~u) ()

let eventual_synchrony ~n ~f ~seed =
  Scenario.make ~n ~f ~seed
    ~network:(Network.eventually_synchronous ~u ~gst:(10 * u) ~max_early_delay:(4 * u))
    ()
