lib/core/witness.mli: Scenario
