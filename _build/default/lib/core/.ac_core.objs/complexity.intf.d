lib/core/complexity.mli: Props
