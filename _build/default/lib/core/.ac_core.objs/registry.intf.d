lib/core/registry.mli: Proto Report Scenario
