lib/core/complexity.ml: List Props String
