lib/core/witness.ml: List Network Pid Rng Scenario Sim_time Trace
