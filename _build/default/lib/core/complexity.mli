(** Closed-form nice-execution complexity of every implemented protocol,
    together with the Table-1 cell each protocol realizes. These are the
    paper's analytical claims; the benches check the simulator's measured
    counts against them for sweeps of [n] and [f]. *)

type entry = {
  protocol : string;  (** registry name *)
  cell : Props.cell;  (** robustness the protocol guarantees *)
  messages : n:int -> f:int -> int;
  delays : n:int -> f:int -> int;
  optimal_messages : bool;  (** matches Table 1's message lower bound *)
  optimal_delays : bool;  (** matches Table 1's delay lower bound *)
  weak_semantics : string option;
      (** [Some why] when the protocol deliberately solves a weaker
          problem than NBAC (the Section 6.3 baselines) and is therefore
          exempt from the failure-free-solves-NBAC contract *)
  note : string;
}

val entries : entry list
val find : string -> entry option
val find_exn : string -> entry

val is_weak : string -> bool
(** Whether the protocol has documented weak semantics. *)

val strict_names : string list
(** Every registered protocol that does claim full NBAC in failure-free
    executions (the complement of the weak set). *)
