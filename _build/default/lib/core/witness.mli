(** Witness executions: concrete adversarial scenarios in the style of the
    paper's lower-bound constructions ([E_0] / [E_async] in Lemmas 1, 3
    and 5), demonstrating where each protocol's guarantees stop.

    Each function builds a scenario; the caller runs it against the
    matching protocol and checks the expected (non-)property. They are
    exercised by the test suite and by [actable witness]. *)

val two_pc_blocks : n:int -> Scenario.t
(** Coordinator crashes after collecting votes, before announcing: the
    classic 2PC blocking window. Expect: termination violated, agreement
    and validity intact (crash-failure execution). *)

val one_nbac_disagreement : n:int -> Scenario.t
(** Network-failure execution where [P1] fast-decides 1 at one delay while
    the others, cut off from [P1], abort through consensus: the (AVT, VT)
    cell's agreement gap. Requires [n >= 3] (consensus needs a correct
    majority among the others). *)

val chain_nbac_disagreement : n:int -> Scenario.t
(** Network-failure execution of (n-1+f)NBAC with [f = 1]: the chain stalls
    at [Pn], whose 0-broadcast reaches everyone but [P2] in time; [P2]
    noop-decides 1. Requires [n >= 4]. *)

val star_nbac_partial_broadcast : n:int -> keep:int -> Scenario.t
(** Crash-failure execution of (2n-2)NBAC: [Pn] crashes while broadcasting
    [B,1], transmitting only [keep] copies. The relay mechanism must
    preserve agreement (a positive witness). *)

val star_nbac_disagreement : n:int -> Scenario.t
(** Network-failure execution of (2n-2)NBAC: [Pn]'s [B,1] to [P1] is late,
    and [P1]'s defensive [B,0] relay is late everywhere, so [P1] aborts
    while the rest commit. *)

val inbac_undershoot_disagreement : unit -> Scenario.t
(** The Lemma 5 tightness construction (n = 5, f = 2): [P5]'s first
    backup acknowledges on time while everything else around [P1] and
    [P2] is late. A variant that decides on [f-1] acknowledgements
    ([inbac-undershoot]) fast-commits at [P5] while the isolated majority
    aborts through consensus; real INBAC, requiring the [f]-th
    acknowledgement, stays undecided and follows consensus — agreement
    intact. Run both protocols on this scenario to see the bound bite. *)

val inbac_slow_backup : n:int -> f:int -> Scenario.t
(** Network-failure execution for INBAC: all of [P1]'s acknowledgement
    messages are late, forcing the helping/consensus path. INBAC must
    still solve NBAC (requires a correct majority, i.e. [f < n/2]). *)

val crash_storm : n:int -> f:int -> seed:int -> Scenario.t
(** [f] random processes crash at random instants (random synchronous
    delays too): generic crash-failure stress. *)

val eventual_synchrony : n:int -> f:int -> seed:int -> Scenario.t
(** Seeded eventually-synchronous network (GST at 10·U, early delays up to
    4·U) with no crash: generic network-failure stress. *)
