#!/usr/bin/env python3
"""Validate the shape of a bench --json report (CI bench-smoke step).

Fails (exit 1) when a required key is missing or a measured quantity is
non-positive, so a refactor that silently drops a metric from the JSON
breaks the build instead of the dashboard.

--max-minor-words-per-state N additionally gates on the pooled
minor-allocation rate of both pinned model-checking configurations: a
change that regresses the DFS hot path back to allocation-heavy code
trips the ceiling even when the wall-clock numbers are too noisy to.
"""
import json
import sys

path = "BENCH_results.json"
max_minor_words = None
args = iter(sys.argv[1:])
for a in args:
    if a == "--max-minor-words-per-state":
        max_minor_words = float(next(args))
    else:
        path = a
with open(path) as fh:
    doc = json.load(fh)

errors = []


def need(cond, what):
    if not cond:
        errors.append(what)


need(doc.get("schema") == "actable-bench/8", "schema actable-bench/8")
need(isinstance(doc.get("pairs"), list) and doc["pairs"], "non-empty pairs")

for section in ("nice_run_seconds", "table_seconds"):
    block = doc.get(section)
    need(isinstance(block, dict) and block, f"non-empty {section}")
    if isinstance(block, dict):
        for k, v in block.items():
            need(isinstance(v, (int, float)) and v > 0, f"{section}.{k} > 0")

mc = doc.get("mc", {})
for k in ("protocol", "class", "n", "f", "jobs"):
    need(k in mc, f"mc.{k}")
backends = mc.get("backends", {})
for b in ("hashed", "marshal"):
    be = backends.get(b, {})
    for k in ("seconds", "states", "schedules", "states_per_sec",
              "schedules_per_sec"):
        need(isinstance(be.get(k), (int, float)) and be[k] > 0,
             f"mc.backends.{b}.{k} > 0")
need(isinstance(mc.get("hashed_vs_marshal_speedup"), (int, float)),
     "mc.hashed_vs_marshal_speedup")
fp = mc.get("fingerprint_ns_per_call", {})
for k in ("hashed", "marshal", "marshal_vs_hashed"):
    need(isinstance(fp.get(k), (int, float)) and fp[k] > 0,
         f"mc.fingerprint_ns_per_call.{k} > 0")

# the two backends must have explored the same space
h, m = backends.get("hashed", {}), backends.get("marshal", {})
need(h.get("states") == m.get("states"), "backends agree on states")
need(h.get("schedules") == m.get("schedules"), "backends agree on schedules")

# frontier-scheduling matrix: six configs plus derived speedups
frontier = mc.get("frontier", {})
FRONTIER_CONFIGS = (
    "per_item_cursor_j1",
    "per_item_stealing_j4",
    "shared_stealing_j1",
    "shared_stealing_j4",
    "swarm_shared_j1",
    "swarm_shared_j4",
)
for cfg in FRONTIER_CONFIGS:
    row = frontier.get(cfg, {})
    for k in ("seconds", "states", "schedules", "states_per_sec"):
        need(isinstance(row.get(k), (int, float)) and row[k] > 0,
             f"mc.frontier.{cfg}.{k} > 0")
for k in ("stealing_speedup_j4", "shared_speedup_j4", "swarm_speedup_j4",
          "swarm_states_per_sec_ratio_j4"):
    need(isinstance(frontier.get(k), (int, float)) and frontier[k] > 0,
         f"mc.frontier.{k} > 0")

# per-item counters are deterministic: the stealing scheduler at jobs=4
# must report exactly what the cursor baseline reports at jobs=1
cursor = frontier.get("per_item_cursor_j1", {})
stealing = frontier.get("per_item_stealing_j4", {})
need(cursor.get("states") == stealing.get("states"),
     "per-item states identical across cursor/stealing")
need(cursor.get("schedules") == stealing.get("schedules"),
     "per-item schedules identical across cursor/stealing")

# global dedup can only shrink the explored state count (swarm walkers
# re-expand a bounded shallow prefix, but the shared table still keeps
# them inside the per-item envelope)
for cfg in ("shared_stealing_j1", "shared_stealing_j4", "swarm_shared_j1",
            "swarm_shared_j4"):
    shared_states = frontier.get(cfg, {}).get("states")
    if isinstance(shared_states, (int, float)) and \
       isinstance(cursor.get("states"), (int, float)):
        need(shared_states <= cursor["states"],
             f"mc.frontier.{cfg}.states <= per-item states")

# the per-item frontier rows must match the backend rows (same pinned
# config, same deterministic mode)
if isinstance(h.get("states"), (int, float)) and \
   isinstance(cursor.get("states"), (int, float)):
    need(cursor["states"] == h["states"],
         "frontier per-item states match mc.backends.hashed.states")

# gc blocks: one under mc (crash-pinned) and one under mc_network. The
# pooled and unpooled arms must have explored the same space — the
# snapshot pool is exploration-neutral by contract — and the pooled
# minor-allocation rate may be gated by --max-minor-words-per-state.
def check_gc(block, where):
    gc = block.get("gc", {})
    for arm in ("pooled", "unpooled"):
        row = gc.get(arm, {})
        for k in ("seconds", "states"):
            need(isinstance(row.get(k), (int, float)) and row[k] > 0,
                 f"{where}.gc.{arm}.{k} > 0")
        for k in ("minor_words_per_state", "promoted_words_per_state",
                  "major_collections"):
            need(isinstance(row.get(k), (int, float)) and row[k] >= 0,
                 f"{where}.gc.{arm}.{k} >= 0")
    p, u = gc.get("pooled", {}), gc.get("unpooled", {})
    need(p.get("states") == u.get("states"),
         f"{where}.gc arms agree on states (pool is exploration-neutral)")
    for k in ("pool_speedup", "minor_words_ratio"):
        need(isinstance(gc.get(k), (int, float)) and gc[k] > 0,
             f"{where}.gc.{k} > 0")
    if max_minor_words is not None and \
       isinstance(p.get("minor_words_per_state"), (int, float)):
        need(p["minor_words_per_state"] <= max_minor_words,
             f"{where}.gc.pooled.minor_words_per_state <= "
             f"{max_minor_words:g}")


check_gc(mc, "mc")

mcn = doc.get("mc_network", {})
for k in ("protocol", "class", "n", "f", "jobs", "max_states_budget"):
    need(k in mcn, f"mc_network.{k}")
row = mcn.get("hashed", {})
for k in ("seconds", "states", "states_per_sec"):
    need(isinstance(row.get(k), (int, float)) and row[k] > 0,
         f"mc_network.hashed.{k} > 0")
check_gc(mcn, "mc_network")

# symmetry-reduction section (since actable-bench/6): three execution-class
# arms, each a symmetry-off vs symmetry-on pair on the same deterministic
# per-item configuration, plus the isolated canonicalization cost
sym = doc.get("symmetry", {})
for k in ("protocol", "f", "jobs"):
    need(k in sym, f"symmetry.{k}")
sym_arms = sym.get("arms", {})
for arm_name in ("crash", "network", "all", "crash_n5", "network_n5"):
    arm = sym_arms.get(arm_name, {})
    where = f"symmetry.arms.{arm_name}"
    need(isinstance(arm.get("n"), int) and arm.get("n") >= 3, f"{where}.n >= 3")
    for mode in ("off", "on"):
        row = arm.get(mode, {})
        for k in ("seconds", "states", "schedules"):
            need(isinstance(row.get(k), (int, float)) and row[k] > 0,
                 f"{where}.{mode}.{k} > 0")
        need(isinstance(row.get("exhausted"), bool), f"{where}.{mode}.exhausted")
    on = arm.get("on", {})
    for k in ("orbit_hits", "twin_skips", "canon_calls"):
        need(isinstance(on.get(k), (int, float)) and on[k] >= 0,
             f"{where}.on.{k} >= 0")
    need(isinstance(arm.get("reduction"), (int, float))
         and arm["reduction"] >= 1,
         f"{where}.reduction >= 1 (canonicalization never grows the space)")
    off = arm.get("off", {})
    if isinstance(off.get("states"), (int, float)) and \
       isinstance(on.get("states"), (int, float)):
        need(on["states"] <= off["states"],
             f"{where} on.states <= off.states")
    # an arm must not trade exhaustion for the reduction: if the off arm
    # finished the bounded space, the (smaller) on arm must have too
    if off.get("exhausted") is True:
        need(on.get("exhausted") is True,
             f"{where} symmetry-on exhausts whenever symmetry-off does")
need(isinstance(sym.get("best_reduction"), (int, float))
     and sym["best_reduction"] >= 1, "symmetry.best_reduction >= 1")
canon = sym.get("canonicalization_ns_per_call", {})
for k in ("symmetry", "plain", "overhead"):
    need(isinstance(canon.get(k), (int, float)) and canon[k] > 0,
         f"symmetry.canonicalization_ns_per_call.{k} > 0")

# multi-shot commit service: at least three protocol arms, at least one
# crash-injection arm, (since actable-bench/7) at least one re-election
# arm whose never-recovering outage drains through elected stand-in
# coordinators, and (since actable-bench/8) the queued-admission
# differential pair plus a streaming soak arm. Each arm internally
# consistent (transactions fully accounted for, percentiles ordered,
# correctness flags true).
ms = doc.get("multishot", {})
for k in ("n", "f", "clients", "txns", "soak_clients", "soak_txns"):
    need(isinstance(ms.get(k), (int, float)) and ms[k] > 0,
         f"multishot.{k} > 0")
arms = ms.get("arms", {})
need(isinstance(arms, dict) and arms, "non-empty multishot.arms")
protocols = {name for name in arms
             if not name.endswith(("_crash", "_elect", "_queue", "_abort",
                                   "_soak"))}
need(len(protocols) >= 3, ">= 3 multishot protocol arms")
need(any(name.endswith("_crash") for name in arms),
     ">= 1 multishot crash-injection arm")
need(any(name.endswith("_elect") for name in arms),
     ">= 1 multishot re-election arm")
need(any(name.endswith("_soak") for name in arms),
     ">= 1 multishot streaming soak arm")
for name, arm in arms.items():
    where = f"multishot.arms.{name}"
    if not isinstance(arm, dict):
        need(False, f"{where} is an object")
        continue
    for k in ("seconds", "commits_per_sec"):
        need(isinstance(arm.get(k), (int, float)) and arm[k] > 0,
             f"{where}.{k} > 0")
    for k in ("transactions", "committed", "instances", "messages"):
        need(isinstance(arm.get(k), (int, float)) and arm[k] > 0,
             f"{where}.{k} > 0")
    for k in ("aborted", "local_aborts", "parked", "retries", "staged_left",
              "abort_rate", "elections", "stolen", "zipf_s", "queued",
              "queue_aborts", "minor_words_per_txn"):
        need(isinstance(arm.get(k), (int, float)) and arm[k] >= 0,
             f"{where}.{k} >= 0")
    need(arm.get("admission") in ("queue", "abort"),
         f"{where}.admission is \"queue\" or \"abort\"")
    # queue-mode aborts are a subset of local aborts; a transaction waits
    # at most once per issue, so the waited count is bounded by the issued
    if isinstance(arm.get("queue_aborts"), (int, float)) and \
       isinstance(arm.get("local_aborts"), (int, float)):
        need(arm["queue_aborts"] <= arm["local_aborts"],
             f"{where}.queue_aborts <= local_aborts")
    if arm.get("admission") == "abort":
        need(arm.get("queued") == 0 and arm.get("queue_aborts") == 0,
             f"{where} abort admission never queues")
    if isinstance(arm.get("queued"), (int, float)) and \
       isinstance(arm.get("transactions"), (int, float)):
        need(arm["queued"] <= arm["transactions"],
             f"{where}.queued <= transactions")
    # goodput is the committed fraction of issued transactions
    if all(isinstance(arm.get(k), (int, float))
           for k in ("goodput", "committed", "transactions")) and \
       arm["transactions"] > 0:
        need(0.0 <= arm["goodput"] <= 1.0, f"{where}.goodput in [0, 1]")
        need(abs(arm["goodput"] - arm["committed"] / arm["transactions"])
             < 1e-3, f"{where}.goodput == committed / transactions")
    need(arm.get("atomicity_ok") is True, f"{where}.atomicity_ok")
    need(arm.get("agreement_ok") is True, f"{where}.agreement_ok")
    need(arm.get("parked") == 0,
         f"{where}.parked == 0 (recovery or election drains)")
    need(arm.get("staged_left") == 0, f"{where}.staged_left == 0")
    if isinstance(arm.get("elections"), (int, float)) and \
       isinstance(arm.get("stolen"), (int, float)):
        need(arm["stolen"] <= arm["elections"],
             f"{where}.stolen <= elections")
    if name.endswith("_elect"):
        need(isinstance(arm.get("elections"), (int, float))
             and arm["elections"] >= 1, f"{where}.elections >= 1")
        need(isinstance(arm.get("stolen"), (int, float))
             and arm["stolen"] >= 1, f"{where}.stolen >= 1")
        need(arm.get("retries") == 0,
             f"{where}.retries == 0 (no recovery under a permanent outage)")
    else:
        need(arm.get("elections") == 0,
             f"{where}.elections == 0 (re-election off outside _elect arms)")
    counted = sum(arm.get(k, -1) for k in
                  ("committed", "aborted", "local_aborts", "parked"))
    need(counted == arm.get("transactions"),
         f"{where} committed+aborted+local_aborts+parked == transactions")
    for block, gate in (("latency_delays", "committed"),
                        ("time_parked_delays", "stolen"),
                        ("queue_depth", "queued")):
        dist = arm.get(block, {})
        for k in ("mean", "p50", "p95", "p99", "max"):
            need(isinstance(dist.get(k), (int, float)) and dist[k] >= 0,
                 f"{where}.{block}.{k} >= 0")
        if isinstance(arm.get(gate), (int, float)) and arm[gate] > 0 \
           and all(isinstance(dist.get(k), (int, float))
                   for k in ("p50", "p95", "p99", "max")):
            need(dist["p50"] <= dist["p95"] <= dist["p99"] <= dist["max"],
                 f"{where} {block} p50 <= p95 <= p99 <= max")

# the admission differential: under the same skewed workload, queued
# admission must commit a strictly larger fraction than abort-on-conflict
# (the headline claim of the queued-admission work)
zq, za = arms.get("2pc_zipf_queue", {}), arms.get("2pc_zipf_abort", {})
need(isinstance(zq, dict) and zq, "multishot.arms.2pc_zipf_queue present")
need(isinstance(za, dict) and za, "multishot.arms.2pc_zipf_abort present")
if isinstance(zq, dict) and isinstance(za, dict):
    need(zq.get("admission") == "queue", "2pc_zipf_queue runs queue admission")
    need(za.get("admission") == "abort", "2pc_zipf_abort runs abort admission")
    if all(isinstance(a.get("goodput"), (int, float)) for a in (zq, za)):
        need(zq["goodput"] > za["goodput"],
             "2pc_zipf_queue goodput > 2pc_zipf_abort goodput")
soak_arm = arms.get("2pc_soak", {})
if isinstance(soak_arm, dict) and soak_arm:
    need(soak_arm.get("admission") == "queue", "2pc_soak runs queue admission")

if errors:
    print(f"{path}: {len(errors)} problem(s)", file=sys.stderr)
    for e in errors:
        print(f"  missing/invalid: {e}", file=sys.stderr)
    sys.exit(1)
print(f"{path}: ok")
