#!/usr/bin/env python3
"""Validate the shape of a bench --json report (CI bench-smoke step).

Fails (exit 1) when a required key is missing or a measured quantity is
non-positive, so a refactor that silently drops a metric from the JSON
breaks the build instead of the dashboard.
"""
import json
import sys

path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_results.json"
with open(path) as fh:
    doc = json.load(fh)

errors = []


def need(cond, what):
    if not cond:
        errors.append(what)


need(doc.get("schema") == "actable-bench/2", "schema actable-bench/2")
need(isinstance(doc.get("pairs"), list) and doc["pairs"], "non-empty pairs")

for section in ("nice_run_seconds", "table_seconds"):
    block = doc.get(section)
    need(isinstance(block, dict) and block, f"non-empty {section}")
    if isinstance(block, dict):
        for k, v in block.items():
            need(isinstance(v, (int, float)) and v > 0, f"{section}.{k} > 0")

mc = doc.get("mc", {})
for k in ("protocol", "class", "n", "f", "jobs"):
    need(k in mc, f"mc.{k}")
backends = mc.get("backends", {})
for b in ("hashed", "marshal"):
    be = backends.get(b, {})
    for k in ("seconds", "states", "schedules", "states_per_sec",
              "schedules_per_sec"):
        need(isinstance(be.get(k), (int, float)) and be[k] > 0,
             f"mc.backends.{b}.{k} > 0")
need(isinstance(mc.get("hashed_vs_marshal_speedup"), (int, float)),
     "mc.hashed_vs_marshal_speedup")
fp = mc.get("fingerprint_ns_per_call", {})
for k in ("hashed", "marshal", "marshal_vs_hashed"):
    need(isinstance(fp.get(k), (int, float)) and fp[k] > 0,
         f"mc.fingerprint_ns_per_call.{k} > 0")

# the two backends must have explored the same space
h, m = backends.get("hashed", {}), backends.get("marshal", {})
need(h.get("states") == m.get("states"), "backends agree on states")
need(h.get("schedules") == m.get("schedules"), "backends agree on schedules")

# frontier-scheduling matrix: four configs plus derived speedups
frontier = mc.get("frontier", {})
FRONTIER_CONFIGS = (
    "per_item_cursor_j1",
    "per_item_stealing_j4",
    "shared_stealing_j1",
    "shared_stealing_j4",
)
for cfg in FRONTIER_CONFIGS:
    row = frontier.get(cfg, {})
    for k in ("seconds", "states", "schedules", "states_per_sec"):
        need(isinstance(row.get(k), (int, float)) and row[k] > 0,
             f"mc.frontier.{cfg}.{k} > 0")
for k in ("stealing_speedup_j4", "shared_speedup_j4"):
    need(isinstance(frontier.get(k), (int, float)) and frontier[k] > 0,
         f"mc.frontier.{k} > 0")

# per-item counters are deterministic: the stealing scheduler at jobs=4
# must report exactly what the cursor baseline reports at jobs=1
cursor = frontier.get("per_item_cursor_j1", {})
stealing = frontier.get("per_item_stealing_j4", {})
need(cursor.get("states") == stealing.get("states"),
     "per-item states identical across cursor/stealing")
need(cursor.get("schedules") == stealing.get("schedules"),
     "per-item schedules identical across cursor/stealing")

# global dedup can only shrink the explored state count
for cfg in ("shared_stealing_j1", "shared_stealing_j4"):
    shared_states = frontier.get(cfg, {}).get("states")
    if isinstance(shared_states, (int, float)) and \
       isinstance(cursor.get("states"), (int, float)):
        need(shared_states <= cursor["states"],
             f"mc.frontier.{cfg}.states <= per-item states")

# the per-item frontier rows must match the backend rows (same pinned
# config, same deterministic mode)
if isinstance(h.get("states"), (int, float)) and \
   isinstance(cursor.get("states"), (int, float)):
    need(cursor["states"] == h["states"],
         "frontier per-item states match mc.backends.hashed.states")

if errors:
    print(f"{path}: {len(errors)} problem(s)", file=sys.stderr)
    for e in errors:
        print(f"  missing/invalid: {e}", file=sys.stderr)
    sys.exit(1)
print(f"{path}: ok")
