#!/usr/bin/env python3
"""Print a one-line frontier comparison between two bench --json reports.

Usage: compare_bench_frontier.py OLD.json NEW.json

Used by CI's bench-trend step to compare the fresh bench run against the
previous commit's archived artifact. The comparison is informational —
absolute timings on shared runners are noisy — so every failure mode
(missing file, unparsable JSON, unknown schema) degrades to a note and
exit 0; only being invoked with the wrong number of arguments is an
error. Old reports with any actable-bench/* schema are accepted: rows
added by later schemas (the swarm arms of actable-bench/4) print as
n/a when the old report predates them.
"""
import json
import sys

if len(sys.argv) != 3:
    print("usage: compare_bench_frontier.py OLD.json NEW.json",
          file=sys.stderr)
    sys.exit(2)


def load(path):
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"bench-trend: cannot read {path} ({exc}); skipping comparison")
        return None
    schema = doc.get("schema", "")
    if not str(schema).startswith("actable-bench/"):
        print(f"bench-trend: {path} has unknown schema {schema!r}; "
              "skipping comparison")
        return None
    return doc


old, new = load(sys.argv[1]), load(sys.argv[2])
if old is None or new is None:
    sys.exit(0)


def frontier_sps(doc, cfg):
    v = doc.get("mc", {}).get("frontier", {}).get(cfg, {}).get(
        "states_per_sec")
    return v if isinstance(v, (int, float)) and v > 0 else None


parts = []
for cfg, label in (
    ("per_item_cursor_j1", "cursor-j1"),
    ("per_item_stealing_j4", "steal-j4"),
    ("shared_stealing_j4", "shared-j4"),
    ("swarm_shared_j4", "swarm-j4"),
):
    o, n = frontier_sps(old, cfg), frontier_sps(new, cfg)
    if o is None or n is None:
        parts.append(f"{label} n/a")
    else:
        parts.append(f"{label} {n:.0f}/s ({n / o - 1:+.1%})")

# swarm-vs-sequential wall-clock speedup of the new report (old reports
# predating actable-bench/4 simply print n/a)
swarm_speedup = new.get("mc", {}).get("frontier", {}).get("swarm_speedup_j4")
if isinstance(swarm_speedup, (int, float)) and swarm_speedup > 0:
    parts.append(f"swarm-vs-sequential {swarm_speedup:.2f}x")
else:
    parts.append("swarm-vs-sequential n/a")

hashed_old = old.get("mc", {}).get("backends", {}).get("hashed", {}).get(
    "states_per_sec")
hashed_new = new.get("mc", {}).get("backends", {}).get("hashed", {}).get(
    "states_per_sec")
if isinstance(hashed_old, (int, float)) and hashed_old > 0 and \
   isinstance(hashed_new, (int, float)) and hashed_new > 0:
    head = f"pinned hashed {hashed_new:.0f}/s ({hashed_new / hashed_old - 1:+.1%})"
else:
    head = "pinned hashed n/a"

print(f"bench-trend vs {sys.argv[1]}: {head}; frontier: " + "; ".join(parts))


# multi-shot commit service throughput (actable-bench/5): per-arm
# commits/sec delta; old reports without the section print n/a
def multishot_cps(doc):
    arms = doc.get("multishot", {}).get("arms", {})
    out = {}
    for name, arm in arms.items() if isinstance(arms, dict) else ():
        v = arm.get("commits_per_sec") if isinstance(arm, dict) else None
        if isinstance(v, (int, float)) and v > 0:
            out[name] = v
    return out


# symmetry reduction (actable-bench/6): per-arm state-count ratios; old
# reports without the section print n/a (the ratio is deterministic, so
# any delta signals an exploration change, not runner noise)
def symmetry_reductions(doc):
    arms = doc.get("symmetry", {}).get("arms", {})
    out = {}
    for name, arm in arms.items() if isinstance(arms, dict) else ():
        v = arm.get("reduction") if isinstance(arm, dict) else None
        if isinstance(v, (int, float)) and v > 0:
            out[name] = v
    return out


sy_old, sy_new = symmetry_reductions(old), symmetry_reductions(new)
if not sy_new:
    print("bench-trend symmetry: n/a (no symmetry section in new report)")
else:
    sy_parts = []
    for name in sorted(sy_new):
        n = sy_new[name]
        o = sy_old.get(name)
        if o is None:
            sy_parts.append(f"{name} {n:.2f}x (n/a)")
        else:
            sy_parts.append(f"{name} {n:.2f}x ({n / o - 1:+.1%})")
    canon = new.get("symmetry", {}).get("canonicalization_ns_per_call", {})
    ns = canon.get("symmetry")
    if isinstance(ns, (int, float)) and ns > 0:
        sy_parts.append(f"canon {ns:.0f}ns/call")
    print("bench-trend symmetry reduction: " + "; ".join(sy_parts))

ms_old, ms_new = multishot_cps(old), multishot_cps(new)
if not ms_new:
    print("bench-trend multishot: n/a (no multishot section in new report)")
else:
    ms_parts = []
    for name in sorted(ms_new):
        n = ms_new[name]
        o = ms_old.get(name)
        if o is None:
            ms_parts.append(f"{name} {n:.0f}/s (n/a)")
        else:
            ms_parts.append(f"{name} {n:.0f}/s ({n / o - 1:+.1%})")
    print("bench-trend multishot commits/sec: " + "; ".join(ms_parts))


# re-election arms (actable-bench/7): election count (deterministic — a
# delta means the stand-in path changed) and commits/sec of every _elect
# arm; old reports from earlier schemas print n/a
def elect_arms(doc):
    arms = doc.get("multishot", {}).get("arms", {})
    out = {}
    for name, arm in arms.items() if isinstance(arms, dict) else ():
        if not name.endswith("_elect") or not isinstance(arm, dict):
            continue
        el = arm.get("elections")
        cps = arm.get("commits_per_sec")
        if isinstance(el, (int, float)) and el >= 0:
            out[name] = (el, cps if isinstance(cps, (int, float)) else None)
    return out


# admission & soak arms (actable-bench/8): goodput is deterministic (a
# delta means the admission policy or workload changed, not the runner),
# minor words/txn is deterministic allocation pressure; old reports from
# earlier schemas print n/a
def admission_arms(doc):
    arms = doc.get("multishot", {}).get("arms", {})
    out = {}
    for name, arm in arms.items() if isinstance(arms, dict) else ():
        if not isinstance(arm, dict):
            continue
        if not name.endswith(("_queue", "_abort", "_soak")):
            continue
        gp = arm.get("goodput")
        words = arm.get("minor_words_per_txn")
        if isinstance(gp, (int, float)):
            out[name] = (gp, words if isinstance(words, (int, float)) else None)
    return out


ad_old, ad_new = admission_arms(old), admission_arms(new)
if not ad_new:
    print("bench-trend admission: n/a (no admission/soak arm in new report)")
else:
    ad_parts = []
    for name in sorted(ad_new):
        gp, words = ad_new[name]
        old_entry = ad_old.get(name)
        words_str = f"{words:.0f} w/txn" if words is not None else "n/a w/txn"
        if old_entry is None:
            ad_parts.append(f"{name} goodput {gp:.3f}, {words_str} (n/a)")
        else:
            o_gp, o_words = old_entry
            delta_gp = f"{gp - o_gp:+.3f}" if o_gp is not None else "n/a"
            delta_w = (f"{words / o_words - 1:+.1%}"
                       if words and o_words else "n/a")
            ad_parts.append(f"{name} goodput {gp:.3f} ({delta_gp}), "
                            f"{words_str} ({delta_w})")
    print("bench-trend admission/soak: " + "; ".join(ad_parts))

el_old, el_new = elect_arms(old), elect_arms(new)
if not el_new:
    print("bench-trend re-election: n/a (no _elect arm in new report)")
else:
    el_parts = []
    for name in sorted(el_new):
        elections, cps = el_new[name]
        old_entry = el_old.get(name)
        cps_str = f"{cps:.0f}/s" if cps else "n/a"
        if old_entry is None:
            el_parts.append(
                f"{name} {elections:.0f} elections, {cps_str} (n/a)")
        else:
            o_el, o_cps = old_entry
            delta_el = f"{elections - o_el:+.0f}" if o_el is not None else "n/a"
            delta_cps = (f"{cps / o_cps - 1:+.1%}"
                         if cps and o_cps else "n/a")
            el_parts.append(f"{name} {elections:.0f} elections ({delta_el}), "
                            f"{cps_str} ({delta_cps})")
    print("bench-trend re-election: " + "; ".join(el_parts))
