(* actable — the reproduction CLI.

   Subcommands mirror the per-experiment index of DESIGN.md: [run] drives
   one protocol through one scenario; [table1..table4], [robustness],
   [fig1] and [witness] regenerate the paper's tables and figures; [list]
   prints the protocol inventory. *)

open Cmdliner

let u = Sim_time.default_u

(* ------------------------------------------------------------------ *)
(* Shared argument parsing                                             *)

let protocol_arg =
  let doc =
    Printf.sprintf "Protocol to run. One of: %s."
      (String.concat ", " Registry.names)
  in
  Arg.(
    required
    & opt (some (enum (List.map (fun n -> (n, n)) Registry.names))) None
    & info [ "p"; "protocol" ] ~docv:"NAME" ~doc)

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let f_arg =
  Arg.(
    value & opt int 2
    & info [ "f" ] ~docv:"F" ~doc:"Maximum number of tolerated crashes.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let vote0_arg =
  let doc = "Rank of a process voting 0 (repeatable), e.g. --vote0 3." in
  Arg.(value & opt_all int [] & info [ "vote0" ] ~docv:"RANK" ~doc)

let crash_conv =
  let parse s =
    (* "<rank>@<delay-units>" or "<rank>@<delay-units>:sends=<k>" *)
    let err =
      `Msg
        (Printf.sprintf
           "cannot parse crash %S (expected RANK@DELAYS or RANK@DELAYS:sends=K)"
           s)
    in
    match String.split_on_char '@' s with
    | [ rank; rest ] -> (
        match int_of_string_opt rank with
        | None -> Error err
        | Some rank -> (
            let pid = Pid.of_rank rank in
            match String.split_on_char ':' rest with
            | [ d ] -> (
                match float_of_string_opt d with
                | Some d ->
                    Ok (pid, Scenario.Before (int_of_float (d *. float_of_int u)))
                | None -> Error err)
            | [ d; sends ] -> (
                match
                  ( float_of_string_opt d,
                    String.split_on_char '=' sends )
                with
                | Some d, [ "sends"; k ] -> (
                    match int_of_string_opt k with
                    | Some k ->
                        Ok
                          ( pid,
                            Scenario.During_sends
                              (int_of_float (d *. float_of_int u), k) )
                    | None -> Error err)
                | _, _ -> Error err)
            | _ -> Error err))
    | _ -> Error err
  in
  let print ppf (pid, crash) =
    match crash with
    | Scenario.Before t ->
        Format.fprintf ppf "%d@%g" (Pid.rank pid) (float_of_int t /. float_of_int u)
    | Scenario.During_sends (t, k) ->
        Format.fprintf ppf "%d@%g:sends=%d" (Pid.rank pid)
          (float_of_int t /. float_of_int u)
          k
  in
  Arg.conv (parse, print)

let crash_arg =
  let doc =
    "Crash schedule entry (repeatable): RANK@DELAYS kills the process at \
     that instant (in units of U); RANK@DELAYS:sends=K lets it transmit K \
     messages at that instant first ('crashes while sending')."
  in
  Arg.(value & opt_all crash_conv [] & info [ "crash" ] ~docv:"SPEC" ~doc)

let network_arg =
  let doc =
    "Network model: 'exact' (every delay exactly U — nice executions), \
     'jittered' (random delays up to U — still synchronous), or 'gst' \
     (eventually synchronous: delays up to 4U before GST = 10U)."
  in
  Arg.(
    value
    & opt (enum [ ("exact", `Exact); ("jittered", `Jittered); ("gst", `Gst) ]) `Exact
    & info [ "network" ] ~docv:"MODEL" ~doc)

let consensus_arg =
  let doc = "Consensus substrate for protocols that use one." in
  Arg.(
    value
    & opt
        (enum
           [
             ("paxos", Registry.Paxos);
             ("floodset", Registry.Floodset);
             ("trivial", Registry.Trivial);
           ])
        Registry.Paxos
    & info [ "consensus" ] ~docv:"IMPL" ~doc)

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the full execution trace.")

let msc_arg =
  Arg.(
    value & flag
    & info [ "msc" ] ~doc:"Print the execution as an ASCII sequence chart.")

let dot_arg =
  Arg.(
    value & flag
    & info [ "dot" ]
        ~doc:"Print the execution as a Graphviz space-time digraph.")

let pairs_arg =
  let pair_conv =
    let parse s =
      match String.split_on_char 'x' s with
      | [ n; f ] -> (
          match (int_of_string_opt n, int_of_string_opt f) with
          | Some n, Some f -> Ok (n, f)
          | _ -> Error (`Msg (Printf.sprintf "cannot parse pair %S (NxF)" s)))
      | _ -> Error (`Msg (Printf.sprintf "cannot parse pair %S (NxF)" s))
    in
    Arg.conv (parse, fun ppf (n, f) -> Format.fprintf ppf "%dx%d" n f)
  in
  let doc = "(n, f) pair for the sweep, as NxF (repeatable)." in
  Arg.(value & opt_all pair_conv [] & info [ "pair" ] ~docv:"NxF" ~doc)

let default_pairs = [ (3, 1); (5, 1); (5, 2); (8, 3); (13, 6) ]
let pairs_or_default pairs = if pairs = [] then default_pairs else pairs

let jobs_arg =
  let doc =
    "Number of domains for the parallel batch runner (default: the \
     recommended domain count, capped by the ACTABLE_JOBS environment \
     variable when set). Results are identical whatever the value in the \
     deterministic modes; use 1 to force sequential execution."
  in
  Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* ------------------------------------------------------------------ *)
(* run                                                                 *)

let run_cmd =
  let action protocol n f seed vote0 crashes network consensus trace msc dot =
    let network =
      match network with
      | `Exact -> Network.exact ~u
      | `Jittered -> Network.jittered ~u
      | `Gst ->
          Network.eventually_synchronous ~u ~gst:(10 * u)
            ~max_early_delay:(4 * u)
    in
    let scenario =
      Scenario.make ~n ~f ~seed ~network ~crashes ()
      |> fun s -> Scenario.with_no_votes s (List.map Pid.of_rank vote0)
    in
    let runner = Registry.find_exn protocol in
    let report = runner.Registry.run ~consensus scenario in
    if trace then Format.printf "%a@.@." Trace.pp report.Report.trace;
    if msc then print_string (Trace_export.msc report);
    if dot then print_string (Trace_export.dot report);
    Format.printf "%a@.@." Report.pp_summary report;
    let verdict = Check.run report in
    Format.printf "execution class: %a@.%a@." Classify.pp
      (Classify.of_report report) Check.pp verdict;
    List.iter (Format.printf "  - %s@.") verdict.Check.violations;
    if Classify.is_nice report then
      Format.printf "nice-execution metrics: %a@." Metrics.pp
        (Metrics.of_nice report)
  in
  let term =
    Term.(
      const action $ protocol_arg $ n_arg $ f_arg $ seed_arg $ vote0_arg
      $ crash_arg $ network_arg $ consensus_arg $ trace_arg $ msc_arg $ dot_arg)
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one protocol through one scenario and check it.")
    term

(* ------------------------------------------------------------------ *)
(* tables and figures                                                  *)

let table_cmd name doc render =
  let action pairs = print_string (render ~pairs:(pairs_or_default pairs)) in
  Cmd.v (Cmd.info name ~doc) Term.(const action $ pairs_arg)

(* Verification failures must reach CI: report, then exit nonzero. *)
let gate what ok =
  if not ok then begin
    Format.eprintf "actable: %s verification failed@." what;
    exit 1
  end

let table1_cmd =
  let action pairs jobs =
    let text, ok = Table_one.render_checked ?jobs ~pairs:(pairs_or_default pairs) () in
    print_string text;
    gate "table1" ok
  in
  Cmd.v
    (Cmd.info "table1"
       ~doc:
         "Reproduce Table 1: the 27-cell lower-bound map, with verification.")
    Term.(const action $ pairs_arg $ jobs_arg)

let table2_cmd =
  table_cmd "table2" "Reproduce Table 2: delay-optimal protocols."
    Table_optimal.render_delay_optimal

let table3_cmd =
  table_cmd "table3" "Reproduce Table 3: message-optimal protocols."
    Table_optimal.render_message_optimal

let table4_cmd =
  let action pairs jobs =
    print_string (Table_compare.render ?jobs ~pairs:(pairs_or_default pairs) ());
    print_newline ();
    let text, ok = Table_compare.render_claims_checked ?jobs () in
    print_string text;
    gate "table4 claims" ok
  in
  Cmd.v
    (Cmd.info "table4"
       ~doc:
         "Reproduce the Section 6 comparison (the paper's Tables 4/5): INBAC \
          vs 2PC, 3PC, Paxos Commit, Faster Paxos Commit, (n-1+f)NBAC, 1NBAC.")
    Term.(const action $ pairs_arg $ jobs_arg)

let robustness_cmd =
  let action n f jobs =
    let text, ok = Robustness.render_checked ~n ~f ?jobs () in
    print_string text;
    gate "robustness" ok
  in
  Cmd.v
    (Cmd.info "robustness"
       ~doc:
         "Fault-injection battery: check each protocol's claimed cell against \
          observed properties per execution class.")
    Term.(const action $ n_arg $ f_arg $ jobs_arg)

let fig1_cmd =
  let action n f = print_string (Figure_one.render ~n ~f ()) in
  Cmd.v
    (Cmd.info "fig1"
       ~doc:"Reproduce Figure 1: INBAC state transitions (DOT + traced runs).")
    Term.(const action $ n_arg $ f_arg)

let lemmas_cmd =
  let action n f = print_string (Lemma_report.render ~n ~f ()) in
  Cmd.v
    (Cmd.info "lemmas"
       ~doc:
         "Observe the lower-bound lemmas on real traces: reachability \
          (Definitions 2/4), Lemma 1's backups, Lemma 5's acknowledgement \
          round trips, and the Section 6.1 send/receive phase profile.")
    Term.(const action $ n_arg $ f_arg)

let db_cmd =
  let action n f jobs =
    Format.printf
      "Transactional KV store over the commit protocols (n=%d, f=%d)@.@." n f;
    Format.printf "Contention sweep (INBAC; abort rate is validation-driven):@.";
    List.iter
      (fun (hf, s) ->
        Format.printf "  hot-fraction %.2f: %a@." hf Workload.pp_stats s)
      (Workload.contention_sweep ~protocol:"inbac" ~n ~f
         ~hot_fractions:[ 0.0; 0.25; 0.5; 0.75; 1.0 ]);
    Format.printf
      "@.Same workload across protocols (aborts coincide; message and \
       latency cost is the protocol's):@.";
    List.iter
      (fun (p, s) -> Format.printf "  %-22s %a@." p Workload.pp_stats s)
      (Workload.protocol_comparison ?jobs
         ~protocols:[ "inbac"; "2pc"; "paxos-commit"; "(2n-2+f)nbac" ]
         ~n ~f Workload.default)
  in
  Cmd.v
    (Cmd.info "db"
       ~doc:
         "Run the transactional key-value workload experiments: contention \
          sweep and per-protocol cost of the same workload.")
    Term.(const action $ n_arg $ f_arg $ jobs_arg)

let txserve_cmd =
  let ticks d = int_of_float (d *. float_of_int u) in
  let clients_arg =
    Arg.(
      value & opt int 128
      & info [ "clients" ] ~docv:"K" ~doc:"Closed-loop simulated clients.")
  in
  let txns_arg =
    Arg.(
      value & opt int 1000
      & info [ "txns" ] ~docv:"K" ~doc:"Total transactions to issue.")
  in
  let max_batch_arg =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"K"
          ~doc:"Transactions per commit instance (1 disables batching).")
  in
  let batch_window_arg =
    Arg.(
      value & opt float 0.5
      & info [ "batch-window" ] ~docv:"DELAYS"
          ~doc:
            "How long a batch collects co-resident transactions, in units \
             of U (0 launches immediately).")
  in
  let pipeline_arg =
    Arg.(
      value & opt int 64
      & info [ "pipeline" ] ~docv:"K"
          ~doc:"Concurrent commit instances cap (1 serializes).")
  in
  let think_arg =
    Arg.(
      value & opt float 1.0
      & info [ "think" ] ~docv:"DELAYS"
          ~doc:"Max client think time between transactions, units of U.")
  in
  let hot_fraction_arg =
    Arg.(
      value & opt float 0.1
      & info [ "hot-fraction" ] ~docv:"P"
          ~doc:
            "Legacy contention alias: share of accesses aimed at the hot \
             set, translated to the equivalent Zipf exponent. Ignored \
             when --zipf-s is given.")
  in
  let zipf_s_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "zipf-s" ] ~docv:"S"
          ~doc:
            "Key-popularity exponent: rank i is drawn with probability \
             proportional to 1/(i+1)^S (0 = uniform). Overrides the \
             legacy --hot-fraction alias.")
  in
  let election_timeout_arg =
    Arg.(
      value & opt float 12.0
      & info [ "election-timeout" ] ~docv:"DELAYS"
          ~doc:
            "How long a parked instance waits before the lowest live \
             shard takes over as stand-in coordinator and re-drives the \
             decision from the recorded votes, in units of U. 0 disables \
             re-election (parked instances wait for a recovery).")
  in
  let require_drained_arg =
    Arg.(
      value & flag
      & info [ "require-drained" ]
          ~doc:
            "Exit nonzero unless the run fully drains: no parked \
             instances and no write-ahead staging left on live shards.")
  in
  let outage_conv =
    let parse s =
      let err =
        `Msg
          (Printf.sprintf
             "cannot parse outage %S (expected RANK@DOWN or RANK@DOWN:UP, \
              instants in units of U)"
             s)
      in
      match String.split_on_char '@' s with
      | [ rank; rest ] -> (
          match (int_of_string_opt rank, String.split_on_char ':' rest) with
          | Some rank, [ d ] -> (
              match float_of_string_opt d with
              | Some d -> Ok (rank, ticks d, None)
              | None -> Error err)
          | Some rank, [ d; back ] -> (
              match (float_of_string_opt d, float_of_string_opt back) with
              | Some d, Some back -> Ok (rank, ticks d, Some (ticks back))
              | _ -> Error err)
          | _ -> Error err)
      | _ -> Error err
    in
    let print ppf (rank, d, back) =
      let delays t = float_of_int t /. float_of_int u in
      match back with
      | None -> Format.fprintf ppf "%d@%g" rank (delays d)
      | Some b -> Format.fprintf ppf "%d@%g:%g" rank (delays d) (delays b)
    in
    Arg.conv (parse, print)
  in
  let outage_arg =
    let doc =
      "Shard outage (repeatable): RANK@DOWN:UP takes the shard down at \
       instant DOWN and brings it back at UP (units of U; omit :UP to \
       never recover). A recovering shard adopts the decisions it missed; \
       instances blocked on it (2PC's dead coordinator) park and re-run."
    in
    Arg.(value & opt_all outage_conv [] & info [ "outage" ] ~docv:"SPEC" ~doc)
  in
  let svc_network_arg =
    let doc =
      "Network model: 'exact', 'jittered' (default — random delays up to \
       U), or 'gst' (eventually synchronous)."
    in
    Arg.(
      value
      & opt
          (enum [ ("exact", `Exact); ("jittered", `Jittered); ("gst", `Gst) ])
          `Jittered
      & info [ "network" ] ~docv:"MODEL" ~doc)
  in
  let floor_arg =
    Arg.(
      value
      & opt (some float) None
      & info
          [ "min-multishot-commits-per-sec" ]
          ~docv:"X"
          ~doc:
            "Exit nonzero when committed transactions per wall-clock \
             second fall below this floor.")
  in
  let admission_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("queue", Commit_service.Queue_waiters);
               ("abort", Commit_service.Abort_on_conflict);
             ])
          Commit_service.Queue_waiters
      & info [ "admission" ] ~docv:"MODE"
          ~doc:
            "Conflict policy at admission: 'queue' (default) parks the \
             transaction FIFO on the lock-holding instance and re-admits \
             it when that instance resolves; 'abort' rejects it locally \
             (the coordinator-side OCC check).")
  in
  let wait_budget_arg =
    Arg.(
      value & opt int 64
      & info [ "wait-budget" ] ~docv:"K"
          ~doc:
            "Max times a transaction may re-queue under --admission queue \
             before it falls back to a local abort (0 degenerates to \
             abort-on-conflict).")
  in
  let keys_arg =
    Arg.(
      value & opt int 2048
      & info [ "keys" ] ~docv:"K" ~doc:"Keyspace size.")
  in
  let soak_arg =
    Arg.(
      value & flag
      & info [ "soak" ]
          ~doc:
            "Streaming soak mode: constant-memory fixed-bin histograms \
             (bounded percentile error) and periodic progress flushes to \
             stderr — the mode for million-transaction runs.")
  in
  let flush_every_arg =
    Arg.(
      value & opt int 0
      & info [ "flush-every" ] ~docv:"K"
          ~doc:
            "Progress line to stderr every K issued transactions (0 \
             disables; --soak defaults it to txns/20).")
  in
  let words_ceiling_arg =
    Arg.(
      value
      & opt (some float) None
      & info
          [ "max-minor-words-per-txn" ]
          ~docv:"X"
          ~doc:
            "Exit nonzero when minor-heap words allocated per issued \
             transaction exceed this ceiling — the allocation gate the \
             soak CI leg uses.")
  in
  let action protocol n f seed consensus network clients txns max_batch
      batch_window pipeline think hot_fraction zipf_s election_timeout
      require_drained outages floor admission wait_budget keys soak
      flush_every words_ceiling =
    let network =
      match network with
      | `Exact -> Network.exact ~u
      | `Jittered -> Network.jittered ~u
      | `Gst ->
          Network.eventually_synchronous ~u ~gst:(10 * u)
            ~max_early_delay:(4 * u)
    in
    let spec =
      {
        Commit_service.default with
        Commit_service.clients;
        txns;
        seed;
        think_gap = max 1 (ticks think);
        keys;
        batch_window = ticks batch_window;
        max_batch;
        pipeline_depth = pipeline;
        admission;
        wait_budget;
        hot_fraction;
        zipf_s;
        election_timeout =
          (if election_timeout <= 0.0 then None
           else Some (max 1 (ticks election_timeout)));
        network;
        outages;
        soak;
        flush_every =
          (if flush_every > 0 then flush_every
           else if soak then max 1 (txns / 20)
           else 0);
      }
    in
    let stats = Commit_service.run ~consensus ~protocol ~n ~f spec in
    Format.printf "%a@." Commit_service.pp_stats stats;
    gate "txserve atomicity" stats.Commit_service.atomicity_ok;
    gate "txserve agreement" stats.Commit_service.agreement_ok;
    if require_drained then begin
      gate "txserve drained (no parked instances)"
        (stats.Commit_service.parked = 0);
      gate "txserve drained (no staging left on live shards)"
        (stats.Commit_service.staged_left = 0)
    end;
    (match words_ceiling with
    | Some ceil when stats.Commit_service.minor_words_per_txn > ceil ->
        Format.eprintf
          "actable: txserve allocation %.0f minor words/txn above ceiling \
           %g@."
          stats.Commit_service.minor_words_per_txn ceil;
        exit 1
    | _ -> ());
    match floor with
    | Some fl when stats.Commit_service.commits_per_sec < fl ->
        Format.eprintf
          "actable: txserve throughput %.0f commits/sec below floor %g@."
          stats.Commit_service.commits_per_sec fl;
        exit 1
    | _ -> ()
  in
  Cmd.v
    (Cmd.info "txserve"
       ~doc:
         "Serve a stream of transactions through the multi-shot commit \
          service: many concurrent instances of the selected protocol \
          multiplexed over one simulator run, with batching, pipelining, \
          parking of blocked instances, and shard crash/recovery.")
    Term.(
      const action $ protocol_arg $ n_arg $ f_arg $ seed_arg $ consensus_arg
      $ svc_network_arg $ clients_arg $ txns_arg $ max_batch_arg
      $ batch_window_arg $ pipeline_arg $ think_arg $ hot_fraction_arg
      $ zipf_s_arg $ election_timeout_arg $ require_drained_arg $ outage_arg
      $ floor_arg $ admission_arg $ wait_budget_arg $ keys_arg $ soak_arg
      $ flush_every_arg $ words_ceiling_arg)

let stress_cmd =
  let runs_arg =
    Arg.(value & opt int 50 & info [ "runs" ] ~docv:"K" ~doc:"Scenarios per battery.")
  in
  let action n f runs jobs =
    print_string
      (Stress.render ~runs ?jobs
         ~protocols:[ "inbac"; "(2n-2+f)nbac"; "2pc"; "3pc"; "paxos-commit" ]
         ~n ~f ())
  in
  Cmd.v
    (Cmd.info "stress"
       ~doc:
         "Statistical stress: many seeded crash/network scenarios per \
          protocol, with violation counts and decision-latency statistics.")
    Term.(const action $ n_arg $ f_arg $ runs_arg $ jobs_arg)

let weak_cmd =
  let action n = print_string (Table_weak.render ~n ()) in
  Cmd.v
    (Cmd.info "weak"
       ~doc:
         "Reproduce the Section 6.3 discussion: low-latency commit baselines \
          with weak semantics (Calvin-style, majority commit), the NBAC \
          property each gives up, and the weaker contract each keeps.")
    Term.(const action $ n_arg)

let ablation_cmd =
  let action n f = print_string (Ablation.render ~n ~f ()) in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:
         "Run the design-decision ablations: event priority (appendix remark \
          (b)), consensus substrate modularity (Theorem 6), the fast-abort \
          optimization and the Section-6 normalization.")
    Term.(const action $ n_arg $ f_arg)

let sweep_cmd =
  let csv_arg =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of a table.")
  in
  let fixed_f_arg =
    Arg.(value & opt int 2 & info [ "at-f" ] ~docv:"F" ~doc:"Fixed f for the n-sweep.")
  in
  let action csv f jobs =
    let protocols =
      [ "inbac"; "2pc"; "paxos-commit"; "faster-paxos-commit"; "(2n-2+f)nbac" ]
    in
    let ns = [ 3; 5; 8; 13; 21; 34 ] in
    if csv then begin
      print_string
        (Series.to_csv ~x_label:"n" (Series.over_n ?jobs ~protocols ~f ~ns ()));
      print_newline ();
      print_string
        (Series.to_csv ~x_label:"f"
           (Series.over_f ?jobs ~protocols ~n:13 ~fs:[ 1; 2; 3; 6; 9; 12 ] ()))
    end
    else begin
      print_string (Series.render_over_n ?jobs ~protocols ~f ~ns ());
      print_newline ();
      print_string
        (Series.render_over_f ?jobs ~protocols ~n:13 ~fs:[ 1; 2; 3; 6; 9; 12 ] ());
      print_newline ();
      print_endline "f = 1 crossover (INBAC pays exactly 2 extra messages over 2PC):";
      List.iter
        (fun (n, inbac, two_pc) ->
          Printf.printf "  n=%-3d inbac=%-4d 2pc=%-4d delta=%d\n" n inbac two_pc
            (inbac - two_pc))
        (Series.crossover_f1 ~ns)
    end
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Complexity series over n and f for the Section-6 protocols (the \
          reproduction's figures); --csv for plot-ready output.")
    Term.(const action $ csv_arg $ fixed_f_arg $ jobs_arg)

(* ------------------------------------------------------------------ *)
(* model checking                                                      *)

(* The model checker runs at small bounds by design (the space is
   exhaustive, not sampled), so [mc]/[mctable] default to n=3, f=1
   rather than the simulation commands' n=5, f=2. *)
let mc_n_arg =
  Arg.(value & opt int 3 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

let mc_f_arg =
  Arg.(
    value & opt int 1
    & info [ "f" ] ~docv:"F" ~doc:"Maximum number of tolerated crashes.")

let class_arg =
  let doc =
    "Execution class to explore: 'nice' (synchronous, failure-free), \
     'crash' (up to f crash injections), 'network' (commit-layer messages \
     may miss their synchronous slot), or 'all' (both failure kinds)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("nice", Mc_run.Nice); ("crash", Mc_run.Crash);
             ("network", Mc_run.Network); ("all", Mc_run.All);
           ])
        Mc_run.Crash
    & info [ "class" ] ~docv:"CLASS" ~doc)

let expect_arg =
  let doc =
    "What the exploration must establish for exit status 0: 'none' (the \
     bounded space must hold no violation), 'agreement', 'validity' or \
     'termination' (a replay-verified violation of that property must \
     exist), or 'any' (some replay-verified violation must exist)."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("none", `None); ("any", `Any);
             ("agreement", `Prop Mc_replay.Agreement);
             ("validity", `Prop Mc_replay.Validity);
             ("termination", `Prop Mc_replay.Termination);
           ])
        `None
    & info [ "expect" ] ~docv:"WHAT" ~doc)

let budgets_term ~default_states =
  let depth =
    Arg.(
      value & opt (some int) None
      & info [ "depth" ] ~docv:"D" ~doc:"Schedule-step depth bound per path.")
  in
  let states =
    Arg.(
      value & opt (some int) None
      & info [ "max-states" ] ~docv:"K"
          ~doc:
            (Printf.sprintf
               "State-fingerprint budget per frontier item (default %d)."
               default_states))
  in
  let horizon =
    Arg.(
      value & opt (some int) None
      & info [ "horizon" ] ~docv:"T"
          ~doc:"Timer horizon in units of U (default 12).")
  in
  let late =
    Arg.(
      value & opt (some int) None
      & info [ "max-late" ] ~docv:"K"
          ~doc:
            "Network classes: at most K commit-layer messages may miss \
             their synchronous slot (default 4).")
  in
  let combine depth states horizon late =
    let b = Mc_limits.default_budgets ~u in
    {
      Mc_limits.max_depth = Option.value depth ~default:b.Mc_limits.max_depth;
      max_states = Option.value states ~default:default_states;
      horizon =
        (match horizon with Some h -> h * u | None -> b.Mc_limits.horizon);
      max_late = Option.value late ~default:b.Mc_limits.max_late;
    }
  in
  Term.(const combine $ depth $ states $ horizon $ late)

let fp_arg =
  let doc =
    "State-fingerprint backend: 'hashed' (zero-marshal canonical hashing \
     via per-protocol hash_state) or 'marshal' (the Marshal-and-digest \
     reference path; slower, kept for cross-checking). Counters are \
     identical across backends."
  in
  Arg.(
    value
    & opt
        (enum
           [
             ("hashed", Mc_limits.Fp_hashed); ("marshal", Mc_limits.Fp_marshal);
           ])
        Mc_limits.default_fp
    & info [ "fp-backend" ] ~docv:"BACKEND" ~doc)

let snapshot_pool_arg =
  let doc =
    "Recycle machine-snapshot records across DFS nodes instead of \
     allocating fresh ones on every node (default true). Changes \
     allocation behaviour only: verdicts, counters and rendered output \
     are byte-identical either way; CI diffs the two modes."
  in
  Arg.(
    value & opt bool true & info [ "snapshot-pool" ] ~docv:"BOOL" ~doc)

let symmetry_arg =
  let doc =
    "Symmetry reduction: canonicalize state fingerprints under the \
     protocol's declared process-permutation group (vote-refined), prune \
     permutation-twin crash candidates and orbit-duplicate frontier \
     items. 'on' (the default) cuts the explored space by the orbit \
     collapse; 'off' restores the historical exploration byte for byte. \
     Verdicts are identical either way; the marshal fingerprint backend \
     forces 'off' (raw-byte hashing cannot honor a renaming)."
  in
  Arg.(
    value
    & opt (enum [ ("on", true); ("off", false) ]) Mc_limits.default_symmetry
    & info [ "symmetry" ] ~docv:"on|off" ~doc)

let swarm_open_depth_arg =
  let doc =
    "Swarm mode: how many tree levels a walker explores through \
     already-claimed states before cutting (default 6, clamped to \
     0..32). Deeper open levels duplicate more work near the root but \
     seed walkers with more diverse subtrees."
  in
  Arg.(
    value
    & opt (some int) None
    & info [ "swarm-open-depth" ] ~docv:"D" ~doc)

let shared_visited_arg =
  let doc =
    "Dedup states globally per vote-set group (a digest-range-sharded \
     visited table shared by all frontier items) instead of per frontier \
     item: fewer states explored, higher states/sec, but the state \
     counters become dependent on --jobs timing. Verdicts are unaffected. \
     The default per-item mode keeps every counter bit-identical across \
     --jobs."
  in
  Arg.(value & flag & info [ "shared-visited" ] ~doc)

let swarm_arg =
  let doc =
    "Explore with independent randomized-order DFS walks, one per domain, \
     coupled only through a shared visited table (implies \
     --shared-visited): no frontier handoff, no steal traffic. The mode \
     that actually scales with domains; counters are jobs-dependent like \
     any shared-table mode, verdicts are unaffected. Without this flag \
     (or --no-swarm) swarm turns on automatically when --shared-visited \
     runs at 4 or more jobs."
  in
  Arg.(value & flag & info [ "swarm" ] ~doc)

let no_swarm_arg =
  let doc =
    "Never use swarm exploration, even with --shared-visited at high \
     --jobs; keep the frontier decomposition."
  in
  Arg.(value & flag & info [ "no-swarm" ] ~doc)

let mc_cmd =
  let no_stealing_arg =
    Arg.(
      value & flag
      & info [ "no-stealing" ]
          ~doc:
            "Schedule frontier items with the legacy shared atomic cursor \
             instead of per-domain work-stealing deques. Counters are \
             identical either way in per-item mode; this is the control \
             knob the scheduling benchmarks flip.")
  in
  let no_naive_arg =
    Arg.(
      value & flag
      & info [ "no-naive" ]
          ~doc:
            "Skip the naive-enumeration pass that measures the DPOR + \
             dedup pruning ratio (the pass is skipped anyway when a \
             violation is found).")
  in
  let stats_arg =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print exploration throughput (states/sec, schedules/sec over \
             the wall time of the exploration) and the peak visited-table \
             occupancy of any frontier item.")
  in
  let action protocol n f klass expect budgets fp pool symmetry
      swarm_open_depth stats consensus vote0 no_naive msc jobs shared
      no_stealing swarm no_swarm =
    let vote_sets =
      match vote0 with
      | [] -> None
      | ranks ->
          let votes = Array.make n Vote.yes in
          List.iter
            (fun r -> votes.(Pid.index (Pid.of_rank r)) <- Vote.no)
            ranks;
          Some [ votes ]
    in
    let visited =
      if shared || swarm then Mc_limits.Shared else Mc_limits.default_visited
    in
    let swarm_opt =
      if swarm then Some true else if no_swarm then Some false else None
    in
    let gc0 = Gc.quick_stat () in
    let t0 = Unix.gettimeofday () in
    let outcome =
      Mc_run.run ~consensus ?vote_sets ~budgets ~fp ~pool ~symmetry
        ?swarm_open_depth ?jobs ~naive:(not no_naive) ~visited
        ~stealing:(not no_stealing) ?swarm:swarm_opt ~protocol ~n ~f ~klass
        ()
    in
    let elapsed = Unix.gettimeofday () -. t0 in
    let gc1 = Gc.quick_stat () in
    Format.printf "%a@." Mc_run.pp_outcome outcome;
    if stats then begin
      let c = outcome.Mc_run.counters in
      let per_sec x = float_of_int x /. max elapsed 1e-9 in
      Format.printf
        "stats: backend %s, %.3fs wall, %.0f states/sec, %.0f \
         schedules/sec, peak visited-table occupancy %d@."
        (Mc_limits.fp_backend_to_string fp)
        elapsed
        (per_sec c.Mc_limits.states)
        (per_sec c.Mc_limits.schedules)
        c.Mc_limits.peak_visited;
      (match outcome.Mc_run.shard_load with
      | Some (occ, bk) ->
          Format.printf
            "stats: shared-table occupancy %d/%d buckets (load %.2f)@." occ
            bk
            (float_of_int occ /. float_of_int (max bk 1))
      | None -> ());
      if c.Mc_limits.canon_calls > 0 then begin
        (* ns/call of the canonicalization itself, measured on a probe
           context (mid-exploration state, preparation outside the
           timer): the symmetry-on sampler hashes under every group
           renaming, the plain one hashes once *)
        let probe symmetry =
          Mc_run.fingerprint_sampler ~consensus ~symmetry ~protocol ~n ~f
            ~klass ()
        in
        let time_ns probe =
          let calls = 2_000 in
          probe Mc_limits.Fp_hashed 100 (* warm-up *);
          let t0 = Unix.gettimeofday () in
          probe Mc_limits.Fp_hashed calls;
          (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int calls
        in
        Format.printf
          "stats: symmetry orbit hits %d (%.1f%% of %d canonicalizations), \
           twin skips %d, canonicalization %.0f ns/call (plain hash %.0f)@."
          c.Mc_limits.orbit_hits
          (100.0
          *. float_of_int c.Mc_limits.orbit_hits
          /. float_of_int (max c.Mc_limits.canon_calls 1))
          c.Mc_limits.canon_calls c.Mc_limits.twin_skips
          (time_ns (probe true))
          (time_ns (probe false))
      end;
      (* Gc.quick_stat reads the calling domain only; with --jobs 1 the
         exploration runs inline on this domain, so the deltas cover it
         exactly. With more domains they undercount. *)
      let per_state x = x /. float_of_int (max c.Mc_limits.states 1) in
      Format.printf
        "stats: gc minor-words/state %.1f, promoted-words/state %.1f, \
         major collections %d (main domain; exact at --jobs 1)@."
        (per_state (gc1.Gc.minor_words -. gc0.Gc.minor_words))
        (per_state (gc1.Gc.promoted_words -. gc0.Gc.promoted_words))
        (gc1.Gc.major_collections - gc0.Gc.major_collections)
    end;
    (match outcome.Mc_run.violation with
    | Some v when msc ->
        let report, _ = Mc_replay.replay ~consensus v.Mc_replay.witness in
        print_newline ();
        print_string (Trace_export.msc report)
    | _ -> ());
    let replay_ok = outcome.Mc_run.replay_verified <> Some false in
    let ok =
      match (expect, outcome.Mc_run.violation) with
      | `None, None -> true
      | `None, Some _ -> false
      | (`Any | `Prop _), None -> false
      | `Any, Some _ -> replay_ok
      | `Prop p, Some v -> v.Mc_replay.property = p && replay_ok
    in
    gate "mc" ok
  in
  let term =
    Term.(
      const action $ protocol_arg $ mc_n_arg $ mc_f_arg $ class_arg
      $ expect_arg
      $ budgets_term ~default_states:400_000
      $ fp_arg $ snapshot_pool_arg $ symmetry_arg $ swarm_open_depth_arg
      $ stats_arg $ consensus_arg $ vote0_arg $ no_naive_arg $ msc_arg
      $ jobs_arg $ shared_visited_arg $ no_stealing_arg $ swarm_arg
      $ no_swarm_arg)
  in
  Cmd.v
    (Cmd.info "mc"
       ~doc:
         "Model-check one protocol: explore every schedule of the bounded \
          configuration (DPOR + state dedup), and either certify the space \
          clean or emit a shrunk, engine-replayable counterexample.")
    term

let mctable_cmd =
  let action n f budgets fp pool symmetry jobs shared =
    let visited =
      if shared then Mc_limits.Shared else Mc_limits.default_visited
    in
    let text, ok =
      Table_mc.render_checked ~budgets ~fp ~pool ~symmetry ?jobs ~visited ~n
        ~f ()
    in
    print_string text;
    gate "mctable" ok
  in
  let term =
    Term.(
      const action $ mc_n_arg $ mc_f_arg
      $ budgets_term ~default_states:120_000
      $ fp_arg $ snapshot_pool_arg $ symmetry_arg $ jobs_arg
      $ shared_visited_arg)
  in
  Cmd.v
    (Cmd.info "mctable"
       ~doc:
         "Model-check the Section-6 protocols across execution classes and \
          check each verdict against the protocol's claimed cell; the L1 \
          witnesses (2PC blocks under crash, 1NBAC and the INBAC \
          ack-undershoot disagree under network failure) fall out \
          mechanically.")
    term

(* ------------------------------------------------------------------ *)
(* witness                                                             *)

let witness_cmd =
  let action () =
    let all_ok = ref true in
    let show name scenario ~expect ~holds =
      let r = (Registry.find_exn name).Registry.run scenario in
      let v = Check.run r in
      let ok = holds v in
      if not ok then all_ok := false;
      Format.printf "%-22s %-18s agreement=%-5b termination=%-5b  [%s] %s@."
        name
        (Classify.to_string (Classify.of_report r))
        v.Check.agreement v.Check.termination
        (if ok then "ok" else "FAIL")
        expect
    in
    show "2pc" (Witness.two_pc_blocks ~n:5)
      ~expect:"expect: blocks (termination=false)"
      ~holds:(fun v -> not v.Check.termination);
    show "1nbac" (Witness.one_nbac_disagreement ~n:5)
      ~expect:"expect: agreement=false (the (AVT,VT) gap)"
      ~holds:(fun v -> not v.Check.agreement);
    show "(n-1+f)nbac" (Witness.chain_nbac_disagreement ~n:5)
      ~expect:"expect: agreement=false (noop-based implicit yes)"
      ~holds:(fun v -> not v.Check.agreement);
    show "(2n-2)nbac" (Witness.star_nbac_partial_broadcast ~n:5 ~keep:2)
      ~expect:"expect: agreement=true (relay saves the crash case)"
      ~holds:(fun v -> v.Check.agreement);
    show "(2n-2)nbac" (Witness.star_nbac_disagreement ~n:5)
      ~expect:"expect: agreement=false (network failure)"
      ~holds:(fun v -> not v.Check.agreement);
    show "inbac" (Witness.inbac_slow_backup ~n:5 ~f:2)
      ~expect:"expect: agreement=true, termination=true (indulgent)"
      ~holds:(fun v -> v.Check.agreement && v.Check.termination);
    show "inbac" (Witness.eventual_synchrony ~n:5 ~f:2 ~seed:1)
      ~expect:"expect: agreement=true, termination=true (indulgent)"
      ~holds:(fun v -> v.Check.agreement && v.Check.termination);
    gate "witness" !all_ok
  in
  Cmd.v
    (Cmd.info "witness"
       ~doc:
         "Run the lower-bound witness executions (the E_0/E_async \
          constructions of Lemmas 1, 3, 5) and show where each protocol's \
          guarantees stop.")
    Term.(const action $ const ())

(* ------------------------------------------------------------------ *)
(* list                                                                *)

let list_cmd =
  let action () =
    let table =
      Ascii.create
        ~header:[ "protocol"; "cell (CF,NF)"; "nice msgs"; "nice delays"; "note" ]
    in
    List.iter
      (fun (e : Complexity.entry) ->
        Ascii.add_row table
          [
            e.Complexity.protocol;
            Format.asprintf "%a" Props.pp_cell e.Complexity.cell;
            string_of_int (e.Complexity.messages ~n:5 ~f:2) ^ " (n=5,f=2)";
            string_of_int (e.Complexity.delays ~n:5 ~f:2);
            e.Complexity.note;
          ])
      Complexity.entries;
    Ascii.print table
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List every protocol with its complexity and cell.")
    Term.(const action $ const ())

let main_cmd =
  let doc =
    "Reproduction harness for 'How Fast can a Distributed Transaction \
     Commit?' (Guerraoui & Wang, PODS 2017)."
  in
  Cmd.group (Cmd.info "actable" ~version:"1.0.0" ~doc)
    [
      run_cmd; table1_cmd; table2_cmd; table3_cmd; table4_cmd; robustness_cmd;
      fig1_cmd; witness_cmd; mc_cmd; mctable_cmd; ablation_cmd; sweep_cmd;
      weak_cmd; stress_cmd; db_cmd; txserve_cmd; lemmas_cmd; list_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
