(** The multi-shot commit service: a long-lived engine committing a
    {e stream} of transactions over the sharded KV, in the spirit of
    Chockler & Gotsman's multi-shot transaction commit.

    Where {!Txn_system.submit} runs one protocol instance to completion
    before the next begins, this service drives {e many concurrent commit
    instances through a single simulator run}: every instance is a fresh
    {!Machine} automaton of the selected protocol (INBAC / Paxos Commit /
    2PC / any {!Registry} entry), and all instances' proposals,
    deliveries and timeouts multiplex over one instance-tagged event
    queue ({!Mux}), one network model and one simulated clock.

    The workload is closed-loop: [clients] simulated clients each submit
    a transaction, wait for its decision, think, and submit the next.
    Transactions route to the shards owning their keys (the
    {!Txn_system.placement_key} hash); writes stage in each owner's
    {!Kv_store} write-ahead area at instance start and are applied or
    discarded when the instance decides.

    - {b Batching}: co-resident transactions share one commit instance
      when their write sets land on the same owner set and their key sets
      don't conflict; a batch launches when it reaches [max_batch] or its
      [batch_window] expires.
    - {b Pipelining}: up to [pipeline_depth] instances run concurrently —
      a shard participates in instance [k+1] while [k] is still deciding.
      Ready batches beyond the cap queue and launch as instances retire.
    - {b Blocking and recovery}: an instance that quiesces with no
      decision (2PC whose coordinator shard is down) {e parks} — its
      staged writes and write locks stay put, its clients stall, but the
      pipeline keeps flowing around it. When the shard recovers
      ([outages] are (rank, down_at, back_at) triples), it first adopts
      the decisions reached while it was down, then every parked instance
      re-runs with its recorded votes and resolves.

    After the run an atomicity check extends {!Txn_system}'s per-instance
    check to the whole history: for every transaction, each write-owner
    shard must have either installed the writes (decision reached and
    shard up or recovered) or still hold them staged (parked, or shard
    still down) — and never disagree with the instance's outcome. *)

type spec = {
  clients : int;  (** closed-loop clients *)
  txns : int;  (** total transactions to issue across all clients *)
  think_gap : Sim_time.t;
      (** max client think time between decision and next submit *)
  keys : int;  (** keyspace size (see {!Workload.pick_key}) *)
  hot_keys : int;
  hot_fraction : float;
  reads_per_txn : int;
  writes_per_txn : int;  (** >= 1 *)
  batch_window : Sim_time.t;
      (** how long a batch waits for co-resident transactions; 0 disables
          batching (every transaction gets its own instance) *)
  max_batch : int;  (** transactions per instance cap *)
  pipeline_depth : int;  (** concurrent instances cap; 1 serializes *)
  network : Network.t;
  outages : (int * Sim_time.t * Sim_time.t option) list;
      (** shard outages: (rank, down_at, back_at); [None] never recovers *)
  max_time : Sim_time.t;  (** safety horizon for the simulated clock *)
  seed : int;
}

val default : spec
(** 128 clients, 1000 txns, 2048 keys (16 hot at 0.1), 2 reads + 2
    writes, batches of up to 8 within half a delay, pipeline depth 64,
    jittered network, no outages. *)

type stats = {
  protocol : string;
  transactions : int;  (** issued *)
  committed : int;
  aborted : int;  (** aborted by a protocol instance's decision *)
  local_aborts : int;
      (** aborted at admission: a key was write-locked by an in-flight
          instance, so the transaction never consumed an instance (the
          coordinator-side OCC check) *)
  parked : int;  (** still unresolved at end of run *)
  instances : int;  (** commit instances launched (first attempts) *)
  retries : int;  (** parked instances re-run after a recovery *)
  mean_batch : float;  (** transactions per instance *)
  peak_in_flight : int;  (** max concurrent instances observed *)
  total_messages : int;  (** network messages across all instances *)
  staged_left : int;  (** write-ahead entries still staged at end *)
  makespan_delays : float;  (** simulated end of run, units of U *)
  latency : Histogram.summary;
      (** commit latency, submit to last shard decision, units of U *)
  wall_seconds : float;
  commits_per_sec : float;  (** committed txns per wall-clock second *)
  atomicity_ok : bool;  (** the whole-history staging/install check *)
  agreement_ok : bool;  (** no instance saw conflicting decisions *)
}

val run :
  ?consensus:Registry.consensus_impl ->
  protocol:string -> n:int -> f:int -> spec -> stats
(** Run the service over [n] shards tolerating [f] crashes.
    @raise Not_found on an unknown protocol name.
    @raise Invalid_argument on a nonsensical spec (no clients, no writes,
    [pipeline_depth < 1], ...). *)

val pp_stats : Format.formatter -> stats -> unit
