(** The multi-shot commit service: a long-lived engine committing a
    {e stream} of transactions over the sharded KV, in the spirit of
    Chockler & Gotsman's multi-shot transaction commit.

    Where {!Txn_system.submit} runs one protocol instance to completion
    before the next begins, this service drives {e many concurrent commit
    instances through a single simulator run}: every instance is a
    {!Machine} automaton of the selected protocol (INBAC / Paxos Commit /
    2PC / any {!Registry} entry), and all instances' proposals,
    deliveries and timeouts multiplex over one instance-tagged event
    queue ({!Mux}), one network model and one simulated clock.

    The workload is closed-loop: [clients] simulated clients each submit
    a transaction, wait for its decision, think, and submit the next.
    Transactions route to the shards owning their keys (the
    {!Txn_system.placement_key} hash); writes stage in each owner's
    {!Kv_store} write-ahead area at instance start and are applied or
    discarded when the instance decides.

    - {b Batching}: co-resident transactions share one commit instance
      when their write sets land on the same owner set and their key sets
      don't conflict; a batch launches when it reaches [max_batch] or its
      [batch_window] expires.
    - {b Pipelining}: up to [pipeline_depth] instances run concurrently —
      a shard participates in instance [k+1] while [k] is still deciding.
      Ready batches beyond the cap queue and launch as instances retire.
    - {b Admission}: a transaction that arrives while one of its keys is
      write-locked by an in-flight instance either aborts locally
      ([Abort_on_conflict], the coordinator-side OCC check) or joins the
      holding instance's FIFO wait queue and re-admits when that instance
      resolves ([Queue_waiters], the default). Waiters hold no locks
      while they wait, so queues cannot deadlock; [wait_budget] bounds
      how often a transaction may re-queue before falling back to a local
      abort, so re-conflict chains cannot livelock. A waiter whose
      conflicting holder already {e decided} (its remaining locks release
      only when a dead shard recovers) aborts immediately — queues drain
      on every decision, election takeover and recovery adoption.
    - {b Blocking and recovery}: an instance that quiesces with no
      decision (2PC whose coordinator shard is down) {e parks} — its
      staged writes and write locks stay put, its clients stall, but the
      pipeline keeps flowing around it. When the shard recovers
      ([outages] are (rank, down_at, back_at) triples), it first adopts
      the decisions reached while it was down, then every parked instance
      re-runs with its recorded votes and resolves.
    - {b Coordinator re-election}: a parked instance also arms an
      [election_timeout] timer. When it fires and the instance is still
      undecided, the lowest live rank becomes a stand-in coordinator and
      re-drives the decision from the recorded vote log — a crash-free
      replay, so even a blocking protocol terminates without the dead
      shard. The replay applies the same deterministic vote rule the lost
      coordinator would have (commit iff every shard voted yes), so the
      decision is at-most-once: adoption on a later recovery reconciles
      the recovering shard against the stand-in's outcome through the
      ordinary decided-instance path. A run with a never-healing outage
      ([back_at = None]) therefore drains: no parked instances, no staged
      write-ahead entries left on live shards.
    - {b Soak scale}: the service's footprint is the {e live} state, not
      the history — machines and instance records recycle through pools
      ({!Machine.reset}, disable with [recycle = false]), event cells and
      Mux slots recycle ({!Mux.retire}), fully resolved instances retire
      with their atomicity checked incrementally, and [soak = true] swaps
      the exact latency/queue histograms for fixed-bin streaming ones —
      so one run can push millions of transactions from thousands of
      clients in bounded memory. [flush_every > 0] reports progress to
      stderr every that-many issued transactions.

    After the run an atomicity check extends {!Txn_system}'s per-instance
    check to the whole history: for every transaction, each write-owner
    shard must have either installed the writes (decision reached and
    shard up or recovered) or still hold them staged (parked, or shard
    still down) — and never disagree with the instance's outcome. Retired
    instances are checked as they leave; the end-of-run pass covers
    whatever is still live. *)

type admission =
  | Queue_waiters
      (** queue on the holding instance, FIFO per conflict, bounded by
          [wait_budget] re-queues *)
  | Abort_on_conflict  (** abort locally at admission (the OCC check) *)

type spec = {
  clients : int;  (** closed-loop clients *)
  txns : int;  (** total transactions to issue across all clients *)
  think_gap : Sim_time.t;
      (** max client think time between decision and next submit *)
  keys : int;  (** keyspace size, keys "k0" .. "k<keys-1>" *)
  hot_keys : int;  (** legacy contention alias, see {!Workload.Zipf.of_hot} *)
  hot_fraction : float;  (** legacy contention alias *)
  zipf_s : float option;
      (** key-popularity exponent; [None] derives it from the legacy
          [hot_keys]/[hot_fraction] pair *)
  reads_per_txn : int;
  writes_per_txn : int;  (** >= 1 *)
  batch_window : Sim_time.t;
      (** how long a batch waits for co-resident transactions; 0 disables
          batching (every transaction gets its own instance) *)
  max_batch : int;  (** transactions per instance cap *)
  pipeline_depth : int;  (** concurrent instances cap; 1 serializes *)
  admission : admission;  (** conflict policy at admission *)
  wait_budget : int;
      (** max re-queues per transaction under [Queue_waiters] before it
          falls back to a local abort; 0 degenerates to abort-on-conflict *)
  network : Network.t;
  outages : (int * Sim_time.t * Sim_time.t option) list;
      (** shard outages: (rank, down_at, back_at); [None] never recovers *)
  election_timeout : Sim_time.t option;
      (** how long a parked instance waits before the lowest live rank
          takes over as stand-in coordinator; [None] disables re-election
          (parked instances wait for a recovery), [Some d] requires
          [d >= 1] *)
  soak : bool;
      (** constant-memory histograms (fixed-bin streaming, percentile
          error bounded by one bin width) for very long runs *)
  flush_every : int;
      (** stderr progress line every this many issued transactions;
          0 disables *)
  recycle : bool;
      (** pool and reset machines instead of creating one per drive;
          observable behaviour is identical (the reset-vs-fresh
          differential in the tests pins this), only allocation changes *)
  max_time : Sim_time.t;  (** safety horizon for the simulated clock *)
  seed : int;
}

val default : spec
(** 128 clients, 1000 txns, 2048 keys (16 hot at 0.1, as a Zipf alias),
    2 reads + 2 writes, batches of up to 8 within half a delay, pipeline
    depth 64, queued admission with a 64-wait budget, jittered network,
    no outages, election timeout 12 delays, machine recycling on. *)

type stats = {
  protocol : string;
  admission_mode : string;  (** "queue" or "abort" *)
  transactions : int;  (** issued *)
  committed : int;
  aborted : int;  (** aborted by a protocol instance's decision *)
  local_aborts : int;
      (** aborted at admission: a key was write-locked by an in-flight
          instance and the transaction did not (or could no longer) wait *)
  queued : int;
      (** transactions that waited on a holder's queue at least once *)
  queue_aborts : int;
      (** local aborts taken in queue mode: the wait budget ran out, or
          the conflicting holder had already decided (its locks release
          only on a recovery, so waiting is unbounded); included in
          [local_aborts] *)
  parked : int;  (** still unresolved at end of run (includes waiters) *)
  instances : int;  (** commit instances launched (first attempts) *)
  retries : int;  (** parked instances re-run after a recovery *)
  elections : int;
      (** stand-in re-drives: a parked instance's election timer fired
          and a surviving shard took over *)
  stolen : int;
      (** decisions reached by an elected stand-in (<= elections; an
          elected drive beaten to the decision by a concurrent recovery
          retry does not count) *)
  mean_batch : float;  (** transactions per instance *)
  peak_in_flight : int;  (** max concurrent instances observed *)
  total_messages : int;  (** network messages across all instances *)
  staged_left : int;
      (** write-ahead entries still staged on {e live} shards at end — a
          still-down shard's staging is recoverable by adoption, not a
          leak, so it is excluded *)
  makespan_delays : float;  (** simulated end of run, units of U *)
  latency : Histogram.summary;
      (** commit latency, submit to last shard decision (queue wait
          included), units of U *)
  time_parked : Histogram.summary;
      (** park-to-decision delay for instances that parked and were later
          resolved (by election or recovery), units of U *)
  queue_depth : Histogram.summary;
      (** total waiting transactions, sampled at each enqueue *)
  zipf_s : float;  (** the resolved key-popularity exponent *)
  goodput : float;  (** committed / issued *)
  wall_seconds : float;
  commits_per_sec : float;  (** committed txns per wall-clock second *)
  minor_words_per_txn : float;
      (** minor-heap words allocated per issued transaction — the
          allocation-pressure gauge the soak gate watches *)
  atomicity_ok : bool;  (** the whole-history staging/install check *)
  agreement_ok : bool;  (** no instance saw conflicting decisions *)
}

val run :
  ?consensus:Registry.consensus_impl ->
  ?observe:(string -> Vote.decision -> unit) ->
  protocol:string -> n:int -> f:int -> spec -> stats
(** Run the service over [n] shards tolerating [f] crashes. [observe] is
    called once per decided transaction with its id and decision, in
    decision order — the hook the differential tests use to compare
    per-transaction outcomes across configurations.
    @raise Not_found on an unknown protocol name.
    @raise Invalid_argument on a nonsensical spec (no clients, no writes,
    [pipeline_depth < 1], [wait_budget < 0], [election_timeout < 1],
    ...). *)

val pp_stats : Format.formatter -> stats -> unit

val arm_json_body : stats -> string
(** The deterministic slice of a bench arm's JSON object body (no
    enclosing braces, no wall-clock or GC fields): simulated-clock
    counters and delay summaries only, so two runs of the same spec
    produce the same bytes regardless of [Batch.run ~jobs] or machine
    load. The bench appends [wall_seconds]/[commits_per_sec]/
    [minor_words_per_txn] itself. *)
