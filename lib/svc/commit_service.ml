type admission = Queue_waiters | Abort_on_conflict

type spec = {
  clients : int;
  txns : int;
  think_gap : Sim_time.t;
  keys : int;
  hot_keys : int;
  hot_fraction : float;
  zipf_s : float option;
  reads_per_txn : int;
  writes_per_txn : int;
  batch_window : Sim_time.t;
  max_batch : int;
  pipeline_depth : int;
  admission : admission;
  wait_budget : int;
  network : Network.t;
  outages : (int * Sim_time.t * Sim_time.t option) list;
  election_timeout : Sim_time.t option;
  soak : bool;
  flush_every : int;
  recycle : bool;
  max_time : Sim_time.t;
  seed : int;
}

let default =
  let u = Sim_time.default_u in
  {
    clients = 128;
    txns = 1000;
    think_gap = u;
    keys = 2048;
    hot_keys = 16;
    hot_fraction = 0.1;
    zipf_s = None;
    reads_per_txn = 2;
    writes_per_txn = 2;
    batch_window = u / 2;
    max_batch = 8;
    pipeline_depth = 64;
    admission = Queue_waiters;
    wait_budget = 64;
    network = Network.jittered ~u;
    outages = [];
    election_timeout = Some (12 * u);
    soak = false;
    flush_every = 0;
    recycle = true;
    max_time = 100_000 * u;
    seed = 11;
  }

type stats = {
  protocol : string;
  admission_mode : string;
  transactions : int;
  committed : int;
  aborted : int;
  local_aborts : int;
  queued : int;
  queue_aborts : int;
  parked : int;
  instances : int;
  retries : int;
  elections : int;
  stolen : int;
  mean_batch : float;
  peak_in_flight : int;
  total_messages : int;
  staged_left : int;
  makespan_delays : float;
  latency : Histogram.summary;
  time_parked : Histogram.summary;
  queue_depth : Histogram.summary;
  zipf_s : float;
  goodput : float;
  wall_seconds : float;
  commits_per_sec : float;
  minor_words_per_txn : float;
  atomicity_ok : bool;
  agreement_ok : bool;
}

(* Event classes at equal simulated time, matching the engine: crashes <
   proposals/service events < deliveries < timeouts. *)
let crash_class = 0
let service_class = 1
let deliver_class = 2
let timeout_class = 3

module Make (P : Proto.PROTOCOL) (C : Proto.CONSENSUS) = struct
  module M = Machine.Make (P) (C)

  (* One commit instance's events, mirroring the engine's event type. *)
  type iev =
    | Propose of Pid.t
    | Deliver of {
        src : Pid.t;
        dst : Pid.t;
        payload : M.wire;
        sent_at : Sim_time.t;
      }
    | Timeout of { pid : Pid.t; layer : Trace.layer; id : string; epoch : int }
    | Crash of Pid.t

  type sev =
    | Submit of int  (* client id *)
    | Launch_batch of int  (* batch-window expiry *)
    | Outage of Pid.t
    | Recover of Pid.t
    | Elect  (* election timer of the instance the event is tagged with *)
    | Inst of iev

  (* A transaction waiting in / running through an instance:
     (txn, client, submitted_at). *)
  type member = Txn.t * int * Sim_time.t

  type inst = {
    mutable i_id : int;
    mutable tag : int;  (* current Mux tag; re-tagged on every re-drive *)
    mutable i_members : member list;  (* oldest first *)
    votes : Vote.t array;
    mutable machine : M.t;
    mutable started : Sim_time.t;
    mutable outcome : Vote.decision option;  (* None while running/parked *)
    mutable quiesced : bool;
    resolved : bool array;  (* per shard: staged writes applied/discarded *)
    mutable attempts : int;
    mutable elected : bool;  (* current drive is a stand-in replay *)
    mutable parked_at : Sim_time.t option;  (* first park instant *)
    waiters : waiter Queue.t;
        (* queued admission: transactions blocked on a write lock this
           instance holds, FIFO; released when the instance resolves *)
  }

  and waiter = {
    w_txn : Txn.t;
    w_client : int;
    w_submitted : Sim_time.t;
    w_keys : string list;
    mutable w_waits : int;  (* completed waits so far *)
  }

  type batch = {
    b_id : int;
    owners : string;  (* canonical write-owner-set key *)
    mutable b_members : waiter list;  (* newest first *)
    mutable b_launched : bool;
  }

  let run ?observe ~n ~f (spec : spec) : stats =
    let u = Sim_time.default_u in
    let env_of pid = { Proto.n; f; u; self = pid } in
    let rng = Rng.create spec.seed in
    let dist =
      match spec.zipf_s with
      | Some s -> Workload.Zipf.make ~keys:spec.keys ~s
      | None ->
          Workload.Zipf.of_hot ~keys:spec.keys ~hot_keys:spec.hot_keys
            ~hot_fraction:spec.hot_fraction
    in
    let q : sev Mux.t = Mux.create () in
    let stores = Array.init n (fun _ -> Kv_store.create ()) in
    let all_pids = Pid.all ~n in
    let owner_of key = Txn_system.placement_key ~n key in
    (* the keyspace is dense and known up front: intern every key name and
       its owner once, so the generator never formats a key string again *)
    let key_names = Array.init spec.keys (fun i -> Printf.sprintf "k%d" i) in
    let key_owner = Array.map owner_of key_names in
    (* write locks held by launched-but-unresolved instances; a key may
       appear once per holding instance. Holding the instance record (not
       just its id) lets queued admission reach the holder's wait queue. *)
    let locks : (string, inst) Hashtbl.t array =
      Array.init n (fun _ -> Hashtbl.create 64)
    in
    let down = Array.make n false in
    let send_seq = ref 0 in
    let messages = ref 0 in
    let local_writes pid (txn : Txn.t) =
      List.filter (fun (k, _) -> Pid.equal (owner_of k) pid) txn.Txn.writes
    in
    let local_reads pid (txn : Txn.t) =
      List.filter (fun (k, _) -> Pid.equal (owner_of k) pid) txn.Txn.reads
    in

    let lock_add pid key inst = Hashtbl.add locks.(Pid.index pid) key inst in
    let lock_release pid inst =
      let h = locks.(Pid.index pid) in
      let keys =
        Hashtbl.fold
          (fun k holder acc ->
            if holder == inst && not (List.mem k acc) then k :: acc else acc)
          h []
      in
      List.iter
        (fun k ->
          let others =
            List.filter (fun holder -> holder != inst) (Hashtbl.find_all h k)
          in
          while Hashtbl.mem h k do
            Hashtbl.remove h k
          done;
          List.iter (fun holder -> Hashtbl.add h k holder) others)
        keys
    in
    let rec holder_of = function
      | [] -> None
      | k :: rest -> (
          match Hashtbl.find_opt locks.(Pid.index (owner_of k)) k with
          | Some _ as h -> h
          | None -> holder_of rest)
    in

    (* Live instances, indexed by the slot of their current Mux tag; a
       popped event resolves only when its full tag still matches, so
       events queued under a superseded tag (stale crash broadcasts,
       beaten election timers) die inert — the same dispatch the old
       monotone-tag table did, in O(live) memory. Fully resolved
       instances leave the array (their atomicity is checked as they
       retire) and their records and machines recycle through pools, so
       a soak run's footprint is the pipeline depth, not the history. *)
    let slots : inst option array ref = ref (Array.make 256 None) in
    let ensure_slot s =
      if s >= Array.length !slots then begin
        let cap = ref (2 * Array.length !slots) in
        while s >= !cap do
          cap := 2 * !cap
        done;
        let grown = Array.make !cap None in
        Array.blit !slots 0 grown 0 (Array.length !slots);
        slots := grown
      end
    in
    let slot_put tag inst =
      let s = Mux.slot tag in
      ensure_slot s;
      !slots.(s) <- Some inst
    in
    let find_by_tag tag =
      let s = Mux.slot tag in
      if s < Array.length !slots then
        match !slots.(s) with
        | Some inst when inst.tag = tag -> Some inst
        | _ -> None
      else None
    in
    let iter_insts fn =
      Array.iter (function Some inst -> fn inst | None -> ()) !slots
    in

    let next_inst = ref 0 in
    let in_flight = ref 0 in
    let peak_in_flight = ref 0 in
    let retries = ref 0 in
    let elections = ref 0 in
    let stolen = ref 0 in
    let members_launched = ref 0 in

    let batches : (int, batch) Hashtbl.t = Hashtbl.create 64 in
    let open_batches : batch list ref = ref [] in
    let next_batch = ref 0 in
    let ready : batch Queue.t = Queue.create () in

    let issued = ref 0 in
    let committed = ref 0 and aborted = ref 0 and local_aborts = ref 0 in
    let queued = ref 0 and queue_aborts = ref 0 in
    let total_waiting = ref 0 in
    (* soak mode swaps the exact (every-sample-retained) histograms for
       fixed-bin streaming ones: same summary interface, constant memory,
       percentile error bounded by one bin width *)
    let mk_hist max_v =
      if spec.soak then Histogram.streaming ~bins:4096 ~max:max_v
      else Histogram.create ()
    in
    let latency = mk_hist 8192.0 in
    let time_parked = mk_hist 8192.0 in
    let queue_depth = mk_hist (float_of_int (max 16 spec.clients)) in
    let agreement_ok = ref true in
    let atomicity_ok = ref true in
    let last_time = ref Sim_time.zero in
    let txn_seq = ref 0 in
    let wall_start = Unix.gettimeofday () in
    let gc_words0 = Gc.minor_words () in

    (* The instance-tagged sink: one network, one clock, one rng across
       all instances. Protocols express "set timer to time k" as an
       absolute instant ([At_delay k] = k * U), written against a run
       that starts at time zero — re-anchor those to the instance's own
       start so instance k+1's automata are oblivious to the service
       clock. [After] timers are already relative. *)
    let sink inst_id started =
      {
        M.send =
          (fun ~now ~src ~dst payload ->
            if Pid.equal src dst then begin
              Mux.add q ~instance:inst_id ~time:now ~klass:deliver_class
                (Inst (Deliver { src; dst; payload; sent_at = now }));
              now
            end
            else begin
              let info =
                {
                  Network.src;
                  dst;
                  layer = M.layer_of_wire payload;
                  sent_at = now;
                  seq = !send_seq;
                }
              in
              incr send_seq;
              incr messages;
              let deliver_at =
                Sim_time.( + ) now (Network.delay spec.network rng info)
              in
              Mux.add q ~instance:inst_id ~time:deliver_at ~klass:deliver_class
                (Inst (Deliver { src; dst; payload; sent_at = now }));
              deliver_at
            end);
        M.set_timer =
          (fun ~now ~pid ~layer ~id ~fire ~at ~epoch ->
            let at =
              match fire with
              | Proto.At_delay k ->
                  Sim_time.max now
                    (Sim_time.( + ) started (Sim_time.of_delays ~u k))
              | Proto.After _ -> at
            in
            Mux.add q ~instance:inst_id ~time:at ~klass:timeout_class
              (Inst (Timeout { pid; layer; id; epoch })));
      }
    in

    (* Machines recycle: a retired instance's machine resets in place for
       the next one ([recycle = false] pins the fresh-create path, the
       reset-vs-fresh differential the tests run). Tracing stays off —
       the service never reads traces. *)
    let machine_pool : M.t list ref = ref [] in
    let take_machine tag started =
      match !machine_pool with
      | m :: rest ->
          machine_pool := rest;
          M.reset m ~sink:(sink tag started);
          m
      | [] -> M.create ~record_trace:false ~env_of ~n ~u ~sink:(sink tag started) ()
    in
    let release_machine m =
      if spec.recycle then machine_pool := m :: !machine_pool
    in
    let inst_pool : inst list ref = ref [] in

    let schedule_instance_events inst now =
      Array.iteri
        (fun i is_down ->
          if is_down then
            Mux.add q ~instance:inst.tag ~time:now ~klass:crash_class
              (Inst (Crash (Pid.of_index i))))
        down;
      List.iter
        (fun pid ->
          Mux.add q ~instance:inst.tag ~time:now ~klass:service_class
            (Inst (Propose pid)))
        all_pids
    in
    let retag inst =
      !slots.(Mux.slot inst.tag) <- None;
      Mux.retire q inst.tag;
      let tag = Mux.alloc q in
      inst.tag <- tag;
      slot_put tag inst
    in

    let client_resubmit now client =
      let think = 1 + Rng.int rng ~bound:(max 1 spec.think_gap) in
      Mux.add q ~instance:(-1)
        ~time:(Sim_time.( + ) now think)
        ~klass:service_class (Submit client)
    in
    (* The conflict branch of admission: the transaction [w] hit a write
       lock held by [holder]. Queue it FIFO on the holder (it re-admits
       when the holder resolves), unless waiting cannot help — the holder
       already decided, so its remaining locks release only when a dead
       shard recovers — or [w] has exhausted its wait budget; then it
       falls back to the local abort the OCC check would have taken.
       Waiters hold no locks while they wait, so there is no hold-and-wait
       and queues cannot deadlock; the budget bounds re-conflict chains,
       so they cannot livelock either. *)
    let wait_or_abort now (w : waiter) (holder : inst) =
      match spec.admission with
      | Abort_on_conflict ->
          incr local_aborts;
          client_resubmit now w.w_client
      | Queue_waiters ->
          if holder.outcome <> None || w.w_waits >= spec.wait_budget then begin
            incr local_aborts;
            incr queue_aborts;
            client_resubmit now w.w_client
          end
          else begin
            if w.w_waits = 0 then incr queued;
            incr total_waiting;
            Histogram.add queue_depth (float_of_int !total_waiting);
            Queue.push w holder.waiters
          end
    in

    let start_members now (members : member list) =
      let id = !next_inst in
      incr next_inst;
      (* write-ahead: every owner stages its legs before voting *)
      List.iter
        (fun ((txn : Txn.t), _, _) ->
          List.iter
            (fun pid ->
              let writes = local_writes pid txn in
              if writes <> [] then
                Kv_store.stage stores.(Pid.index pid) ~txn_id:txn.Txn.id
                  ~writes)
            all_pids)
        members;
      let tag = Mux.alloc q in
      let inst =
        match !inst_pool with
        | i :: rest ->
            inst_pool := rest;
            i.i_id <- id;
            i.tag <- tag;
            i.i_members <- members;
            i.machine <- take_machine tag now;
            i.started <- now;
            i.outcome <- None;
            i.quiesced <- false;
            Array.fill i.resolved 0 n false;
            i.attempts <- 1;
            i.elected <- false;
            i.parked_at <- None;
            i
        | [] ->
            {
              i_id = id;
              tag;
              i_members = members;
              votes = Array.make n Vote.no;
              machine = take_machine tag now;
              started = now;
              outcome = None;
              quiesced = false;
              resolved = Array.make n false;
              attempts = 1;
              elected = false;
              parked_at = None;
              waiters = Queue.create ();
            }
      in
      (* per-shard vote: optimistic read validation, and no key of the
         batch may be write-locked by another in-flight instance (our own
         locks are not yet added) *)
      for i = 0 to n - 1 do
        let pid = Pid.of_index i in
        let store = stores.(i) in
        inst.votes.(i) <-
          Vote.of_bool
            (List.for_all
               (fun ((txn : Txn.t), _, _) ->
                 List.for_all
                   (fun (k, expected) ->
                     Kv_store.version store ~key:k = expected)
                   (local_reads pid txn)
                 && List.for_all
                      (fun k -> not (Hashtbl.mem locks.(i) k))
                      (List.map fst (local_reads pid txn)
                      @ List.map fst (local_writes pid txn)))
               members)
      done;
      List.iter
        (fun ((txn : Txn.t), _, _) ->
          List.iter
            (fun (k, _) -> lock_add (owner_of k) k inst)
            txn.Txn.writes)
        members;
      slot_put tag inst;
      members_launched := !members_launched + List.length members;
      incr in_flight;
      if !in_flight > !peak_in_flight then peak_in_flight := !in_flight;
      schedule_instance_events inst now
    in
    (* Conflicts that developed after admission (inside the batch window,
       or while the batch sat behind the pipeline cap) would only launch
       an instance doomed to No votes: under queued admission, re-queue
       those members on the holder instead and launch the rest. Under
       abort-on-conflict they launch and surface as genuine No votes, as
       they always did. *)
    let start_instance now (waiters_in : waiter list) =
      let members =
        List.filter_map
          (fun (w : waiter) ->
            match
              if spec.admission = Queue_waiters then holder_of w.w_keys
              else None
            with
            | Some holder ->
                wait_or_abort now w holder;
                None
            | None -> Some (w.w_txn, w.w_client, w.w_submitted))
          waiters_in
      in
      if members <> [] then start_members now members
    in

    let launch_ready now =
      while !in_flight < spec.pipeline_depth && not (Queue.is_empty ready) do
        let b = Queue.pop ready in
        start_instance now (List.rev b.b_members)
      done
    in
    let launch_batch now b =
      if (not b.b_launched) && b.b_members <> [] then begin
        b.b_launched <- true;
        Hashtbl.remove batches b.b_id;
        open_batches := List.filter (fun ob -> ob.b_id <> b.b_id) !open_batches;
        Queue.push b ready;
        launch_ready now
      end
    in

    let redrive now inst =
      inst.attempts <- inst.attempts + 1;
      inst.quiesced <- false;
      inst.started <- now;
      retag inst;
      release_machine inst.machine;
      inst.machine <- take_machine inst.tag now;
      incr in_flight;
      if !in_flight > !peak_in_flight then peak_in_flight := !in_flight
    in
    let retry_instance now inst =
      incr retries;
      inst.elected <- false;
      redrive now inst;
      schedule_instance_events inst now
    in
    (* Coordinator re-election: the lowest live rank takes over a parked
       instance and re-drives its decision from the recorded vote log.
       The replay is crash-free — every shard logged its vote at instance
       start, so the stand-in replays the dead shards' automata from the
       log instead of crashing them (otherwise a blocking protocol would
       just park again). A shard that went down *after* voting can only
       have decided by the same deterministic vote rule, so the stand-in
       reaches the decision the lost coordinator would have: at-most-once
       holds, and adoption on recovery reconciles against the stand-in's
       outcome exactly as it reconciles against a live decision. *)
    let elect now inst =
      let rec lowest_live i =
        if i >= n then None
        else if not down.(i) then Some (Pid.of_index i)
        else lowest_live (i + 1)
      in
      match lowest_live 0 with
      | None -> ()  (* every shard is down; only a recovery can help *)
      | Some _standin ->
          incr elections;
          inst.elected <- true;
          redrive now inst;
          List.iter
            (fun pid ->
              Mux.add q ~instance:inst.tag ~time:now ~klass:service_class
                (Inst (Propose pid)))
            all_pids
    in

    (* Apply/discard the instance's staged writes at one shard and release
       its locks there — on decision for live shards, on recovery for
       shards that were down when the decision was reached. *)
    let resolve_at_shard inst pid =
      let i = Pid.index pid in
      (match inst.outcome with
      | Some Vote.Commit ->
          List.iter
            (fun ((txn : Txn.t), _, _) ->
              ignore (Kv_store.apply stores.(i) ~txn_id:txn.Txn.id))
            inst.i_members
      | Some Vote.Abort ->
          List.iter
            (fun ((txn : Txn.t), _, _) ->
              Kv_store.discard stores.(i) ~txn_id:txn.Txn.id)
            inst.i_members
      | None -> ());
      lock_release pid inst;
      inst.resolved.(i) <- true
    in

    (* An instance whose every shard resolved is pure history: check its
       write-ahead entries are gone right now (the incremental half of the
       whole-history atomicity check), then recycle the slot, the record
       and the machine. *)
    let fully_resolved inst = Array.for_all Fun.id inst.resolved in
    let maybe_retire inst =
      if inst.outcome <> None && fully_resolved inst then begin
        List.iter
          (fun ((txn : Txn.t), _, _) ->
            List.iter
              (fun (k, _) ->
                if
                  Kv_store.staged stores.(Pid.index (owner_of k))
                    ~txn_id:txn.Txn.id
                  <> None
                then atomicity_ok := false)
              txn.Txn.writes)
          inst.i_members;
        assert (Queue.is_empty inst.waiters);
        !slots.(Mux.slot inst.tag) <- None;
        Mux.retire q inst.tag;
        release_machine inst.machine;
        inst.i_members <- [];
        inst_pool := inst :: !inst_pool
      end
    in

    let owner_key (txn : Txn.t) =
      String.concat ","
        (List.map Pid.to_string
           (List.sort_uniq Pid.compare
              (List.map (fun (k, _) -> owner_of k) txn.Txn.writes)))
    in
    let admit now (w : waiter) =
      let okey = owner_key w.w_txn in
      let conflicts b =
        List.exists
          (fun (other : waiter) ->
            List.exists (fun k -> List.mem k other.w_keys) w.w_keys)
          b.b_members
      in
      let fits b =
        (not b.b_launched)
        && String.equal b.owners okey
        && List.length b.b_members < spec.max_batch
        && not (conflicts b)
      in
      match List.find_opt fits !open_batches with
      | Some b ->
          b.b_members <- w :: b.b_members;
          if List.length b.b_members >= spec.max_batch then launch_batch now b
      | None ->
          let b =
            {
              b_id = !next_batch;
              owners = okey;
              b_members = [ w ];
              b_launched = false;
            }
          in
          incr next_batch;
          Hashtbl.replace batches b.b_id b;
          open_batches := b :: !open_batches;
          if spec.batch_window = 0 || spec.max_batch <= 1 then
            launch_batch now b
          else
            Mux.add q ~instance:(-1)
              ~time:(Sim_time.( + ) now spec.batch_window)
              ~klass:service_class (Launch_batch b.b_id)
    in

    let admit_or_wait now (w : waiter) =
      match holder_of w.w_keys with
      | None -> admit now w
      | Some holder -> wait_or_abort now w holder
    in
    (* Release an instance's wait queue (after its locks released):
       transfer out first, so a waiter that re-conflicts elsewhere cannot
       land back in the queue being drained. *)
    let drain_scratch : waiter Queue.t = Queue.create () in
    let drain_waiters now inst =
      if not (Queue.is_empty inst.waiters) then begin
        Queue.transfer inst.waiters drain_scratch;
        while not (Queue.is_empty drain_scratch) do
          let w = Queue.pop drain_scratch in
          decr total_waiting;
          w.w_waits <- w.w_waits + 1;
          admit_or_wait now w
        done
      end
    in

    (* An instance with no event left in flight has quiesced: either some
       process decided (commit on all-yes votes, abort otherwise) — or
       nobody did and the instance parks, keeping its staged writes and
       locks, until a recovery retries it or the election timer elects a
       stand-in coordinator. *)
    let finalize now inst =
      inst.quiesced <- true;
      decr in_flight;
      let decided =
        M.decisions inst.machine |> Array.to_list |> List.filter_map Fun.id
      in
      (match decided with
      | [] ->
          (* parked: clients stall, pipeline keeps flowing; waiters stay
             queued until the instance eventually decides *)
          if inst.parked_at = None then inst.parked_at <- Some now;
          (match spec.election_timeout with
          | Some d ->
              Mux.add q ~instance:inst.tag
                ~time:(Sim_time.( + ) now d)
                ~klass:service_class Elect
          | None -> ())
      | (t0, d0) :: rest ->
          List.iter
            (fun (_, d) ->
              if not (Vote.decision_equal d d0) then agreement_ok := false)
            rest;
          let decided_at =
            List.fold_left (fun acc (t, _) -> Sim_time.max acc t) t0 rest
          in
          inst.outcome <- Some d0;
          if inst.elected then incr stolen;
          (match inst.parked_at with
          | Some p ->
              Histogram.add time_parked
                (Sim_time.delays ~u (Sim_time.( - ) now p))
          | None -> ());
          List.iter
            (fun pid ->
              if not down.(Pid.index pid) then resolve_at_shard inst pid)
            all_pids;
          List.iter
            (fun ((txn : Txn.t), client, submitted_at) ->
              (match d0 with
              | Vote.Commit ->
                  incr committed;
                  Histogram.add latency
                    (Sim_time.delays ~u (Sim_time.( - ) decided_at submitted_at))
              | Vote.Abort -> incr aborted);
              (match observe with
              | Some obs -> obs txn.Txn.id d0
              | None -> ());
              client_resubmit now client)
            inst.i_members;
          drain_waiters now inst;
          maybe_retire inst);
      launch_ready now
    in

    (* Allocation-lean transaction generation: pick distinct key *indices*
       into a scratch array (same rejection-then-top-rank-fill-then-shuffle
       procedure as {!Workload.distinct_keys}, same rng consumption), then
       read the interned names. The write value is the txn id itself — no
       per-write formatting. *)
    let nkeys = spec.reads_per_txn + spec.writes_per_txn in
    let scratch = Array.make (max 1 nkeys) 0 in
    let pick_distinct () =
      let count = min nkeys spec.keys in
      let mem idx upto =
        let rec go i = i < upto && (scratch.(i) = idx || go (i + 1)) in
        go 0
      in
      if count = spec.keys then
        for i = 0 to count - 1 do
          scratch.(i) <- i
        done
      else begin
        let attempts = ref ((16 * count) + 64) in
        let filled = ref 0 in
        while !filled < count && !attempts > 0 do
          decr attempts;
          let idx = Workload.Zipf.index dist rng in
          if not (mem idx !filled) then begin
            scratch.(!filled) <- idx;
            incr filled
          end
        done;
        let i = ref 0 in
        while !filled < count do
          if not (mem !i !filled) then begin
            scratch.(!filled) <- !i;
            incr filled
          end;
          incr i
        done
      end;
      for i = count - 1 downto 1 do
        let j = Rng.int rng ~bound:(i + 1) in
        let tmp = scratch.(i) in
        scratch.(i) <- scratch.(j);
        scratch.(j) <- tmp
      done;
      count
    in
    let generate_txn () =
      let id = Printf.sprintf "t%d" !txn_seq in
      incr txn_seq;
      let count = pick_distinct () in
      let nreads = min spec.reads_per_txn count in
      let reads =
        List.init nreads (fun i ->
            let k = key_names.(scratch.(i)) in
            ( k,
              Kv_store.version stores.(Pid.index key_owner.(scratch.(i))) ~key:k
            ))
      in
      let writes =
        List.init (count - nreads) (fun i ->
            (key_names.(scratch.(nreads + i)), id))
      in
      Txn.make ~id ~reads ~writes ()
    in

    let flush now =
      let wall = Unix.gettimeofday () -. wall_start in
      let words = Gc.minor_words () -. gc_words0 in
      Printf.eprintf
        "[soak] issued %d/%d  committed %d  goodput %.4f  waiting %d  \
         in-flight %d  t=%.0f delays  %.0f commits/s  %.0f minor words/txn\n\
         %!"
        !issued spec.txns !committed
        (if !issued = 0 then 0.0
         else float_of_int !committed /. float_of_int !issued)
        !total_waiting !in_flight (Sim_time.delays ~u now)
        (if wall > 0.0 then float_of_int !committed /. wall else 0.0)
        (words /. float_of_int (max 1 !issued))
    in

    let handle now instance ev =
      match ev with
      | Submit client ->
          if !issued < spec.txns then begin
            incr issued;
            if spec.flush_every > 0 && !issued mod spec.flush_every = 0 then
              flush now;
            let txn = generate_txn () in
            admit_or_wait now
              {
                w_txn = txn;
                w_client = client;
                w_submitted = now;
                w_keys = Txn.keys txn;
                w_waits = 0;
              }
          end
      | Launch_batch b_id -> (
          match Hashtbl.find_opt batches b_id with
          | Some b -> launch_batch now b
          | None -> ())
      | Outage pid ->
          down.(Pid.index pid) <- true;
          (* every in-flight instance sees the shard crash *)
          let running = ref [] in
          iter_insts (fun inst ->
              if not inst.quiesced then running := inst :: !running);
          List.iter
            (fun inst ->
              if not (M.is_crashed inst.machine pid) then
                Mux.add q ~instance:inst.tag ~time:now ~klass:crash_class
                  (Inst (Crash pid)))
            (List.sort (fun a b -> compare a.i_id b.i_id) !running)
      | Recover pid ->
          down.(Pid.index pid) <- false;
          (* first adopt the decisions reached while the shard was down,
             then re-run every parked instance with its recorded votes *)
          let decided = ref [] and parked = ref [] in
          iter_insts (fun inst ->
              if inst.quiesced then
                if inst.outcome <> None then decided := inst :: !decided
                else parked := inst :: !parked);
          List.iter
            (fun inst ->
              if not inst.resolved.(Pid.index pid) then begin
                resolve_at_shard inst pid;
                drain_waiters now inst;
                maybe_retire inst
              end)
            (List.sort (fun a b -> compare a.i_id b.i_id) !decided);
          List.iter (retry_instance now)
            (List.sort (fun a b -> compare a.i_id b.i_id) !parked)
      | Elect -> (
          (* still tagged with the parked drive's tag: if the instance was
             retried or decided in the meantime the tag no longer resolves
             (or the instance is no longer a parked one) and the timer is
             void *)
          match find_by_tag instance with
          | Some inst when inst.quiesced && inst.outcome = None ->
              elect now inst
          | _ -> ())
      | Inst iev -> (
          match find_by_tag instance with
          | None -> ()
          | Some inst -> (
              let m = inst.machine in
              match iev with
              | Propose pid -> M.propose m ~now pid inst.votes.(Pid.index pid)
              | Deliver { src; dst; payload; sent_at } ->
                  M.deliver m ~now ~sent_at ~src ~dst payload
              | Timeout { pid; layer; id; epoch } ->
                  ignore (M.timeout m ~now ~pid ~layer ~id ~epoch)
              | Crash pid ->
                  if not (M.is_crashed m pid) then M.crash m ~now pid))
    in

    List.iter
      (fun (rank, down_at, back_at) ->
        let pid = Pid.of_rank rank in
        Mux.add q ~instance:(-1) ~time:down_at ~klass:crash_class (Outage pid);
        match back_at with
        | Some t ->
            Mux.add q ~instance:(-1) ~time:t ~klass:crash_class (Recover pid)
        | None -> ())
      spec.outages;
    for client = 0 to spec.clients - 1 do
      let at = 1 + Rng.int rng ~bound:(max 1 spec.think_gap) in
      Mux.add q ~instance:(-1) ~time:at ~klass:service_class (Submit client)
    done;

    let rec loop () =
      match Mux.pop q with
      | None -> ()
      | Some (time, _klass, instance, ev) ->
          if time <= spec.max_time then begin
            last_time := time;
            handle time instance ev;
            (if instance >= 0 && Mux.pending q instance = 0 then
               match find_by_tag instance with
               | Some inst when not inst.quiesced -> finalize time inst
               | _ -> ());
            loop ()
          end
    in
    loop ();
    let wall_seconds = Unix.gettimeofday () -. wall_start in
    let minor_words = Gc.minor_words () -. gc_words0 in

    (* Whole-history atomicity, residual half: retired instances were
       checked as they left; every instance still live (parked, or decided
       with a still-down shard) must hold its write-ahead entries exactly
       where its decision is unresolved. *)
    iter_insts (fun inst ->
        List.iter
          (fun ((txn : Txn.t), _, _) ->
            let owners =
              List.sort_uniq Pid.compare
                (List.map (fun (k, _) -> owner_of k) txn.Txn.writes)
            in
            List.iter
              (fun pid ->
                let still_staged =
                  Kv_store.staged stores.(Pid.index pid) ~txn_id:txn.Txn.id
                  <> None
                in
                let expect_staged =
                  match inst.outcome with
                  | None -> true
                  | Some _ -> not inst.resolved.(Pid.index pid)
                in
                if still_staged <> expect_staged then atomicity_ok := false)
              owners)
          inst.i_members);

    (* Write-ahead entries left on LIVE shards: a still-down shard's
       staging is exactly what recovery adoption will replay, so it is
       recoverable state, not a leak — the atomicity check above already
       insists it is present there. *)
    let staged_left =
      let acc = ref 0 in
      Array.iteri
        (fun i store ->
          if not down.(i) then
            acc := !acc + List.length (Kv_store.staged_ids store))
        stores;
      !acc
    in
    let parked = !issued - !committed - !aborted - !local_aborts in
    let instances_n = !next_inst in
    {
      protocol = P.name;
      admission_mode =
        (match spec.admission with
        | Queue_waiters -> "queue"
        | Abort_on_conflict -> "abort");
      transactions = !issued;
      committed = !committed;
      aborted = !aborted;
      local_aborts = !local_aborts;
      queued = !queued;
      queue_aborts = !queue_aborts;
      parked;
      instances = instances_n;
      retries = !retries;
      elections = !elections;
      stolen = !stolen;
      mean_batch =
        (if instances_n = 0 then Float.nan
         else float_of_int !members_launched /. float_of_int instances_n);
      peak_in_flight = !peak_in_flight;
      total_messages = !messages;
      staged_left;
      makespan_delays = Sim_time.delays ~u !last_time;
      latency = Histogram.summary latency;
      time_parked = Histogram.summary time_parked;
      queue_depth = Histogram.summary queue_depth;
      zipf_s = Workload.Zipf.s dist;
      goodput =
        (if !issued = 0 then 0.0
         else float_of_int !committed /. float_of_int !issued);
      wall_seconds;
      commits_per_sec =
        (if wall_seconds > 0.0 then float_of_int !committed /. wall_seconds
         else Float.nan);
      minor_words_per_txn =
        (if !issued = 0 then 0.0 else minor_words /. float_of_int !issued);
      atomicity_ok = !atomicity_ok;
      agreement_ok = !agreement_ok;
    }
end

let run ?(consensus = Registry.Paxos) ?observe ~protocol ~n ~f (spec : spec) =
  if n < 2 then invalid_arg "Commit_service.run: n < 2";
  if f < 1 || f > n - 1 then invalid_arg "Commit_service.run: bad f";
  if spec.clients < 1 then invalid_arg "Commit_service.run: no clients";
  if spec.writes_per_txn < 1 then
    invalid_arg "Commit_service.run: writes_per_txn < 1";
  if spec.reads_per_txn < 0 then
    invalid_arg "Commit_service.run: reads_per_txn < 0";
  if spec.reads_per_txn + spec.writes_per_txn > spec.keys then
    invalid_arg "Commit_service.run: keyspace smaller than a transaction";
  if spec.pipeline_depth < 1 then
    invalid_arg "Commit_service.run: pipeline_depth < 1";
  if spec.max_batch < 1 then invalid_arg "Commit_service.run: max_batch < 1";
  if spec.wait_budget < 0 then
    invalid_arg "Commit_service.run: wait_budget < 0";
  if spec.flush_every < 0 then
    invalid_arg "Commit_service.run: flush_every < 0";
  List.iter
    (fun (rank, _, _) ->
      if rank < 1 || rank > n then
        invalid_arg "Commit_service.run: outage rank outside 1..n")
    spec.outages;
  (match spec.election_timeout with
  | Some d when d < 1 ->
      invalid_arg "Commit_service.run: election_timeout < 1"
  | _ -> ());
  let reg = Registry.find_exn protocol in
  let proto, cons = Registry.compose reg consensus in
  let module P = (val proto) in
  let module C = (val cons) in
  let module S = Make (P) (C) in
  S.run ?observe ~n ~f spec

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "@[<v2>%s: %d txns -> %d committed, %d aborted (%d local), %d \
     unresolved@,\
     admission %s: %d waited, %d queue aborts, goodput %.3f, queue depth \
     %a@,\
     %d instances (+%d retries, %d elections -> %d stolen), mean batch \
     %.2f, peak in-flight %d@,\
     %d msgs, %d staged left, makespan %.1f delays, zipf s=%.3f@,\
     latency %a@,\
     %.0f commits/sec (wall %.3fs), %.0f minor words/txn%s%s@]"
    s.protocol s.transactions s.committed (s.aborted + s.local_aborts)
    s.local_aborts s.parked s.admission_mode s.queued s.queue_aborts
    s.goodput Histogram.pp_summary s.queue_depth s.instances s.retries
    s.elections s.stolen s.mean_batch s.peak_in_flight s.total_messages
    s.staged_left s.makespan_delays s.zipf_s Histogram.pp_summary s.latency
    s.commits_per_sec s.wall_seconds s.minor_words_per_txn
    (if s.atomicity_ok then "" else "  ATOMICITY VIOLATED")
    (if s.agreement_ok then "" else "  AGREEMENT VIOLATED")

(* The deterministic slice of an arm's JSON body: everything except the
   wall-clock and GC fields the bench appends afterwards. Shared with the
   tests, which assert byte-identity across [Batch.run ~jobs] settings. *)
let arm_json_body (s : stats) =
  let num v = if Float.is_nan v then "0.0" else Printf.sprintf "%.6f" v in
  let summary (h : Histogram.summary) =
    Printf.sprintf
      "{\"mean\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s, \"max\": %s}"
      (num h.Histogram.mean) (num h.Histogram.p50) (num h.Histogram.p95)
      (num h.Histogram.p99) (num h.Histogram.max)
  in
  String.concat ""
    [
      Printf.sprintf "\"admission\": \"%s\", " s.admission_mode;
      Printf.sprintf "\"transactions\": %d, " s.transactions;
      Printf.sprintf "\"committed\": %d, " s.committed;
      Printf.sprintf "\"aborted\": %d, " s.aborted;
      Printf.sprintf "\"local_aborts\": %d, " s.local_aborts;
      Printf.sprintf "\"queued\": %d, " s.queued;
      Printf.sprintf "\"queue_aborts\": %d, " s.queue_aborts;
      Printf.sprintf "\"parked\": %d, " s.parked;
      Printf.sprintf "\"instances\": %d, " s.instances;
      Printf.sprintf "\"retries\": %d, " s.retries;
      Printf.sprintf "\"elections\": %d, " s.elections;
      Printf.sprintf "\"stolen\": %d, " s.stolen;
      Printf.sprintf "\"mean_batch\": %s, " (num s.mean_batch);
      Printf.sprintf "\"peak_in_flight\": %d, " s.peak_in_flight;
      Printf.sprintf "\"messages\": %d, " s.total_messages;
      Printf.sprintf "\"staged_left\": %d, " s.staged_left;
      Printf.sprintf "\"abort_rate\": %s, "
        (num
           (if s.transactions = 0 then 0.0
            else
              float_of_int (s.aborted + s.local_aborts)
              /. float_of_int s.transactions));
      Printf.sprintf "\"goodput\": %s, " (num s.goodput);
      Printf.sprintf "\"zipf_s\": %s, " (num s.zipf_s);
      Printf.sprintf "\"latency_delays\": %s, " (summary s.latency);
      Printf.sprintf "\"time_parked_delays\": %s, " (summary s.time_parked);
      Printf.sprintf "\"queue_depth\": %s, " (summary s.queue_depth);
      Printf.sprintf "\"atomicity_ok\": %b, " s.atomicity_ok;
      Printf.sprintf "\"agreement_ok\": %b" s.agreement_ok;
    ]
