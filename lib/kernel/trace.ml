type layer = Commit_layer | Consensus_layer

type entry =
  | Propose of { at : Sim_time.t; pid : Pid.t; vote : Vote.t }
  | Send of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      layer : layer;
      tag : string;
      deliver_at : Sim_time.t;
    }
  | Deliver of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      layer : layer;
      tag : string;
      sent_at : Sim_time.t;
    }
  | Discard of { at : Sim_time.t; dst : Pid.t; tag : string }
  | Timeout of { at : Sim_time.t; pid : Pid.t; timer : string }
  | Guard of { at : Sim_time.t; pid : Pid.t; guard : string }
  | Decide of { at : Sim_time.t; pid : Pid.t; decision : Vote.decision }
  | Crash of { at : Sim_time.t; pid : Pid.t }
  | Note of { at : Sim_time.t; pid : Pid.t; label : string; value : string }

type t = { mutable rev_entries : entry list; mutable count : int }

let create () = { rev_entries = []; count = 0 }

let add t e =
  t.rev_entries <- e :: t.rev_entries;
  t.count <- t.count + 1

let entries t = List.rev t.rev_entries
let length t = t.count

type snapshot = entry list * int

let snapshot t = (t.rev_entries, t.count)

let restore t (rev_entries, count) =
  t.rev_entries <- rev_entries;
  t.count <- count

let entries_since t (_, count) =
  let rec take k acc = function
    | rest when k = 0 -> ignore rest; acc
    | [] -> acc
    | e :: rest -> take (k - 1) (e :: acc) rest
  in
  take (t.count - count) [] t.rev_entries

let time_of = function
  | Propose { at; _ }
  | Send { at; _ }
  | Deliver { at; _ }
  | Discard { at; _ }
  | Timeout { at; _ }
  | Guard { at; _ }
  | Decide { at; _ }
  | Crash { at; _ }
  | Note { at; _ } ->
      at

let pp_layer ppf = function
  | Commit_layer -> Format.pp_print_string ppf "commit"
  | Consensus_layer -> Format.pp_print_string ppf "cons"

let pp_entry ppf = function
  | Propose { at; pid; vote } ->
      Format.fprintf ppf "@[%6d %a proposes %a@]" at Pid.pp pid Vote.pp vote
  | Send { at; src; dst; layer; tag; deliver_at } ->
      Format.fprintf ppf "@[%6d %a -> %a %s (%a, arrives %d)@]" at Pid.pp src
        Pid.pp dst tag pp_layer layer deliver_at
  | Deliver { at; src; dst; layer; tag; sent_at } ->
      Format.fprintf ppf "@[%6d %a <- %a %s (%a, sent %d)@]" at Pid.pp dst
        Pid.pp src tag pp_layer layer sent_at
  | Discard { at; dst; tag } ->
      Format.fprintf ppf "@[%6d %s discarded at crashed %a@]" at tag Pid.pp dst
  | Timeout { at; pid; timer } ->
      Format.fprintf ppf "@[%6d %a timeout %s@]" at Pid.pp pid timer
  | Guard { at; pid; guard } ->
      Format.fprintf ppf "@[%6d %a guard %s@]" at Pid.pp pid guard
  | Decide { at; pid; decision } ->
      Format.fprintf ppf "@[%6d %a decides %a@]" at Pid.pp pid Vote.pp_decision
        decision
  | Crash { at; pid } -> Format.fprintf ppf "@[%6d %a crashes@]" at Pid.pp pid
  | Note { at; pid; label; value } ->
      Format.fprintf ppf "@[%6d %a %s := %s@]" at Pid.pp pid label value

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun e ->
      pp_entry ppf e;
      Format.pp_print_cut ppf ())
    (entries t);
  Format.pp_close_box ppf ()

let decisions t =
  List.filter_map
    (function
      | Decide { at; pid; decision } -> Some (pid, at, decision)
      | Propose _ | Send _ | Deliver _ | Discard _ | Timeout _ | Guard _
      | Crash _ | Note _ ->
          None)
    (entries t)

let crashes t =
  List.filter_map
    (function
      | Crash { at; pid } -> Some (pid, at)
      | Propose _ | Send _ | Deliver _ | Discard _ | Timeout _ | Guard _
      | Decide _ | Note _ ->
          None)
    (entries t)

let proposals t =
  List.filter_map
    (function
      | Propose { pid; vote; _ } -> Some (pid, vote)
      | Send _ | Deliver _ | Discard _ | Timeout _ | Guard _ | Decide _
      | Crash _ | Note _ ->
          None)
    (entries t)

let network_sends ?layer t =
  List.filter
    (function
      | Send { src; dst; layer = l; _ } ->
          (not (Pid.equal src dst))
          && (match layer with None -> true | Some want -> want = l)
      | Propose _ | Deliver _ | Discard _ | Timeout _ | Guard _ | Decide _
      | Crash _ | Note _ ->
          false)
    (entries t)

let notes ?label t =
  List.filter_map
    (function
      | Note { at; pid; label = l; value } ->
          if match label with None -> true | Some want -> String.equal want l
          then Some (at, pid, l, value)
          else None
      | Propose _ | Send _ | Deliver _ | Discard _ | Timeout _ | Guard _
      | Decide _ | Crash _ ->
          None)
    (entries t)
