(** Allocation-lean 126-bit state fingerprints.

    An incremental two-lane FNV-1a-style hasher over machine words with a
    murmur-style finalizer. The model checker fingerprints every visited
    state through this module instead of marshalling it: per-protocol
    [hash_state] canonicalizers ({!Proto.PROTOCOL.hash_state}) feed the
    accumulator with [add_int]/[add_bool]/[add_string], and the visited
    table stores the resulting two-word {!digest}s.

    Hashing is order-sensitive and unframed: a canonicalizer must feed
    variable-length data with an explicit length (which [add_string] does
    internally) so that adjacent fields cannot alias. *)

type t
(** The mutable accumulator. Reusable across states via {!reset}. *)

val create : unit -> t
val reset : t -> unit

val add_int : t -> int -> unit
val add_bool : t -> bool -> unit

val add_string : t -> string -> unit
(** Folds the length and then the contents, eight bytes at a word. *)

(** {2 Pid renaming (symmetry canonicalization)}

    The model checker hashes a state under a candidate process
    permutation by installing a renaming array and feeding the state
    through canonicalizers that route every pid-valued datum through
    {!add_pid} (or consult {!rename} for sort keys). With no renaming
    installed both are the identity, so the symmetry-off path feeds
    word-for-word what it always did. {!reset} clears the renaming. *)

val set_perm : t -> int array -> unit
(** Install [sigma]: subsequent {!add_pid}[ h i] feeds [sigma.(i)]. The
    array is borrowed, not copied, and must cover every fed index. *)

val clear_perm : t -> unit

val perm_active : t -> bool

val rename : t -> int -> int
(** The installed renaming as a function (identity when none). *)

val add_pid : t -> int -> unit
(** Feed a process {e index} through the renaming. Equivalent to
    [add_int] when no renaming is installed. *)

val perm_size : t -> int
(** Length of the installed renaming array ([0] when none) — the process
    count [n], for canonicalizers that must decompose pid-encoding
    integers (e.g. Paxos ballots [k*n + i]). *)

type digest = { d1 : int; d2 : int }
(** Two finalized 63-bit lanes. Structural equality ([=], [Hashtbl.hash])
    is the intended key discipline. *)

val digest : t -> digest
(** Finalize (the accumulator is not consumed and may keep accumulating,
    but successive digests of a growing accumulator are unrelated). *)

val of_bytes : string -> digest
(** Digest of a canonical byte string (via MD5, so digest equality is
    byte equality up to MD5 collisions) — the [Marshal]-fallback backend
    of the model checker. *)

val equal : digest -> digest -> bool
val pp : Format.formatter -> digest -> unit
