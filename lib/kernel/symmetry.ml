(* Process-permutation symmetry groups.

   A protocol declares which processes are behaviorally interchangeable:
   a partition of the pid indices into classes such that permuting the
   processes of one class (states, in-flight messages, timers, and every
   pid-valued field, consistently) yields a configuration with identical
   future behavior. The model checker uses the declaration to
   canonicalize state fingerprints — all members of one orbit collapse
   to a single visited-table entry — and to prune permutation-twin
   transitions.

   Only the partition is declared; the group is the direct product of
   the full symmetric groups on each class. Soundness never depends on
   the declaration being maximal: any sub-partition (including the
   trivial one) is a subgroup, it merely collapses less. It does depend
   on the declaration being correct — a class containing two processes
   whose handlers genuinely differ by rank equates states with
   different futures, which is an unsoundness exactly like an
   under-hashed [hash_state] field. *)

type t = { n : int; classes : int list list }

let normalize ~n classes =
  let seen = Array.make (max n 1) false in
  let classes =
    List.filter_map
      (fun c ->
        let c = List.sort_uniq compare c in
        List.iter
          (fun i ->
            if i < 0 || i >= n then
              invalid_arg "Symmetry: process index out of range";
            if seen.(i) then invalid_arg "Symmetry: overlapping classes";
            seen.(i) <- true)
          c;
        match c with [] | [ _ ] -> None | _ -> Some c)
      classes
  in
  (* sort by first member so structurally equal declarations compare
     equal whatever order the classes were listed in *)
  let classes = List.sort compare classes in
  { n; classes }

let trivial ~n = { n; classes = [] }
let of_classes ~n classes = normalize ~n classes
let full ~n = normalize ~n [ List.init n Fun.id ]

(* Ranks are 1-based (rank r = index r-1). [after_rank ~n r]: every
   process of rank > r is interchangeable — the "all non-coordinator
   participants" shape. *)
let after_rank ~n r =
  if r >= n then trivial ~n
  else normalize ~n [ List.init (n - r) (fun i -> r + i) ]

let interchangeable_after_coordinator ~n = after_rank ~n 1

let rank_range ~n ~lo ~hi =
  let lo = max lo 1 and hi = min hi n in
  if hi - lo + 1 < 2 then trivial ~n
  else normalize ~n [ List.init (hi - lo + 1) (fun i -> lo - 1 + i) ]

let is_trivial t = t.classes = []
let classes t = t.classes
let size t = t.n

(* Common refinement (partition meet): processes stay interchangeable
   only if both declarations agree. Used to compose the commit
   protocol's group with the co-hosted consensus automaton's. *)
let meet a b =
  if a.n <> b.n then invalid_arg "Symmetry.meet: size mismatch";
  if is_trivial a || is_trivial b then trivial ~n:a.n
  else
    let cls_of spec =
      let arr = Array.make spec.n (-1) in
      List.iteri
        (fun ci c -> List.iter (fun i -> arr.(i) <- ci) c)
        spec.classes;
      arr
    in
    let ca = cls_of a and cb = cls_of b in
    let tbl = Hashtbl.create 8 in
    for i = a.n - 1 downto 0 do
      if ca.(i) >= 0 && cb.(i) >= 0 then
        let k = (ca.(i), cb.(i)) in
        Hashtbl.replace tbl k (i :: (Option.value (Hashtbl.find_opt tbl k) ~default:[]))
    done;
    normalize ~n:a.n (Hashtbl.fold (fun _ c acc -> c :: acc) tbl [])

(* Split classes by an attribute of their members (the checker refines
   by the per-process input vote: only equal-voting processes may be
   swapped once the votes array is fixed). *)
let refine t ~key =
  let split c =
    let tbl = Hashtbl.create 4 in
    List.iter
      (fun i ->
        let k = key i in
        Hashtbl.replace tbl k (i :: (Option.value (Hashtbl.find_opt tbl k) ~default:[])))
      (List.rev c);
    Hashtbl.fold (fun _ g acc -> g :: acc) tbl []
  in
  normalize ~n:t.n (List.concat_map split t.classes)

let rec factorial k = if k <= 1 then 1 else k * factorial (k - 1)

let order t =
  List.fold_left (fun acc c -> acc * factorial (List.length c)) 1 t.classes

(* Halve the largest class until the group order fits the cap: a
   sub-partition is a subgroup, so capping only costs collapse. *)
let rec cap_order ~cap t =
  if order t <= cap then t
  else
    let largest =
      List.fold_left
        (fun acc c ->
          if List.length c > List.length acc then c else acc)
        [] t.classes
    in
    let rest = List.filter (fun c -> c != largest) t.classes in
    let k = List.length largest / 2 in
    let front = List.filteri (fun i _ -> i < k) largest in
    let back = List.filteri (fun i _ -> i >= k) largest in
    cap_order ~cap (normalize ~n:t.n (front :: back :: rest))

(* All arrangements of a list, the unchanged list first. *)
let arrangements l =
  let rec ins x = function
    | [] -> [ [ x ] ]
    | y :: tl as all -> (x :: all) :: List.map (fun r -> y :: r) (ins x tl)
  in
  let rec go = function
    | [] -> [ [] ]
    | x :: tl -> List.concat_map (ins x) (go tl)
  in
  match go l with
  | first :: _ as all when first = l -> all
  | all -> l :: List.filter (fun a -> a <> l) all

let default_cap = 64

(* The group's elements as mapping arrays [sigma]: [sigma.(i)] is the
   index process [i] is renamed to; identity outside every class, and
   the identity element is first. *)
let perms ?(cap = default_cap) t =
  let t = cap_order ~cap t in
  let base = Array.init t.n Fun.id in
  let sigmas =
    List.fold_left
      (fun acc c ->
        let arrs = arrangements c in
        List.concat_map
          (fun sigma ->
            List.map
              (fun arr ->
                let s = Array.copy sigma in
                List.iteri (fun k m -> s.(m) <- List.nth arr k) c;
                s)
              arrs)
          acc)
      [ base ] t.classes
  in
  (* the fold keeps the first-arrangement (identity-on-class) element
     first at every step, so the head is the identity *)
  Array.of_list sigmas

let inverse sigma =
  let inv = Array.make (Array.length sigma) 0 in
  Array.iteri (fun i j -> inv.(j) <- i) sigma;
  inv

(* Same-class index pairs: the transpositions the twin-pruning pass
   tests a state against. *)
let transpositions t =
  List.concat_map
    (fun c ->
      let rec pairs = function
        | [] -> []
        | x :: tl -> List.map (fun y -> (x, y)) tl @ pairs tl
      in
      pairs c)
    t.classes

let pp ppf t =
  if is_trivial t then Format.fprintf ppf "trivial"
  else
    Format.fprintf ppf "%a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
         (fun ppf c ->
           Format.fprintf ppf "{%s}"
             (String.concat "," (List.map string_of_int c))))
      t.classes
