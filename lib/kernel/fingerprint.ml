(* Allocation-lean 126-bit state fingerprints.

   The model checker hashes every visited state; doing that by marshalling
   the state and digesting the bytes dominates exploration time. This
   module is the replacement: an incremental two-lane FNV-1a-style mixer
   over machine words, fed by per-protocol [hash_state] canonicalizers,
   with a murmur-style finalizer. Two independent 63-bit lanes give a
   126-bit digest, so the collision probability over the checker's state
   budgets (<= a few million states) is negligible (~2^-80 per pair).

   The accumulator is a mutable two-word record reused across states
   ([reset]); adding a word is two xors and two multiplications, no
   allocation. *)

type t = { mutable a : int; mutable b : int; mutable perm : int array }

(* The physical-equality sentinel for "no renaming": [add_pid] costs one
   pointer compare when no permutation is active, so the symmetry-off
   hashing path is word-for-word the historical one. *)
let no_perm : int array = [||]

(* FNV-1a 64-bit offset basis / prime, truncated to OCaml's 63-bit ints,
   with a distinct basis and prime per lane so the lanes stay
   independent. *)
let basis_a = 0x0bf29ce484222325
let basis_b = 0x2545f4914f6cdd1d
let prime_a = 0x00000100000001b3
let prime_b = 0x0000010000000193

let create () = { a = basis_a; b = basis_b; perm = no_perm }

let reset h =
  h.a <- basis_a;
  h.b <- basis_b;
  h.perm <- no_perm

let add_int h x =
  h.a <- (h.a lxor x) * prime_a;
  h.b <- (h.b lxor (x + 0x165667b19e3779f9)) * prime_b

let add_bool h x = add_int h (Bool.to_int x)

(* ---- pid renaming (symmetry canonicalization) ---------------------- *)

(* The model checker's canonicalization pass hashes a state under a
   candidate process permutation: it installs the renaming here and the
   per-protocol canonicalizers route every pid-valued datum through
   [add_pid]/[rename], so the fed word sequence is exactly what the
   permuted state would feed with no renaming active. Everything else
   ([add_int] on non-pid data) is unaffected. *)

let set_perm h p = h.perm <- p
let clear_perm h = h.perm <- no_perm
let perm_active h = h.perm != no_perm

let rename h i = if h.perm == no_perm then i else h.perm.(i)

let add_pid h i = add_int h (rename h i)
let perm_size h = Array.length h.perm

(* Strings are folded eight bytes at a word (the top byte loses one bit to
   the int63 truncation; the length word disambiguates) plus a bytewise
   tail. Used by the [Marshal]-fallback hasher, so longer inputs matter. *)
let add_string h s =
  let len = String.length s in
  add_int h len;
  let words = len / 8 in
  for i = 0 to words - 1 do
    add_int h (Int64.to_int (String.get_int64_le s (i * 8)))
  done;
  for i = words * 8 to len - 1 do
    add_int h (Char.code (String.unsafe_get s i))
  done

type digest = { d1 : int; d2 : int }

(* murmur3's 64-bit finalizer (constants truncated to int63): FNV-1a
   alone mixes weakly into the high bits, and [Hashtbl] buckets by the
   low bits of [Hashtbl.hash], so avalanche the lanes before exposing
   them. *)
let avalanche x =
  let x = x lxor (x lsr 33) in
  let x = x * 0x3f51afd7ed558ccd in
  let x = x lxor (x lsr 29) in
  let x = x * 0x04ceb9fe1a85ec53 in
  x lxor (x lsr 32)

let digest h = { d1 = avalanche h.a; d2 = avalanche (h.b lxor h.a) }

(* A digest for callers that already hold a canonical byte string (the
   model checker's Marshal-digest fallback backend): both lanes are
   derived from an MD5 of the bytes, so digest equality coincides with
   byte equality exactly as the marshalled-string fingerprints did. *)
let of_bytes s =
  let md5 = Digest.string s in
  {
    d1 = Int64.to_int (String.get_int64_le md5 0);
    d2 = Int64.to_int (String.get_int64_le md5 8);
  }

let equal x y = x.d1 = y.d1 && x.d2 = y.d2
let pp ppf d = Format.fprintf ppf "%015x:%015x" (d.d1 land max_int) (d.d2 land max_int)
