(** Execution traces.

    The engine appends an entry for every observable event of an execution:
    proposals, message sends and deliveries, timeouts, guard firings,
    decisions, crashes and protocol-level notes (e.g. INBAC phase
    transitions, used to regenerate the paper's Figure 1). Traces are the
    single source of truth for the complexity metrics and the property
    checkers. *)

type layer =
  | Commit_layer  (** a message of the atomic commit protocol itself *)
  | Consensus_layer  (** a message of the underlying consensus service *)

type entry =
  | Propose of { at : Sim_time.t; pid : Pid.t; vote : Vote.t }
  | Send of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      layer : layer;
      tag : string;  (** human-readable message constructor, e.g. "[V,1]" *)
      deliver_at : Sim_time.t;
    }
  | Deliver of {
      at : Sim_time.t;
      src : Pid.t;
      dst : Pid.t;
      layer : layer;
      tag : string;
      sent_at : Sim_time.t;
    }
  | Discard of { at : Sim_time.t; dst : Pid.t; tag : string }
      (** arrival at a crashed process: received by no one *)
  | Timeout of { at : Sim_time.t; pid : Pid.t; timer : string }
  | Guard of { at : Sim_time.t; pid : Pid.t; guard : string }
  | Decide of { at : Sim_time.t; pid : Pid.t; decision : Vote.decision }
  | Crash of { at : Sim_time.t; pid : Pid.t }
  | Note of { at : Sim_time.t; pid : Pid.t; label : string; value : string }

type t

val create : unit -> t
val add : t -> entry -> unit
val entries : t -> entry list
(** In chronological (append) order. *)

val length : t -> int
val time_of : entry -> Sim_time.t
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit

val decisions : t -> (Pid.t * Sim_time.t * Vote.decision) list
(** All [Decide] entries, in order. *)

val crashes : t -> (Pid.t * Sim_time.t) list
val proposals : t -> (Pid.t * Vote.t) list

val network_sends : ?layer:layer -> t -> entry list
(** [Send] entries with [src <> dst] (self-addressed messages are not
    "exchanged among the n processes" per the paper's footnote 10),
    restricted to [layer] when given, and only those actually emitted
    (the engine never records sends by crashed processes). *)

val notes : ?label:string -> t -> (Sim_time.t * Pid.t * string * string) list

type snapshot
(** An O(1) capture of a trace prefix (the entry list is persistent). *)

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Rewind the trace to the captured prefix, dropping entries added since.
    Used by the model checker to backtrack a shared execution context. *)

val entries_since : t -> snapshot -> entry list
(** The entries appended after the snapshot was taken, in append order. *)
