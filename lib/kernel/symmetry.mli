(** Process-permutation symmetry groups for the model checker.

    A value of type {!t} partitions the pid indices [0..n-1] into classes
    of behaviorally interchangeable processes; the induced group is the
    direct product of the full symmetric groups on the classes. Protocol
    modules declare their group through {!Proto.PROTOCOL.symmetry}; the
    checker canonicalizes state fingerprints over it (orbit collapse) and
    prunes permutation-twin transitions.

    Correctness contract: processes may share a class only if their
    handlers are identical up to consistently renaming every pid-valued
    datum (and every rank-derived datum, e.g. Paxos ballot owners) by the
    permutation. Declaring less symmetry than the protocol has merely
    loses collapse; declaring more equates states with different futures
    — the same kind of unsoundness as an under-hashed [hash_state]. *)

type t

val trivial : n:int -> t
(** No two processes interchangeable (chain/ring protocols). *)

val full : n:int -> t
(** Every process interchangeable (rank-oblivious protocols). *)

val after_rank : n:int -> int -> t
(** [after_rank ~n r]: all processes of rank [> r] form one class.
    [after_rank ~n 1] is the "everyone but the coordinator" shape. *)

val interchangeable_after_coordinator : n:int -> t
(** [after_rank ~n 1]. *)

val rank_range : n:int -> lo:int -> hi:int -> t
(** Processes of rank [lo..hi] (inclusive, clamped) form one class. *)

val of_classes : n:int -> int list list -> t
(** Explicit classes of process {e indices}. Raises [Invalid_argument]
    on out-of-range or overlapping members; singletons are dropped. *)

val meet : t -> t -> t
(** Common refinement: interchangeable only where both agree (composing
    the commit layer's group with the consensus layer's). *)

val refine : t -> key:(int -> int) -> t
(** Split every class by an attribute of its members (e.g. the input
    vote): only members with equal [key] stay interchangeable. *)

val is_trivial : t -> bool
val classes : t -> int list list
val size : t -> int

val order : t -> int
(** Number of group elements (product of class factorials). *)

val perms : ?cap:int -> t -> int array array
(** All group elements as renaming arrays — [sigma.(i)] is the index
    process [i] maps to — with the identity first. If the group order
    exceeds [cap] (default {!default_cap}), classes are halved until it
    fits: a sub-partition is a subgroup, so the cap costs collapse, not
    soundness. *)

val default_cap : int

val inverse : int array -> int array

val transpositions : t -> (int * int) list
(** All same-class index pairs (the candidate twin-pruning swaps). *)

val pp : Format.formatter -> t -> unit
