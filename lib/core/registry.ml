type consensus_impl = Paxos | Floodset | Trivial

type t = {
  name : string;
  uses_consensus : bool;
  run : ?consensus:consensus_impl -> Scenario.t -> Report.t;
  proto : (module Proto.PROTOCOL);
}

let consensus_module ~uses_consensus impl : (module Proto.CONSENSUS) =
  if not uses_consensus then (module Consensus_null)
  else
    match impl with
    | Paxos -> (module Consensus_paxos)
    | Floodset -> (module Consensus_floodset)
    | Trivial -> (module Consensus_trivial)

let make (module P : Proto.PROTOCOL) =
  let module With_paxos = Engine.Make (P) (Consensus_paxos) in
  let module With_floodset = Engine.Make (P) (Consensus_floodset) in
  let module With_trivial = Engine.Make (P) (Consensus_trivial) in
  let module Without = Engine.Make (P) (Consensus_null) in
  let run ?(consensus = Paxos) scenario =
    if not P.uses_consensus then Without.run scenario
    else
      match consensus with
      | Paxos -> With_paxos.run scenario
      | Floodset -> With_floodset.run scenario
      | Trivial -> With_trivial.run scenario
  in
  { name = P.name; uses_consensus = P.uses_consensus; run; proto = (module P) }

let all =
  [
    make (module Inbac);
    make (module Inbac_fast_abort);
    make (module Inbac_undershoot);
    make (module One_nbac);
    make (module Av_nbac_delay);
    make (module Zero_nbac);
    make (module Av_nbac_msg);
    make (module A_nbac);
    make (module Chain_nbac);
    make (module Star_nbac);
    make (module Cycle_nbac);
    make (module Two_pc);
    make (module Two_pc_classic);
    make (module Three_pc);
    make (module Paxos_commit);
    make (module Faster_paxos_commit);
    make (module Calvin_commit);
    make (module Majority_commit);
  ]

let compose t impl =
  (t.proto, consensus_module ~uses_consensus:t.uses_consensus impl)

let find name = List.find_opt (fun t -> String.equal t.name name) all

let find_exn name =
  match find name with Some t -> t | None -> raise Not_found

let names = List.map (fun t -> t.name) all
