(** The protocol registry: every implemented commit protocol behind one
    uniform "run a scenario" interface, with the consensus substrate
    chosen at run time. *)

type consensus_impl =
  | Paxos  (** indulgent; terminates with a correct majority (default) *)
  | Floodset  (** synchronous; tolerates any [f] crashes, aligned starts *)
  | Trivial  (** decide own proposal instantly; test plumbing only *)

type t = {
  name : string;
  uses_consensus : bool;
  run : ?consensus:consensus_impl -> Scenario.t -> Report.t;
  proto : (module Proto.PROTOCOL);
      (** The bare automaton, for drivers other than the engine (e.g. the
          [ac_mc] model checker instantiates its own composition). *)
}

val consensus_module :
  uses_consensus:bool -> consensus_impl -> (module Proto.CONSENSUS)
(** The consensus automaton the engine would co-host: the selected
    implementation, or the null automaton for consensus-free protocols. *)

val compose :
  t -> consensus_impl -> (module Proto.PROTOCOL) * (module Proto.CONSENSUS)
(** The automaton pair a driver should co-host for this protocol: its
    bare protocol module and the consensus module {!consensus_module}
    selects (the null automaton when the protocol never uses consensus).
    Drivers other than the engine — the model checker, the multi-shot
    commit service — instantiate their own [Machine.Make] composition
    from this pair. *)

val make : (module Proto.PROTOCOL) -> t
(** Wrap a protocol module; protocols that never use consensus are
    composed with the null consensus regardless of [?consensus]. *)

val all : t list
(** Every protocol of the paper plus the baselines, in presentation
    order: INBAC (and fast-abort variant), 1NBAC, avNBAC (delay), 0NBAC,
    avNBAC (msg), aNBAC, (n-1+f)NBAC, (2n-2)NBAC, (2n-2+f)NBAC, 2PC
    (spontaneous and classic), 3PC, Paxos Commit, Faster Paxos Commit,
    and the Section 6.3 weak-semantics baselines (Calvin-style commit,
    majority commit). *)

val find : string -> t option
val find_exn : string -> t
(** @raise Not_found on unknown protocol names. *)

val names : string list
