type entry = {
  protocol : string;
  cell : Props.cell;
  messages : n:int -> f:int -> int;
  delays : n:int -> f:int -> int;
  optimal_messages : bool;
  optimal_delays : bool;
  weak_semantics : string option;
  note : string;
}

let entries =
  [
    {
      protocol = "inbac";
      cell = Props.cell ~cf:Props.avt ~nf:Props.vt;
      messages = (fun ~n ~f -> 2 * f * n);
      delays = (fun ~n:_ ~f:_ -> 2);
      optimal_messages = false (* optimal among 2-delay protocols *);
      optimal_delays = true;
      weak_semantics = None;
      note =
        "message-optimal given the optimal two delays (Theorem 6); the \
         checker refuted network-failure agreement (a commit certificate \
         delivered past the timeout horizon decides commit at its target \
         while the consensus fallback decides abort) — INBAC assumes the \
         synchronous model and, unlike (2n-2+f)NBAC, is not indulgent";
    };
    {
      protocol = "inbac-fast-abort";
      cell = Props.cell ~cf:Props.avt ~nf:Props.vt;
      messages = (fun ~n ~f -> 2 * f * n);
      delays = (fun ~n:_ ~f:_ -> 2);
      optimal_messages = false;
      optimal_delays = true;
      weak_semantics = None;
      note =
        "as INBAC (including the refuted network-failure agreement claim); \
         failure-free aborts finish within one delay";
    };
    {
      protocol = "inbac-undershoot";
      cell = Props.cell ~cf:Props.t_ ~nf:Props.t_;
      messages = (fun ~n ~f -> 2 * f * n);
      delays = (fun ~n:_ ~f:_ -> 2);
      optimal_messages = false;
      optimal_delays = true;
      weak_semantics = None;
      note = "INBAC minus one acknowledgement, mechanizing Lemma 5's \
              tightness: loses agreement under network failures at every \
              f, and at f=1 the dropped ack was the only one, so a single \
              crash also splits decisions and hides a 0 vote (validity)";
    };
    {
      protocol = "1nbac";
      cell = Props.cell ~cf:Props.avt ~nf:Props.vt;
      messages = (fun ~n ~f:_ -> 2 * n * (n - 1));
      delays = (fun ~n:_ ~f:_ -> 1);
      optimal_messages = false;
      optimal_delays = true;
      weak_semantics = None;
      note = "one delay is optimal for synchronous NBAC (Theorem 1)";
    };
    {
      protocol = "avnbac-delay";
      cell = Props.cell ~cf:Props.av ~nf:Props.av;
      messages = (fun ~n ~f:_ -> n * (n - 1));
      delays = (fun ~n:_ ~f:_ -> 1);
      optimal_messages = false (* optimal among 1-delay protocols *);
      optimal_delays = true;
      weak_semantics = None;
      note = "n(n-1) messages are necessary for any 1-delay protocol";
    };
    {
      protocol = "0nbac";
      cell = Props.cell ~cf:Props.at ~nf:Props.at;
      messages = (fun ~n:_ ~f:_ -> 0);
      delays = (fun ~n:_ ~f:_ -> 1);
      optimal_messages = true;
      optimal_delays = true;
      weak_semantics = None;
      note = "both optima at once: no tradeoff for the 9 validity-free cells";
    };
    {
      protocol = "avnbac-msg";
      cell = Props.cell ~cf:Props.av ~nf:Props.av;
      messages = (fun ~n ~f:_ -> (2 * n) - 2);
      delays = (fun ~n:_ ~f:_ -> 2);
      optimal_messages = true;
      optimal_delays = false;
      weak_semantics = None;
      note = "2n-2 messages are optimal when validity survives network \
              failures (Theorem 2)";
    };
    {
      protocol = "anbac";
      cell = Props.cell ~cf:Props.av ~nf:Props.a;
      messages = (fun ~n ~f -> n - 1 + f);
      delays = (fun ~n ~f -> n + (2 * f));
      optimal_messages = true;
      optimal_delays = false;
      weak_semantics = None;
      note = "message-optimal for (AV, A)";
    };
    {
      protocol = "(n-1+f)nbac";
      cell = Props.cell ~cf:Props.avt ~nf:Props.t_;
      messages = (fun ~n ~f -> n - 1 + f);
      delays = (fun ~n ~f -> n + (2 * f));
      optimal_messages = true;
      optimal_delays = false;
      weak_semantics = None;
      note = "message-optimal synchronous NBAC, generalizing Dwork-Skeen's \
              2n-2 (f = n-1) to any f";
    };
    {
      protocol = "(2n-2)nbac";
      cell = Props.cell ~cf:Props.avt ~nf:Props.vt;
      messages = (fun ~n ~f:_ -> (2 * n) - 2);
      delays = (fun ~n:_ ~f -> 2 + f);
      optimal_messages = true;
      optimal_delays = false;
      weak_semantics = None;
      note = "message-optimal for (AVT, VT)";
    };
    {
      protocol = "(2n-2+f)nbac";
      cell = Props.cell ~cf:Props.avt ~nf:Props.avt;
      messages = (fun ~n ~f -> (2 * n) - 2 + f);
      delays = (fun ~n ~f -> if f >= 2 then (2 * n) + f - 2 else (2 * n) - 1);
      optimal_messages = true;
      optimal_delays = false;
      weak_semantics = None;
      note = "message-optimal indulgent atomic commit; the other side of \
              the Theorem 5 tradeoff against INBAC";
    };
    {
      protocol = "2pc";
      cell = Props.cell ~cf:Props.av ~nf:Props.a;
      messages = (fun ~n ~f:_ -> (2 * n) - 2);
      delays = (fun ~n:_ ~f:_ -> 2);
      optimal_messages = false;
      optimal_delays = false;
      weak_semantics = None;
      note = "spontaneous-start normalization of Section 6; blocks on \
              coordinator crash";
    };
    {
      protocol = "2pc-classic";
      cell = Props.cell ~cf:Props.av ~nf:Props.a;
      messages = (fun ~n ~f:_ -> (3 * n) - 3);
      delays = (fun ~n:_ ~f:_ -> 3);
      optimal_messages = false;
      optimal_delays = false;
      weak_semantics = None;
      note = "coordinator-initiated 2PC: quantifies the Section-6 \
              normalization (one delay and n-1 messages more than the \
              spontaneous variant)";
    };
    {
      protocol = "3pc";
      cell = Props.cell ~cf:Props.avt ~nf:Props.v;
      messages = (fun ~n ~f:_ -> (4 * n) - 4);
      delays = (fun ~n:_ ~f:_ -> 4);
      optimal_messages = false;
      optimal_delays = false;
      weak_semantics = None;
      note = "2n-2 messages and delays over 2PC; agreement breakable under \
              network failures";
    };
    {
      protocol = "paxos-commit";
      cell = Props.cell ~cf:Props.avt ~nf:Props.v;
      messages = (fun ~n ~f -> ((n - 1) * (f + 2)) + f);
      delays = (fun ~n:_ ~f:_ -> 3);
      optimal_messages = false;
      optimal_delays = false;
      weak_semantics = None;
      note = "fewer messages than INBAC for f >= 2, one more delay; the \
              original is fully indulgent — our port simplifies recovery \
              (see EXPERIMENTS.md)";
    };
    {
      protocol = "faster-paxos-commit";
      cell = Props.cell ~cf:Props.avt ~nf:Props.v;
      messages = (fun ~n ~f -> 2 * (n - 1) * (f + 1));
      delays = (fun ~n:_ ~f:_ -> 2);
      optimal_messages = false;
      optimal_delays = true;
      weak_semantics = None;
      note = "two delays like INBAC but never fewer messages than 2fn \
              (Theorem 5 tightness in practice)";
    };
    {
      protocol = "calvin-commit";
      cell = Props.cell ~cf:Props.t_ ~nf:Props.t_;
      messages = (fun ~n:_ ~f:_ -> 0);
      delays = (fun ~n:_ ~f:_ -> 1);
      optimal_messages = true;
      optimal_delays = true;
      weak_semantics = None;
      note = "Section 6.3's Calvin: deterministic locking, no explicit \
              commit protocol; NBAC only in failure-free executions \
              (cell (T, T))";
    };
    {
      protocol = "majority-commit";
      cell = Props.cell ~cf:Props.t_ ~nf:Props.t_;
      messages = (fun ~n ~f:_ -> n * (n - 1));
      delays = (fun ~n:_ ~f:_ -> 1);
      optimal_messages = false;
      optimal_delays = false;
      weak_semantics =
        Some
          "commits on a majority of yes votes: violates NBAC's \
           commit-validity even failure-free (Section 6.3's Replicated \
           Commit assumption); its own contract is majority-validity";
      note = "deliberately solves a weaker problem than atomic commit";
    };
  ]

let find protocol =
  List.find_opt (fun e -> String.equal e.protocol protocol) entries

let find_exn protocol =
  match find protocol with Some e -> e | None -> raise Not_found

let is_weak protocol =
  match find protocol with
  | Some e -> e.weak_semantics <> None
  | None -> false

let strict_names =
  List.filter_map
    (fun e -> if e.weak_semantics = None then Some e.protocol else None)
    entries
