(** FloodSet: synchronous uniform consensus tolerating up to [f] crashes
    (any [f <= n - 1]) in [f + 1] rounds of one message delay each.

    Used for the paper's crash-failure-only cells, where termination must
    hold for arbitrary [f] (Paxos needs a correct majority). Each proposer
    floods the set of values it knows for [f + 1] rounds and then decides
    [0] if it ever saw a [0], else [1] — a deterministic rule over the
    common final knowledge set.

    Assumption (documented, asserted nowhere): correct in synchronous
    (crash-failure) systems when all proposals happen within the same
    [U]-slot, which holds for the protocols that we pair with it (their
    proposals fire at a synchronized timeout). Under network failures,
    or with badly staggered proposals, its agreement can break — use
    {!Consensus_paxos} there. *)

type state
type msg

val name : string
val pp_msg : Format.formatter -> msg -> unit
val init : Proto.env -> state
val on_propose : Proto.env -> state -> Vote.t -> state * msg Proto.action list

val on_deliver :
  Proto.env -> state -> src:Pid.t -> msg -> state * msg Proto.action list

val on_timeout : Proto.env -> state -> id:string -> state * msg Proto.action list

val hash_state : state Proto.state_hasher option
(** See {!Proto.PROTOCOL.hash_state}. *)

val hash_msg : msg Proto.msg_hasher option
(** See {!Proto.CONSENSUS.hash_msg}. *)

val symmetry : n:int -> f:int -> Symmetry.t
(** Rank-oblivious flooding: every permutation preserves behavior. *)
