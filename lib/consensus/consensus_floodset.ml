type msg = Known of { yes : bool; no : bool }

type state = {
  known_yes : bool;
  known_no : bool;
  proposed : bool;
  decided : bool;
}

let name = "floodset"

let pp_msg ppf (Known { yes; no }) =
  Format.fprintf ppf "known{%s%s}" (if yes then "1" else "")
    (if no then "0" else "")

let init _env = { known_yes = false; known_no = false; proposed = false; decided = false }

let round_id r = Printf.sprintf "floodset-round:%d" r

let broadcast_known env state =
  List.map
    (fun q -> Proto.Send (q, Known { yes = state.known_yes; no = state.known_no }))
    (Pid.others ~n:env.Proto.n env.Proto.self)

let merge state (Known { yes; no }) =
  { state with known_yes = state.known_yes || yes; known_no = state.known_no || no }

let on_propose env state v =
  if state.proposed then (state, [])
  else begin
    let state =
      match v with
      | Vote.Yes -> { state with known_yes = true; proposed = true }
      | Vote.No -> { state with known_no = true; proposed = true }
    in
    let actions =
      broadcast_known env state
      @ [ Proto.Set_timer { id = round_id 1; fire = Proto.After env.Proto.u } ]
    in
    (state, actions)
  end

let on_deliver _env state ~src:_ m = (merge state m, [])

let decide state =
  if state.decided then (state, [])
  else begin
    let v = if state.known_no then Vote.No else Vote.Yes in
    ({ state with decided = true }, [ Proto.Decide (Vote.decision_of_vote v) ])
  end

let on_timeout env state ~id =
  match String.index_opt id ':' with
  | Some i when String.length id > i + 1 && String.sub id 0 i = "floodset-round"
    -> (
      match int_of_string_opt (String.sub id (i + 1) (String.length id - i - 1)) with
      | Some r when state.proposed && not state.decided ->
          if r <= env.Proto.f then
            ( state,
              broadcast_known env state
              @ [
                  Proto.Set_timer
                    { id = round_id (r + 1); fire = Proto.After env.Proto.u };
                ] )
          else decide state
      | Some _ | None -> (state, []))
  | Some _ | None -> (state, [])

let hash_state =
  Some
    (fun h s ->
      Fingerprint.add_bool h s.known_yes;
      Fingerprint.add_bool h s.known_no;
      Fingerprint.add_bool h s.proposed;
      Fingerprint.add_bool h s.decided)

let hash_msg =
  Some
    (fun h (Known { yes; no }) ->
      Fingerprint.add_bool h yes;
      Fingerprint.add_bool h no)

(* Rank-oblivious flooding: rounds are counted, never attributed. *)
let symmetry ~n ~f:_ = Symmetry.full ~n
