(** Single-decree Paxos over binary values: the indulgent uniform consensus
    service ([uc] / [iuc]) used by INBAC, 1NBAC, 0NBAC and (2n-2+f)NBAC.

    Every process is an acceptor and a learner; a process becomes a
    proposer when the commit layer proposes to it. Ballot [k*n + i] is
    owned by the process of index [i]; proposers retry with exponentially
    backed-off timeouts, so the protocol terminates in every execution that
    is eventually synchronous, provided a majority of processes is correct
    — exactly the premise under which the paper's termination claims for
    consensus-based protocols hold (Appendix B). Agreement and validity
    hold unconditionally, as required by the paper's Definition 5. *)

type state
type msg

val name : string
val pp_msg : Format.formatter -> msg -> unit
val init : Proto.env -> state
val on_propose : Proto.env -> state -> Vote.t -> state * msg Proto.action list

val on_deliver :
  Proto.env -> state -> src:Pid.t -> msg -> state * msg Proto.action list

val on_timeout : Proto.env -> state -> id:string -> state * msg Proto.action list

val retry_base_delay : u:Sim_time.t -> Sim_time.t
(** First retry timeout (4·U); doubles on each failed attempt, capped at
    2^8 · 4 · U. Exposed for tests. *)

val hash_state : state Proto.state_hasher option
(** See {!Proto.PROTOCOL.hash_state}. *)

val hash_msg : msg Proto.msg_hasher option
(** See {!Proto.CONSENSUS.hash_msg}. *)

val symmetry : n:int -> f:int -> Symmetry.t
(** The full symmetric group: rank enters Paxos only through the ballot
    encoding [k*n + i], which the hashers rename ballot-wise. *)
