type ballot = int

type msg =
  | Prepare of ballot
  | Promise of { ballot : ballot; accepted : (ballot * Vote.t) option }
  | Nack of { ballot : ballot; promised : ballot }
  | Accept of ballot * Vote.t
  | Accepted of ballot * Vote.t
  | Decided of Vote.t

type phase = Idle | Preparing | Accepting | Learned

type state = {
  (* acceptor *)
  promised : ballot;  (* -1 when no promise was made yet *)
  accepted : (ballot * Vote.t) option;
  (* proposer *)
  proposal : Vote.t option;
  attempt : int;
  ballot : ballot;  (* ballot of the attempt in progress, -1 when idle *)
  phase : phase;
  promises : (Pid.t * (ballot * Vote.t) option) list;
  accepts : Pid.t list;
  highest_seen : ballot;
  (* learner *)
  decided_value : Vote.t option;
}

let name = "paxos"

let pp_msg ppf = function
  | Prepare b -> Format.fprintf ppf "prepare(%d)" b
  | Promise { ballot; accepted = None } ->
      Format.fprintf ppf "promise(%d,-)" ballot
  | Promise { ballot; accepted = Some (ab, av) } ->
      Format.fprintf ppf "promise(%d,%d:%a)" ballot ab Vote.pp av
  | Nack { ballot; promised } -> Format.fprintf ppf "nack(%d,%d)" ballot promised
  | Accept (b, v) -> Format.fprintf ppf "accept(%d,%a)" b Vote.pp v
  | Accepted (b, v) -> Format.fprintf ppf "accepted(%d,%a)" b Vote.pp v
  | Decided v -> Format.fprintf ppf "decided(%a)" Vote.pp v

let init _env =
  {
    promised = -1;
    accepted = None;
    proposal = None;
    attempt = 0;
    ballot = -1;
    phase = Idle;
    promises = [];
    accepts = [];
    highest_seen = -1;
    decided_value = None;
  }

let majority n = (n / 2) + 1
let retry_base_delay ~u = 4 * u

let retry_delay ~u ~attempt =
  let shift = min (max 0 (attempt - 1)) 8 in
  retry_base_delay ~u * (1 lsl shift)

let retry_id attempt = Printf.sprintf "paxos-retry:%d" attempt

let broadcast env m =
  List.map (fun q -> Proto.Send (q, m)) (Pid.all ~n:env.Proto.n)

(* Begin the next prepare attempt: pick the smallest of our own ballots
   that exceeds every ballot we have seen, broadcast [Prepare] and arm the
   retry timer. *)
let start_attempt env state =
  let n = env.Proto.n in
  let i = Pid.index env.Proto.self in
  let k =
    let min_k = (state.highest_seen / n) + 1 in
    max (state.attempt + 1) min_k
  in
  let ballot = (k * n) + i in
  let attempt = state.attempt + 1 in
  let state =
    {
      state with
      attempt;
      ballot;
      phase = Preparing;
      promises = [];
      accepts = [];
      highest_seen = max state.highest_seen ballot;
    }
  in
  let actions =
    broadcast env (Prepare ballot)
    @ [
        Proto.Set_timer
          {
            id = retry_id attempt;
            fire = Proto.After (retry_delay ~u:env.Proto.u ~attempt);
          };
      ]
  in
  (state, actions)

let learn state v =
  match state.decided_value with
  | Some _ -> (state, [])
  | None ->
      ( { state with decided_value = Some v; phase = Learned },
        [ Proto.Decide (Vote.decision_of_vote v) ] )

let on_propose env state v =
  match state.proposal with
  | Some _ -> (state, [])
  | None -> (
      let state = { state with proposal = Some v } in
      match state.decided_value with
      | Some dv -> (state, [ Proto.Decide (Vote.decision_of_vote dv) ])
      | None -> start_attempt env state)

(* The value an attempt must propose: the accepted value with the highest
   ballot among a majority of promises, or our own proposal. *)
let choose_value state =
  let best =
    List.fold_left
      (fun acc (_, a) ->
        match (acc, a) with
        | None, a -> a
        | Some _, None -> acc
        | Some (ab, _), Some (b, _) -> if b > ab then a else acc)
      None state.promises
  in
  match (best, state.proposal) with
  | Some (_, v), _ -> v
  | None, Some v -> v
  | None, None -> assert false (* only proposers collect promises *)

let on_deliver env state ~src m =
  match m with
  | Prepare b -> (
      match state.decided_value with
      | Some v -> (state, [ Proto.Send (src, Decided v) ])
      | None ->
          if b > state.promised then
            ( { state with promised = b },
              [ Proto.Send (src, Promise { ballot = b; accepted = state.accepted }) ]
            )
          else
            ( { state with highest_seen = max state.highest_seen b },
              [ Proto.Send (src, Nack { ballot = b; promised = state.promised }) ]
            ))
  | Promise { ballot; accepted } ->
      if state.phase = Preparing && ballot = state.ballot then begin
        let promises =
          if List.mem_assoc src state.promises then state.promises
          else (src, accepted) :: state.promises
        in
        let state = { state with promises } in
        if List.length promises >= majority env.Proto.n then begin
          let v = choose_value state in
          let state = { state with phase = Accepting; accepts = [] } in
          (state, broadcast env (Accept (state.ballot, v)))
        end
        else (state, [])
      end
      else (state, [])
  | Nack { ballot = _; promised } ->
      ({ state with highest_seen = max state.highest_seen promised }, [])
  | Accept (b, v) -> (
      match state.decided_value with
      | Some dv -> (state, [ Proto.Send (src, Decided dv) ])
      | None ->
          if b >= state.promised then
            ( { state with promised = b; accepted = Some (b, v) },
              [ Proto.Send (src, Accepted (b, v)) ] )
          else
            ( { state with highest_seen = max state.highest_seen b },
              [ Proto.Send (src, Nack { ballot = b; promised = state.promised }) ]
            ))
  | Accepted (b, v) ->
      if state.phase = Accepting && b = state.ballot then begin
        let accepts =
          if List.exists (Pid.equal src) state.accepts then state.accepts
          else src :: state.accepts
        in
        let state = { state with accepts } in
        if List.length accepts >= majority env.Proto.n then begin
          let state, decide_actions = learn state v in
          (state, broadcast env (Decided v) @ decide_actions)
        end
        else (state, [])
      end
      else (state, [])
  | Decided v -> learn state v

let on_timeout env state ~id =
  if
    String.equal id (retry_id state.attempt)
    && state.phase <> Learned && state.phase <> Idle
    && state.decided_value = None
  then start_attempt env state
  else (state, [])

let fp = Fingerprint.add_int
let fp_vote h v = fp h (Vote.to_int v)

(* Ballots encode their proposer: [b = k*n + i]. Under a renaming the
   symmetry action maps [b] to [k*n + sigma(i)], so feed the attempt
   number and the renamed proposer separately. Without a renaming, feed
   the raw integer — the historical (byte-stable) encoding. *)
let fp_ballot h b =
  if b < 0 || not (Fingerprint.perm_active h) then fp h b
  else begin
    let n = Fingerprint.perm_size h in
    fp h (b / n);
    Fingerprint.add_pid h (b mod n)
  end

let fp_accepted h = function
  | None -> fp h 0
  | Some (b, v) ->
      fp h 1;
      fp_ballot h b;
      fp_vote h v

let hash_state =
  Some
    (fun h s ->
      fp_ballot h s.promised;
      fp_accepted h s.accepted;
      (match s.proposal with
      | None -> fp h 0
      | Some v ->
          fp h 1;
          fp_vote h v);
      fp h s.attempt;
      fp_ballot h s.ballot;
      fp h
        (match s.phase with
        | Idle -> 0
        | Preparing -> 1
        | Accepting -> 2
        | Learned -> 3);
      fp h (List.length s.promises);
      let promises =
        if Fingerprint.perm_active h then
          List.sort
            (fun (p, _) (q, _) ->
              compare
                (Fingerprint.rename h (Pid.index p))
                (Fingerprint.rename h (Pid.index q)))
            s.promises
        else s.promises
      in
      List.iter
        (fun (p, acc) ->
          Fingerprint.add_pid h (Pid.index p);
          fp_accepted h acc)
        promises;
      fp h (List.length s.accepts);
      let accepts =
        if Fingerprint.perm_active h then
          List.sort
            (fun p q ->
              compare
                (Fingerprint.rename h (Pid.index p))
                (Fingerprint.rename h (Pid.index q)))
            s.accepts
        else s.accepts
      in
      List.iter (fun p -> Fingerprint.add_pid h (Pid.index p)) accepts;
      fp_ballot h s.highest_seen;
      match s.decided_value with
      | None -> fp h 0
      | Some v ->
          fp h 1;
          fp_vote h v)

let hash_msg =
  Some
    (fun h m ->
      match m with
      | Prepare b ->
          fp h 0;
          fp_ballot h b
      | Promise { ballot; accepted } ->
          fp h 1;
          fp_ballot h ballot;
          fp_accepted h accepted
      | Nack { ballot; promised } ->
          fp h 2;
          fp_ballot h ballot;
          fp_ballot h promised
      | Accept (b, v) ->
          fp h 3;
          fp_ballot h b;
          fp_vote h v
      | Accepted (b, v) ->
          fp h 4;
          fp_ballot h b;
          fp_vote h v
      | Decided v ->
          fp h 5;
          fp_vote h v)

(* Every process runs proposer + acceptor + learner identically; rank
   enters only through ballot encoding, which [fp_ballot] renames. Retry
   timer ids are attempt-numbered, never pid-numbered. *)
let symmetry ~n ~f:_ = Symmetry.full ~n
