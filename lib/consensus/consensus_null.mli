(** The absent consensus service: protocols with [uses_consensus = false]
    are composed with this module, and proposing to it is a protocol bug
    that fails loudly. *)

type state = unit
type msg = |

val name : string
val pp_msg : Format.formatter -> msg -> unit
val init : Proto.env -> state
val on_propose : Proto.env -> state -> Vote.t -> state * msg Proto.action list

val on_deliver :
  Proto.env -> state -> src:Pid.t -> msg -> state * msg Proto.action list

val on_timeout : Proto.env -> state -> id:string -> state * msg Proto.action list

val hash_state : state Proto.state_hasher option
(** See {!Proto.PROTOCOL.hash_state}. *)

val hash_msg : msg Proto.msg_hasher option
(** See {!Proto.CONSENSUS.hash_msg}. *)

val symmetry : n:int -> f:int -> Symmetry.t
(** No messages, no state: every permutation preserves it. *)
