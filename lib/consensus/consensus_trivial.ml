(** A deliberately naive consensus: each process instantly decides its own
    proposal.

    It satisfies consensus validity and termination but {e not} agreement
    when proposals differ — it exists only to unit-test the commit-layer /
    consensus-layer plumbing deterministically (e.g. "1NBAC proposes 0 to
    [uc] when a vote is missing"), never to run experiments. *)

type state = { decided : bool }
type msg = |

let name = "trivial(unsafe)"
let pp_msg _ppf (m : msg) = (match m with _ -> .)
let init _env = { decided = false }

let on_propose _env state v =
  if state.decided then (state, [])
  else ({ decided = true }, [ Proto.Decide (Vote.decision_of_vote v) ])

let on_deliver _env _state ~src:_ (m : msg) = (match m with _ -> .)
let on_timeout _env state ~id:_ = (state, [])

let hash_state = Some (fun h s -> Fingerprint.add_bool h s.decided)

let hash_msg = Some (fun (_ : Fingerprint.t) (m : msg) -> (match m with _ -> .))
let symmetry ~n ~f:_ = Symmetry.full ~n
