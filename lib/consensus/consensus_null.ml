(** The absent consensus service.

    Protocols with [uses_consensus = false] (avNBAC, (n-1+f)NBAC,
    (2n-2)NBAC, 2PC, 3PC) are composed with this module; proposing to it
    is a protocol bug and fails loudly. *)

type state = unit
type msg = |

let name = "null"
let pp_msg _ppf (m : msg) = (match m with _ -> .)
let init _env = ()

let on_propose _env () _v =
  failwith "Consensus_null: protocol proposed to the null consensus"

let on_deliver _env () ~src:_ (m : msg) = (match m with _ -> .)
let on_timeout _env () ~id:_ = ((), [])

let hash_state = Some (fun (_ : Fingerprint.t) () -> ())

let hash_msg = Some (fun (_ : Fingerprint.t) (m : msg) -> (match m with _ -> .))
let symmetry ~n ~f:_ = Symmetry.full ~n
