(** Checkers for the NBAC properties (Definition 1 of the paper) over an
    executed report. *)

type verdict = {
  agreement : bool;
      (** no two decisions differ — across processes, and across time for
          a single process (decision stability, AC2: a conflicting
          re-decision traced by the engine breaks agreement) *)
  commit_validity : bool;  (** decide 1 ⟹ nobody proposed 0 *)
  abort_validity : bool;
      (** decide 0 ⟹ some process proposed 0 or a failure occurred *)
  termination : bool;
      (** every correct process decided, and the run reached quiescence *)
  violations : string list;  (** human-readable description of each breach *)
}

val validity : verdict -> bool
val solves_nbac : verdict -> bool
val holds : verdict -> Props.t -> bool
(** Does the verdict satisfy (at least) this property set? *)

val run : Report.t -> verdict

val pp : Format.formatter -> verdict -> unit
