type verdict = {
  agreement : bool;
  commit_validity : bool;
  abort_validity : bool;
  termination : bool;
  violations : string list;
}

let validity v = v.commit_validity && v.abort_validity
let solves_nbac v = v.agreement && validity v && v.termination

let holds v (p : Props.t) =
  (Bool.not p.Props.a || v.agreement)
  && (Bool.not p.Props.v || validity v)
  && (Bool.not p.Props.t || v.termination)

let run (r : Report.t) =
  let violations = ref [] in
  let fail fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  let decisions = Report.decided_values r in
  (* validity is about what was actually proposed: a process that crashed
     before proposing never proposed its vote *)
  let someone_no =
    List.exists (fun (_, v) -> Vote.equal v Vote.no) (Trace.proposals r.trace)
  in
  let failure = Classify.failure_occurred r in
  let agreement =
    match decisions with
    | [] -> true
    | d :: rest ->
        if List.for_all (Vote.decision_equal d) rest then true
        else begin
          fail "agreement: processes decided both commit and abort";
          false
        end
  in
  (* Decision stability (AC2): a process never changes a decision it has
     made. The engine records only the first decision per process, but it
     traces a conflicting re-decision precisely so we can flag it here
     instead of silently dropping it. *)
  let stable =
    let conflicting =
      Pid.all ~n:r.scenario.Scenario.n
      |> List.filter (fun p ->
             match
               List.filter_map
                 (fun (q, _, d) -> if Pid.equal p q then Some d else None)
                 (Trace.decisions r.trace)
             with
             | [] -> false
             | first :: rest ->
                 List.exists
                   (fun d -> not (Vote.decision_equal first d))
                   rest)
    in
    match conflicting with
    | [] -> true
    | ps ->
        fail "decision stability (AC2): process(es) %s re-decided with a \
              different value"
          (String.concat "," (List.map Pid.to_string ps));
        false
  in
  let agreement = agreement && stable in
  let commit_validity =
    if List.exists (Vote.decision_equal Vote.Commit) decisions && someone_no
    then begin
      fail "commit-validity: commit decided although some process voted 0";
      false
    end
    else true
  in
  let abort_validity =
    if
      List.exists (Vote.decision_equal Vote.Abort) decisions
      && (not someone_no) && not failure
    then begin
      fail
        "abort-validity: abort decided in a failure-free execution where \
         every process voted 1";
      false
    end
    else true
  in
  let termination =
    (* "every correct process eventually decides": once everyone correct
       has decided, late in-flight traffic does not negate termination.
       When someone is still undecided we require quiescence as the
       evidence that it never will decide — a run cut off at max-time is
       reported as a violation (conservatively). *)
    let all_correct_decided = Report.all_correct_decided r in
    if not all_correct_decided then begin
      let blocked =
        Report.correct_pids r
        |> List.filter (fun p -> Report.decision_of r p = None)
        |> List.map Pid.to_string
      in
      match r.outcome with
      | Report.Quiescent _ ->
          fail "termination: correct process(es) %s never decide"
            (String.concat "," blocked)
      | Report.Max_time_reached ->
          fail
            "termination: correct process(es) %s undecided when the run was \
             cut off at max-time"
            (String.concat "," blocked)
    end;
    all_correct_decided
  in
  { agreement; commit_validity; abort_validity; termination;
    violations = List.rev !violations }

let pp ppf v =
  let b ppf ok = Format.pp_print_string ppf (if ok then "ok" else "VIOLATED") in
  Format.fprintf ppf
    "@[<v>agreement: %a@,commit-validity: %a@,abort-validity: %a@,\
     termination: %a@]"
    b v.agreement b v.commit_validity b v.abort_validity b v.termination
