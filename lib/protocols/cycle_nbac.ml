type msg =
  | V of Vote.t  (** conjunction so far, travelling the chain *)
  | B of Vote.t  (** full conjunction, travelling the ring *)
  | Z of Vote.t  (** final confirmation for the backups [P1..P_{f-1}] *)
  | Help
  | Helped of Vote.t

type state = {
  votes : Vote.t;
  received_v : bool;
  received_b : bool;
  received_z : bool;
  phase : int;
  decided : bool;
  proposed : bool;
  pending_help : Pid.t list;
      (** [HELP] requests queued until this process can answer them
          (appendix remark (c)) *)
}

let name = "(2n-2+f)nbac"
let uses_consensus = true

let pp_msg ppf = function
  | V v -> Format.fprintf ppf "[V,%d]" (Vote.to_int v)
  | B b -> Format.fprintf ppf "[B,%d]" (Vote.to_int b)
  | Z z -> Format.fprintf ppf "[Z,%d]" (Vote.to_int z)
  | Help -> Format.pp_print_string ppf "[HELP]"
  | Helped v -> Format.fprintf ppf "[HELPED,%d]" (Vote.to_int v)

let init _env =
  {
    votes = Vote.yes;
    received_v = false;
    received_b = false;
    received_z = false;
    phase = 0;
    decided = false;
    proposed = false;
    pending_help = [];
  }

(* Appendix convention: pseudo-code instant [k] is absolute delay [k-1]. *)
let timer_at id k = Proto_util.timer_at id (k - 1)

let propose_zero state =
  if state.proposed then (state, [])
  else
    ( { state with votes = Vote.no; proposed = true },
      [ Proto.Propose_consensus Vote.no ] )

let propose_votes state =
  if state.proposed then (state, [])
  else ({ state with proposed = true }, [ Proto.Propose_consensus state.votes ])

let decide_votes state =
  if state.decided then (state, [])
  else ({ state with decided = true }, [ Proto_util.decide_vote state.votes ])

let on_propose env state v =
  let i = Proto_util.rank env in
  let state = { state with votes = Vote.logand state.votes v } in
  if i = 1 then
    ( { state with phase = 1 },
      [
        Proto_util.send (Pid.of_rank 2) (V state.votes);
        timer_at "t" (env.Proto.n + 1);
      ] )
  else (state, [ timer_at "t" i ])

let on_deliver env state ~src msg =
  let i = Proto_util.rank env in
  let f = env.Proto.f in
  match msg with
  | V v ->
      if state.phase = 0 then
        ( {
            state with
            votes = Vote.logand state.votes v;
            received_v = true;
          },
          [] )
      else (state, [])
  | B b ->
      if state.phase = 1 then
        ( {
            state with
            votes = Vote.logand state.votes b;
            received_b = true;
          },
          [] )
      else (state, [])
  | Z z ->
      if state.phase = 2 then
        ( {
            state with
            votes = Vote.logand state.votes z;
            received_z = true;
          },
          [] )
      else (state, [])
  | Help ->
      (* [Pn] answers once it holds the ring token knowledge (phase >= 1);
         [P1..Pf] answer once they reached phase 2. Earlier requests are
         queued (remark (c)) and flushed by the "answer-pending-help"
         guard so that termination survives arbitrary delays. *)
      if (i = env.Proto.n && state.phase >= 1)
         || (i <= f && state.phase = 2)
      then (state, [ Proto_util.send src (Helped state.votes) ])
      else if i = env.Proto.n || i <= f then
        ({ state with pending_help = src :: state.pending_help }, [])
      else (state, [])
  | Helped v ->
      if state.proposed then (state, [])
      else ({ state with proposed = true }, [ Proto.Propose_consensus v ])

let on_timeout env state ~id =
  let i = Proto_util.rank env in
  let f = env.Proto.f in
  let n = env.Proto.n in
  match id with
  | "t" when state.phase = 0 ->
      (* time [i]: the V chain should have arrived from P_{i-1} *)
      let state = { state with phase = 1 } in
      if state.received_v then begin
        let send =
          if i = n then Proto_util.send (Pid.of_rank 1) (B state.votes)
          else Proto_util.send (Pid.of_rank (i + 1)) (V state.votes)
        in
        (state, [ send; timer_at "t" (n + i) ])
      end
      else begin
        let state, proposals = propose_zero state in
        (state, proposals @ [ timer_at "t" (n + i) ])
      end
  | "t" when state.phase = 1 && i = n ->
      (* time [2n]: the B token should have returned *)
      let state = { state with phase = 2 } in
      if state.received_b then begin
        let state, decisions = decide_votes state in
        let z =
          if f >= 2 then [ Proto_util.send (Pid.of_rank 1) (Z state.votes) ]
          else []
        in
        (state, decisions @ z)
      end
      else propose_votes state
  | "t" when state.phase = 1 ->
      (* time [n+i], i <= n-1: the B token should be here *)
      if state.received_b then begin
        let forward = [ Proto_util.send (Pid.of_rank (i + 1)) (B state.votes) ] in
        if i <= f - 1 then
          ( { state with phase = 2 },
            forward @ [ timer_at "t" ((2 * n) + i) ] )
        else begin
          let state, decisions = decide_votes { state with phase = 2 } in
          (state, forward @ decisions)
        end
      end
      else if i <= f then begin
        let state, proposals = propose_zero { state with phase = 2 } in
        if i <= f - 1 then
          (state, proposals @ [ timer_at "t" ((2 * n) + i) ])
        else (state, proposals)
      end
      else begin
        (* mid-ring: ask the backups before resorting to consensus *)
        let targets = Proto_util.first_ranked f @ [ Pid.of_rank n ] in
        ({ state with phase = 2 }, Proto_util.send_each targets Help)
      end
  | "t" when state.phase = 2 && i <= f - 1 ->
      (* time [2n+i]: the Z confirmation should be here *)
      if state.received_z then begin
        let state, decisions = decide_votes state in
        let forward =
          if i + 1 <= f - 1 then
            [ Proto_util.send (Pid.of_rank (i + 1)) (Z state.votes) ]
          else []
        in
        (state, decisions @ forward)
      end
      else propose_votes state
  | "t" -> (state, [])
  | other -> failwith ("Cycle_nbac: unknown timer " ^ other)

let guards =
  [
    ( "answer-pending-help",
      fun env state ->
        state.pending_help <> []
        &&
        let i = Proto_util.rank env in
        (i = env.Proto.n && state.phase >= 1)
        || (i <= env.Proto.f && state.phase = 2) );
  ]

let on_guard _env state ~id =
  match id with
  | "answer-pending-help" ->
      let replies =
        List.rev_map
          (fun src -> Proto_util.send src (Helped state.votes))
          state.pending_help
      in
      ({ state with pending_help = [] }, replies)
  | other -> failwith ("Cycle_nbac: unknown guard " ^ other)

let on_consensus_decide _env state d =
  if state.decided then (state, [])
  else ({ state with decided = true }, [ Proto_util.decide_vote d ])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.votes;
      fp_bool h s.received_v;
      fp_bool h s.received_b;
      fp_bool h s.received_z;
      fp_int h s.phase;
      fp_bool h s.decided;
      fp_bool h s.proposed;
      fp_pids h s.pending_help)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m ->
      match m with
      | V v ->
          fp_int h 0;
          fp_vote h v
      | B b ->
          fp_int h 1;
          fp_vote h b
      | Z z ->
          fp_int h 2;
          fp_vote h z
      | Help -> fp_int h 3
      | Helped v ->
          fp_int h 4;
          fp_vote h v)

(* Chain + ring + backup roles are all rank-determined. *)
let symmetry ~n ~f:_ = Symmetry.trivial ~n
