module type CONFIG = sig
  val variant_name : string
  val fast_abort : bool

  val ack_undershoot : bool
  (** Decide directly with one acknowledgement fewer than Lemma 5's [f]
      (the highest-ranked expected backup is not awaited). Exists to
      demonstrate that the lemma's bound is tight: the variant loses
      agreement under network failures — see [Witness] and the tests. *)

  val naive_backups : bool
  (** Drop the reconstructed [P_{f+1}] role (DESIGN.md note 1): every
      process, including [P_i] with [i <= f], backs its vote up at
      [P1..Pf] only — so the low ranks end up with [f-1] backups besides
      themselves, short of Lemma 1. The tests show this naive reading
      cannot be the paper's: its nice executions use [2fn - 2f] messages
      (missing the 2fn bound) and the low ranks' reached-set falls below
      [f]. *)
end

let backups env =
  let f = env.Proto.f in
  let i = Proto_util.rank env in
  if i <= f then
    List.filter
      (fun q -> not (Pid.equal q env.Proto.self))
      (Proto_util.first_ranked (f + 1))
  else Proto_util.first_ranked f

module Make (Cfg : CONFIG) = struct
  type phase = Phase0 | Phase1 | Phase2

  type msg =
    | V of Vote.t  (** a vote shipped to a backup process *)
    | C of Vset.t  (** consolidated acknowledgement of backed-up votes *)
    | Help
    | Helped of Vset.t

  type state = {
    phase : phase;
    vote : Vote.t;
    proposed : bool;
    decided : bool;
    collection0 : Vset.t;  (** votes this process holds as a backup *)
    collection1 : (Pid.t * Vset.t) list;  (** [C] acks, per sender *)
    collection_help : Vset.t;
    wait : bool;
    cnt : int;  (** number of [C] messages received *)
    cnt_help : int;  (** number of [HELPED] messages received *)
    sent_ack : Vset.t option;
        (** the snapshot of [collection0] this backup consolidated into
            its [C] broadcast at time U. A low-rank process may decide
            directly only if {e this snapshot} was complete: its own later
            knowledge is irrelevant to the processes that acted on the
            broadcast (a lesson from the chaos fuzzer — see the test
            suite's regression). *)
    pending_help : Pid.t list;
        (** [HELP] requests that arrived before [phase = 2]; remark (c) of
            the appendix queues them until the condition holds *)
  }

  let name = Cfg.variant_name
  let uses_consensus = true

  let pp_msg ppf = function
    | V v -> Format.fprintf ppf "[V,%d]" (Vote.to_int v)
    | C coll -> Format.fprintf ppf "[C,%a]" Vset.pp coll
    | Help -> Format.pp_print_string ppf "[HELP]"
    | Helped coll -> Format.fprintf ppf "[HELPED,%a]" Vset.pp coll

  let init _env =
    {
      phase = Phase0;
      vote = Vote.yes;
      proposed = false;
      decided = false;
      collection0 = Vset.empty;
      collection1 = [];
      collection_help = Vset.empty;
      wait = false;
      cnt = 0;
      cnt_help = 0;
      sent_ack = None;
      pending_help = [];
    }

  let phase_note p =
    Proto.Note
      ( "phase",
        match p with Phase0 -> "0" | Phase1 -> "1" | Phase2 -> "2" )

  (* A decided process has no use for its remaining phase alarms; without
     this, a fast-abort decision at time 0 still fires (no-op) timeouts at
     U and 2U and stretches the run's quiescence. *)
  let cancel_phase_timers =
    [ Proto.Cancel_timer "phase0"; Proto.Cancel_timer "phase1" ]

  let on_propose env state v =
    let i = Proto_util.rank env in
    let f = env.Proto.f in
    let state = { state with vote = v; collection0 = Vset.singleton env.Proto.self v } in
    let vote_sends =
      (* every process backs its vote up at P1..Pf; P_i with i <= f also
         at P_{f+1} (so that it reaches f backups other than itself) *)
      Proto_util.send_each (Proto_util.first_ranked f) (V v)
      @
      if i <= f && not Cfg.naive_backups then
        [ Proto_util.send (Pid.of_rank (f + 1)) (V v) ]
      else []
    in
    let timers =
      if i <= f + 1 then [ Proto_util.timer_at "phase0" 1 ]
      else [ Proto_util.timer_at "phase1" 2 ]
    in
    let state =
      if i <= f + 1 then state else { state with phase = Phase1 }
    in
    let fast =
      if Cfg.fast_abort && Vote.equal v Vote.no then
        Proto_util.broadcast_others env (V Vote.no)
        @ [ Proto.Note ("decide-path", "fast-abort"); Proto_util.decide Vote.abort ]
        @ cancel_phase_timers
      else []
    in
    let state =
      if Cfg.fast_abort && Vote.equal v Vote.no then
        { state with decided = true }
      else state
    in
    (state, vote_sends @ timers @ fast @ [ phase_note state.phase ])

  (* The [C] acknowledgements this process must have received, with the
     vote coverage each must exhibit, for a direct decision at 2U:
     - from every P_j, j <= f (other than itself): all n votes;
     - and, when this process has rank <= f, from P_{f+1}: the votes of
       P1..Pf (P_{f+1} backs up exactly those). *)
  let expected_acks env =
    let f = env.Proto.f in
    let i = Proto_util.rank env in
    let full = Pid.all ~n:env.Proto.n in
    let first_f = Proto_util.first_ranked f in
    let of_peer j = (Pid.of_rank j, full) in
    let acks =
      if i <= f then
        List.filter_map
          (fun j -> if j = i then None else Some (of_peer j))
          (List.init f (fun k -> k + 1))
        @
        if Cfg.naive_backups then [] (* P_{f+1} holds nothing to ack *)
        else [ (Pid.of_rank (f + 1), first_f) ]
      else List.map of_peer (List.init f (fun k -> k + 1))
    in
    if Cfg.ack_undershoot then
      (* drop the last (highest-ranked) requirement: f-1 acks suffice *)
      match List.rev acks with [] -> [] | _ :: rest -> List.rev rest
    else acks

  let ack_ok state (sender, coverage) =
    match List.assoc_opt sender state.collection1 with
    | None -> false
    | Some coll -> Vset.covers coll coverage

  let can_decide_directly env state =
    let i = Proto_util.rank env in
    List.for_all (ack_ok state) (expected_acks env)
    && (i > env.Proto.f
       ||
       (* a low rank is itself a backup: its own consolidated [C] must
          have been complete when it was broadcast, because that is what
          everybody else saw *)
       match state.sent_ack with
       | Some snapshot -> Vset.complete ~n:env.Proto.n snapshot
       | None -> false)

  let merged_collections state =
    List.fold_left (fun acc (_, c) -> Vset.union acc c) Vset.empty
      state.collection1

  (* Merge everything this process has learnt into collection0, as the
     pseudo-code does when entering phase 2. *)
  let enter_phase2 env state =
    let merged = merged_collections state in
    {
      state with
      phase = Phase2;
      collection0 =
        Vset.add env.Proto.self state.vote
          (Vset.union state.collection0 merged);
    }

  let propose_actions state proposal =
    ( { state with proposed = true },
      [
        Proto.Note ("decide-path", "consensus");
        Proto.Propose_consensus proposal;
      ] )

  let direct_decision _env state =
    (* the acknowledgements checked by [can_decide_directly] carry the
       complete vote set; fold them in rather than trusting the local
       collection, which can lag behind (e.g. when the decision fires
       from the help-quorum guard on a late [C]) *)
    let d =
      Vset.conjunction (Vset.union state.collection0 (merged_collections state))
    in
    ( { state with decided = true },
      [ Proto.Note ("decide-path", "direct"); Proto_util.decide_vote d ]
      @ cancel_phase_timers )

  (* The decision logic shared by the phase-1 timeout and the help-quorum
     guard. Precondition: [state.phase = Phase2], collections merged. *)
  let attempt_decision env state =
    let i = Proto_util.rank env in
    let f = env.Proto.f in
    let n = env.Proto.n in
    if can_decide_directly env state then direct_decision env state
    else if i <= f then begin
      (* P1..Pf never ask for help: they propose to consensus at once *)
      let proposal =
        if Vset.complete ~n state.collection0 then
          Vset.conjunction state.collection0
        else Vote.no
      in
      propose_actions state proposal
    end
    else if state.cnt >= 1 then begin
      let merged = merged_collections state in
      let proposal =
        if Vset.complete ~n merged then Vset.conjunction merged else Vote.no
      in
      propose_actions state proposal
    end
    else begin
      (* no acknowledgement at all: ask {P_{f+1}..Pn} (self included —
         the self-addressed HELP is answered immediately and free) *)
      let state = { state with wait = true } in
      (state, Proto_util.send_each (Proto_util.ranked_from env (f + 1)) Help)
    end

  let on_timeout env state ~id =
    match id with
    | "phase0" when state.phase = Phase0 ->
        let i = Proto_util.rank env in
        let f = env.Proto.f in
        let targets =
          if i <= f then Pid.others ~n:env.Proto.n env.Proto.self
          else if Cfg.naive_backups then [] (* not a backup of anyone *)
          else Proto_util.first_ranked f
        in
        let sends =
          if state.decided then []
            (* fast-abort already settled this process; skip the acks *)
          else Proto_util.send_each targets (C state.collection0)
        in
        let state =
          { state with phase = Phase1; sent_ack = Some state.collection0 }
        in
        (state, sends @ [ Proto_util.timer_at "phase1" 2; phase_note Phase1 ])
    | "phase1" when state.phase = Phase1 ->
        let state = enter_phase2 env state in
        if state.decided || state.proposed then
          (state, [ phase_note Phase2 ])
        else begin
          let state, actions = attempt_decision env state in
          (state, phase_note Phase2 :: actions)
        end
    | "phase0" | "phase1" -> (state, [])
    | other -> failwith ("Inbac: unknown timer " ^ other)

  let answer_help state p = Proto_util.send p (Helped state.collection0)

  let on_deliver env state ~src msg =
    let i = Proto_util.rank env in
    let f = env.Proto.f in
    match msg with
    | V v ->
        let state =
          if i <= f + 1 then
            { state with collection0 = Vset.add src v state.collection0 }
          else state
        in
        if
          Cfg.fast_abort && Vote.equal v Vote.no && not state.decided
        then
          ( { state with decided = true },
            [ Proto.Note ("decide-path", "fast-abort"); Proto_util.decide Vote.abort ]
            @ cancel_phase_timers )
        else (state, [])
    | C coll ->
        if List.mem_assoc src state.collection1 then (state, [])
        else
          ( {
              state with
              collection1 = (src, coll) :: state.collection1;
              cnt = state.cnt + 1;
            },
            [] )
    | Help ->
        if i <= f then (state, []) (* HELP is only addressed to P_{f+1}..Pn *)
        else if state.phase = Phase2 || state.decided then
          (* a decided process has retired its phase timers and will never
             reach phase 2; it answers with what it holds right away *)
          (state, [ answer_help state src ])
        else ({ state with pending_help = src :: state.pending_help }, [])
    | Helped coll ->
        ( {
            state with
            collection_help = Vset.union state.collection_help coll;
            cnt_help = state.cnt_help + 1;
          },
          [] )

  let guards =
    [
      ( "answer-pending-help",
        fun _env state ->
          (state.phase = Phase2 || state.decided) && state.pending_help <> [] );
      ( "help-quorum",
        fun env state ->
          Proto_util.rank env >= env.Proto.f + 1
          && state.wait && (not state.proposed) && (not state.decided)
          && state.cnt + state.cnt_help >= env.Proto.n - env.Proto.f );
    ]

  let on_guard env state ~id =
    match id with
    | "answer-pending-help" ->
        let replies = List.rev_map (answer_help state) state.pending_help in
        ({ state with pending_help = [] }, replies)
    | "help-quorum" ->
        let state = { state with wait = false } in
        if can_decide_directly env state then direct_decision env state
        else if state.cnt >= 1 then begin
          let merged = merged_collections state in
          let proposal =
            if Vset.complete ~n:env.Proto.n merged then
              Vset.conjunction merged
            else Vote.no
          in
          propose_actions state proposal
        end
        else begin
          let proposal =
            if Vset.complete ~n:env.Proto.n state.collection_help then
              Vset.conjunction state.collection_help
            else Vote.no
          in
          propose_actions state proposal
        end
    | other -> failwith ("Inbac: unknown guard " ^ other)

  let on_consensus_decide _env state d =
    if state.decided then (state, [])
    else
      ( { state with decided = true },
        Proto_util.decide_vote d :: cancel_phase_timers )

  let hash_state =
    let open Proto_util in
    Some
      (fun h s ->
        fp_int h (match s.phase with Phase0 -> 0 | Phase1 -> 1 | Phase2 -> 2);
        fp_vote h s.vote;
        fp_bool h s.proposed;
        fp_bool h s.decided;
        fp_vset h s.collection0;
        fp_assoc_vsets h s.collection1;
        fp_vset h s.collection_help;
        fp_bool h s.wait;
        fp_int h s.cnt;
        fp_int h s.cnt_help;
        fp_opt fp_vset h s.sent_ack;
        fp_pids h s.pending_help)

  let hash_msg =
    let open Proto_util in
    Some
      (fun h m ->
        match m with
        | V v ->
            fp_int h 0;
            fp_vote h v
        | C coll ->
            fp_int h 1;
            fp_vset h coll
        | Help -> fp_int h 2
        | Helped coll ->
            fp_int h 3;
            fp_vset h coll)

  (* [P1..Pf] are the backups and [P_{f+2}..Pn] plain participants;
     [P_{f+1}] plays a reconstructed partial-backup role of its own. The
     undershoot witness stops awaiting [P_f]'s acknowledgement, which
     singles [P_f] out of the backup class (and, combined with naive
     backups, the dropped requirement varies per rank, so no two backups
     stay interchangeable). *)
  let symmetry ~n ~f =
    let low =
      if Cfg.ack_undershoot && Cfg.naive_backups then 0
      else if Cfg.ack_undershoot then f - 1
      else f
    in
    Symmetry.of_classes ~n
      [
        List.init (max 0 (min low n)) (fun i -> i);
        List.init (max 0 (n - f - 1)) (fun i -> i + f + 1);
      ]
end

include Make (struct
  let variant_name = "inbac"
  let fast_abort = false
  let ack_undershoot = false
  let naive_backups = false
end)
