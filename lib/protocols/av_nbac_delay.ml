type msg = V of Vote.t

type state = { decided : bool; decision : Vote.t; heard_from : Pid.t list }

let name = "avnbac-delay"
let uses_consensus = false
let pp_msg ppf (V v) = Format.fprintf ppf "[V,%d]" (Vote.to_int v)
let init _env = { decided = false; decision = Vote.yes; heard_from = [] }

let on_propose env state v =
  ( { state with decision = v },
    Proto_util.send_each (Pid.all ~n:env.Proto.n) (V v)
    @ [ Proto_util.timer_at "round1" 1 ] )

let on_deliver _env state ~src (V v) =
  let heard_from =
    if List.exists (Pid.equal src) state.heard_from then state.heard_from
    else src :: state.heard_from
  in
  ({ state with heard_from; decision = Vote.logand state.decision v }, [])

let on_timeout env state ~id =
  match id with
  | "round1" ->
      if (not state.decided) && List.length state.heard_from = env.Proto.n
      then
        ( { state with decided = true },
          [ Proto_util.decide_vote state.decision ] )
      else (state, [])
  | other -> failwith ("Av_nbac_delay: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("Av_nbac_delay: unknown guard " ^ id)
let on_consensus_decide _env state _d = (state, [])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_bool h s.decided;
      fp_vote h s.decision;
      fp_pid_set h s.heard_from)

let hash_msg =
  let open Proto_util in
  Some (fun h (V v) -> fp_vote h v)

(* Rank-oblivious: every process broadcasts and collects identically. *)
let symmetry ~n ~f:_ = Symmetry.full ~n
