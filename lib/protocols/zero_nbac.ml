type msg = V | B | Ack
(* [V] and [B] always carry vote 0 in this protocol, so the payload is
   implicit. *)

type state = {
  myvote : Vote.t;
  zero : bool;  (** saw a [V,0] before the first timeout *)
  phase : int;
  decided : bool;
  proposed : bool;
  myack : Pid.t list;
}

let name = "0nbac"
let uses_consensus = true

let pp_msg ppf = function
  | V -> Format.pp_print_string ppf "[V,0]"
  | B -> Format.pp_print_string ppf "[B,0]"
  | Ack -> Format.pp_print_string ppf "[ACK]"

let init _env =
  {
    myvote = Vote.yes;
    zero = false;
    phase = 0;
    decided = false;
    proposed = false;
    myack = [];
  }

let on_propose env state v =
  let state = { state with myvote = v; phase = 1 } in
  let sends =
    match v with
    | Vote.No -> Proto_util.broadcast_others env V
    | Vote.Yes -> []
  in
  (state, sends @ [ Proto_util.timer_at "t" 1 ])

let add_once p pids = if List.exists (Pid.equal p) pids then pids else p :: pids

let on_deliver _env state ~src msg =
  match msg with
  | V ->
      if state.phase = 1 then
        ({ state with zero = true }, [ Proto_util.send src Ack ])
      else (state, [])
  | B ->
      if state.phase = 2 && not (Vote.equal state.myvote Vote.yes && state.decided)
      then (state, [ Proto_util.send src Ack ])
      else (state, [])
  | Ack -> ({ state with myack = add_once src state.myack }, [])

let on_timeout env state ~id =
  match id with
  | "t" when state.phase = 1 ->
      let state = { state with phase = 2 } in
      if (not state.zero) && Vote.equal state.myvote Vote.yes then
        (* category 3: no zero in sight, decide 1 after one delay *)
        ({ state with decided = true }, [ Proto_util.decide Vote.commit ])
      else if state.zero && Vote.equal state.myvote Vote.yes then
        (* category 2: relay the zero and wait for acknowledgements *)
        ( state,
          Proto_util.broadcast_others env B @ [ Proto_util.timer_at "t" 3 ] )
      else
        (* category 1: own vote is 0; acknowledgements due by 2U *)
        (state, [ Proto_util.timer_at "t" 2 ])
  | "t" when state.phase = 2 && not state.proposed ->
      let proposal =
        if List.length state.myack = env.Proto.n - 1 then Vote.no else Vote.yes
      in
      ({ state with proposed = true }, [ Proto.Propose_consensus proposal ])
  | "t" -> (state, [])
  | other -> failwith ("Zero_nbac: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("Zero_nbac: unknown guard " ^ id)

let on_consensus_decide _env state d =
  if state.decided then (state, [])
  else ({ state with decided = true }, [ Proto_util.decide_vote d ])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.myvote;
      fp_bool h s.zero;
      fp_int h s.phase;
      fp_bool h s.decided;
      fp_bool h s.proposed;
      fp_pid_set h s.myack)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m -> fp_int h (match m with V -> 0 | B -> 1 | Ack -> 2))

(* Rank-oblivious: relays and acknowledgements follow votes, not ranks. *)
let symmetry ~n ~f:_ = Symmetry.full ~n
