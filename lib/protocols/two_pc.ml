type msg = V of Vote.t | Decision of Vote.t

type state = {
  conjunction : Vote.t;
  heard_from : Pid.t list;
  decided : bool;
  announced : bool;  (** coordinator already broadcast the decision *)
}

let name = "2pc"
let uses_consensus = false

let pp_msg ppf = function
  | V v -> Format.fprintf ppf "[V,%d]" (Vote.to_int v)
  | Decision d -> Format.fprintf ppf "[D,%d]" (Vote.to_int d)

let init _env =
  { conjunction = Vote.yes; heard_from = []; decided = false; announced = false }

let coordinator = Pid.of_rank 1
let is_coordinator env = Pid.equal env.Proto.self coordinator
let add_once p pids = if List.exists (Pid.equal p) pids then pids else p :: pids

let announce env state =
  if state.announced then (state, [])
  else begin
    let state = { state with announced = true; decided = true } in
    ( state,
      Proto_util.broadcast_others env (Decision state.conjunction)
      @ [ Proto_util.decide_vote state.conjunction ] )
  end

let on_propose env state v =
  let state =
    {
      state with
      conjunction = Vote.logand state.conjunction v;
      heard_from = [ env.Proto.self ];
    }
  in
  if is_coordinator env then
    (* wait for the participants' votes; abort at time 2 if one is
       missing (only a failure can cause that in a synchronous system) *)
    (state, [ Proto_util.timer_at "collect" 2 ])
  else begin
    (* a participant that votes 0 may abort unilaterally *)
    let unilateral =
      match v with
      | Vote.No -> [ Proto_util.decide Vote.abort ]
      | Vote.Yes -> []
    in
    let state =
      match v with Vote.No -> { state with decided = true } | Vote.Yes -> state
    in
    (state, Proto_util.send coordinator (V v) :: unilateral)
  end

let on_deliver env state ~src msg =
  match msg with
  | V v ->
      if is_coordinator env then begin
        let state =
          {
            state with
            conjunction = Vote.logand state.conjunction v;
            heard_from = add_once src state.heard_from;
          }
        in
        if List.length state.heard_from = env.Proto.n then announce env state
        else (state, [])
      end
      else (state, [])
  | Decision d ->
      if state.decided then (state, [])
      else ({ state with decided = true }, [ Proto_util.decide_vote d ])

let on_timeout env state ~id =
  match id with
  | "collect" ->
      if is_coordinator env && not state.announced then begin
        (* a vote is missing after a full round trip: abort *)
        let state = { state with conjunction = Vote.no } in
        announce env state
      end
      else (state, [])
  | other -> failwith ("Two_pc: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("Two_pc: unknown guard " ^ id)
let on_consensus_decide _env state _d = (state, [])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.conjunction;
      fp_pid_set h s.heard_from;
      fp_bool h s.decided;
      fp_bool h s.announced)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m ->
      match m with
      | V v ->
          fp_int h 0;
          fp_vote h v
      | Decision d ->
          fp_int h 1;
          fp_vote h d)

(* Only the coordinator's rank matters; participants run identical code. *)
let symmetry ~n ~f:_ = Symmetry.interchangeable_after_coordinator ~n
