type msg = Chain of Vote.t | V0 | B0 | Ack_v | Ack_b

type state = {
  (* chain part, as in (n-1+f)NBAC *)
  decision : Vote.t;
  decided : bool;
  delivered : bool;
  relayed : bool;
  phase : int;
  (* acknowledgement overlay *)
  vote : Vote.t;
  delivered_v : bool;  (** some [V,0] arrived *)
  collection_v : Pid.t list;  (** acks of our [V,0] *)
  collection_b : Pid.t list;  (** acks of our [B,0] *)
  noop : bool;  (** blocked: not allowed to decide 1 at the deadline *)
  phase0 : int;
}

let name = "anbac"
let uses_consensus = false

let pp_msg ppf = function
  | Chain v -> Format.fprintf ppf "[%d]" (Vote.to_int v)
  | V0 -> Format.pp_print_string ppf "[V,0]"
  | B0 -> Format.pp_print_string ppf "[B,0]"
  | Ack_v -> Format.pp_print_string ppf "[ACK,V]"
  | Ack_b -> Format.pp_print_string ppf "[ACK,B]"

let init _env =
  {
    decision = Vote.yes;
    decided = false;
    delivered = false;
    relayed = false;
    phase = 0;
    vote = Vote.yes;
    delivered_v = false;
    collection_v = [];
    collection_b = [];
    noop = false;
    phase0 = 0;
  }

(* Same timer convention as (n-1+f)NBAC: pseudo-code instant [k] is
   absolute delay [k - 1]. *)
let timer_at id k = Proto_util.timer_at id (k - 1)
let noop_deadline env = env.Proto.n + (2 * env.Proto.f) + 1
let add_once p pids = if List.exists (Pid.equal p) pids then pids else p :: pids

let on_propose env state v =
  let i = Proto_util.rank env in
  let state = { state with decision = v; vote = v } in
  let chain_part, state =
    if i = 1 then
      ( (match v with
        | Vote.Yes -> [ Proto_util.send (Pid.of_rank 2) (Chain v) ]
        | Vote.No -> [])
        @ [ timer_at "chain" (env.Proto.n + 1) ],
        { state with phase = 2 } )
    else ([ timer_at "chain" i ], { state with phase = 1 })
  in
  let overlay =
    match v with
    | Vote.No -> Proto_util.broadcast_others env V0 @ [ timer_at "t0" 3 ]
    | Vote.Yes -> [ timer_at "t0" 2 ]
  in
  (state, chain_part @ overlay)

let broadcast_decision env state =
  Proto_util.broadcast_others env (Chain state.decision)

let on_deliver env state ~src msg =
  match msg with
  | V0 ->
      ( { state with decision = Vote.no; delivered_v = true },
        [ Proto_util.send src Ack_v ] )
  | B0 -> ({ state with decision = Vote.no }, [ Proto_util.send src Ack_b ])
  | Ack_v -> ({ state with collection_v = add_once src state.collection_v }, [])
  | Ack_b -> ({ state with collection_b = add_once src state.collection_b }, [])
  | Chain v ->
      let state = { state with decision = Vote.logand state.decision v } in
      if state.phase <= 2 then begin
        let pred = Pid.predecessor ~n:env.Proto.n env.Proto.self in
        if Pid.equal src pred then ({ state with delivered = true }, [])
        else (state, [])
      end
      else if
        (not state.decided) && (not state.relayed)
        && Vote.equal state.decision Vote.no
      then ({ state with relayed = true }, broadcast_decision env state)
      else (state, [])

let decide_zero state =
  if state.decided then (state, [])
  else ({ state with decided = true }, [ Proto_util.decide Vote.abort ])

let on_timeout env state ~id =
  match id with
  | "t0" -> begin
      match state.vote with
      | Vote.No ->
          if List.length state.collection_v = env.Proto.n - 1 then
            decide_zero state
          else ({ state with noop = true }, [])
      | Vote.Yes ->
          if state.phase0 = 0 && state.delivered_v then
            ( { state with phase0 = 1 },
              Proto_util.broadcast_others env B0 @ [ timer_at "t0" 4 ] )
          else if state.phase0 = 1 then
            if List.length state.collection_b = env.Proto.n - 1 then
              decide_zero state
            else ({ state with noop = true }, [])
          else (state, [])
    end
  | "chain" when state.phase = 1 ->
      let i = Proto_util.rank env in
      let f = env.Proto.f in
      let n = env.Proto.n in
      let state =
        if state.delivered then state else { state with decision = Vote.no }
      in
      let sends =
        if Vote.equal state.decision Vote.yes then
          [ Proto_util.send (Pid.successor ~n env.Proto.self) (Chain Vote.yes) ]
        else if i = n then broadcast_decision env state
        else []
      in
      let state = { state with delivered = false } in
      if i >= f + 1 then
        ( { state with phase = 3 },
          sends @ [ timer_at "chain" (noop_deadline env) ] )
      else ({ state with phase = 2 }, sends @ [ timer_at "chain" (n + i) ])
  | "chain" when state.phase = 2 ->
      let i = Proto_util.rank env in
      let f = env.Proto.f in
      let state =
        if state.delivered then state else { state with decision = Vote.no }
      in
      let sends =
        if Vote.equal state.decision Vote.yes then
          if i <> f then
            [
              Proto_util.send
                (Pid.successor ~n:env.Proto.n env.Proto.self)
                (Chain Vote.yes);
            ]
          else []
        else broadcast_decision env state
      in
      ( { state with delivered = false; phase = 3 },
        sends @ [ timer_at "chain" (noop_deadline env) ] )
  | "chain" when state.phase = 3 ->
      if
        (not state.decided)
        && Vote.equal state.decision Vote.yes
        && not state.noop
      then
        ({ state with decided = true }, [ Proto_util.decide Vote.commit ])
      else (state, [])
  | "chain" -> (state, [])
  | other -> failwith ("A_nbac: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("A_nbac: unknown guard " ^ id)
let on_consensus_decide _env state _d = (state, [])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.decision;
      fp_bool h s.decided;
      fp_bool h s.delivered;
      fp_bool h s.relayed;
      fp_int h s.phase;
      fp_vote h s.vote;
      fp_bool h s.delivered_v;
      fp_pids h s.collection_v;
      fp_pids h s.collection_b;
      fp_bool h s.noop;
      fp_int h s.phase0)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m ->
      match m with
      | Chain v ->
          fp_int h 0;
          fp_vote h v
      | V0 -> fp_int h 1
      | B0 -> fp_int h 2
      | Ack_v -> fp_int h 3
      | Ack_b -> fp_int h 4)

(* The chain overlay is rank-determined: no two processes are
   interchangeable. *)
let symmetry ~n ~f:_ = Symmetry.trivial ~n
