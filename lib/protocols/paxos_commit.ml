type msg =
  | Prepared of Vote.t  (** RM ballot-0 vote, to the active acceptors *)
  | Report of Vset.t  (** acceptor bundle, to the leader *)
  | Outcome of Vote.decision
  | Query
  | Report2 of Vset.t  (** acceptor bundle, to a re-querying process *)

type state = {
  vote : Vote.t;
  decided : bool;
  proposed : bool;
  acceptor_coll : Vset.t;  (** ballot-0 accepts held as an acceptor *)
  reports : (Pid.t * Vset.t) list;  (** leader: acceptor bundles *)
  replies : (Pid.t * Vset.t) list;  (** re-querier: acceptor bundles *)
}

let name = "paxos-commit"
let uses_consensus = true

let pp_msg ppf = function
  | Prepared v -> Format.fprintf ppf "[PREPARED,%d]" (Vote.to_int v)
  | Report coll -> Format.fprintf ppf "[REPORT,%a]" Vset.pp coll
  | Outcome d -> Format.fprintf ppf "[OUTCOME,%d]" (Vote.decision_to_int d)
  | Query -> Format.pp_print_string ppf "[QUERY]"
  | Report2 coll -> Format.fprintf ppf "[REPORT2,%a]" Vset.pp coll

let init _env =
  {
    vote = Vote.yes;
    decided = false;
    proposed = false;
    acceptor_coll = Vset.empty;
    reports = [];
    replies = [];
  }

let leader = Pid.of_rank 1
let acceptors env = Proto_util.first_ranked (env.Proto.f + 1)
let is_leader env = Pid.equal env.Proto.self leader

let is_acceptor env =
  Proto_util.rank env <= env.Proto.f + 1

let settle state d =
  if state.decided then (state, [])
  else ({ state with decided = true }, [ Proto_util.decide d ])

(* A bundle proves commit only if it is complete and unanimously yes. *)
let bundle_commits ~n coll =
  Vset.complete ~n coll && Vote.equal (Vset.conjunction coll) Vote.yes

let bundle_has_no coll =
  List.exists (fun (_, v) -> Vote.equal v Vote.no) (Vset.bindings coll)

let on_propose env state v =
  let state = { state with vote = v } in
  let sends = Proto_util.send_each (acceptors env) (Prepared v) in
  let timers =
    (if is_acceptor env then [ Proto_util.timer_at "report" 1 ] else [])
    @ (if is_leader env then [ Proto_util.timer_at "decide" 2 ] else [])
    @ [ Proto_util.timer_at "fallback" 4 ]
  in
  (state, sends @ timers)

let propose_once state v =
  if state.proposed then (state, [])
  else ({ state with proposed = true }, [ Proto.Propose_consensus v ])

let on_deliver env state ~src msg =
  match msg with
  | Prepared v ->
      ({ state with acceptor_coll = Vset.add src v state.acceptor_coll }, [])
  | Report coll ->
      if is_leader env && not (List.mem_assoc src state.reports) then
        ({ state with reports = (src, coll) :: state.reports }, [])
      else (state, [])
  | Outcome d -> settle state d
  | Query -> (state, [ Proto_util.send src (Report2 state.acceptor_coll) ])
  | Report2 coll ->
      if List.mem_assoc src state.replies then (state, [])
      else ({ state with replies = (src, coll) :: state.replies }, [])

let on_timeout env state ~id =
  let n = env.Proto.n in
  match id with
  | "report" -> (state, [ Proto_util.send leader (Report state.acceptor_coll) ])
  | "decide" ->
      if state.decided then (state, [])
      else begin
        let bundles = List.map snd state.reports in
        if
          List.length state.reports = env.Proto.f + 1
          && List.for_all (bundle_commits ~n) bundles
        then begin
          let state, decisions = settle state Vote.commit in
          ( state,
            Proto_util.broadcast_others env (Outcome Vote.commit) @ decisions )
        end
        else if List.exists bundle_has_no bundles then begin
          let state, decisions = settle state Vote.abort in
          ( state,
            Proto_util.broadcast_others env (Outcome Vote.abort) @ decisions )
        end
        else
          (* a bundle is missing or incomplete without an explicit no:
             a failure; resolve through consensus *)
          propose_once state Vote.no
      end
  | "fallback" ->
      if state.decided || state.proposed then (state, [])
      else
        ( state,
          Proto_util.send_each (acceptors env) Query
          @ [ Proto_util.timer_at "candidate" 6 ] )
  | "candidate" ->
      if state.decided || state.proposed then (state, [])
      else begin
        let bundles = List.map snd state.replies in
        let candidate =
          if bundles <> [] && List.for_all (bundle_commits ~n) bundles then
            Vote.yes
          else Vote.no
        in
        propose_once state candidate
      end
  | other -> failwith ("Paxos_commit: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("Paxos_commit: unknown guard " ^ id)

let on_consensus_decide _env state d =
  if state.decided then (state, [])
  else ({ state with decided = true }, [ Proto_util.decide_vote d ])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.vote;
      fp_bool h s.decided;
      fp_bool h s.proposed;
      fp_vset h s.acceptor_coll;
      fp_assoc_vsets h s.reports;
      fp_assoc_vsets h s.replies)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m ->
      match m with
      | Prepared v ->
          fp_int h 0;
          fp_vote h v
      | Report coll ->
          fp_int h 1;
          fp_vset h coll
      | Outcome d ->
          fp_int h 2;
          fp_decision h d
      | Query -> fp_int h 3
      | Report2 coll ->
          fp_int h 4;
          fp_vset h coll)

(* [P1] is both leader and acceptor; [P2..P_{f+1}] are the other
   acceptors; the remaining resource managers only vote and query. *)
let symmetry ~n ~f =
  Symmetry.of_classes ~n
    [
      List.init (min f (n - 1)) (fun i -> i + 1);
      List.init (max 0 (n - f - 1)) (fun i -> i + f + 1);
    ]
