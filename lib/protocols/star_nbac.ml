type msg = V of Vote.t | B of Vote.t

type state = {
  votes : Vote.t;
  received_b : bool;
  relayed : bool;
  phase : int;
  collection : Pid.t list;  (** voters heard by [Pn], self included *)
  decided : bool;
}

let name = "(2n-2)nbac"
let uses_consensus = false

let pp_msg ppf = function
  | V v -> Format.fprintf ppf "[V,%d]" (Vote.to_int v)
  | B b -> Format.fprintf ppf "[B,%d]" (Vote.to_int b)

let init env =
  {
    votes = Vote.yes;
    received_b = false;
    relayed = false;
    phase = 0;
    collection = [ env.Proto.self ];
    decided = false;
  }

(* Appendix convention: pseudo-code instant [k] is absolute delay [k-1]. *)
let timer_at id k = Proto_util.timer_at id (k - 1)
let add_once p pids = if List.exists (Pid.equal p) pids then pids else p :: pids

let on_propose env state v =
  let i = Proto_util.rank env in
  let n = env.Proto.n in
  let state = { state with votes = Vote.logand state.votes v } in
  if i <= n - 1 then
    (state, [ Proto_util.send (Pid.of_rank n) (V v); timer_at "t" 3 ])
  else (state, [ timer_at "t" 2 ])

let relay_zero env state =
  if state.relayed then (state, [])
  else
    ( { state with relayed = true; votes = Vote.no },
      Proto_util.broadcast_others env (B Vote.no) )

let on_deliver env state ~src msg =
  match msg with
  | V v ->
      ( {
          state with
          votes = Vote.logand state.votes v;
          collection = add_once src state.collection;
        },
        [] )
  | B b -> (
      let state = { state with received_b = true } in
      match b with
      | Vote.Yes -> ({ state with votes = Vote.logand state.votes b }, [])
      | Vote.No -> relay_zero env state)

let on_timeout env state ~id =
  match id with
  | "t" when state.phase = 0 ->
      let i = Proto_util.rank env in
      let n = env.Proto.n in
      let f = env.Proto.f in
      let state = { state with phase = 1 } in
      let state, sends =
        if i = n then
          if
            Vote.equal state.votes Vote.yes
            && List.length state.collection = n
          then (state, Proto_util.broadcast_others env (B Vote.yes))
          else relay_zero env state
        else if not state.received_b then relay_zero env state
        else (state, [])
      in
      (state, sends @ [ timer_at "t" (3 + f) ])
  | "t" when state.phase = 1 ->
      if state.decided then (state, [])
      else
        ({ state with decided = true }, [ Proto_util.decide_vote state.votes ])
  | "t" -> (state, [])
  | other -> failwith ("Star_nbac: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("Star_nbac: unknown guard " ^ id)
let on_consensus_decide _env state _d = (state, [])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.votes;
      fp_bool h s.received_b;
      fp_bool h s.relayed;
      fp_int h s.phase;
      fp_pid_set h s.collection;
      fp_bool h s.decided)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m ->
      match m with
      | V v ->
          fp_int h 0;
          fp_vote h v
      | B b ->
          fp_int h 1;
          fp_vote h b)

(* [Pn] is the hub; the spokes run identical code. *)
let symmetry ~n ~f:_ = Symmetry.rank_range ~n ~lo:1 ~hi:(n - 1)
