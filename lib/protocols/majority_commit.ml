type msg = V of Vote.t

type state = { yes_votes : int; heard : int; decided : bool }

let name = "majority-commit"
let uses_consensus = false
let pp_msg ppf (V v) = Format.fprintf ppf "[V,%d]" (Vote.to_int v)
let init _env = { yes_votes = 0; heard = 0; decided = false }

let count state v =
  {
    state with
    heard = state.heard + 1;
    yes_votes = (state.yes_votes + match v with Vote.Yes -> 1 | Vote.No -> 0);
  }

let on_propose env state v =
  ( count state v,
    Proto_util.broadcast_others env (V v) @ [ Proto_util.timer_at "decide" 1 ] )

let on_deliver _env state ~src:_ (V v) = (count state v, [])

let on_timeout env state ~id =
  match id with
  | "decide" ->
      if state.decided then (state, [])
      else begin
        let d =
          if state.yes_votes > env.Proto.n / 2 then Vote.commit else Vote.abort
        in
        ({ state with decided = true }, [ Proto_util.decide d ])
      end
  | other -> failwith ("Majority_commit: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("Majority_commit: unknown guard " ^ id)
let on_consensus_decide _env state _d = (state, [])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_int h s.yes_votes;
      fp_int h s.heard;
      fp_bool h s.decided)

let hash_msg =
  let open Proto_util in
  Some (fun h (V v) -> fp_vote h v)

(* Rank-oblivious: votes are counted, never attributed. *)
let symmetry ~n ~f:_ = Symmetry.full ~n
