type msg =
  | Prepared of Vote.t
  | Report of Vset.t  (** acceptor bundle, broadcast to everyone *)
  | Query
  | Report2 of Vset.t

type state = {
  vote : Vote.t;
  decided : bool;
  proposed : bool;
  acceptor_coll : Vset.t;
  reports : (Pid.t * Vset.t) list;
  replies : (Pid.t * Vset.t) list;
}

let name = "faster-paxos-commit"
let uses_consensus = true

let pp_msg ppf = function
  | Prepared v -> Format.fprintf ppf "[PREPARED,%d]" (Vote.to_int v)
  | Report coll -> Format.fprintf ppf "[REPORT,%a]" Vset.pp coll
  | Query -> Format.pp_print_string ppf "[QUERY]"
  | Report2 coll -> Format.fprintf ppf "[REPORT2,%a]" Vset.pp coll

let init _env =
  {
    vote = Vote.yes;
    decided = false;
    proposed = false;
    acceptor_coll = Vset.empty;
    reports = [];
    replies = [];
  }

let acceptors env = Proto_util.first_ranked (env.Proto.f + 1)
let is_acceptor env = Proto_util.rank env <= env.Proto.f + 1

let settle state d =
  if state.decided then (state, [])
  else ({ state with decided = true }, [ Proto_util.decide d ])

let bundle_commits ~n coll =
  Vset.complete ~n coll && Vote.equal (Vset.conjunction coll) Vote.yes

let bundle_has_no coll =
  List.exists (fun (_, v) -> Vote.equal v Vote.no) (Vset.bindings coll)

let on_propose env state v =
  let state = { state with vote = v } in
  ( state,
    Proto_util.send_each (acceptors env) (Prepared v)
    @ (if is_acceptor env then [ Proto_util.timer_at "broadcast" 1 ] else [])
    @ [ Proto_util.timer_at "decide" 2 ] )

let propose_once state v =
  if state.proposed then (state, [])
  else ({ state with proposed = true }, [ Proto.Propose_consensus v ])

let on_deliver _env state ~src msg =
  match msg with
  | Prepared v ->
      ({ state with acceptor_coll = Vset.add src v state.acceptor_coll }, [])
  | Report coll ->
      if List.mem_assoc src state.reports then (state, [])
      else ({ state with reports = (src, coll) :: state.reports }, [])
  | Query -> (state, [ Proto_util.send src (Report2 state.acceptor_coll) ])
  | Report2 coll ->
      if List.mem_assoc src state.replies then (state, [])
      else ({ state with replies = (src, coll) :: state.replies }, [])

let on_timeout env state ~id =
  let n = env.Proto.n in
  match id with
  | "broadcast" ->
      (state, Proto_util.send_each (Pid.all ~n) (Report state.acceptor_coll))
  | "decide" ->
      if state.decided then (state, [])
      else begin
        let bundles = List.map snd state.reports in
        if
          List.length state.reports = env.Proto.f + 1
          && List.for_all (bundle_commits ~n) bundles
        then settle state Vote.commit
        else if List.exists bundle_has_no bundles then settle state Vote.abort
        else
          ( state,
            Proto_util.send_each (acceptors env) Query
            @ [ Proto_util.timer_at "candidate" 4 ] )
      end
  | "candidate" ->
      if state.decided || state.proposed then (state, [])
      else begin
        let bundles = List.map snd state.replies in
        let candidate =
          if bundles <> [] && List.for_all (bundle_commits ~n) bundles then
            Vote.yes
          else Vote.no
        in
        propose_once state candidate
      end
  | other -> failwith ("Faster_paxos_commit: unknown timer " ^ other)

let guards = []

let on_guard _env _state ~id =
  failwith ("Faster_paxos_commit: unknown guard " ^ id)

let on_consensus_decide _env state d =
  if state.decided then (state, [])
  else ({ state with decided = true }, [ Proto_util.decide_vote d ])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.vote;
      fp_bool h s.decided;
      fp_bool h s.proposed;
      fp_vset h s.acceptor_coll;
      fp_assoc_vsets h s.reports;
      fp_assoc_vsets h s.replies)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m ->
      match m with
      | Prepared v ->
          fp_int h 0;
          fp_vote h v
      | Report coll ->
          fp_int h 1;
          fp_vset h coll
      | Query -> fp_int h 2
      | Report2 coll ->
          fp_int h 3;
          fp_vset h coll)

(* Leaderless: the [f+1] acceptors are interchangeable among themselves,
   as are the remaining resource managers. *)
let symmetry ~n ~f =
  Symmetry.of_classes ~n
    [
      List.init (min (f + 1) n) (fun i -> i);
      List.init (max 0 (n - f - 1)) (fun i -> i + f + 1);
    ]
