type msg = V of Vote.t | D of Vote.t

type state = {
  phase : int;
  proposed : bool;
  decided : bool;
  decision : Vote.t;  (** running conjunction, as in the pseudo-code *)
  collection0 : Pid.t list;  (** processes whose vote arrived *)
  collection1 : Pid.t list;  (** processes whose [D] arrived *)
}

let name = "1nbac"
let uses_consensus = true

let pp_msg ppf = function
  | V v -> Format.fprintf ppf "[V,%d]" (Vote.to_int v)
  | D d -> Format.fprintf ppf "[D,%d]" (Vote.to_int d)

let init _env =
  {
    phase = 0;
    proposed = false;
    decided = false;
    decision = Vote.yes;
    collection0 = [];
    collection1 = [];
  }

let add_once p pids = if List.exists (Pid.equal p) pids then pids else p :: pids

let on_propose _env state v =
  let state = { state with decision = v } in
  (* [forall q in Omega]: the self-addressed vote arrives immediately and
     is not a network message *)
  (state, Proto_util.send_each (Pid.all ~n:_env.Proto.n) (V v)
          @ [ Proto_util.timer_at "round1" 1 ])

let on_deliver _env state ~src msg =
  match msg with
  | V v ->
      ( {
          state with
          collection0 = add_once src state.collection0;
          decision = Vote.logand state.decision v;
        },
        [] )
  | D d -> ({ state with collection1 = add_once src state.collection1; decision = d }, [])

let on_timeout env state ~id =
  match id with
  | "round1" when state.phase = 0 ->
      if List.length state.collection0 = env.Proto.n then begin
        let state = { state with decided = true } in
        ( state,
          Proto_util.send_each (Pid.all ~n:env.Proto.n) (D state.decision)
          @ [ Proto_util.decide_vote state.decision ] )
      end
      else ({ state with phase = 1 }, [ Proto_util.timer_at "round2" 2 ])
  | "round2" when state.phase = 1 ->
      if state.decided || state.proposed then (state, [])
      else begin
        let decision =
          if state.collection1 = [] then Vote.no else state.decision
        in
        ( { state with decision; proposed = true },
          [ Proto.Propose_consensus decision ] )
      end
  | "round1" | "round2" -> (state, [])
  | other -> failwith ("One_nbac: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("One_nbac: unknown guard " ^ id)

let on_consensus_decide _env state d =
  if state.decided then (state, [])
  else ({ state with decided = true }, [ Proto_util.decide_vote d ])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_int h s.phase;
      fp_bool h s.proposed;
      fp_bool h s.decided;
      fp_vote h s.decision;
      fp_pid_set h s.collection0;
      fp_pid_set h s.collection1)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m ->
      match m with
      | V v ->
          fp_int h 0;
          fp_vote h v
      | D d ->
          fp_int h 1;
          fp_vote h d)

(* Rank-oblivious: every process broadcasts and collects identically. *)
let symmetry ~n ~f:_ = Symmetry.full ~n
