(** Small helpers shared by all protocol modules: action constructors and
    the paper's recurring process sets. *)

val send : Pid.t -> 'msg -> 'msg Proto.action
val send_each : Pid.t list -> 'msg -> 'msg Proto.action list
val broadcast_others : Proto.env -> 'msg -> 'msg Proto.action list

val timer_at : string -> int -> 'msg Proto.action
(** [timer_at id k] fires at the absolute instant [k * U] (the
    pseudo-code's "set timer to time k"). *)

val decide : Vote.decision -> 'msg Proto.action
val decide_vote : Vote.t -> 'msg Proto.action
val rank : Proto.env -> int
(** 1-based rank of the calling process. *)

val first_ranked : int -> Pid.t list
(** [[P1; ...; Pk]] — the paper's "forall q in {P1..Pf}" sets. *)

val ranked_from : Proto.env -> int -> Pid.t list
(** [[P_j; ...; P_n]]. *)

(** {1 Fingerprint plumbing}

    Building blocks for the protocols' {!Proto.PROTOCOL.hash_state} and
    {!Proto.PROTOCOL.hash_msg} canonicalizers. Every variable-length
    value is framed with its length ([fp_list]) so adjacent fields
    cannot alias.

    Pid-valued data is routed through {!Fingerprint.add_pid}, and
    pid-keyed collections with path-dependent order ({!fp_pid_set},
    {!fp_vset}, {!fp_assoc}) are re-sorted by the renamed pid whenever
    the model checker's symmetry canonicalization has installed a
    renaming on the accumulator. With no renaming active every helper
    feeds the historical word sequence unchanged. *)

val fp_int : Fingerprint.t -> int -> unit
val fp_bool : Fingerprint.t -> bool -> unit
val fp_vote : Fingerprint.t -> Vote.t -> unit
val fp_pid : Fingerprint.t -> Pid.t -> unit
val fp_decision : Fingerprint.t -> Vote.decision -> unit

val fp_opt :
  (Fingerprint.t -> 'a -> unit) -> Fingerprint.t -> 'a option -> unit

val fp_list :
  (Fingerprint.t -> 'a -> unit) -> Fingerprint.t -> 'a list -> unit

val fp_pids : Fingerprint.t -> Pid.t list -> unit
(** Order-preserving (for lists whose order is semantically meaningful). *)

val fp_pid_set : Fingerprint.t -> Pid.t list -> unit
(** For pid lists that are semantically sets: renamed-sorted under an
    active renaming, stored order otherwise. *)

val fp_vset : Fingerprint.t -> Vset.t -> unit

val fp_assoc :
  (Fingerprint.t -> 'a -> unit) ->
  Fingerprint.t ->
  (Pid.t * 'a) list ->
  unit
(** Pid-keyed association list with unique keys and path-dependent
    order. *)

val fp_assoc_vsets : Fingerprint.t -> (Pid.t * Vset.t) list -> unit
