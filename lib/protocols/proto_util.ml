(** Small helpers shared by all protocol modules. *)

let send q m = Proto.Send (q, m)

let send_each pids m = List.map (fun q -> Proto.Send (q, m)) pids

let broadcast_others env m =
  send_each (Pid.others ~n:env.Proto.n env.Proto.self) m

let timer_at id k = Proto.Set_timer { id; fire = Proto.At_delay k }
let decide d = Proto.Decide d
let decide_vote v = Proto.Decide (Vote.decision_of_vote v)
let rank env = Pid.rank env.Proto.self

(** [P1; ...; Pk] — the paper's frequent "forall q in {P1..Pf}" sets. *)
let first_ranked k = List.init k (fun i -> Pid.of_rank (i + 1))

(** [P_{j}; ...; P_{n}]. *)
let ranked_from env j =
  let n = env.Proto.n in
  if j > n then [] else List.init (n - j + 1) (fun i -> Pid.of_rank (j + i))

(* ---- fingerprint plumbing (hash_state canonicalizers) --------------

   Every pid-valued datum goes through [Fingerprint.add_pid] so the
   model checker's symmetry canonicalization (which installs a renaming
   on the accumulator) covers it; with no renaming active [add_pid] is
   [add_int], so these helpers feed the historical word sequence
   byte-for-byte.

   Collections keyed by pid whose order is not semantically meaningful
   are additionally re-sorted by the {e renamed} pid when a renaming is
   active: feeding them in stored order would make two permuted states
   feed different sequences and the orbit would not collapse. With no
   renaming the stored order is kept, again for byte-stability. *)

let fp_int = Fingerprint.add_int
let fp_bool = Fingerprint.add_bool
let fp_vote h v = Fingerprint.add_int h (Vote.to_int v)
let fp_pid h p = Fingerprint.add_pid h (Pid.index p)

let fp_opt f h = function
  | None -> Fingerprint.add_int h 0
  | Some x ->
      Fingerprint.add_int h 1;
      f h x

let fp_list f h l =
  Fingerprint.add_int h (List.length l);
  List.iter (f h) l

let fp_pids h l = fp_list fp_pid h l

(* A pid list that is semantically a set (order is an artifact of the
   path that built it). Renaming active: feed in renamed-sorted order. *)
let fp_pid_set h l =
  if Fingerprint.perm_active h then
    fp_list fp_int h
      (List.sort compare (List.map (fun p -> Fingerprint.rename h (Pid.index p)) l))
  else fp_pids h l

let fp_vset h s =
  let bs = Vset.bindings s in
  let bs =
    (* [bindings] is index-sorted; renaming permutes the keys, so
       re-sort by the renamed index to stay canonical *)
    if Fingerprint.perm_active h then
      List.sort
        (fun (p, _) (q, _) ->
          compare (Fingerprint.rename h (Pid.index p))
            (Fingerprint.rename h (Pid.index q)))
        bs
    else bs
  in
  fp_list
    (fun h (p, v) ->
      fp_pid h p;
      fp_vote h v)
    h bs

(* Pid-keyed association lists (keys unique, order path-dependent):
   sorted by renamed key when a renaming is active, stored order
   otherwise. *)
let fp_assoc fval h l =
  let l =
    if Fingerprint.perm_active h then
      List.sort
        (fun (p, _) (q, _) ->
          compare (Fingerprint.rename h (Pid.index p))
            (Fingerprint.rename h (Pid.index q)))
        l
    else l
  in
  fp_list
    (fun h (p, x) ->
      fp_pid h p;
      fval h x)
    h l

let fp_assoc_vsets h l = fp_assoc fp_vset h l

(* ---- message canonicalizers (hash_msg) ----------------------------- *)

let fp_decision h d =
  Fingerprint.add_int h
    (match d with Vote.Commit -> 1 | Vote.Abort -> 2)
