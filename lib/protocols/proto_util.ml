(** Small helpers shared by all protocol modules. *)

let send q m = Proto.Send (q, m)

let send_each pids m = List.map (fun q -> Proto.Send (q, m)) pids

let broadcast_others env m =
  send_each (Pid.others ~n:env.Proto.n env.Proto.self) m

let timer_at id k = Proto.Set_timer { id; fire = Proto.At_delay k }
let decide d = Proto.Decide d
let decide_vote v = Proto.Decide (Vote.decision_of_vote v)
let rank env = Pid.rank env.Proto.self

(** [P1; ...; Pk] — the paper's frequent "forall q in {P1..Pf}" sets. *)
let first_ranked k = List.init k (fun i -> Pid.of_rank (i + 1))

(** [P_{j}; ...; P_{n}]. *)
let ranked_from env j =
  let n = env.Proto.n in
  if j > n then [] else List.init (n - j + 1) (fun i -> Pid.of_rank (j + i))

(* ---- fingerprint plumbing (hash_state canonicalizers) -------------- *)

let fp_int = Fingerprint.add_int
let fp_bool = Fingerprint.add_bool
let fp_vote h v = Fingerprint.add_int h (Vote.to_int v)
let fp_pid h p = Fingerprint.add_int h (Pid.index p)

let fp_opt f h = function
  | None -> Fingerprint.add_int h 0
  | Some x ->
      Fingerprint.add_int h 1;
      f h x

let fp_list f h l =
  Fingerprint.add_int h (List.length l);
  List.iter (f h) l

let fp_pids h l = fp_list fp_pid h l

let fp_vset h s =
  fp_list
    (fun h (p, v) ->
      fp_pid h p;
      fp_vote h v)
    h (Vset.bindings s)

let fp_assoc_vsets h l =
  fp_list
    (fun h (p, s) ->
      fp_pid h p;
      fp_vset h s)
    h l
