type msg = Chain of Vote.t

type state = {
  decision : Vote.t;
  decided : bool;
  delivered : bool;  (** predecessor's message arrived in this phase *)
  relayed : bool;  (** already relayed a 0 while nooping *)
  phase : int;
}

let name = "(n-1+f)nbac"
let uses_consensus = false
let pp_msg ppf (Chain v) = Format.fprintf ppf "[%d]" (Vote.to_int v)

let init _env =
  {
    decision = Vote.yes;
    decided = false;
    delivered = false;
    relayed = false;
    phase = 0;
  }

(* Appendix convention: this protocol's timer "starts at time 1 when the
   first sending event happens" — pseudo-code instant [k] is absolute
   delay [k - 1]. *)
let timer_at id k = Proto_util.timer_at id (k - 1)

let noop_deadline env = env.Proto.n + (2 * env.Proto.f) + 1

let on_propose env state v =
  let i = Proto_util.rank env in
  let state = { state with decision = v } in
  if i = 1 then
    let sends =
      match v with
      | Vote.Yes -> [ Proto_util.send (Pid.of_rank 2) (Chain v) ]
      | Vote.No -> [] (* a 0-voter stays silent in the chain *)
    in
    ( { state with phase = 2 },
      sends @ [ timer_at "t" (env.Proto.n + 1) ] )
  else ({ state with phase = 1 }, [ timer_at "t" i ])

let broadcast_decision env state =
  Proto_util.broadcast_others env (Chain state.decision)

let on_deliver env state ~src (Chain v) =
  let state = { state with decision = Vote.logand state.decision v } in
  if state.phase <= 2 then begin
    let pred = Pid.predecessor ~n:env.Proto.n env.Proto.self in
    if Pid.equal src pred then ({ state with delivered = true }, [])
    else (state, [])
  end
  else if
    (not state.decided) && (not state.relayed)
    && Vote.equal state.decision Vote.no
  then
    (* nooping and a 0 arrived: relay it once to everyone *)
    ({ state with relayed = true }, broadcast_decision env state)
  else (state, [])

let on_timeout env state ~id =
  match id with
  | "t" when state.phase = 1 ->
      let i = Proto_util.rank env in
      let f = env.Proto.f in
      let n = env.Proto.n in
      let state =
        if state.delivered then state else { state with decision = Vote.no }
      in
      let sends =
        if Vote.equal state.decision Vote.yes then
          [ Proto_util.send (Pid.successor ~n env.Proto.self) (Chain Vote.yes) ]
        else if i = n then broadcast_decision env state
          (* [Pn] heads the suffix: silence upstream becomes an explicit 0 *)
        else []
      in
      let state = { state with delivered = false } in
      if i >= f + 1 then
        ( { state with phase = 3 },
          sends @ [ timer_at "t" (noop_deadline env) ] )
      else
        ({ state with phase = 2 }, sends @ [ timer_at "t" (n + i) ])
  | "t" when state.phase = 2 ->
      let i = Proto_util.rank env in
      let f = env.Proto.f in
      let state =
        if state.delivered then state else { state with decision = Vote.no }
      in
      let sends =
        if Vote.equal state.decision Vote.yes then
          if i <> f then
            [
              Proto_util.send
                (Pid.successor ~n:env.Proto.n env.Proto.self)
                (Chain Vote.yes);
            ]
          else []
        else broadcast_decision env state
      in
      ( { state with delivered = false; phase = 3 },
        sends @ [ timer_at "t" (noop_deadline env) ] )
  | "t" when state.phase = 3 ->
      if state.decided then (state, [])
      else
        ( { state with decided = true },
          [ Proto_util.decide_vote state.decision ] )
  | "t" -> (state, [])
  | other -> failwith ("Chain_nbac: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("Chain_nbac: unknown guard " ^ id)
let on_consensus_decide _env state _d = (state, [])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.decision;
      fp_bool h s.decided;
      fp_bool h s.delivered;
      fp_bool h s.relayed;
      fp_int h s.phase)

let hash_msg =
  let open Proto_util in
  Some (fun h (Chain v) -> fp_vote h v)

(* The relay order is rank-determined: no two processes are interchangeable. *)
let symmetry ~n ~f:_ = Symmetry.trivial ~n
