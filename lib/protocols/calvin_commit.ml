type msg = Zero

type state = { vote : Vote.t; saw_zero : bool; decided : bool }

let name = "calvin-commit"
let uses_consensus = false
let pp_msg ppf Zero = Format.pp_print_string ppf "[V,0]"
let init _env = { vote = Vote.yes; saw_zero = false; decided = false }

let on_propose env state v =
  let state = { state with vote = v } in
  let sends =
    match v with
    | Vote.No -> Proto_util.broadcast_others env Zero
    | Vote.Yes -> []
  in
  (state, sends @ [ Proto_util.timer_at "decide" 1 ])

let on_deliver _env state ~src:_ Zero = ({ state with saw_zero = true }, [])

let on_timeout _env state ~id =
  match id with
  | "decide" ->
      if state.decided then (state, [])
      else begin
        let d =
          if state.saw_zero || Vote.equal state.vote Vote.no then Vote.abort
          else Vote.commit
        in
        ({ state with decided = true }, [ Proto_util.decide d ])
      end
  | other -> failwith ("Calvin_commit: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("Calvin_commit: unknown guard " ^ id)
let on_consensus_decide _env state _d = (state, [])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.vote;
      fp_bool h s.saw_zero;
      fp_bool h s.decided)

let hash_msg = Some (fun (_ : Fingerprint.t) Zero -> ())

(* Rank-oblivious: zeroes are broadcast, never attributed. *)
let symmetry ~n ~f:_ = Symmetry.full ~n
