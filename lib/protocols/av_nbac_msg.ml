type msg = V of Vote.t | B of Vote.t

type state = {
  votes : Vote.t;  (** running conjunction *)
  received : bool;  (** a [B] message arrived *)
  collection : Pid.t list;  (** voters heard by [Pn], self included *)
  decided : bool;
}

let name = "avnbac-msg"
let uses_consensus = false

let pp_msg ppf = function
  | V v -> Format.fprintf ppf "[V,%d]" (Vote.to_int v)
  | B b -> Format.fprintf ppf "[B,%d]" (Vote.to_int b)

let init env =
  {
    votes = Vote.yes;
    received = false;
    collection = [ env.Proto.self ];
    decided = false;
  }

(* The appendix starts this protocol's timer "at time 1 when the first
   sending event happens": its pseudo-code instant [k] is our absolute
   delay [k - 1]. *)
let timer_at id k = Proto_util.timer_at id (k - 1)

let on_propose env state v =
  let state = { state with votes = Vote.logand state.votes v } in
  let i = Proto_util.rank env in
  let n = env.Proto.n in
  if i <= n - 1 then
    (state, [ Proto_util.send (Pid.of_rank n) (V v); timer_at "decide" 3 ])
  else (state, [ timer_at "collect" 2 ])

let add_once p pids = if List.exists (Pid.equal p) pids then pids else p :: pids

let on_deliver _env state ~src msg =
  match msg with
  | V v ->
      ( {
          state with
          votes = Vote.logand state.votes v;
          collection = add_once src state.collection;
        },
        [] )
  | B b -> ({ state with received = true; votes = b }, [])

let on_timeout env state ~id =
  match id with
  | "collect" ->
      if List.length state.collection = env.Proto.n && not state.decided then
        ( { state with decided = true },
          Proto_util.send_each
            (Pid.others ~n:env.Proto.n env.Proto.self)
            (B state.votes)
          @ [ Proto_util.decide_vote state.votes ] )
      else (state, [])
  | "decide" ->
      if state.received && not state.decided then
        ({ state with decided = true }, [ Proto_util.decide_vote state.votes ])
      else (state, [])
  | other -> failwith ("Av_nbac_msg: unknown timer " ^ other)

let guards = []
let on_guard _env _state ~id = failwith ("Av_nbac_msg: unknown guard " ^ id)
let on_consensus_decide _env state _d = (state, [])

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.votes;
      fp_bool h s.received;
      fp_pid_set h s.collection;
      fp_bool h s.decided)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m ->
      match m with
      | V v ->
          fp_int h 0;
          fp_vote h v
      | B b ->
          fp_int h 1;
          fp_vote h b)

(* [Pn] is the hub; the spokes run identical code. *)
let symmetry ~n ~f:_ = Symmetry.rank_range ~n ~lo:1 ~hi:(n - 1)
