type status = Uncertain | Precommitted | Committed | Aborted

type msg =
  | V of Vote.t
  | Precommit
  | Ack
  | Outcome of Vote.decision  (** coordinator's commit / abort broadcast *)
  | Blocked of int  (** "I am undecided", sent to the round-[k] backup *)
  | State_req of int
  | State_rep of int * status
  | Precommit2 of int
  | Ack2 of int
  | Resolved of Vote.decision  (** a backup's decision broadcast *)

type state = {
  vote : Vote.t;
  conjunction : Vote.t;
  heard_from : Pid.t list;  (** votes collected by the coordinator *)
  acks : Pid.t list;
  status : status;
  decided : bool;
  (* backup-coordinator bookkeeping *)
  blocked_seen : bool;
  states : (Pid.t * status) list;
  acks2 : Pid.t list;
}

let name = "3pc"
let uses_consensus = false

let pp_status = function
  | Uncertain -> "uncertain"
  | Precommitted -> "precommitted"
  | Committed -> "committed"
  | Aborted -> "aborted"

let pp_msg ppf = function
  | V v -> Format.fprintf ppf "[V,%d]" (Vote.to_int v)
  | Precommit -> Format.pp_print_string ppf "[PRECOMMIT]"
  | Ack -> Format.pp_print_string ppf "[ACK]"
  | Outcome d -> Format.fprintf ppf "[OUTCOME,%d]" (Vote.decision_to_int d)
  | Blocked k -> Format.fprintf ppf "[BLOCKED,%d]" k
  | State_req k -> Format.fprintf ppf "[STATE-REQ,%d]" k
  | State_rep (k, s) -> Format.fprintf ppf "[STATE,%d,%s]" k (pp_status s)
  | Precommit2 k -> Format.fprintf ppf "[PRECOMMIT2,%d]" k
  | Ack2 k -> Format.fprintf ppf "[ACK2,%d]" k
  | Resolved d -> Format.fprintf ppf "[RESOLVED,%d]" (Vote.decision_to_int d)

let init _env =
  {
    vote = Vote.yes;
    conjunction = Vote.yes;
    heard_from = [];
    acks = [];
    status = Uncertain;
    decided = false;
    blocked_seen = false;
    states = [];
    acks2 = [];
  }

let coordinator = Pid.of_rank 1
let is_coordinator env = Pid.equal env.Proto.self coordinator
let add_once p pids = if List.exists (Pid.equal p) pids then pids else p :: pids

(* Termination rounds: backup P_k wakes at [round_start k], one round
   spans 7 slots (blocked, state-req, state, resolution, ack2, commit,
   receipt). *)
let round_start k = 5 + (7 * (k - 2))

let status_of_decision = function
  | Vote.Commit -> Committed
  | Vote.Abort -> Aborted

(* Once decided, every pending timer is stale: the blocked pings, the
   state-collection rounds and the coordinator phases would only fire
   no-op handlers and stretch quiescence. A decided backup answers
   [Blocked] directly (see [on_deliver]), so even its own round timer can
   go. *)
let cancel_stale_timers env =
  List.map
    (fun id -> Proto.Cancel_timer id)
    ([ "precommit"; "commit"; "final" ]
    @ List.concat_map
        (fun k ->
          List.map
            (fun prefix -> Printf.sprintf "%s:%d" prefix k)
            [ "blocked"; "round"; "resolve"; "commit2" ])
        (List.init env.Proto.f (fun i -> i + 2)))

let settle env state d =
  if state.decided then (state, [])
  else
    ( { state with decided = true; status = status_of_decision d },
      cancel_stale_timers env @ [ Proto_util.decide d ] )

let on_propose env state v =
  let state =
    {
      state with
      vote = v;
      conjunction = v;
      heard_from = [ env.Proto.self ];
    }
  in
  (* every undecided process pings each round's backup so that backups act
     (and send messages) only when someone is actually blocked *)
  let round_timers =
    List.concat_map
      (fun k ->
        [ Proto_util.timer_at (Printf.sprintf "blocked:%d" k) (round_start k) ]
        @
        if Proto_util.rank env = k then
          [
            Proto_util.timer_at
              (Printf.sprintf "round:%d" k)
              (round_start k + 1);
          ]
        else [])
      (List.init env.Proto.f (fun i -> i + 2))
  in
  let state, unilateral =
    match v with
    | Vote.No when not (is_coordinator env) -> settle env state Vote.abort
    | Vote.No | Vote.Yes -> (state, [])
  in
  let sends =
    if is_coordinator env then
      [ Proto_util.timer_at "precommit" 1; Proto_util.timer_at "commit" 3 ]
    else [ Proto_util.send coordinator (V v); Proto_util.timer_at "final" 4 ]
  in
  (state, sends @ round_timers @ unilateral)

let backup_resolution env state k =
  (* the classic 3PC termination rule over the collected states *)
  let statuses = (env.Proto.self, state.status) :: state.states in
  let has s = List.exists (fun (_, s') -> s' = s) statuses in
  if has Committed then begin
    let state, decisions = settle env state Vote.commit in
    (state, Proto_util.broadcast_others env (Resolved Vote.commit) @ decisions)
  end
  else if has Aborted then begin
    let state, decisions = settle env state Vote.abort in
    (state, Proto_util.broadcast_others env (Resolved Vote.abort) @ decisions)
  end
  else if has Precommitted then
    ( { state with status = Precommitted; acks2 = [] },
      Proto_util.broadcast_others env (Precommit2 k)
      @ [
          Proto_util.timer_at
            (Printf.sprintf "commit2:%d" k)
            (round_start k + 5);
        ] )
  else begin
    (* everyone reachable is uncertain: no process can have committed *)
    let state, decisions = settle env state Vote.abort in
    (state, Proto_util.broadcast_others env (Resolved Vote.abort) @ decisions)
  end

let on_deliver env state ~src msg =
  match msg with
  | V v ->
      if is_coordinator env then
        ( {
            state with
            conjunction = Vote.logand state.conjunction v;
            heard_from = add_once src state.heard_from;
          },
          [] )
      else (state, [])
  | Precommit ->
      if state.decided then (state, [])
      else
        ( { state with status = Precommitted },
          [ Proto_util.send coordinator Ack ] )
  | Ack -> ({ state with acks = add_once src state.acks }, [])
  | Outcome d | Resolved d -> settle env state d
  | Blocked _ ->
      if state.decided then
        (* this backup already retired its round timer: answer the blocked
           process directly instead of waiting for the round to fire *)
        ( state,
          [
            Proto_util.send src
              (Resolved
                 (if state.status = Committed then Vote.commit else Vote.abort));
          ] )
      else ({ state with blocked_seen = true }, [])
  | State_req k -> (state, [ Proto_util.send src (State_rep (k, state.status)) ])
  | State_rep (_, s) -> ({ state with states = (src, s) :: state.states }, [])
  | Precommit2 k ->
      if state.decided then (state, [])
      else
        ( { state with status = Precommitted },
          [ Proto_util.send src (Ack2 k) ] )
  | Ack2 _ -> ({ state with acks2 = add_once src state.acks2 }, [])

let on_timeout env state ~id =
  match String.split_on_char ':' id with
  | [ "precommit" ] ->
      if
        List.length state.heard_from = env.Proto.n
        && Vote.equal state.conjunction Vote.yes
      then
        ( { state with status = Precommitted },
          Proto_util.broadcast_others env Precommit )
      else begin
        let state, decisions = settle env state Vote.abort in
        (state, Proto_util.broadcast_others env (Outcome Vote.abort) @ decisions)
      end
  | [ "commit" ] ->
      if state.status = Precommitted && not state.decided then begin
        (* missing acks can only come from crashed processes *)
        let state, decisions = settle env state Vote.commit in
        (state, Proto_util.broadcast_others env (Outcome Vote.commit) @ decisions)
      end
      else (state, [])
  | [ "final" ] -> (state, [])
  | [ "blocked"; k ] ->
      if state.decided then (state, [])
      else (state, [ Proto_util.send (Pid.of_rank (int_of_string k)) (Blocked (int_of_string k)) ])
  | [ "round"; k ] ->
      let k = int_of_string k in
      if state.decided && state.blocked_seen then
        (state, Proto_util.broadcast_others env (Resolved (if state.status = Committed then Vote.commit else Vote.abort)))
      else if not state.decided then
        ( { state with states = [] },
          Proto_util.broadcast_others env (State_req k)
          @ [
              Proto_util.timer_at
                (Printf.sprintf "resolve:%d" k)
                (round_start k + 3);
            ] )
      else (state, [])
  | [ "resolve"; k ] ->
      if state.decided then (state, [])
      else backup_resolution env state (int_of_string k)
  | [ "commit2"; _k ] ->
      if state.decided then (state, [])
      else begin
        let state, decisions = settle env state Vote.commit in
        ( state,
          Proto_util.broadcast_others env (Resolved Vote.commit) @ decisions )
      end
  | _ -> failwith ("Three_pc: unknown timer " ^ id)

let guards = []
let on_guard _env _state ~id = failwith ("Three_pc: unknown guard " ^ id)
let on_consensus_decide _env state _d = (state, [])

let fp_status h st =
  Proto_util.fp_int h
    (match st with
    | Uncertain -> 0
    | Precommitted -> 1
    | Committed -> 2
    | Aborted -> 3)

let hash_state =
  let open Proto_util in
  Some
    (fun h s ->
      fp_vote h s.vote;
      fp_vote h s.conjunction;
      fp_pid_set h s.heard_from;
      fp_pid_set h s.acks;
      fp_status h s.status;
      fp_bool h s.decided;
      fp_bool h s.blocked_seen;
      fp_assoc fp_status h s.states;
      fp_pid_set h s.acks2)

let hash_msg =
  let open Proto_util in
  Some
    (fun h m ->
      match m with
      | V v ->
          fp_int h 0;
          fp_vote h v
      | Precommit -> fp_int h 1
      | Ack -> fp_int h 2
      | Outcome d ->
          fp_int h 3;
          fp_decision h d
      | Blocked k ->
          fp_int h 4;
          fp_int h k
      | State_req k ->
          fp_int h 5;
          fp_int h k
      | State_rep (k, s) ->
          fp_int h 6;
          fp_int h k;
          fp_status h s
      | Precommit2 k ->
          fp_int h 7;
          fp_int h k
      | Ack2 k ->
          fp_int h 8;
          fp_int h k
      | Resolved d ->
          fp_int h 9;
          fp_decision h d)

(* [P1] coordinates and [P2..P_{f+1}] are the per-round backups; the
   remaining participants run identical code. Round numbers in messages
   and timer ids name backup ranks, which the permutation fixes. *)
let symmetry ~n ~f = Symmetry.rank_range ~n ~lo:(f + 2) ~hi:n
