(** Exploration budgets and counters of the [ac_mc] model checker. *)

type budgets = {
  max_depth : int;  (** schedule steps per path before a depth cut *)
  max_states : int;
      (** distinct fingerprints stored per visited table — per frontier
          item in {!Per_item} mode, per vote-set group in {!Shared}
          mode *)
  horizon : Sim_time.t;
      (** timers armed beyond this instant never fire: bounds the
          otherwise-unbounded consensus retry cascade *)
  max_late : int;
      (** network-failure classes: at most this many commit-layer
          messages may miss their synchronous slot (the paper's witness
          adversaries procrastinate commit-layer messages only;
          consensus-layer delays stay within [U]) *)
}

val default_budgets : u:Sim_time.t -> budgets

type fp_backend =
  | Fp_hashed
      (** canonical zero-marshal hashing through
          {!Proto.PROTOCOL.hash_state} and {!Fingerprint} (the default) *)
  | Fp_marshal
      (** the historical [Marshal]-and-digest path, kept as a semantic
          reference: the CI smoke job pins that both backends produce
          byte-identical [mctable] counters *)

val default_fp : fp_backend
val fp_backend_of_string : string -> fp_backend option
val fp_backend_to_string : fp_backend -> string

val default_symmetry : bool
(** Whether the checker canonicalizes fingerprints under the protocol's
    declared process-permutation group ({!Proto.PROTOCOL.symmetry}) by
    default. Only meaningful with {!Fp_hashed}: the marshal backend
    hashes raw bytes in which pids escape the renaming, so callers force
    symmetry off there. *)

type visited_mode =
  | Per_item
      (** every frontier item dedups within its own visited table: a
          state reachable from several prefixes is explored once per
          prefix, [max_states] bounds each table separately, and the
          counters are bit-identical across [--jobs] (the default, and
          what [mctable] prints) *)
  | Shared
      (** all frontier items of one vote-set group dedup against a
          single {!Mc_shards.t}: shared states are explored once
          globally, [max_states] bounds the group's table, and the
          (smaller, faster-to-reach) counters depend on scheduling
          timing — reported only under the explicit [--shared-visited]
          flag *)

val default_visited : visited_mode
val visited_mode_of_string : string -> visited_mode option
val visited_mode_to_string : visited_mode -> string

type counters = {
  mutable states : int;  (** distinct state fingerprints stored *)
  mutable transitions : int;  (** events executed *)
  mutable schedules : int;  (** maximal explored paths (leaves of the DFS) *)
  mutable terminals : int;  (** leaves with no pending event at all *)
  mutable dedup_hits : int;  (** paths cut at an already-visited state *)
  mutable sleep_skips : int;  (** sibling transitions pruned by sleep sets *)
  mutable horizon_cuts : int;
      (** leaves whose only pending events lie beyond the horizon *)
  mutable depth_cuts : int;
  mutable budget_hit : bool;  (** some subtree ran out of state budget *)
  mutable peak_visited : int;
      (** largest visited-table occupancy of any frontier item (merged
          with [max], not [+]). Deliberately absent from {!pp_counters}
          so the [mctable] artifact stays byte-stable across backends
          and job counts. *)
  mutable canon_calls : int;
      (** fingerprints computed with a non-trivial permutation group
          installed (zero exactly when symmetry reduction was off or the
          group collapsed to trivial) *)
  mutable orbit_hits : int;
      (** canonicalizations whose minimal digest was achieved by a
          non-identity permutation: states stored under a renamed
          representative (the orbit-collapse evidence) *)
  mutable twin_skips : int;
      (** candidate transitions dropped because they are the
          permutation-image of a sibling at a symmetric state *)
}

val fresh_counters : unit -> counters
val add_counters : counters -> counters -> unit

val exhausted : counters -> bool
(** Whether the bounded space was fully explored (no depth or state-budget
    truncation; horizon cuts are part of the bound, not a truncation). *)

val pp_counters : Format.formatter -> counters -> unit
(** Prints the historical counter line; a symmetry suffix (orbit hits,
    twin skips) is appended only when [canon_calls > 0], so symmetry-off
    output is byte-identical to the pre-symmetry format. *)
