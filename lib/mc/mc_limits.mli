(** Exploration budgets and counters of the [ac_mc] model checker. *)

type budgets = {
  max_depth : int;  (** schedule steps per path before a depth cut *)
  max_states : int;  (** distinct fingerprints stored per frontier item *)
  horizon : Sim_time.t;
      (** timers armed beyond this instant never fire: bounds the
          otherwise-unbounded consensus retry cascade *)
  max_late : int;
      (** network-failure classes: at most this many commit-layer
          messages may miss their synchronous slot (the paper's witness
          adversaries procrastinate commit-layer messages only;
          consensus-layer delays stay within [U]) *)
}

val default_budgets : u:Sim_time.t -> budgets

type counters = {
  mutable states : int;  (** distinct state fingerprints stored *)
  mutable transitions : int;  (** events executed *)
  mutable schedules : int;  (** maximal explored paths (leaves of the DFS) *)
  mutable terminals : int;  (** leaves with no pending event at all *)
  mutable dedup_hits : int;  (** paths cut at an already-visited state *)
  mutable sleep_skips : int;  (** sibling transitions pruned by sleep sets *)
  mutable horizon_cuts : int;
      (** leaves whose only pending events lie beyond the horizon *)
  mutable depth_cuts : int;
  mutable budget_hit : bool;  (** some subtree ran out of state budget *)
}

val fresh_counters : unit -> counters
val add_counters : counters -> counters -> unit

val exhausted : counters -> bool
(** Whether the bounded space was fully explored (no depth or state-budget
    truncation; horizon cuts are part of the bound, not a truncation). *)

val pp_counters : Format.formatter -> counters -> unit
