(* The systematic schedule explorer.

   The checker drives the same [Machine] interpreter as the engine, but
   instead of a timed event queue it keeps the pending deliveries and
   timer fires as an explicit frontier and branches on every enabled
   ordering. Time is abstracted to the pair (instant, event class) of the
   last executed event — the engine's own queue ordering — with:

   - synchronous deliveries pinned at exactly [send + U] (the repo's
     canonical [Network.exact] semantics; within-window variation is
     explored through the order of same-instant deliveries, not through
     sub-instant timing);
   - in network-failure mode, any delivery may additionally be procrastinated
     past its synchronous slot and delivered at any later point of the
     schedule;
   - crash injection (up to [f]) at any point where it is realizable by a
     [Scenario.Before] crash — in particular never between two timer
     fires of the same instant, which no delay assignment can separate;
   - timers armed beyond the exploration horizon never fire (this bounds
     the consensus retry cascade).

   An executed event may never strand a deadline: a synchronous delivery
   cannot be scheduled after its slot has passed, and a timer below the
   horizon must fire at its instant. This keeps every explored schedule
   realizable by the engine under some delay assignment, which is what
   makes counterexample replay ({!Mc_replay}) possible. *)

(* Growable scratch buffers, reused across DFS nodes so candidate
   enumeration and fingerprinting stop allocating a fresh list/array per
   node. [vec_sort] is an insertion sort: candidate sets are tiny (tens
   of elements), it allocates nothing, and it is stable — ties keep the
   order of the input scan, which the enumerator relies on to reproduce
   the historical [List.sort]-over-creation-order candidate order. *)
type 'a vec = { mutable vbuf : 'a array; mutable vlen : int }

let vec_make () = { vbuf = [||]; vlen = 0 }
let vec_clear v = v.vlen <- 0

let vec_push v x =
  let cap = Array.length v.vbuf in
  if v.vlen = cap then begin
    let nb = Array.make (if cap = 0 then 16 else 2 * cap) x in
    Array.blit v.vbuf 0 nb 0 cap;
    v.vbuf <- nb
  end;
  v.vbuf.(v.vlen) <- x;
  v.vlen <- v.vlen + 1

let vec_sort cmp v =
  let a = v.vbuf in
  for i = 1 to v.vlen - 1 do
    let x = a.(i) in
    let j = ref (i - 1) in
    while !j >= 0 && cmp a.(!j) x > 0 do
      a.(!j + 1) <- a.(!j);
      decr j
    done;
    a.(!j + 1) <- x
  done

let vec_to_list_map f v =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (f v.vbuf.(i) :: acc)
  in
  go (v.vlen - 1) []

(* count of elements [<= limit] in the sorted prefix [vbuf[0..vlen)] *)
let vec_count_leq (v : int vec) limit =
  let lo = ref 0 and hi = ref v.vlen in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if v.vbuf.(mid) <= limit then lo := mid + 1 else hi := mid
  done;
  !lo

module Make (P : Proto.PROTOCOL) (C : Proto.CONSENSUS) = struct
  module M = Machine.Make (P) (C)

  type exec_class = { allow_crashes : bool; allow_late : bool }

  type config = {
    n : int;
    f : int;
    u : Sim_time.t;
    votes : Vote.t array;
    klass : exec_class;
    budgets : Mc_limits.budgets;
    fp : Mc_limits.fp_backend;
    pool : bool;
        (* recycle machine/context snapshot records across DFS nodes;
           observable behaviour (verdicts, counters, output bytes) is
           identical with the pool on and off *)
    symmetry : bool;
        (* canonicalize fingerprints under the machine's process-
           permutation group (refined by the vote assignment), collapsing
           orbit-equivalent states to one visited entry. Hashed backend
           only: the marshal backend hashes raw bytes in which pids
           escape the renaming, so it always runs with the trivial
           group. *)
    open_depth : int;
        (* swarm mode: tree levels over which walkers descend through
           already-claimed states (see [dfs_dpor]'s [?open_depth]) *)
  }

  (* ---- pending events -------------------------------------------- *)

  type pmsg = {
    uid : int * int;
        (* (sender index, k-th network send of that sender): stable across
           commuted schedules, because one process's sends are totally
           ordered in every schedule the checker equates *)
    seq : int;  (* creation order along the current path (queue tie-break) *)
    src : Pid.t;
    dst : Pid.t;
    payload : M.wire;
    pl_id : int;
        (* intern id of [payload]: equal ids iff structurally equal
           payloads, stable for the lifetime of the context, so the
           hashed fingerprint covers an in-flight message by one word
           instead of remarshalling its payload *)
    sent_mc : Sim_time.t;
    nominal : Sim_time.t;  (* sent_mc + u: the synchronous slot *)
  }

  type ptimer = {
    t_seq : int;
    t_pid : Pid.t;
    t_layer : Trace.layer;
    t_id : string;
    t_fire : Proto.fire;
    t_set_mc : Sim_time.t;
    t_at : Sim_time.t;
    t_epoch : int;
  }

  type step =
    | S_proposals  (* the whole instant-0 propose block, in rank order *)
    | S_crash of Pid.t
    | S_deliver of { msg : pmsg; at : Sim_time.t; klass : int; late : bool }
    | S_timeout of ptimer

  (* Identity of a transition for sleep sets and visited-set bookkeeping.
     Delivery keys embed destination and execution slot so independence
     can be judged from the key alone; both are stable for as long as the
     event can stay in a sleep set (an event that would change a pending
     delivery's slot has a later slot itself, hence is dependent and
     flushes it from the sleep set first). *)
  type key =
    | K_prop
    | K_crash of int
    | K_del of (int * int) * int * Sim_time.t * int  (* uid, dst, at, class *)
    | K_to of int * Trace.layer * string * Sim_time.t

  let key_of = function
    | S_proposals -> K_prop
    | S_crash p -> K_crash (Pid.index p)
    | S_deliver { msg; at; klass; _ } ->
        K_del (msg.uid, Pid.index msg.dst, at, klass)
    | S_timeout t -> K_to (Pid.index t.t_pid, t.t_layer, t.t_id, t.t_at)

  let independent k1 k2 =
    match (k1, k2) with
    | K_crash p, K_crash q -> p <> q
    | K_del (_, d1, a1, c1), K_del (_, d2, a2, c2) ->
        d1 <> d2 && a1 = a2 && c1 = c2
    | K_to (p1, _, _, a1), K_to (p2, _, _, a2) -> p1 <> p2 && a1 = a2
    | _ -> false

  (* sleep sets are tiny; plain sorted-insert lists suffice *)
  let k_mem k l = List.mem k l
  let k_subset a b = List.for_all (fun k -> k_mem k b) a
  let k_inter a b = List.filter (fun k -> k_mem k b) a

  (* Canonical facts of one in-flight message under the permutation being
     tried (scratch rows of [fingerprint_sym]). The payload is covered by
     its full digest under the renaming — intern ids cannot serve here,
     because a payload and its renamed image intern separately. *)
  type fp_sym_msg = {
    fm_nom : int;  (* nominal slot; -1 once overtaken (slot never read again) *)
    fm_src : int;  (* renamed source index *)
    fm_dst : int;  (* renamed destination index *)
    fm_d1 : int;
    fm_d2 : int;
  }

  (* ---- the execution context ------------------------------------- *)

  type ctx = {
    cfg : config;
    m : M.t;
    box_msgs : pmsg list ref;  (* reversed; filled by the sink *)
    box_self : (Pid.t * M.wire) list ref;
    box_timers : ptimer list ref;
    sends_by : int array;
    creation : int ref;
    intern : (M.wire, int) Hashtbl.t;
        (* payload interning table. Grows monotonically and is never
           rewound by [restore]: an id only depends on the first time a
           structurally equal payload was ever sent in this context, so
           ids are consistent across all paths the context explores. *)
    fp_acc : Fingerprint.t;  (* reusable hashed-fingerprint accumulator *)
    fp_pl : Fingerprint.t;  (* payload-digest accumulator (symmetry mode) *)
    sym_perms : (int array * int array) array;
        (* (sigma, sigma inverse) per candidate renaming of the vote-
           refined group, identity first; [||] when canonicalization is
           off, the backend is marshal, or the group is trivial *)
    sym_digests : Fingerprint.digest array;
        (* per-permutation digests of the last [fingerprint_sym] call *)
    mutable sym_argmin : int;
        (* index into [sym_perms] of the renaming that achieved the
           minimal (canonical) digest on that call *)
    sym_twins : (int * int * int) array;
        (* transpositions present in [sym_perms], as (a, b, perm index)
           with [a < b], sorted by (b, a): twin-pruning candidates *)
    sym_pl_cache : (int, Fingerprint.digest) Hashtbl.t;
        (* (pl_id * |perms| + perm index) -> payload digest: payloads are
           interned for the context's lifetime, so the digest depends
           only on the pair and is computed once *)
    sc_sym_msgs : fp_sym_msg vec;
    mutable clock_t : Sim_time.t;
    mutable clock_k : int;
    mutable pending_msgs : pmsg list;  (* newest first (reverse creation) *)
    mutable pending_timers : ptimer list;  (* newest first *)
    mutable crashes_left : int;
    mutable proposed : bool;
    mutable overtaken : int list;
        (* [seq]s of commit-layer messages whose synchronous slot has been
           passed; they may now be delivered at any later point. Grows by
           consing only, so a snapshot of the list is always a physical
           suffix of the later list — restore rewinds the mirror bitset
           by walking to that suffix. *)
    mutable ot_bits : Bytes.t;
        (* bitset mirror of [overtaken], keyed by [seq]: O(1) membership
           in place of the O(overtaken) list scans *)
    mutable late_count : int;
    mutable someone_no : bool;
    (* ---- incremental enabled-set caches ---- *)
    mutable seen_crashes : int;
    mutable seen_bumps : int;
        (* machine mutation counters at the last [merge_boxes]: a step
           that crashed nobody and cancelled no timer cannot have staled
           any pending event, so the merge skips the full rescans *)
    mutable hard_valid : bool;
    mutable hard_none : bool;
    mutable hard_t : Sim_time.t;
    mutable hard_k : int;
        (* cached minimum hard deadline over pending events (valid while
           [hard_valid]); [ok pair] is one pair comparison against it *)
    sc_timers : ptimer vec;
    sc_dels : step vec;
    sc_soft : int vec;
    sc_fp_msgs : pmsg vec;
    sc_fp_timers : ptimer vec;
    mutable snap_pool : ctx_snap list;
    mutable snap_owner : int;
        (* Domain id owning the pooled context snapshots; mirrors the
           machine-level pool ownership (see {!Machine}): records are
           dropped, never handed over, if the ctx changes domains *)
  }

  and ctx_snap = {
    mutable cs_pooled : bool;
    mutable cs_m : M.snapshot;
    cs_sends_by : int array;
    mutable cs_creation : int;
    mutable cs_clock_t : Sim_time.t;
    mutable cs_clock_k : int;
    mutable cs_pending_msgs : pmsg list;
    mutable cs_pending_timers : ptimer list;
    mutable cs_crashes_left : int;
    mutable cs_proposed : bool;
    mutable cs_overtaken : int list;
    mutable cs_late_count : int;
    mutable cs_someone_no : bool;
  }

  let max_late_of cfg =
    if cfg.klass.allow_late then cfg.budgets.Mc_limits.max_late else 0

  let late_used ctx = ctx.late_count > 0

  (* The vote-refined permutation group of a configuration. Processes
     stay interchangeable only when the machine's declared group agrees
     AND their input votes match: votes are not part of the fingerprint
     (each visited table's scope is a single vote assignment), so a
     renaming must fix the vote partition to be faithful. The marshal
     backend hashes raw bytes in which pids escape the renaming, so it
     always degrades to [None]. *)
  let sym_group cfg =
    if not (cfg.symmetry && cfg.fp = Mc_limits.Fp_hashed) then None
    else
      let g =
        Symmetry.refine
          (M.symmetry ~n:cfg.n ~f:cfg.f)
          ~key:(fun i -> Vote.to_int cfg.votes.(i))
      in
      if Symmetry.is_trivial g then None else Some g

  let create_ctx cfg =
    let box_msgs = ref [] and box_self = ref [] and box_timers = ref [] in
    let sends_by = Array.make cfg.n 0 in
    let creation = ref 0 in
    let intern = Hashtbl.create 256 in
    let intern_payload payload =
      match Hashtbl.find_opt intern payload with
      | Some id -> id
      | None ->
          let id = Hashtbl.length intern in
          Hashtbl.add intern payload id;
          id
    in
    let sink =
      {
        M.send =
          (fun ~now ~src ~dst payload ->
            if Pid.equal src dst then begin
              box_self := (src, payload) :: !box_self;
              now
            end
            else begin
              let si = Pid.index src in
              let uid = (si, sends_by.(si)) in
              sends_by.(si) <- sends_by.(si) + 1;
              let seq = !creation in
              incr creation;
              let nominal = Sim_time.( + ) now cfg.u in
              let pl_id = intern_payload payload in
              box_msgs :=
                { uid; seq; src; dst; payload; pl_id; sent_mc = now; nominal }
                :: !box_msgs;
              nominal
            end);
        M.set_timer =
          (fun ~now ~pid ~layer ~id ~fire ~at ~epoch ->
            let t_seq = !creation in
            incr creation;
            box_timers :=
              {
                t_seq;
                t_pid = pid;
                t_layer = layer;
                t_id = id;
                t_fire = fire;
                t_set_mc = now;
                t_at = at;
                t_epoch = epoch;
              }
              :: !box_timers);
      }
    in
    let env_of pid =
      { Proto.n = cfg.n; f = cfg.f; u = cfg.u; self = pid }
    in
    let sym_perms =
      match sym_group cfg with
      | None -> [||]
      | Some g ->
          Array.map (fun s -> (s, Symmetry.inverse s)) (Symmetry.perms g)
    in
    let sym_twins =
      if Array.length sym_perms = 0 then [||]
      else begin
        let twins = ref [] in
        Array.iteri
          (fun pi (s, _) ->
            if pi > 0 then begin
              let moved = ref [] in
              Array.iteri (fun i j -> if i <> j then moved := i :: !moved) s;
              match !moved with
              | [ b; a ] when s.(a) = b && s.(b) = a ->
                  twins := (a, b, pi) :: !twins
              | _ -> ()
            end)
          sym_perms;
        Array.of_list
          (List.sort
             (fun (a1, b1, _) (a2, b2, _) ->
               compare (b1, a1) (b2, a2))
             !twins)
      end
    in
    {
      cfg;
      m = M.create ~pool:cfg.pool ~env_of ~n:cfg.n ~u:cfg.u ~sink ();
      box_msgs;
      box_self;
      box_timers;
      sends_by;
      creation;
      intern;
      fp_acc = Fingerprint.create ();
      fp_pl = Fingerprint.create ();
      sym_perms;
      sym_digests =
        Array.make
          (max 1 (Array.length sym_perms))
          { Fingerprint.d1 = 0; d2 = 0 };
      sym_argmin = 0;
      sym_twins;
      sym_pl_cache = Hashtbl.create 256;
      sc_sym_msgs = vec_make ();
      clock_t = Sim_time.zero;
      clock_k = 0;
      pending_msgs = [];
      pending_timers = [];
      crashes_left = cfg.f;
      proposed = false;
      overtaken = [];
      ot_bits = Bytes.make 64 '\000';
      late_count = 0;
      someone_no = false;
      seen_crashes = 0;
      seen_bumps = 0;
      hard_valid = false;
      hard_none = true;
      hard_t = Sim_time.zero;
      hard_k = 0;
      sc_timers = vec_make ();
      sc_dels = vec_make ();
      sc_soft = vec_make ();
      sc_fp_msgs = vec_make ();
      sc_fp_timers = vec_make ();
      snap_pool = [];
      snap_owner = (Domain.self () :> int);
    }

  (* ---- the overtaken bitset --------------------------------------- *)

  let is_overtaken ctx mg =
    let byte = mg.seq lsr 3 in
    byte < Bytes.length ctx.ot_bits
    && Char.code (Bytes.unsafe_get ctx.ot_bits byte)
       land (1 lsl (mg.seq land 7))
       <> 0

  let bit_set ctx i =
    let byte = i lsr 3 in
    if byte >= Bytes.length ctx.ot_bits then begin
      let nb =
        Bytes.make (max (byte + 1) (2 * Bytes.length ctx.ot_bits)) '\000'
      in
      Bytes.blit ctx.ot_bits 0 nb 0 (Bytes.length ctx.ot_bits);
      ctx.ot_bits <- nb
    end;
    Bytes.unsafe_set ctx.ot_bits byte
      (Char.unsafe_chr
         (Char.code (Bytes.unsafe_get ctx.ot_bits byte)
         lor (1 lsl (i land 7))))

  let bit_clear ctx i =
    let byte = i lsr 3 in
    if byte < Bytes.length ctx.ot_bits then
      Bytes.unsafe_set ctx.ot_bits byte
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get ctx.ot_bits byte)
           land lnot (1 lsl (i land 7))
           land 0xff))

  (* [saved] is always a physical suffix of the current list (the list
     only grows by consing and restores only rewind along the current
     path), so clearing exactly the bits consed since the save leaves the
     bitset mirroring [saved]. *)
  let rec rewind_overtaken ctx saved l =
    if l != saved then
      match l with
      | seq :: tl ->
          bit_clear ctx seq;
          rewind_overtaken ctx saved tl
      | [] -> assert (saved == [])

  (* ---- context snapshots ------------------------------------------ *)

  (* Pooled ctx snapshots are domain-local, like the machine's: driving
     the ctx from a new domain abandons the old pool. *)
  let adopt_pool ctx =
    let d = (Domain.self () :> int) in
    if ctx.snap_owner <> d then begin
      ctx.snap_pool <- [];
      ctx.snap_owner <- d
    end

  let save ctx =
    if ctx.cfg.pool then adopt_pool ctx;
    match ctx.snap_pool with
    | s :: rest ->
        ctx.snap_pool <- rest;
        s.cs_pooled <- false;
        s.cs_m <- M.snapshot ctx.m;
        Array.blit ctx.sends_by 0 s.cs_sends_by 0 (Array.length ctx.sends_by);
        s.cs_creation <- !(ctx.creation);
        s.cs_clock_t <- ctx.clock_t;
        s.cs_clock_k <- ctx.clock_k;
        s.cs_pending_msgs <- ctx.pending_msgs;
        s.cs_pending_timers <- ctx.pending_timers;
        s.cs_crashes_left <- ctx.crashes_left;
        s.cs_proposed <- ctx.proposed;
        s.cs_overtaken <- ctx.overtaken;
        s.cs_late_count <- ctx.late_count;
        s.cs_someone_no <- ctx.someone_no;
        s
    | [] ->
        {
          cs_pooled = false;
          cs_m = M.snapshot ctx.m;
          cs_sends_by = Array.copy ctx.sends_by;
          cs_creation = !(ctx.creation);
          cs_clock_t = ctx.clock_t;
          cs_clock_k = ctx.clock_k;
          cs_pending_msgs = ctx.pending_msgs;
          cs_pending_timers = ctx.pending_timers;
          cs_crashes_left = ctx.crashes_left;
          cs_proposed = ctx.proposed;
          cs_overtaken = ctx.overtaken;
          cs_late_count = ctx.late_count;
          cs_someone_no = ctx.someone_no;
        }

  let release ctx s =
    if ctx.cfg.pool && not s.cs_pooled then begin
      s.cs_pooled <- true;
      M.release ctx.m s.cs_m;
      if ctx.snap_owner = (Domain.self () :> int) then
        ctx.snap_pool <- s :: ctx.snap_pool
      (* else: captured under another domain — retire it to the GC *)
    end

  let restore ctx s =
    M.restore ctx.m s.cs_m;
    Array.blit s.cs_sends_by 0 ctx.sends_by 0 (Array.length ctx.sends_by);
    ctx.creation := s.cs_creation;
    ctx.clock_t <- s.cs_clock_t;
    ctx.clock_k <- s.cs_clock_k;
    ctx.pending_msgs <- s.cs_pending_msgs;
    ctx.pending_timers <- s.cs_pending_timers;
    ctx.crashes_left <- s.cs_crashes_left;
    ctx.proposed <- s.cs_proposed;
    rewind_overtaken ctx s.cs_overtaken ctx.overtaken;
    ctx.overtaken <- s.cs_overtaken;
    ctx.late_count <- s.cs_late_count;
    ctx.someone_no <- s.cs_someone_no;
    ctx.seen_crashes <- M.crash_count ctx.m;
    ctx.seen_bumps <- M.epoch_bump_count ctx.m;
    ctx.hard_valid <- false;
    ctx.box_msgs := [];
    ctx.box_self := [];
    ctx.box_timers := []

  (* ---- executing one step ----------------------------------------- *)

  let drain_self ctx ~now =
    let rec go () =
      match List.rev !(ctx.box_self) with
      | [] -> ()
      | items ->
          ctx.box_self := [];
          List.iter
            (fun (p, payload) ->
              M.deliver ctx.m ~now ~sent_at:now ~src:p ~dst:p payload)
            items;
          go ()
    in
    go ()

  let fresh_timer ctx t =
    (not (M.is_crashed ctx.m t.t_pid))
    && t.t_epoch = M.timer_epoch ctx.m t.t_pid t.t_layer t.t_id

  (* Runs after every executed step. Pending lists are newest-first, so
     absorbing the (also newest-first) boxes is a prepend: a quiet step
     costs O(new events), not O(pending). The full staleness rescans of
     the old pending entries are gated on the machine's crash / timer-
     epoch mutation counters: a step that crashed nobody and cancelled no
     timer cannot have staled an event that survived the last merge. *)
  let merge_boxes ctx =
    let crashes = M.crash_count ctx.m in
    let bumps = M.epoch_bump_count ctx.m in
    let keep mg = not (M.is_crashed ctx.m mg.dst) in
    let changed = ref false in
    let new_msgs = !(ctx.box_msgs) in
    ctx.box_msgs := [];
    let new_msgs =
      if crashes > 0 && not (List.for_all keep new_msgs) then
        List.filter keep new_msgs
      else new_msgs
    in
    if crashes > ctx.seen_crashes
       && not (List.for_all keep ctx.pending_msgs)
    then begin
      ctx.pending_msgs <- List.filter keep ctx.pending_msgs;
      changed := true
    end;
    (match new_msgs with
    | [] -> ()
    | _ ->
        ctx.pending_msgs <- new_msgs @ ctx.pending_msgs;
        changed := true);
    let new_timers = !(ctx.box_timers) in
    ctx.box_timers := [];
    let new_timers =
      if List.for_all (fresh_timer ctx) new_timers then new_timers
      else List.filter (fresh_timer ctx) new_timers
    in
    if (crashes > ctx.seen_crashes || bumps > ctx.seen_bumps)
       && not (List.for_all (fresh_timer ctx) ctx.pending_timers)
    then begin
      ctx.pending_timers <- List.filter (fresh_timer ctx) ctx.pending_timers;
      changed := true
    end;
    (match new_timers with
    | [] -> ()
    | _ ->
        ctx.pending_timers <- new_timers @ ctx.pending_timers;
        changed := true);
    ctx.seen_crashes <- crashes;
    ctx.seen_bumps <- bumps;
    if !changed then ctx.hard_valid <- false

  let pair_geq (t1, k1) (t2, k2) = t1 > t2 || (t1 = t2 && k1 >= k2)
  let is_commit_wire mg = M.layer_of_wire mg.payload = Trace.Commit_layer

  let layer_code = function
    | Trace.Commit_layer -> 0
    | Trace.Consensus_layer -> 1

  (* Executing at [pair] passes the synchronous slot of every pending
     commit-layer message behind it; each such message consumes one unit
     of the lateness budget, once, and may be delivered at any later
     point. Enabledness ([enumerate]) admits only steps whose cost fits,
     so no message is ever stranded undeliverable. *)
  let overtake ctx pair =
    List.iter
      (fun mg ->
        if
          is_commit_wire mg
          && (not (is_overtaken ctx mg))
          && not (pair_geq (mg.nominal, 2) pair)
        then begin
          ctx.overtaken <- mg.seq :: ctx.overtaken;
          bit_set ctx mg.seq;
          ctx.late_count <- ctx.late_count + 1
        end)
      ctx.pending_msgs

  let bump_clock ctx t k =
    if t > ctx.clock_t || (t = ctx.clock_t && k > ctx.clock_k) then begin
      ctx.clock_t <- t;
      ctx.clock_k <- k
    end

  (* Scan what the step traced for a safety breach. *)
  let check_safety ctx tsnap =
    let decs = M.decisions ctx.m in
    let restated =
      List.find_map
        (function
          | Trace.Decide { pid; decision; _ } -> (
              match decs.(Pid.index pid) with
              | Some (_, first)
                when not (Vote.decision_equal first decision) ->
                  Some (pid, first, decision)
              | _ -> None)
          | _ -> None)
        (Trace.entries_since (M.trace ctx.m) tsnap)
    in
    match restated with
    | Some (pid, first, second) ->
        Some
          ( Mc_replay.Agreement,
            Format.asprintf
              "decision stability (AC2): %a decided %a then %a" Pid.pp pid
              Vote.pp_decision first Vote.pp_decision second )
    | None -> (
        (* Scan the decisions array directly: this runs once per executed
           transition, and the intermediate (pid, decision) list it used
           to build was pure allocation churn. *)
        let first = ref (-1) in
        let conflicting = ref None in
        let any_commit = ref false in
        (try
           for i = 0 to ctx.cfg.n - 1 do
             match decs.(i) with
             | None -> ()
             | Some (_, d) ->
                 if Vote.decision_equal d Vote.Commit then any_commit := true;
                 if !first < 0 then first := i
                 else
                   let _, d0 = Option.get decs.(!first) in
                   if not (Vote.decision_equal d0 d) then begin
                     conflicting :=
                       Some (Pid.of_index !first, d0, Pid.of_index i, d);
                     raise Exit
                   end
           done
         with Exit -> ());
        match !conflicting with
        | Some (p0, d0, p, d) ->
            Some
              ( Mc_replay.Agreement,
                Format.asprintf "agreement: %a decided %a but %a decided %a"
                  Pid.pp p0 Vote.pp_decision d0 Pid.pp p Vote.pp_decision d )
        | None ->
            if ctx.someone_no && !any_commit then
              Some
                ( Mc_replay.Validity,
                  "commit-validity: commit decided although some process \
                   voted 0" )
            else None)

  let exec_step ctx step =
    let tsnap = Trace.snapshot (M.trace ctx.m) in
    (match step with
    | S_proposals ->
        for i = 0 to ctx.cfg.n - 1 do
          let p = Pid.of_index i in
          M.propose ctx.m ~now:Sim_time.zero p ctx.cfg.votes.(i);
          drain_self ctx ~now:Sim_time.zero
        done;
        ctx.proposed <- true;
        ctx.someone_no <-
          List.exists
            (fun (_, v) -> Vote.equal v Vote.no)
            (Trace.proposals (M.trace ctx.m));
        bump_clock ctx Sim_time.zero 1
    | S_crash p ->
        M.crash ctx.m ~now:ctx.clock_t p;
        ctx.crashes_left <- ctx.crashes_left - 1
    | S_deliver { msg; at; klass; late = _ } ->
        ctx.pending_msgs <-
          List.filter (fun mg -> mg.seq <> msg.seq) ctx.pending_msgs;
        ctx.hard_valid <- false;
        overtake ctx (at, klass);
        M.deliver ctx.m ~now:at ~sent_at:msg.sent_mc ~src:msg.src
          ~dst:msg.dst msg.payload;
        drain_self ctx ~now:at;
        bump_clock ctx at klass
    | S_timeout t ->
        ctx.pending_timers <-
          List.filter (fun t' -> t'.t_seq <> t.t_seq) ctx.pending_timers;
        ctx.hard_valid <- false;
        overtake ctx (t.t_at, 3);
        ignore
          (M.timeout ctx.m ~now:t.t_at ~pid:t.t_pid ~layer:t.t_layer
             ~id:t.t_id ~epoch:t.t_epoch);
        drain_self ctx ~now:t.t_at;
        bump_clock ctx t.t_at 3);
    merge_boxes ctx;
    check_safety ctx tsnap

  (* ---- enabled transitions ---------------------------------------- *)

  let alive_pids ctx =
    List.filter
      (fun p -> not (M.is_crashed ctx.m p))
      (Pid.all ~n:ctx.cfg.n)

  (* Recompute the cached minimum hard deadline (a timer below the
     horizon, or a message that may not miss its slot). [ok pair] needs
     only the minimum: "no deadline is strictly below [pair]" is exactly
     "the minimum is >= [pair]". *)
  let refresh_hard ctx =
    let h = ctx.cfg.budgets.Mc_limits.horizon in
    let max_late = max_late_of ctx.cfg in
    ctx.hard_none <- true;
    let consider t k =
      if
        ctx.hard_none
        || not (pair_geq (t, k) (ctx.hard_t, ctx.hard_k))
      then begin
        ctx.hard_none <- false;
        ctx.hard_t <- t;
        ctx.hard_k <- k
      end
    in
    List.iter
      (fun t -> if t.t_at <= h then consider t.t_at 3)
      ctx.pending_timers;
    List.iter
      (fun mg ->
        if not (max_late > 0 && is_commit_wire mg) then consider mg.nominal 2)
      ctx.pending_msgs;
    ctx.hard_valid <- true

  (* Sorted nominal slots of the soft (late-deliverable, not yet
     overtaken) messages: the per-candidate lateness cost becomes one
     binary search instead of a full pending scan. Refreshed per
     [enumerate] call because [overtake] flips bits without touching the
     pending lists. *)
  let refresh_soft ctx =
    vec_clear ctx.sc_soft;
    List.iter
      (fun mg ->
        if is_commit_wire mg && not (is_overtaken ctx mg) then
          vec_push ctx.sc_soft mg.nominal)
      ctx.pending_msgs;
    vec_sort (fun (a : int) b -> compare a b) ctx.sc_soft

  (* number of soft slots strictly below [(t, k)]: a nominal slot
     [(n, 2)] is passed iff [n < t], or [n = t] with [k = 3] *)
  let soft_cost ctx t k =
    vec_count_leq ctx.sc_soft (if k >= 3 then t else t - 1)

  let timer_cmp a b =
    let c = compare (a.t_at : int) b.t_at in
    if c <> 0 then c
    else
      let c = compare (Pid.index a.t_pid) (Pid.index b.t_pid) in
      if c <> 0 then c
      else
        let c = compare (layer_code a.t_layer) (layer_code b.t_layer) in
        if c <> 0 then c
        else
          let c = String.compare a.t_id b.t_id in
          if c <> 0 then c else compare (a.t_seq : int) b.t_seq

  let del_cmp a b =
    match (a, b) with
    | S_deliver a, S_deliver b ->
        let c = compare (a.at : int) b.at in
        if c <> 0 then c
        else
          let c = compare (a.klass : int) b.klass in
          if c <> 0 then c
          else
            let c = compare (fst a.msg.uid : int) (fst b.msg.uid) in
            if c <> 0 then c
            else compare (snd a.msg.uid : int) (snd b.msg.uid)
    | _ -> 0

  (* Candidates in canonical exploration order: crash injections first,
     then timeouts, then deliveries — adversarial choices lead so that a
     depth-first search reaches failure schedules before it has exhausted
     the benign ones. *)
  let enumerate ctx =
    if not ctx.proposed then
      (if ctx.cfg.klass.allow_crashes && ctx.crashes_left > 0 then
         List.map (fun p -> S_crash p) (alive_pids ctx)
       else [])
      @ [ S_proposals ]
    else begin
      let h = ctx.cfg.budgets.Mc_limits.horizon in
      let max_late = max_late_of ctx.cfg in
      let clock = (ctx.clock_t, ctx.clock_k) in
      if not ctx.hard_valid then refresh_hard ctx;
      if max_late > 0 then refresh_soft ctx;
      (* an executable step must not strand a hard deadline, and the soft
         slots it passes must fit in the remaining lateness budget *)
      let ok (t, k) =
        (ctx.hard_none || pair_geq (ctx.hard_t, ctx.hard_k) (t, k))
        && (max_late = 0 || ctx.late_count + soft_cost ctx t k <= max_late)
      in
      let timer_at_clock =
        List.exists (fun t -> t.t_at = ctx.clock_t) ctx.pending_timers
      in
      vec_clear ctx.sc_timers;
      List.iter
        (fun t ->
          if t.t_at <= h && pair_geq (t.t_at, 3) clock && ok (t.t_at, 3) then
            vec_push ctx.sc_timers t)
        ctx.pending_timers;
      vec_sort timer_cmp ctx.sc_timers;
      let timeouts = vec_to_list_map (fun t -> S_timeout t) ctx.sc_timers in
      vec_clear ctx.sc_dels;
      List.iter
        (fun mg ->
          if is_overtaken ctx mg then begin
            (* slot already missed (budget paid): deliverable at the
               current point of the schedule *)
            if ctx.clock_k <= 2 then begin
              if ok (ctx.clock_t, 2) then
                vec_push ctx.sc_dels
                  (S_deliver
                     { msg = mg; at = ctx.clock_t; klass = 2; late = true })
            end
            else if timer_at_clock then ()
              (* a delivery between two timer fires of one instant is
                 not realizable by any delay assignment *)
            else if ok (ctx.clock_t, 3) then
              vec_push ctx.sc_dels
                (S_deliver
                   { msg = mg; at = ctx.clock_t; klass = 3; late = true })
          end
          else if pair_geq (mg.nominal, 2) clock && ok (mg.nominal, 2) then
            vec_push ctx.sc_dels
              (S_deliver { msg = mg; at = mg.nominal; klass = 2; late = false }))
        ctx.pending_msgs;
      vec_sort del_cmp ctx.sc_dels;
      let deliveries = vec_to_list_map Fun.id ctx.sc_dels in
      let has_work = timeouts <> [] || deliveries <> [] in
      let crashes =
        if
          ctx.cfg.klass.allow_crashes
          && ctx.crashes_left > 0
          && has_work
          && ((not (ctx.clock_k >= 3)) || not timer_at_clock)
          (* same unrealizability as above: a crash cannot be separated
             from timer fires of an instant once one of them has run *)
        then List.map (fun p -> S_crash p) (alive_pids ctx)
        else []
      in
      crashes @ timeouts @ deliveries
    end

  (* Leaves: nothing enabled. Either a true terminal (no pending event at
     all: check the terminal-only properties) or a horizon cut. *)
  let terminal_violation ctx =
    let decs = M.decisions ctx.m in
    let undecided =
      List.filter
        (fun p ->
          (not (M.is_crashed ctx.m p)) && decs.(Pid.index p) = None)
        (Pid.all ~n:ctx.cfg.n)
    in
    if undecided <> [] then
      Some
        ( Mc_replay.Termination,
          Format.asprintf
            "termination: correct process(es) %s never decide and no \
             event is pending (the run blocks)"
            (String.concat "," (List.map Pid.to_string undecided)) )
    else begin
      let crashed =
        List.exists (fun c -> c <> None) (Array.to_list (M.crashed_at ctx.m))
      in
      let failure = crashed || late_used ctx in
      let aborted =
        Array.exists
          (function Some (_, d) -> Vote.decision_equal d Vote.Abort | None -> false)
          decs
      in
      if aborted && (not ctx.someone_no) && not failure then
        Some
          ( Mc_replay.Validity,
            "abort-validity: abort decided in a failure-free execution \
             where every process voted 1" )
      else None
    end

  (* ---- state fingerprints ------------------------------------------ *)

  (* Canonical multiset orders for the hashed backend. The message order
     is totalized by uid: ties on the hashed keys can only be duplicate
     sends (same sender, instant, destination, payload), which share
     their overtaken bit, so the digest is input-order-independent. *)
  let fp_msg_cmp a b =
    let c = compare (a.nominal : int) b.nominal in
    if c <> 0 then c
    else
      let c = compare (Pid.index a.src) (Pid.index b.src) in
      if c <> 0 then c
      else
        let c = compare (Pid.index a.dst) (Pid.index b.dst) in
        if c <> 0 then c
        else
          let c = compare (a.pl_id : int) b.pl_id in
          if c <> 0 then c
          else compare (snd a.uid : int) (snd b.uid)

  let fp_timer_cmp a b =
    let c = compare (a.t_at : int) b.t_at in
    if c <> 0 then c
    else
      let c = compare (Pid.index a.t_pid) (Pid.index b.t_pid) in
      if c <> 0 then c
      else
        let c = compare (layer_code a.t_layer) (layer_code b.t_layer) in
        if c <> 0 then c else String.compare a.t_id b.t_id

  (* The zero-marshal backend: feed the same canonical facts the Marshal
     backend serializes — scheduler clock and budgets, every process's
     protocol/consensus state (through [hash_state]), crash/decision
     flags, and the sorted multisets of pending deliveries and timers —
     straight into the word hasher. In-flight payloads are covered by
     their intern id, so a message costs five words however large its
     payload is. *)
  let fingerprint_hashed ctx =
    let h = ctx.fp_acc in
    Fingerprint.reset h;
    Fingerprint.add_int h ctx.clock_t;
    Fingerprint.add_int h ctx.clock_k;
    Fingerprint.add_bool h ctx.proposed;
    Fingerprint.add_int h ctx.late_count;
    Fingerprint.add_bool h ctx.someone_no;
    Fingerprint.add_int h ctx.crashes_left;
    let decs = M.decisions ctx.m in
    for i = 0 to ctx.cfg.n - 1 do
      let p = Pid.of_index i in
      M.hash_pstate ctx.m h p;
      M.hash_cstate ctx.m h p;
      Fingerprint.add_bool h (M.is_crashed ctx.m p);
      Fingerprint.add_int h
        (match decs.(i) with
        | None -> 0
        | Some (_, Vote.Commit) -> 1
        | Some (_, Vote.Abort) -> 2);
      Fingerprint.add_bool h (M.cons_handed ctx.m p)
    done;
    (* Canonical multiset order via in-place sorts over reused scratch
       buffers with monomorphic comparators: no tuple lists, no
       polymorphic compare, no per-node array allocation. *)
    let msgs = ctx.sc_fp_msgs in
    vec_clear msgs;
    List.iter (fun mg -> vec_push msgs mg) ctx.pending_msgs;
    vec_sort fp_msg_cmp msgs;
    Fingerprint.add_int h msgs.vlen;
    for i = 0 to msgs.vlen - 1 do
      let mg = msgs.vbuf.(i) in
      Fingerprint.add_int h mg.nominal;
      Fingerprint.add_int h (Pid.index mg.src);
      Fingerprint.add_int h (Pid.index mg.dst);
      Fingerprint.add_bool h (is_overtaken ctx mg);
      Fingerprint.add_int h mg.pl_id
    done;
    let timers = ctx.sc_fp_timers in
    vec_clear timers;
    List.iter (fun t -> vec_push timers t) ctx.pending_timers;
    vec_sort fp_timer_cmp timers;
    Fingerprint.add_int h timers.vlen;
    for i = 0 to timers.vlen - 1 do
      let t = timers.vbuf.(i) in
      Fingerprint.add_int h t.t_at;
      Fingerprint.add_int h (Pid.index t.t_pid);
      Fingerprint.add_int h (layer_code t.t_layer);
      Fingerprint.add_string h t.t_id
    done;
    Fingerprint.digest h

  (* ---- symmetry canonicalization ---------------------------------- *)

  (* Digest of one payload under renaming [sigma], memoized per
     (intern id, permutation). *)
  let payload_digest ctx pi sigma payload pl_id =
    let key = (pl_id * Array.length ctx.sym_perms) + pi in
    match Hashtbl.find_opt ctx.sym_pl_cache key with
    | Some d -> d
    | None ->
        let hp = ctx.fp_pl in
        Fingerprint.reset hp;
        Fingerprint.set_perm hp sigma;
        M.hash_wire hp payload;
        let d = Fingerprint.digest hp in
        Hashtbl.add ctx.sym_pl_cache key d;
        d

  (* Both canonical sorts order rows by exactly the tuple that gets fed:
     rows tying on every fed field are interchangeable contributions, so
     the digest is input-order-independent whatever the tie order. *)
  let fp_sym_msg_cmp a b =
    let c = compare (a.fm_nom : int) b.fm_nom in
    if c <> 0 then c
    else
      let c = compare (a.fm_src : int) b.fm_src in
      if c <> 0 then c
      else
        let c = compare (a.fm_dst : int) b.fm_dst in
        if c <> 0 then c
        else
          let c = compare (a.fm_d1 : int) b.fm_d1 in
          if c <> 0 then c else compare (a.fm_d2 : int) b.fm_d2

  (* Timers armed beyond the horizon never fire: their exact instant is
     unobservable, so it is clamped to [horizon + 1] (collapsing the
     consensus retry-cascade tails that differ only in dead deadlines). *)
  let sym_timer_at ~h t = if t.t_at > h then h + 1 else t.t_at

  let sym_timer_cmp ~h sigma a b =
    let c = compare (sym_timer_at ~h a : int) (sym_timer_at ~h b) in
    if c <> 0 then c
    else
      let c =
        compare (sigma.(Pid.index a.t_pid) : int) sigma.(Pid.index b.t_pid)
      in
      if c <> 0 then c
      else
        let c = compare (layer_code a.t_layer) (layer_code b.t_layer) in
        if c <> 0 then c else String.compare a.t_id b.t_id

  let digest_lt (a : Fingerprint.digest) (b : Fingerprint.digest) =
    a.Fingerprint.d1 < b.Fingerprint.d1
    || (a.Fingerprint.d1 = b.Fingerprint.d1
       && a.Fingerprint.d2 < b.Fingerprint.d2)

  (* Orbit-minimization canonicalization: hash the state under every
     renaming of the vote-refined group and keep the least digest, so all
     states of one orbit collapse to a single visited-table entry. The
     invariant making the minimum an orbit invariant is faithfulness —
     [H_sigma(s) = H_id(sigma . s)] — which holds because canonical slot
     [j] is fed with concrete process [inv.(j)] (the process that would
     occupy rank [j] in the renamed state), every pid-valued datum routes
     through the installed renaming, and the message/timer multisets are
     re-sorted by their renamed keys.

     On top of the renaming, three abstractions sound for forward
     equivalence (symmetry mode only; the off path stays byte-stable):
     a crashed process's internal state is skipped (nothing can read it
     again — deliveries to it are filtered, its timers are stale, it
     never executes; its decision and crash flag stay fed), an overtaken
     message's nominal slot is dropped (the slot was already missed and
     paid for; delivery eligibility depends only on the current clock),
     and beyond-horizon timer instants are clamped. *)
  let fingerprint_sym ctx =
    let h = ctx.fp_acc in
    let decs = M.decisions ctx.m in
    let horizon = ctx.cfg.budgets.Mc_limits.horizon in
    let np = Array.length ctx.sym_perms in
    let best = ref 0 in
    for pi = 0 to np - 1 do
      let sigma, inv = ctx.sym_perms.(pi) in
      Fingerprint.reset h;
      Fingerprint.set_perm h sigma;
      Fingerprint.add_int h ctx.clock_t;
      Fingerprint.add_int h ctx.clock_k;
      Fingerprint.add_bool h ctx.proposed;
      Fingerprint.add_int h ctx.late_count;
      Fingerprint.add_bool h ctx.someone_no;
      Fingerprint.add_int h ctx.crashes_left;
      for j = 0 to ctx.cfg.n - 1 do
        let i = inv.(j) in
        let p = Pid.of_index i in
        let crashed = M.is_crashed ctx.m p in
        Fingerprint.add_bool h crashed;
        if not crashed then begin
          M.hash_pstate ctx.m h p;
          M.hash_cstate ctx.m h p;
          Fingerprint.add_bool h (M.cons_handed ctx.m p)
        end;
        Fingerprint.add_int h
          (match decs.(i) with
          | None -> 0
          | Some (_, Vote.Commit) -> 1
          | Some (_, Vote.Abort) -> 2)
      done;
      let msgs = ctx.sc_sym_msgs in
      vec_clear msgs;
      List.iter
        (fun mg ->
          let d = payload_digest ctx pi sigma mg.payload mg.pl_id in
          vec_push msgs
            {
              fm_nom = (if is_overtaken ctx mg then -1 else mg.nominal);
              fm_src = sigma.(Pid.index mg.src);
              fm_dst = sigma.(Pid.index mg.dst);
              fm_d1 = d.Fingerprint.d1;
              fm_d2 = d.Fingerprint.d2;
            })
        ctx.pending_msgs;
      vec_sort fp_sym_msg_cmp msgs;
      Fingerprint.add_int h msgs.vlen;
      for i = 0 to msgs.vlen - 1 do
        let fm = msgs.vbuf.(i) in
        Fingerprint.add_int h fm.fm_nom;
        Fingerprint.add_int h fm.fm_src;
        Fingerprint.add_int h fm.fm_dst;
        Fingerprint.add_int h fm.fm_d1;
        Fingerprint.add_int h fm.fm_d2
      done;
      let timers = ctx.sc_fp_timers in
      vec_clear timers;
      List.iter (fun t -> vec_push timers t) ctx.pending_timers;
      vec_sort (sym_timer_cmp ~h:horizon sigma) timers;
      Fingerprint.add_int h timers.vlen;
      for i = 0 to timers.vlen - 1 do
        let t = timers.vbuf.(i) in
        Fingerprint.add_int h (sym_timer_at ~h:horizon t);
        Fingerprint.add_int h sigma.(Pid.index t.t_pid);
        Fingerprint.add_int h (layer_code t.t_layer);
        Fingerprint.add_string h t.t_id
      done;
      let d = Fingerprint.digest h in
      ctx.sym_digests.(pi) <- d;
      if pi > 0 && digest_lt d ctx.sym_digests.(!best) then best := pi
    done;
    Fingerprint.clear_perm h;
    ctx.sym_argmin <- !best;
    ctx.sym_digests.(!best)

  (* The historical backend, verbatim up to the digest representation:
     marshal everything, MD5 the bytes. Kept as the semantic reference
     the hashed backend is pinned against (CI compares mctable counters
     across backends). *)
  let fingerprint_marshal ctx =
    let n = ctx.cfg.n in
    let procs =
      List.init n (fun i ->
          let p = Pid.of_index i in
          ( Marshal.to_string (M.pstate ctx.m p) [],
            Marshal.to_string (M.cstate ctx.m p) [],
            M.is_crashed ctx.m p,
            Option.map snd (M.decisions ctx.m).(i),
            M.cons_handed ctx.m p ))
    in
    let msgs =
      List.sort compare
        (List.map
           (fun mg ->
             ( mg.nominal,
               Pid.index mg.src,
               Pid.index mg.dst,
               is_overtaken ctx mg,
               Marshal.to_string mg.payload [] ))
           ctx.pending_msgs)
    in
    let timers =
      List.sort compare
        (List.map
           (fun t -> (t.t_at, Pid.index t.t_pid, t.t_layer, t.t_id))
           ctx.pending_timers)
    in
    Fingerprint.of_bytes
      (Marshal.to_string
         ( ctx.clock_t,
           ctx.clock_k,
           ctx.proposed,
           ctx.late_count,
           ctx.someone_no,
           ctx.crashes_left,
           procs,
           msgs,
           timers )
         [])

  let fingerprint ctx =
    match ctx.cfg.fp with
    | Mc_limits.Fp_hashed ->
        if Array.length ctx.sym_perms = 0 then fingerprint_hashed ctx
        else fingerprint_sym ctx
    | Mc_limits.Fp_marshal -> fingerprint_marshal ctx

  (* ---- sleep keys in canonical coordinates ------------------------- *)

  (* When a state is stored under a renamed representative, its sleep-set
     keys are translated by the same renaming, so orbit-mates reached by
     different paths compare their keys in one shared coordinate frame.
     The uid send-ordinals survive translation exactly as they survive
     commutation in the symmetry-off checker: a renaming maps "the k-th
     send of process s" to "the k-th send of sigma(s)" in the renamed
     run. When the argmin renaming is ambiguous (the state has a
     non-trivial stabilizer), representatives may differ by a stabilizer
     element — a permutation the 126-bit digest certifies as a state
     self-symmetry — which is the same hash-trust approximation the
     visited table already rests on. *)
  let xlate_key sigma = function
    | K_prop -> K_prop
    | K_crash p -> K_crash sigma.(p)
    | K_del ((s, k), d, at, c) -> K_del ((sigma.(s), k), sigma.(d), at, c)
    | K_to (p, l, id, at) -> K_to (sigma.(p), l, id, at)

  let xlate_keys ctx keys =
    if ctx.sym_argmin = 0 || keys = [] then keys
    else
      let sigma, _ = ctx.sym_perms.(ctx.sym_argmin) in
      List.map (xlate_key sigma) keys

  (* ---- permutation-twin pruning ------------------------------------ *)

  (* At a state that is invariant under a transposition [tau = (a b)] of
     the group (certified by equal per-permutation digests from the last
     [fingerprint_sym] call at this node), the subtree below a candidate
     aimed at [b] is the [tau]-image of the subtree below its
     [tau]-image candidate aimed at [a]: every schedule it contains, and
     every violation (the checked properties are permutation-invariant),
     has an image below the witness sibling. A [b]-candidate is dropped
     only when its image witness really is explored at this node —
     present among the candidates, not slept, not itself twin-dropped.
     Three candidate kinds are eligible:

     - [S_crash b] against witness [S_crash a]: the subtree image
       depends on no per-message correspondence at all.
     - [S_deliver] to [b] against the delivery to [a] of the image
       message: the witness must agree on uid ordinal ("the k-th send of
       [sigma src]"), execution slot, delivery class, lateness, nominal
       slot and overtaken status, and its payload must hash equal under
       the renaming — exactly the facts the canonical fingerprint reads
       from an in-flight message, so the pair is an image pair at the
       same hash-trust level the visited table rests on.
     - [S_timeout] of [b] against [a]'s armed timer with the same layer,
       id and instant — again the full fact set the fingerprint reads
       from a timer.

     Drops always cite a witness with a strictly smaller target index
     ([a < b] in every stored twin), so witness chains (the witness of a
     drop being itself dropped later, citing its own smaller-index
     witness) are acyclic and compose: the subtree image then factors
     through a composition of digest-certified invariances. Sleep sets
     stay sound because the dropped candidate's behaviours are the
     [tau]-image of the witness's, explored at this node; when the
     witness subtree prunes a schedule through a sleep key inherited
     from an earlier sibling, that sibling already covered the
     schedule's image — the standard compositional argument of
     sleep-set DPOR, composed with [tau]. *)
  let twin_prune ctx (counters : Mc_limits.counters) sleep cands =
    if Array.length ctx.sym_twins = 0 then cands
    else begin
      let id_d = ctx.sym_digests.(0) in
      let live =
        List.filter
          (fun (_, _, pi) -> Fingerprint.equal ctx.sym_digests.(pi) id_d)
          (Array.to_list ctx.sym_twins)
      in
      if live = [] then cands
      else begin
        let dropped = ref [] in
        let is_dropped k = List.mem k !dropped in
        (* a kept witness: a candidate satisfying the image predicate
           whose own subtree is really explored at this node — not
           slept, not itself dropped *)
        let witness pred =
          List.exists
            (fun c ->
              pred c
              &&
              let kc = key_of c in
              (not (is_dropped kc)) && not (k_mem kc sleep))
            cands
        in
        (* The image predicate matches on every fact the canonical
           fingerprint reads from the event's object — and is blind to
           the uid send ordinal, which no fingerprint (symmetry on or
           off) ever hashes: "the 3rd send of p, to b" and "the 4th
           send of p, to a" are image messages when slot, class,
           lateness, nominal, overtaken status and renamed payload all
           agree; the ordinal only names sleep keys along a path, and
           sleep-set coverage is invariant under key renaming (the
           independence relation reads dst/slot/class, never the
           ordinal). *)
        let image_of cand (a, b, pi) =
          let sigma, _ = ctx.sym_perms.(pi) in
          match cand with
          | S_crash p when Pid.index p = b ->
              Some (function S_crash q -> Pid.index q = a | _ -> false)
          | S_deliver { msg = mb; at; klass; late } when Pid.index mb.dst = b
            ->
              let src_a = sigma.(fst mb.uid) in
              let d_b = payload_digest ctx pi sigma mb.payload mb.pl_id in
              let id_sigma, _ = ctx.sym_perms.(0) in
              Some
                (function
                  | S_deliver { msg = ma; at = at'; klass = klass'; late = la }
                    ->
                      Pid.index ma.dst = a
                      && fst ma.uid = src_a
                      && at' = at && klass' = klass && la = late
                      && ma.nominal = mb.nominal
                      && is_overtaken ctx ma = is_overtaken ctx mb
                      && Fingerprint.equal
                           (payload_digest ctx 0 id_sigma ma.payload
                              ma.pl_id)
                           d_b
                  | _ -> false)
          | S_timeout t when Pid.index t.t_pid = b ->
              Some
                (function
                  | S_timeout t' ->
                      Pid.index t'.t_pid = a
                      && t'.t_layer = t.t_layer
                      && t'.t_id = t.t_id && t'.t_at = t.t_at
                  | _ -> false)
          | _ -> None
        in
        let keep cand =
          let cut =
            List.exists
              (fun twin ->
                match image_of cand twin with
                | Some pred -> witness pred
                | None -> false)
              live
          in
          if cut then begin
            dropped := key_of cand :: !dropped;
            counters.Mc_limits.twin_skips <-
              counters.Mc_limits.twin_skips + 1;
            false
          end
          else true
        in
        List.filter keep cands
      end
    end

  (* ---- search ------------------------------------------------------ *)

  exception Found of Mc_replay.property * string * step list
  exception Out_of_states

  (* The DFS is generic over its visited table so the same search serves
     both dedup scopes: a plain per-item [Hashtbl] (single-domain, the
     deterministic default) and a {!Mc_shards} table shared by every
     item of one vote-set group. [vt_add] is called only when [vt_find]
     saw no binding; its boolean reports whether this caller actually
     created the binding — under a shared table a racing domain may have
     inserted the state in between, and exactly one of the racers gets
     [true] and counts the state. *)
  type vtable = {
    vt_find : Fingerprint.digest -> key list option;
    vt_add : Fingerprint.digest -> key list -> bool;
    vt_store : Fingerprint.digest -> key list -> unit;
    vt_size : unit -> int;
  }

  let vtable_of_tbl (tbl : (Fingerprint.digest, key list) Hashtbl.t) =
    {
      vt_find = Hashtbl.find_opt tbl;
      (* single-owner table: a miss in [vt_find] guarantees freshness *)
      vt_add =
        (fun fp sleep ->
          Hashtbl.replace tbl fp sleep;
          true);
      vt_store = Hashtbl.replace tbl;
      vt_size = (fun () -> Hashtbl.length tbl);
    }

  let vtable_of_shards (sh : key list Mc_shards.t) =
    {
      vt_find = Mc_shards.find_opt sh;
      (* single CAS-probe: no lock anywhere, and no second scan after
         the [vt_find] miss that guards this call. If a racing domain
         inserted in between, its stored sleep set stands (keeping
         either racer's set is sound — both were legitimate to store) *)
      vt_add = (fun fp sleep -> Mc_shards.find_or_insert sh fp sleep = None);
      (* losing a racing sleep-set narrowing is sound: a larger stored
         set only makes the subset cut less likely *)
      vt_store = Mc_shards.update sh;
      vt_size = (fun () -> Mc_shards.size sh);
    }

  (* [?order] permutes each node's candidate list before descent — the
     swarm mode's randomized walk order; sleep-set DPOR is sound under
     any exploration order of the candidate set, and the identity order
     (the default) keeps the deterministic modes byte-stable.

     [?open_depth] (default 0) disables the visited cut for the first
     [open_depth] tree levels: a swarm walker starting at the root would
     otherwise die instantly once another walker has claimed the root
     state (the claimer explores the children; a fresh walker has no
     parent loop to fall back to). Within the open region a walker
     descends through already-claimed states — without recounting or
     re-inserting them — until it finds an unclaimed subtree; the
     duplicated shallow transitions are bounded by the branching factor
     to the [open_depth]-th power and are what lets independent walks
     partition the deep space through the shared table alone. *)
  let dfs_dpor ?(order = Fun.id) ?(open_depth = 0) ctx
      (counters : Mc_limits.counters) vt =
    let budgets = ctx.cfg.budgets in
    let sym_on = Array.length ctx.sym_perms > 0 in
    let rec go ~sleep ~depth path_rev =
      let fp = fingerprint ctx in
      if sym_on then begin
        counters.canon_calls <- counters.canon_calls + 1;
        if ctx.sym_argmin <> 0 then
          counters.orbit_hits <- counters.orbit_hits + 1
      end;
      (* the table speaks canonical coordinates: stored keys were
         translated by their node's argmin renaming, so this node's keys
         are translated the same way for every table operation; the
         candidate loop below keeps using the concrete [sleep] *)
      let csleep = if sym_on then xlate_keys ctx sleep else sleep in
      let prior = vt.vt_find fp in
      match prior with
      | Some stored when depth >= open_depth && k_subset stored csleep ->
          counters.dedup_hits <- counters.dedup_hits + 1;
          counters.schedules <- counters.schedules + 1
      | _ -> (
          match
            order
              (if sym_on then twin_prune ctx counters sleep (enumerate ctx)
               else enumerate ctx)
          with
          | [] ->
              counters.schedules <- counters.schedules + 1;
              if ctx.pending_timers <> [] || ctx.pending_msgs <> [] then
                counters.horizon_cuts <- counters.horizon_cuts + 1
              else begin
                counters.terminals <- counters.terminals + 1;
                match terminal_violation ctx with
                | Some (prop, detail) ->
                    raise (Found (prop, detail, List.rev path_rev))
                | None -> ()
              end
          | cands ->
              if depth >= budgets.Mc_limits.max_depth then begin
                counters.depth_cuts <- counters.depth_cuts + 1;
                counters.schedules <- counters.schedules + 1
              end
              else begin
                (match prior with
                | None ->
                    if vt.vt_size () >= budgets.Mc_limits.max_states then
                      raise Out_of_states;
                    if vt.vt_add fp csleep then begin
                      counters.states <- counters.states + 1;
                      counters.peak_visited <-
                        max counters.peak_visited (vt.vt_size ())
                    end
                | Some stored -> vt.vt_store fp (k_inter stored csleep));
                let snap = save ctx in
                let sleep_now = ref sleep in
                List.iter
                  (fun cand ->
                    let k = key_of cand in
                    if k_mem k !sleep_now then
                      counters.sleep_skips <- counters.sleep_skips + 1
                    else begin
                      restore ctx snap;
                      counters.transitions <- counters.transitions + 1;
                      (match exec_step ctx cand with
                      | Some (prop, detail) ->
                          raise
                            (Found (prop, detail, List.rev (cand :: path_rev)))
                      | None -> ());
                      let child_sleep =
                        List.filter (fun k' -> independent k k') !sleep_now
                      in
                      go ~sleep:child_sleep ~depth:(depth + 1)
                        (cand :: path_rev);
                      sleep_now := k :: !sleep_now
                    end)
                  cands;
                (* backtracking past this node: its snapshot can never be
                   restored again, so its records go back to the pools *)
                release ctx snap
              end)
    in
    go ~sleep:[] ~depth:0 []

  (* The naive schedule count: number of maximal paths an enumerator with
     neither sleep sets nor deduplication would walk, computed exactly by
     memoized path-counting over the deduplicated state graph (identical
     states have identical subtree path counts). *)
  let dfs_count ctx (counters : Mc_limits.counters) visited =
    let budgets = ctx.cfg.budgets in
    let rec go () =
      let fp = fingerprint ctx in
      match Hashtbl.find_opt visited fp with
      | Some x ->
          counters.dedup_hits <- counters.dedup_hits + 1;
          x
      | None -> (
          match enumerate ctx with
          | [] -> 1.0
          | cands ->
              if Hashtbl.length visited >= budgets.Mc_limits.max_states then
                raise Out_of_states;
              counters.states <- counters.states + 1;
              let snap = save ctx in
              let total =
                List.fold_left
                  (fun acc cand ->
                    restore ctx snap;
                    counters.transitions <- counters.transitions + 1;
                    match exec_step ctx cand with
                    | Some _ -> acc +. 1.0
                    | None -> acc +. go ())
                  0.0 cands
              in
              release ctx snap;
              Hashtbl.replace visited fp total;
              total)
    in
    go ()

  (* ---- frontier ---------------------------------------------------- *)

  (* A fixed, jobs-independent work split: expand breadth-first until the
     level is wide enough, then let [Batch] spread the items over domains.
     Items are schedule prefixes; each worker replays its prefix on a
     fresh context, so nothing mutable crosses domain boundaries. In the
     default per-item mode every item is explored with its own visited
     table, which keeps all counters bit-identical whatever [--jobs] is.

     Progress is detected structurally — did any prefix actually extend
     this round? — not by comparing level lengths: "one prefix split
     while another terminated" can leave the lengths equal, which the
     old length check mistook for a fixed point. Concretely, the single
     [[]] -> [[S_proposals]] root expansion is a 1 -> 1 round, so the
     length check froze every crash-free exploration at a one-item
     frontier (no parallelism at all). Widths are threaded through the
     loop so no round walks a list just to measure it. *)
  let frontier_target = 24

  let replay_prefix ctx prefix =
    List.fold_left
      (fun viol step ->
        match viol with
        | Some _ -> viol
        | None -> exec_step ctx step)
      None prefix

  let frontier cfg =
    let expand prefix =
      let ctx = create_ctx cfg in
      match replay_prefix ctx prefix with
      | Some _ -> `Leaf
      | None -> (
          match enumerate ctx with
          | [] -> `Leaf
          | cands -> `Children (List.map (fun c -> prefix @ [ c ]) cands))
    in
    let rec grow level depth width =
      if depth >= 3 || width >= frontier_target then level
      else begin
        let progressed = ref false in
        let width' = ref 0 in
        let next =
          List.concat_map
            (fun prefix ->
              match expand prefix with
              | `Leaf ->
                  incr width';
                  [ prefix ]
              | `Children cs ->
                  progressed := true;
                  width' := !width' + List.length cs;
                  cs)
            level
        in
        if !progressed then grow next (depth + 1) !width' else level
      end
    in
    grow [ [] ] 0 1

  (* Frontier-item orbit dedup (symmetry mode): two prefixes landing on
     orbit-equivalent states explore permutation-isomorphic subtrees, and
     in the per-item visited discipline each would pay for its subtree in
     full. Keeping one representative per canonical root keeps coverage —
     any violation below a dropped item has a permutation-image below the
     kept one — while cutting that duplication. Prefixes that already
     violate are always kept (they carry their witness). *)
  let dedup_frontier cfg prefixes =
    match prefixes with
    | [] | [ _ ] -> prefixes
    | _ when Option.is_none (sym_group cfg) -> prefixes
    | _ ->
        let seen = Hashtbl.create 64 in
        List.filter
          (fun prefix ->
            let ctx = create_ctx cfg in
            match replay_prefix ctx prefix with
            | Some _ -> true
            | None ->
                let fp = fingerprint ctx in
                if Hashtbl.mem seen fp then false
                else begin
                  Hashtbl.add seen fp ();
                  true
                end)
          prefixes

  (* ---- shrinking and concretization -------------------------------- *)

  (* Transition identity for shrink-replay: dropping events shifts the
     point (and hence the key) at which a surviving event executes, so
     candidates are matched on what the event IS — the message, the timer,
     the crashed process — not on where it lands. *)
  let same_ident k1 k2 =
    match (k1, k2) with
    | K_prop, K_prop -> true
    | K_crash p, K_crash q -> p = q
    | K_del (u1, _, _, _), K_del (u2, _, _, _) -> u1 = u2
    | K_to (p1, l1, i1, _), K_to (p2, l2, i2, _) ->
        p1 = p2 && l1 = l2 && i1 = i2
    | _ -> false

  let find_cand ctx key =
    List.find_opt (fun c -> same_ident (key_of c) key) (enumerate ctx)

  (* Replay a candidate schedule by transition identity, skipping steps
     that dropped out of existence, and record what actually ran. *)
  let run_keys ctx trail keys =
    List.fold_left
      (fun viol key ->
        match viol with
        | Some _ -> viol
        | None -> (
            match find_cand ctx key with
            | None -> None
            | Some cand ->
                trail := cand :: !trail;
                exec_step ctx cand))
      None keys

  (* Deterministic completion in engine order (used for termination
     violations: blocking is a property of the completed run). *)
  let complete ctx trail =
    let rank = function
      | S_proposals -> (Sim_time.zero, 1, 0)
      | S_crash _ -> (Sim_time.zero, -1, 0)
      | S_deliver { msg; at; klass; _ } -> (at, klass, msg.seq)
      | S_timeout t -> (t.t_at, 3, t.t_seq)
    in
    let rec go viol =
      match viol with
      | Some _ -> viol
      | None -> (
          match
            enumerate ctx
            |> List.filter (function S_crash _ -> false | _ -> true)
            |> List.sort (fun a b -> compare (rank a) (rank b))
          with
          | [] -> None
          | cand :: _ ->
              trail := cand :: !trail;
              go (exec_step ctx cand))
    in
    go None

  let violation_holds cfg property keys ~completion =
    let ctx = create_ctx cfg in
    let trail = ref [] in
    let viol = run_keys ctx trail keys in
    let viol =
      match (viol, completion) with
      | None, true -> (
          match complete ctx trail with
          | Some v -> Some v
          | None ->
              if
                enumerate ctx = []
                && ctx.pending_timers = []
                && ctx.pending_msgs = []
              then terminal_violation ctx
              else None)
      | v, _ -> v
    in
    (* a candidate that blows the class's lateness budget (e.g. a dropped
       delivery stranding a synchronous message) left the execution class:
       the shrunk witness must stay a legal schedule of the exploration *)
    match viol with
    | Some (p, _) when p = property && ctx.late_count <= max_late_of cfg ->
        Some (List.rev !trail)
    | _ -> None

  (* Greedy event-drop: try to remove each crash and delivery, keeping the
     drop whenever the violation still reproduces. *)
  let shrink cfg property steps =
    let completion = property = Mc_replay.Termination in
    let droppable = function
      | S_crash _ | S_deliver _ -> true
      | S_proposals | S_timeout _ -> false
    in
    let rec pass best i =
      if i < 0 then best
      else if not (droppable (List.nth best i)) then pass best (i - 1)
      else begin
        let cand = List.filteri (fun j _ -> j <> i) best in
        match
          violation_holds cfg property (List.map key_of cand) ~completion
        with
        | Some trail -> pass trail (min (i - 1) (List.length trail - 1))
        | None -> pass best (i - 1)
      end
    in
    let best = pass steps (List.length steps - 1) in
    match
      violation_holds cfg property (List.map key_of best) ~completion
    with
    | Some trail -> trail
    | None -> best (* should not happen; keep the unshrunk schedule *)

  let describe_step = function
    | S_proposals -> "t=0: every process proposes its vote"
    | S_crash p -> Format.asprintf "%a crashes" Pid.pp p
    | S_deliver { msg; at; late; _ } ->
        Format.asprintf "t=%d: deliver %s %a->%a%s" at
          (M.tag_of_wire msg.payload) Pid.pp msg.src Pid.pp msg.dst
          (if late then " (late)" else "")
    | S_timeout t ->
        Format.asprintf "t=%d: %a %s timer '%s' fires" t.t_at Pid.pp t.t_pid
          (match t.t_layer with
          | Trace.Commit_layer -> "commit"
          | Trace.Consensus_layer -> "consensus")
          t.t_id

  (* Turn the shrunk schedule into engine terms: a strictly increasing
     tick per step (timer fires pinned at their re-anchored instants), a
     per-message delay assignment, and [Before]-crash instants. *)
  let concretize cfg property detail steps =
    let ctx = create_ctx cfg in
    (* -1 until the proposals step: a crash scheduled before it must map
       to [Before 0] (the engine pops crashes ahead of the t=0 proposals),
       not to tick 1, where the victim would get its sends out first *)
    let prev = ref (-1) in
    let faithful = ref true in
    let delays = ref [] in
    let crashes = ref [] in
    let send_tick = Hashtbl.create 64 in
    let set_tick = Hashtbl.create 64 in
    let seen_msgs = Hashtbl.create 64 in
    let seen_timers = Hashtbl.create 64 in
    let note_new tick =
      List.iter
        (fun mg ->
          if not (Hashtbl.mem seen_msgs mg.uid) then begin
            Hashtbl.replace seen_msgs mg.uid ();
            Hashtbl.replace send_tick mg.uid tick
          end)
        ctx.pending_msgs;
      List.iter
        (fun t ->
          if not (Hashtbl.mem seen_timers t.t_seq) then begin
            Hashtbl.replace seen_timers t.t_seq ();
            Hashtbl.replace set_tick t.t_seq tick
          end)
        ctx.pending_timers
    in
    let fire_tick t =
      match t.t_fire with
      | Proto.At_delay k -> k * cfg.u
      | Proto.After d ->
          let base =
            Option.value (Hashtbl.find_opt set_tick t.t_seq) ~default:t.t_set_mc
          in
          Sim_time.( + ) base d
    in
    let exec step =
      (match step with
      | S_proposals ->
          ignore (exec_step ctx step);
          prev := 0;
          note_new 0
      | S_crash p ->
          ignore (exec_step ctx step);
          crashes := (p, !prev + 1) :: !crashes
      | S_deliver { msg; _ } ->
          let tick = !prev + 1 in
          ignore (exec_step ctx step);
          prev := tick;
          let sent =
            Option.value (Hashtbl.find_opt send_tick msg.uid) ~default:0
          in
          delays := (msg.uid, tick - sent) :: !delays;
          note_new tick
      | S_timeout t ->
          let ft = fire_tick t in
          (* equal is fine: the engine pops same-instant timers in one
             batch, and same-instant fires at distinct processes are
             independent (one representative order explored) *)
          if ft < !prev then faithful := false;
          ignore (exec_step ctx step);
          prev := max !prev ft;
          note_new !prev)
    in
    List.iter exec steps;
    (* leftover in-flight messages arrive after the schedule has played
       out, so the engine run quiesces instead of truncating at max_time *)
    let rec flush () =
      match ctx.pending_msgs with
      | [] -> ()
      | first :: rest ->
          (* oldest first: the pending list is newest-first, and witness
             bytes must not depend on that internal order *)
          let mg =
            List.fold_left
              (fun acc m -> if m.seq < acc.seq then m else acc)
              first rest
          in
          let tick = !prev + 1 in
          prev := tick;
          let sent =
            Option.value (Hashtbl.find_opt send_tick mg.uid) ~default:0
          in
          delays := (mg.uid, tick - sent) :: !delays;
          ignore
            (exec_step ctx
               (S_deliver { msg = mg; at = tick; klass = 2; late = true }));
          note_new tick;
          flush ()
    in
    flush ();
    if not ctx.cfg.klass.allow_late then
      if List.exists (fun (_, d) -> d > cfg.u) !delays then faithful := false;
    {
      Mc_replay.property;
      detail;
      witness =
        {
          Mc_replay.protocol = P.name;
          n = cfg.n;
          f = cfg.f;
          u = cfg.u;
          votes = Array.copy cfg.votes;
          crashes = List.rev !crashes;
          delays = List.rev !delays;
          max_time = !prev + (20 * cfg.u);
          schedule = List.map describe_step steps;
          faithful = !faithful;
        };
    }

  (* ---- the public entry points ------------------------------------- *)

  type params = {
    n : int;
    f : int;
    u : Sim_time.t;
    vote_sets : Vote.t array list;
    klass : exec_class;
    budgets : Mc_limits.budgets;
    fp : Mc_limits.fp_backend;
    pool : bool;  (** recycle snapshot records across DFS nodes *)
    symmetry : bool;
        (** canonicalize fingerprints under the protocol's declared
            process-permutation group, prune permutation-twin crash
            candidates and orbit-duplicate frontier items. Verdicts are
            unaffected; the states/transitions/schedules counters shrink
            by the orbit collapse. Ignored (off) under [Fp_marshal]. *)
    swarm_open_depth : int option;
        (** tree levels a swarm walker explores through already-claimed
            states before the visited cut engages ([None]:
            {!default_swarm_open_depth}; clamped by
            {!clamp_open_depth}) *)
    jobs : int option;
    naive : bool;  (** also compute the naive schedule count (2nd pass) *)
    visited : Mc_limits.visited_mode;
    stealing : bool;
        (** schedule frontier items over work-stealing deques instead of
            the shared cursor; per-item counters are identical either
            way (stealing without [split] never decomposes an item) *)
    swarm : bool option;
        (** [Some true]: explore with independent randomized-order DFS
            walks, one per domain, coupled only through a shared visited
            table (no frontier handoff, no steal traffic); implies the
            shared table whatever [visited] says. [Some false]: never.
            [None] (auto): swarm iff [visited = Shared] and the
            effective job count is at least {!swarm_auto_jobs} — at that
            scale the walks beat frontier handoff (see DESIGN.md).
            Walk orders are seeded deterministically from {!Rng}, but
            counters are jobs- and timing-dependent like any
            shared-table mode; verdicts are unaffected. *)
  }

  type result = {
    counters : Mc_limits.counters;
    naive : float option;
    naive_partial : bool;
    violation : Mc_replay.violation option;
    shard_load : (int * int) option;
        (* (occupied, buckets) of the fullest shared visited table, when
           a shared-table mode ran — the occupancy [mc --stats] reports;
           [None] in per-item mode *)
  }

  type item_result = {
    ir_counters : Mc_limits.counters;
    ir_violation : (Mc_replay.property * string * step list) option;
    ir_naive : float;
    ir_naive_partial : bool;
  }

  (* A unit of frontier work: a schedule prefix to explore under some
     vote assignment. [wi_shared] is the vote-set group's shared visited
     table in [Shared] mode ([None] in the deterministic per-item mode):
     pre-proposal fingerprints do not cover the votes array, so sharing
     one table {e across} vote sets would conflate distinct states — the
     table's scope is exactly one group. *)
  type work_item = {
    wi_cfg : config;
    wi_prefix : step list;
    wi_shared : key list Mc_shards.t option;
    wi_seed : int option;
        (* [Some seed]: a swarm walker — explore from the (empty-prefix)
           root in the randomized order drawn from [Rng.create seed],
           with the visited cut held open for the first
           [swarm_open_depth] levels. [None]: a plain frontier item. *)
  }

  (* Preallocating the visited table toward its budget avoids the
     rehash cascade on the way up (growing from 4096 to the default
     400k budget costs ~7 full rehashes of an ever-larger table). The
     cap keeps small explorations from paying for buckets they will
     never fill — beyond it one or two final rehashes are noise. *)
  let fresh_visited (cfg : config) : (Fingerprint.digest, 'a) Hashtbl.t =
    Hashtbl.create (min cfg.budgets.Mc_limits.max_states 65_536)

  (* How many tree levels a swarm walker keeps exploring through states
     another walker already claimed (see [dfs_dpor]'s [?open_depth]).
     Deep enough that walkers wade past the narrow shallow region (the
     root has a single [S_proposals] child in the crash-free classes)
     and diverge into disjoint deep subtrees; shallow enough that the
     duplicated transitions stay a small fraction of the space. *)
  let default_swarm_open_depth = 6

  (* Useful open depths end well before the frontier/split machinery's
     own depth bounds; past 32 the duplicated shallow transitions could
     only explode (branching^depth), so the CLI knob is clamped there. *)
  let clamp_open_depth d = max 0 (min d 32)

  let explore_item wi =
    let counters = Mc_limits.fresh_counters () in
    let violation = ref None in
    (try
       let ctx = create_ctx wi.wi_cfg in
       match replay_prefix ctx wi.wi_prefix with
       | Some (prop, detail) ->
           counters.Mc_limits.schedules <- 1;
           violation := Some (prop, detail, wi.wi_prefix)
       | None ->
           let vt =
             match wi.wi_shared with
             | Some sh -> vtable_of_shards sh
             | None -> vtable_of_tbl (fresh_visited wi.wi_cfg)
           in
           (match wi.wi_seed with
           | None -> dfs_dpor ctx counters vt
           | Some seed ->
               let rng = Rng.create seed in
               dfs_dpor
                 ~order:(fun cands -> Rng.shuffle rng cands)
                 ~open_depth:wi.wi_cfg.open_depth ctx counters vt)
     with
    | Found (prop, detail, sub) ->
        violation := Some (prop, detail, wi.wi_prefix @ sub)
    | Out_of_states -> counters.Mc_limits.budget_hit <- true);
    { ir_counters = counters; ir_violation = !violation; ir_naive = 0.0;
      ir_naive_partial = false }

  (* On-demand re-splitting for the work-stealing scheduler: a claimed
     item whose prefix is still shallow is replaced by one child item
     per enabled candidate (the same decomposition [frontier] applies
     statically). Splitting forgets the sleep-set context accumulated
     between siblings, so the children cover a superset of the parent's
     schedules — sound, merely less pruned; that (and shared-table
     dedup races) is why split-mode counters are jobs-dependent, and
     why the deterministic default never splits. *)
  let max_split_depth = 12

  let split_item wi =
    if List.length wi.wi_prefix >= max_split_depth then None
    else
      let ctx = create_ctx wi.wi_cfg in
      match replay_prefix ctx wi.wi_prefix with
      | Some _ -> None (* prefix already violates: run it, don't split *)
      | None -> (
          match enumerate ctx with
          | [] | [ _ ] -> None
          | cands ->
              Some
                (List.map
                   (fun c -> { wi with wi_prefix = wi.wi_prefix @ [ c ] })
                   cands))

  (* Fold the results of one origin item's pieces. Counter addition
     commutes (see [Mc_limits.add_counters]); the surviving violation is
     whichever piece's the fold meets first, which — like any parallel
     witness search — depends on scheduling. *)
  let merge_ir a b =
    Mc_limits.add_counters a.ir_counters b.ir_counters;
    {
      ir_counters = a.ir_counters;
      ir_violation =
        (match a.ir_violation with Some _ -> a.ir_violation | None -> b.ir_violation);
      ir_naive = a.ir_naive +. b.ir_naive;
      ir_naive_partial = a.ir_naive_partial || b.ir_naive_partial;
    }

  let count_item wi =
    try
      let ctx = create_ctx wi.wi_cfg in
      match replay_prefix ctx wi.wi_prefix with
      | Some _ -> (1.0, false)
      | None ->
          ( dfs_count ctx
              (Mc_limits.fresh_counters ())
              (fresh_visited wi.wi_cfg),
            false )
    with Out_of_states -> (0.0, true)

  (* Effective job count at or above which [swarm = None] resolves to
     swarm exploration (shared-visited mode only): below it the frontier
     machinery wins or ties; from four domains up the handoff-free walks
     beat it (see DESIGN.md "Swarm exploration"). *)
  let swarm_auto_jobs = 4

  (* Walker-seed derivation: one deterministic base stream, one draw per
     walker in construction order. Runs with the same jobs count get the
     same walk orders (the *counters* still depend on timing — races on
     the shared table — but the orders each walker attempts do not). *)
  let swarm_seed_base = 0x51ee7

  let run (p : params) =
    let jobs_eff =
      match p.jobs with Some j -> max 1 j | None -> Batch.default_jobs ()
    in
    let swarm_on =
      match p.swarm with
      | Some b -> b
      | None -> p.visited = Mc_limits.Shared && jobs_eff >= swarm_auto_jobs
    in
    let mk_cfg votes =
      {
        n = p.n;
        f = p.f;
        u = p.u;
        votes;
        klass = p.klass;
        budgets = p.budgets;
        fp = p.fp;
        pool = p.pool;
        symmetry = p.symmetry;
        open_depth =
          (match p.swarm_open_depth with
          | Some d -> clamp_open_depth d
          | None -> default_swarm_open_depth);
      }
    in
    let tables = ref [] in
    let shared_table () =
      (* sized from the full budget: the index space is fixed for the
         table's lifetime (segments commit lazily), so the capacity hint
         is what keeps chains short near the budget ceiling *)
      let t = Mc_shards.create ~capacity:p.budgets.Mc_limits.max_states () in
      tables := t :: !tables;
      t
    in
    let items =
      if swarm_on then
        (* One walker per domain per vote set, all exploring the full
           space from the root: work partitions dynamically through the
           shared table (a state's inserter owns its subtree; later
           walkers cut there), and the randomized orders make the
           walkers diverge instead of racing down the same path. *)
        let seeds = Rng.create swarm_seed_base in
        List.concat_map
          (fun votes ->
            let cfg = mk_cfg votes in
            let sh = Some (shared_table ()) in
            List.init (max 1 jobs_eff) (fun _ ->
                {
                  wi_cfg = cfg;
                  wi_prefix = [];
                  wi_shared = sh;
                  wi_seed = Some (Int64.to_int (Rng.next64 seeds) land max_int);
                }))
          p.vote_sets
      else
        List.concat_map
          (fun votes ->
            let cfg = mk_cfg votes in
            let shared =
              match p.visited with
              | Mc_limits.Per_item -> None
              | Mc_limits.Shared -> Some (shared_table ())
            in
            List.map
              (fun prefix ->
                {
                  wi_cfg = cfg;
                  wi_prefix = prefix;
                  wi_shared = shared;
                  wi_seed = None;
                })
              (dedup_frontier cfg (frontier cfg)))
          p.vote_sets
    in
    let results =
      if swarm_on then
        (* walkers are independent and equally "fat": the shared cursor
           maps one walker to one domain with no handoff at all *)
        Batch.run ?jobs:p.jobs explore_item items
      else
        match (p.visited, p.stealing) with
        | Mc_limits.Shared, true ->
            Batch.run_stealing ?jobs:p.jobs ~split:split_item ~merge:merge_ir
              explore_item items
        | Mc_limits.Per_item, true ->
            Batch.run_stealing ?jobs:p.jobs ~merge:merge_ir explore_item items
        | _, false -> Batch.run ?jobs:p.jobs explore_item items
    in
    let counters = Mc_limits.fresh_counters () in
    List.iter (fun r -> Mc_limits.add_counters counters r.ir_counters) results;
    let violation =
      List.find_map
        (fun (wi, r) ->
          Option.map
            (fun (prop, detail, steps) ->
              let shrunk = shrink wi.wi_cfg prop steps in
              concretize wi.wi_cfg prop detail shrunk)
            r.ir_violation)
        (List.combine items results)
    in
    (* the naive count only rates the pruning of a completed exploration;
       a witness search that stops at a violation skips the second pass *)
    let naive, naive_partial =
      if p.naive && violation = None then begin
        (* the naive count enumerates each vote set's space exactly once,
           so it always runs over the static, undeduplicated frontier
           decomposition: swarm items (one per walker) would multi-count
           it, and symmetry-deduplicated items would undercount it — the
           naive number rates the space, not the reduction *)
        let count_items =
          if swarm_on || (p.symmetry && p.fp = Mc_limits.Fp_hashed) then
            List.concat_map
              (fun votes ->
                let cfg = mk_cfg votes in
                List.map
                  (fun prefix ->
                    {
                      wi_cfg = cfg;
                      wi_prefix = prefix;
                      wi_shared = None;
                      wi_seed = None;
                    })
                  (frontier cfg))
              p.vote_sets
          else items
        in
        let counts = Batch.run ?jobs:p.jobs count_item count_items in
        ( Some (List.fold_left (fun acc (c, _) -> acc +. c) 0.0 counts),
          List.exists snd counts )
      end
      else (None, false)
    in
    let shard_load =
      List.fold_left
        (fun acc t ->
          let occ = Mc_shards.size t in
          match acc with
          | Some (o, _) when o >= occ -> acc
          | _ -> Some (occ, Mc_shards.buckets t))
        None !tables
    in
    { counters; naive; naive_partial; violation; shard_load }

  (* ---- the canonical synchronous schedule --------------------------- *)

  type canonical = {
    can_decisions : (Pid.t * Vote.decision) list;
    can_commit_msgs : int;
    can_cons_msgs : int;
  }

  (* One deterministic schedule: always execute the engine-first enabled
     event ((time, class, creation seq) order, like the event queue). On a
     nice configuration this must coincide with [Engine.run] on
     [Scenario.nice] — the cross-validation tests pin that. *)
  let canonical_run ~n ~f ~u () =
    let cfg =
      {
        n;
        f;
        u;
        votes = Array.make n Vote.yes;
        klass = { allow_crashes = false; allow_late = false };
        budgets = Mc_limits.default_budgets ~u;
        fp = Mc_limits.default_fp;
        pool = true;
        symmetry = false;
        open_depth = default_swarm_open_depth;
      }
    in
    let ctx = create_ctx cfg in
    let trail = ref [] in
    ignore (exec_step ctx S_proposals);
    ignore (complete ctx trail);
    let decs = M.decisions ctx.m in
    {
      can_decisions =
        List.filter_map
          (fun i ->
            Option.map (fun (_, d) -> (Pid.of_index i, d)) decs.(i))
          (List.init n Fun.id);
      can_commit_msgs =
        List.length
          (Trace.network_sends ~layer:Trace.Commit_layer (M.trace ctx.m));
      can_cons_msgs =
        List.length
          (Trace.network_sends ~layer:Trace.Consensus_layer (M.trace ctx.m));
    }
end
