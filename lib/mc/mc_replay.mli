(** Concrete, engine-replayable counterexamples.

    The explorer reduces a violating schedule to this protocol-agnostic
    record: a crash list, a per-message delay assignment and the vote
    vector. {!scenario} turns it into an ordinary {!Scenario.t} whose
    adversarial network realizes exactly the explored interleaving, so the
    engine — not the checker — reproduces the violation, and the usual
    tooling ([Trace_export], [Check], [Classify]) applies to it. *)

type t = {
  protocol : string;
  n : int;
  f : int;
  u : Sim_time.t;
  votes : Vote.t array;
  crashes : (Pid.t * Sim_time.t) list;  (** [Scenario.Before] instants *)
  delays : ((int * int) * Sim_time.t) list;
      (** delay of the [k]-th network send of process index [i], keyed
          [(i, k)]; unlisted messages default to [u] *)
  max_time : Sim_time.t;
  schedule : string list;  (** the shrunk schedule, human-readable *)
  faithful : bool;
      (** whether tick assignment satisfied every ordering constraint; a
          rare unfaithful replay is reported, not silently accepted *)
}

type property = Agreement | Validity | Termination

val property_name : property -> string

type violation = { property : property; detail : string; witness : t }

val scenario : t -> Scenario.t

val replay :
  ?consensus:Registry.consensus_impl -> t -> Report.t * Check.verdict

val verify :
  ?consensus:Registry.consensus_impl -> t -> property:property -> bool
(** Replay on the engine and check that the claimed property is indeed
    violated there. *)

val pp : Format.formatter -> t -> unit
