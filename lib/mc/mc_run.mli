(** Front end of the [ac_mc] model checker: registry dispatch, execution
    classes, and engine-verified outcomes. *)

type exec_class =
  | Nice  (** synchronous, failure-free, all votes 1 *)
  | Crash  (** up to [f] crash injections, synchronous network *)
  | Network  (** arbitrarily late deliveries, no crashes *)
  | All  (** both failure kinds *)

val class_name : exec_class -> string
val class_of_string : string -> exec_class option

val default_vote_sets : n:int -> exec_class -> Vote.t array list
(** All-1, plus (outside the nice class) a vector with one 0 vote. *)

type outcome = {
  protocol : string;
  klass : exec_class;
  n : int;
  f : int;
  counters : Mc_limits.counters;
  visited : Mc_limits.visited_mode;
      (** dedup scope the counters were produced under (see
          {!Mc_limits.visited_mode} for the determinism contract) *)
  naive : float option;
      (** schedules a naive enumerator (no sleep sets, no dedup) walks *)
  naive_partial : bool;
  violation : Mc_replay.violation option;  (** shrunk and concretized *)
  replay_verified : bool option;
      (** [Some true] iff the engine reproduces the violation from the
          concrete witness scenario; [None] when the space is clean *)
  shard_load : (int * int) option;
      (** (occupied, buckets) of the fullest {!Mc_shards} table, when a
          shared-visited or swarm mode ran — the occupancy line of
          [mc --stats]; [None] in the default per-item mode *)
}

val clean : outcome -> bool

val run :
  ?consensus:Registry.consensus_impl ->
  ?u:Sim_time.t ->
  ?vote_sets:Vote.t array list ->
  ?budgets:Mc_limits.budgets ->
  ?fp:Mc_limits.fp_backend ->
  ?pool:bool ->
  ?symmetry:bool ->
  ?swarm_open_depth:int ->
  ?jobs:int ->
  ?naive:bool ->
  ?visited:Mc_limits.visited_mode ->
  ?stealing:bool ->
  ?swarm:bool ->
  protocol:string ->
  n:int ->
  f:int ->
  klass:exec_class ->
  unit ->
  outcome
(** Explore every schedule of the bounded configuration (one exploration
    per vote vector, parallel over domains). In the default
    [~visited:Per_item] mode the counters are deterministic and
    independent of [jobs] (and of [stealing], which only changes how
    frontier items land on domains); [~visited:Shared] dedups states
    globally per vote-set group — fewer states explored, but counters
    become jobs-dependent. [~stealing:false] falls back to the shared
    atomic cursor.

    [~swarm:true] replaces the frontier decomposition with independent
    randomized-order DFS walks, one per domain, coupled only through the
    shared visited table (implied; no frontier handoff or steal
    traffic). Walk orders are seeded deterministically from [Rng];
    counters remain jobs- and timing-dependent like any shared-table
    mode, verdicts are unaffected. [~swarm:false] never swarms; omitting
    the argument picks swarm automatically when [~visited:Shared] runs
    at four or more effective jobs (the scale where the walks win — see
    DESIGN.md).

    [~pool] (default [true]) recycles snapshot records across DFS nodes
    (strictly per-domain; see {!Machine.S.release}); it changes
    allocation only, never verdicts, counters or output bytes.

    [~symmetry] (default {!Mc_limits.default_symmetry}) canonicalizes
    fingerprints under the protocol's declared process-permutation group
    ({!Proto.PROTOCOL.symmetry}, vote-refined), prunes permutation-twin
    crash candidates and orbit-duplicate frontier items. Verdicts are
    unaffected (a violation below a pruned branch has a permutation
    image below a kept one); the counters shrink by the orbit collapse.
    Forced off under [~fp:Fp_marshal], whose raw-byte hashing cannot
    honor a renaming.

    [~swarm_open_depth] overrides how many tree levels a swarm walker
    explores through already-claimed states (default
    [Mc_explore.Make().default_swarm_open_depth = 6]; clamped to
    [0..32]). Only swarm-mode walkers read it.
    @raise Not_found on unknown protocol names. *)

type canonical = {
  decisions : (Pid.t * Vote.decision) list;
  commit_msgs : int;  (** commit-layer network sends *)
  cons_msgs : int;  (** consensus-layer network sends *)
}

val canonical :
  ?consensus:Registry.consensus_impl ->
  protocol:string ->
  n:int ->
  f:int ->
  ?u:Sim_time.t ->
  unit ->
  canonical
(** The single engine-ordered synchronous schedule, for cross-validation
    against [Engine.run] on [Scenario.nice]. *)

val fingerprint_sampler :
  ?consensus:Registry.consensus_impl ->
  ?u:Sim_time.t ->
  ?prefix_steps:int ->
  ?symmetry:bool ->
  protocol:string ->
  n:int ->
  f:int ->
  klass:exec_class ->
  unit ->
  Mc_limits.fp_backend -> int -> unit
(** [fingerprint_sampler ... ()] prepares one checker context advanced
    [prefix_steps] transitions into the canonical schedule and returns
    [probe]: [probe backend calls] recomputes the context's state
    fingerprint [calls] times with the chosen backend. For isolating the
    per-call fingerprint cost from the rest of the exploration loop
    (context preparation happens before [probe] is returned, so callers
    time only the fingerprint work). With [~symmetry:true] the hashed
    backend times the full canonicalization — every group renaming plus
    the orbit minimum — so the delta against the default sampler is the
    per-call cost of symmetry reduction. *)

val verdict_string : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit
