(* A visited table sharded by fingerprint-digest range, for the
   [--shared-visited] exploration mode: all frontier items of one
   vote-set group dedup against the same table, so a state reachable
   from several schedule prefixes is explored once globally instead of
   once per prefix.

   Sharding keys on the top bits of the digest's first lane. The lane is
   an FNV-1a product (see {!Fingerprint}), so its high bits are as mixed
   as its low bits and the shards load-balance; owning a contiguous
   digest range per shard means two domains only contend when they reach
   states whose digests collide in the top [bits] bits. Each shard is a
   plain [Hashtbl] under its own mutex — at 2^6 shards the critical
   sections are a handful of word reads, so plain locks beat a lock-free
   scheme in simplicity without measurable contention at the domain
   counts we run. *)

type 'a t = {
  shards : (Fingerprint.digest, 'a) Hashtbl.t array;
  locks : Mutex.t array;
  mask : int;
  shift : int;
  total : int Atomic.t;
}

let default_bits = 6

let create ?(bits = default_bits) ~capacity () =
  if bits < 0 || bits > 16 then invalid_arg "Mc_shards.create: bits";
  let n = 1 lsl bits in
  let per_shard = max 64 (capacity / n) in
  {
    shards = Array.init n (fun _ -> Hashtbl.create per_shard);
    locks = Array.init n (fun _ -> Mutex.create ());
    mask = n - 1;
    (* digest lanes carry 63 significant bits (see Fingerprint) *)
    shift = 63 - bits;
    total = Atomic.make 0;
  }

let shard_of t (d : Fingerprint.digest) = (d.d1 lsr t.shift) land t.mask

let find_opt t key =
  let i = shard_of t key in
  Mutex.lock t.locks.(i);
  let r = Hashtbl.find_opt t.shards.(i) key in
  Mutex.unlock t.locks.(i);
  r

(* [insert] returns whether the key was fresh; an existing binding is
   overwritten either way (the DPOR caller narrows the stored sleep set
   on revisit — losing a racing narrowing is sound, merely conservative:
   a larger stored sleep set only makes a future cut less likely). *)
let insert t key v =
  let i = shard_of t key in
  Mutex.lock t.locks.(i);
  let fresh = not (Hashtbl.mem t.shards.(i) key) in
  Hashtbl.replace t.shards.(i) key v;
  Mutex.unlock t.locks.(i);
  if fresh then Atomic.incr t.total;
  fresh

let size t = Atomic.get t.total
