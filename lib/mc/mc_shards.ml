(* A visited table shared across domains, for the [--shared-visited] and
   [--swarm] exploration modes: all workers of one vote-set group dedup
   against the same table, so a state reachable from several schedule
   prefixes (or several swarm walks) is explored once globally.

   The table is a fixed index space of lock-free buckets, physically
   laid out as lazily allocated segments. Each bucket is an [Atomic.t]
   holding an immutable cons-list of nodes; insertion CAS-publishes a
   new head, so a reader either sees the fully initialised node or the
   previous head — never a partially built one (Atomic operations are
   sequentially consistent publication points in the OCaml 5 memory
   model). There are no mutexes anywhere: the dedup hot path costs one
   atomic load plus a short scan, and racing inserts of different keys
   that collide in a bucket only retry the CAS.

   Bucket indices key on the top bits of the digest's first lane. The
   lane is an FNV-1a product (see {!Fingerprint}), so its high bits are
   as mixed as its low bits; with the bucket count sized from the
   caller's capacity hint the expected chain length stays near one.

   Earlier revisions allocated the whole bucket array eagerly and capped
   it at [2^16] — cheap to create, but at the n=5 state budgets (millions
   of states per vote-set group) every bucket carried a 15+-node chain
   and the dedup probe degraded to a linked-list walk. Here the index
   space is sized from [capacity / 8] up to [2^21] buckets, but memory
   is committed one segment (up to [2^12] buckets) at a time, on first
   touch: creation allocates only the segment-pointer spine (at most 512
   words), an exploration that stays far below its budget ceiling only
   materialises the segments its digests actually hit, and a run that
   does approach the ceiling gets chains of ~8 instead of hundreds.
   Segments are published with a CAS on the spine slot, so a losing
   allocator simply adopts the winner's segment — the index space itself
   never moves, which is what keeps the buckets lock-free (no resize
   epoch, no migration).

   [find_or_insert] is a single probe, and the size counter is bumped
   between the winning CAS and the insert's return: by the time any
   caller learns its insert was fresh, the insert is counted, and the
   counter is never decremented, so observed sizes are monotone. *)

type 'a node = {
  nk : Fingerprint.digest;
  mutable nv : 'a;
      (* value overwrites are plain racy writes: the DPOR caller narrows
         the stored sleep set on revisit, and losing a racing narrowing
         is sound, merely conservative (see [update]) *)
  next : 'a node option;  (* immutable: bucket lists are copy-on-cons *)
}

type 'a t = {
  segments : 'a node option Atomic.t array option Atomic.t array;
      (* the spine: slot [s] holds segment [s] once some domain touched
         a bucket inside it *)
  seg_bits : int;  (* buckets per segment = [2^seg_bits] *)
  seg_mask : int;
  mask : int;  (* total index space - 1 *)
  shift : int;
  total : int Atomic.t;
}

let default_bits = 6

(* Index space: at least [2^bits], grown toward an eighth of the
   capacity hint (chains of ~8 at a full budget are still a short scan
   over immutable cons cells), capped at [2^21] — two million buckets
   cover the n=5 vote-set-group budgets with short chains, and the lazy
   segments mean the cap costs nothing until the digests arrive. *)
let max_bucket_bits = 21

(* Buckets per segment: 2^12 atomics (~32 KiB per segment) keeps the
   first-touch allocation small while bounding the spine length. *)
let segment_bits = 12

let create ?(bits = default_bits) ~capacity () =
  if bits < 0 || bits > max_bucket_bits then
    invalid_arg "Mc_shards.create: bits";
  let want =
    max (1 lsl bits) (min ((capacity + 7) / 8) (1 lsl max_bucket_bits))
  in
  let b = ref bits in
  while 1 lsl !b < want do
    incr b
  done;
  let n = 1 lsl !b in
  let sb = min segment_bits !b in
  {
    segments = Array.init (n lsr sb) (fun _ -> Atomic.make None);
    seg_bits = sb;
    seg_mask = (1 lsl sb) - 1;
    mask = n - 1;
    (* digest lanes carry 63 significant bits (see Fingerprint) *)
    shift = 63 - !b;
    total = Atomic.make 0;
  }

let buckets t = t.mask + 1

let segments_allocated t =
  Array.fold_left
    (fun acc s -> if Atomic.get s = None then acc else acc + 1)
    0 t.segments

(* The bucket cell behind a global index, materialising its segment on
   first touch. The fresh segment is fully initialised before the CAS
   publishes it, and the CAS is an SC publication point, so any domain
   that reads [Some seg] sees initialised atomics. A losing allocator
   drops its array and adopts the winner's — the transient garbage is
   one short-lived 2^12 array per race, and races happen at most once
   per segment lifetime. *)
let cell t idx =
  let slot = t.segments.(idx lsr t.seg_bits) in
  match Atomic.get slot with
  | Some seg -> seg.(idx land t.seg_mask)
  | None -> (
      let fresh = Array.init (t.seg_mask + 1) (fun _ -> Atomic.make None) in
      if Atomic.compare_and_set slot None (Some fresh) then
        fresh.(idx land t.seg_mask)
      else
        match Atomic.get slot with
        | Some seg -> seg.(idx land t.seg_mask)
        | None -> assert false (* spine slots are never cleared *))

let bucket_of t (d : Fingerprint.digest) = (d.d1 lsr t.shift) land t.mask

let rec scan key = function
  | None -> None
  | Some n -> if Fingerprint.equal n.nk key then Some n else scan key n.next

let find_opt t key =
  match scan key (Atomic.get (cell t (bucket_of t key))) with
  | Some n -> Some n.nv
  | None -> None

let rec find_or_insert t key v =
  let cell = cell t (bucket_of t key) in
  let head = Atomic.get cell in
  match scan key head with
  | Some n -> Some n.nv
  | None ->
      if
        Atomic.compare_and_set cell head
          (Some { nk = key; nv = v; next = head })
      then begin
        (* counted before the caller learns the insert was fresh: a
           [size] read ordered after this call includes the key *)
        Atomic.incr t.total;
        None
      end
      else
        (* another domain republished this bucket (its CAS succeeded, so
           the retry is lock-free); rescan — our key may be in now *)
        find_or_insert t key v

let insert t key v =
  match find_or_insert t key v with
  | None -> true
  | Some _ ->
      (* existing binding: overwrite in place, as documented *)
      (match scan key (Atomic.get (cell t (bucket_of t key))) with
      | Some n -> n.nv <- v
      | None -> assert false (* nodes are never removed *));
      false

let update t key v =
  match scan key (Atomic.get (cell t (bucket_of t key))) with
  | Some n -> n.nv <- v
  | None -> ignore (find_or_insert t key v)

let size t = Atomic.get t.total
