(* A visited table shared across domains, for the [--shared-visited] and
   [--swarm] exploration modes: all workers of one vote-set group dedup
   against the same table, so a state reachable from several schedule
   prefixes (or several swarm walks) is explored once globally.

   The table is a fixed array of lock-free buckets. Each bucket is an
   [Atomic.t] holding an immutable cons-list of nodes; insertion CAS-
   publishes a new head, so a reader either sees the fully initialised
   node or the previous head — never a partially built one (Atomic
   operations are sequentially consistent publication points in the
   OCaml 5 memory model). There are no mutexes anywhere: the dedup hot
   path costs one atomic load plus a short scan, and racing inserts of
   different keys that collide in a bucket only retry the CAS.

   Bucket indices key on the top bits of the digest's first lane. The
   lane is an FNV-1a product (see {!Fingerprint}), so its high bits are
   as mixed as its low bits; with the bucket count sized from the
   caller's capacity hint the expected chain length stays near one.

   Earlier revisions guarded 2^6 shard hashtables with per-shard mutexes
   and bumped a separate [Atomic] counter *after* releasing the shard
   lock — so the dedup path paid two lock acquisitions per state
   ([find_opt] then [insert]) and a concurrent [size] read could
   transiently under-report a key that [find_opt] already returned.
   Here [find_or_insert] is a single probe, and the counter is bumped
   between the winning CAS and the insert's return: by the time any
   caller learns its insert was fresh, the insert is counted, and the
   counter is never decremented, so observed sizes are monotone. *)

type 'a node = {
  nk : Fingerprint.digest;
  mutable nv : 'a;
      (* value overwrites are plain racy writes: the DPOR caller narrows
         the stored sleep set on revisit, and losing a racing narrowing
         is sound, merely conservative (see [update]) *)
  next : 'a node option;  (* immutable: bucket lists are copy-on-cons *)
}

type 'a t = {
  buckets : 'a node option Atomic.t array;
  mask : int;
  shift : int;
  total : int Atomic.t;
}

let default_bits = 6

(* Bucket count: at least [2^bits], grown toward an eighth of the
   capacity hint (chains of ~8 at a full budget are still a short scan
   over immutable cons cells), capped so a huge [--max-states] budget
   cannot demand a multi-megabyte empty array up front — table creation
   sits on the per-vote-set setup path, and a typical exploration stays
   far below its budget ceiling. *)
let max_bucket_bits = 16

let create ?(bits = default_bits) ~capacity () =
  if bits < 0 || bits > 16 then invalid_arg "Mc_shards.create: bits";
  let want =
    max (1 lsl bits) (min ((capacity + 7) / 8) (1 lsl max_bucket_bits))
  in
  let b = ref bits in
  while 1 lsl !b < want do
    incr b
  done;
  let n = 1 lsl !b in
  {
    buckets = Array.init n (fun _ -> Atomic.make None);
    mask = n - 1;
    (* digest lanes carry 63 significant bits (see Fingerprint) *)
    shift = 63 - !b;
    total = Atomic.make 0;
  }

let bucket_of t (d : Fingerprint.digest) = (d.d1 lsr t.shift) land t.mask

let rec scan key = function
  | None -> None
  | Some n -> if Fingerprint.equal n.nk key then Some n else scan key n.next

let find_opt t key =
  match scan key (Atomic.get t.buckets.(bucket_of t key)) with
  | Some n -> Some n.nv
  | None -> None

let rec find_or_insert t key v =
  let cell = t.buckets.(bucket_of t key) in
  let head = Atomic.get cell in
  match scan key head with
  | Some n -> Some n.nv
  | None ->
      if Atomic.compare_and_set cell head (Some { nk = key; nv = v; next = head })
      then begin
        (* counted before the caller learns the insert was fresh: a
           [size] read ordered after this call includes the key *)
        Atomic.incr t.total;
        None
      end
      else
        (* another domain republished this bucket (its CAS succeeded, so
           the retry is lock-free); rescan — our key may be in now *)
        find_or_insert t key v

let insert t key v =
  match find_or_insert t key v with
  | None -> true
  | Some _ ->
      (* existing binding: overwrite in place, as documented *)
      (match scan key (Atomic.get t.buckets.(bucket_of t key)) with
      | Some n -> n.nv <- v
      | None -> assert false (* nodes are never removed *));
      false

let update t key v =
  match scan key (Atomic.get t.buckets.(bucket_of t key)) with
  | Some n -> n.nv <- v
  | None -> ignore (find_or_insert t key v)

let size t = Atomic.get t.total
