type budgets = {
  max_depth : int;
  max_states : int;
  horizon : Sim_time.t;
  max_late : int;
}

let default_budgets ~u =
  { max_depth = 10_000; max_states = 400_000; horizon = 12 * u; max_late = 4 }

type fp_backend = Fp_hashed | Fp_marshal

let default_fp = Fp_hashed

let fp_backend_of_string = function
  | "hashed" -> Some Fp_hashed
  | "marshal" -> Some Fp_marshal
  | _ -> None

let fp_backend_to_string = function
  | Fp_hashed -> "hashed"
  | Fp_marshal -> "marshal"

(* Symmetry canonicalization is on by default for the hashed backend;
   the marshal backend cannot honor a renaming (it hashes raw bytes in
   which pids escape), so callers force it off there. *)
let default_symmetry = true

type visited_mode = Per_item | Shared

let default_visited = Per_item

let visited_mode_of_string = function
  | "per-item" -> Some Per_item
  | "shared" -> Some Shared
  | _ -> None

let visited_mode_to_string = function
  | Per_item -> "per-item"
  | Shared -> "shared"

type counters = {
  mutable states : int;
  mutable transitions : int;
  mutable schedules : int;
  mutable terminals : int;
  mutable dedup_hits : int;
  mutable sleep_skips : int;
  mutable horizon_cuts : int;
  mutable depth_cuts : int;
  mutable budget_hit : bool;
  mutable peak_visited : int;
  mutable canon_calls : int;
  mutable orbit_hits : int;
  mutable twin_skips : int;
}

let fresh_counters () =
  {
    states = 0;
    transitions = 0;
    schedules = 0;
    terminals = 0;
    dedup_hits = 0;
    sleep_skips = 0;
    horizon_cuts = 0;
    depth_cuts = 0;
    budget_hit = false;
    peak_visited = 0;
    canon_calls = 0;
    orbit_hits = 0;
    twin_skips = 0;
  }

(* Counters from independent frontier subtrees add up: schedules partition
   exactly by prefix; states/transitions are per-subtree sums (a state
   reached from two frontier items is counted in both, since each item
   explores with its own visited table for determinism across [--jobs]). *)
let add_counters acc c =
  acc.states <- acc.states + c.states;
  acc.transitions <- acc.transitions + c.transitions;
  acc.schedules <- acc.schedules + c.schedules;
  acc.terminals <- acc.terminals + c.terminals;
  acc.dedup_hits <- acc.dedup_hits + c.dedup_hits;
  acc.sleep_skips <- acc.sleep_skips + c.sleep_skips;
  acc.horizon_cuts <- acc.horizon_cuts + c.horizon_cuts;
  acc.depth_cuts <- acc.depth_cuts + c.depth_cuts;
  acc.budget_hit <- acc.budget_hit || c.budget_hit;
  acc.peak_visited <- max acc.peak_visited c.peak_visited;
  acc.canon_calls <- acc.canon_calls + c.canon_calls;
  acc.orbit_hits <- acc.orbit_hits + c.orbit_hits;
  acc.twin_skips <- acc.twin_skips + c.twin_skips

let exhausted c = not (c.budget_hit || c.depth_cuts > 0)
(* Horizon cuts do not forfeit exhaustiveness: the horizon is part of the
   bound ("every schedule in which no timer fires after H"), whereas a
   state/depth budget truncates schedules inside the bound. *)

(* The symmetry suffix is appended only when canonicalization actually
   ran: symmetry-off (and trivial-group) runs print byte-identically to
   the historical format, which the mctable neutrality CI diff pins. *)
let pp_counters ppf c =
  Format.fprintf ppf
    "states %d, transitions %d, schedules %d (terminals %d, horizon-cut \
     %d), dedup hits %d, sleep skips %d%s%s"
    c.states c.transitions c.schedules c.terminals c.horizon_cuts
    c.dedup_hits c.sleep_skips
    (if c.canon_calls > 0 then
       Printf.sprintf ", orbit hits %d, twin skips %d" c.orbit_hits
         c.twin_skips
     else "")
    (if c.budget_hit then ", STATE BUDGET EXHAUSTED" else "")
