type exec_class = Nice | Crash | Network | All

let class_name = function
  | Nice -> "nice"
  | Crash -> "crash"
  | Network -> "network"
  | All -> "all"

let class_of_string = function
  | "nice" -> Some Nice
  | "crash" -> Some Crash
  | "network" -> Some Network
  | "all" -> Some All
  | _ -> None

let flags_of_class = function
  | Nice -> (false, false)
  | Crash -> (true, false)
  | Network -> (false, true)
  | All -> (true, true)

let default_vote_sets ~n klass =
  let all_yes = Array.make n Vote.yes in
  match klass with
  | Nice -> [ all_yes ]  (* a nice execution has every vote 1 *)
  | Crash | Network | All ->
      let one_no = Array.make n Vote.yes in
      one_no.(1) <- Vote.no;
      [ all_yes; one_no ]

type outcome = {
  protocol : string;
  klass : exec_class;
  n : int;
  f : int;
  counters : Mc_limits.counters;
  naive : float option;
  naive_partial : bool;
  violation : Mc_replay.violation option;
  replay_verified : bool option;
      (** engine confirmation of the counterexample; [None] when clean *)
}

let clean o = o.violation = None

let run ?(consensus = Registry.Paxos) ?u ?vote_sets ?budgets ?jobs
    ?(naive = false) ~protocol ~n ~f ~klass () =
  let reg = Registry.find_exn protocol in
  let module P = (val reg.Registry.proto) in
  let module C =
    (val Registry.consensus_module ~uses_consensus:reg.Registry.uses_consensus
           consensus)
  in
  let module E = Mc_explore.Make (P) (C) in
  let u = Option.value u ~default:Sim_time.default_u in
  let budgets = Option.value budgets ~default:(Mc_limits.default_budgets ~u) in
  let vote_sets =
    Option.value vote_sets ~default:(default_vote_sets ~n klass)
  in
  let allow_crashes, allow_late = flags_of_class klass in
  let r =
    E.run
      {
        E.n;
        f;
        u;
        vote_sets;
        klass = { E.allow_crashes; allow_late };
        budgets;
        jobs;
        naive;
      }
  in
  let replay_verified =
    Option.map
      (fun (v : Mc_replay.violation) ->
        Mc_replay.verify ~consensus v.Mc_replay.witness
          ~property:v.Mc_replay.property)
      r.E.violation
  in
  {
    protocol = reg.Registry.name;
    klass;
    n;
    f;
    counters = r.E.counters;
    naive = r.E.naive;
    naive_partial = r.E.naive_partial;
    violation = r.E.violation;
    replay_verified;
  }

type canonical = {
  decisions : (Pid.t * Vote.decision) list;
  commit_msgs : int;
  cons_msgs : int;
}

let canonical ?(consensus = Registry.Paxos) ~protocol ~n ~f ?u () =
  let reg = Registry.find_exn protocol in
  let module P = (val reg.Registry.proto) in
  let module C =
    (val Registry.consensus_module ~uses_consensus:reg.Registry.uses_consensus
           consensus)
  in
  let module E = Mc_explore.Make (P) (C) in
  let u = Option.value u ~default:Sim_time.default_u in
  let c = E.canonical_run ~n ~f ~u () in
  {
    decisions = c.E.can_decisions;
    commit_msgs = c.E.can_commit_msgs;
    cons_msgs = c.E.can_cons_msgs;
  }

let verdict_string o =
  match o.violation with
  | None ->
      if Mc_limits.exhausted o.counters then "ok (exhausted)"
      else "ok (budget-truncated)"
  | Some v ->
      Printf.sprintf "VIOLATION: %s%s"
        (Mc_replay.property_name v.Mc_replay.property)
        (match o.replay_verified with
        | Some true -> " (replay-verified)"
        | Some false -> " (REPLAY MISMATCH)"
        | None -> "")

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%s, class %s, n=%d f=%d: %s@,%a" o.protocol
    (class_name o.klass) o.n o.f (verdict_string o) Mc_limits.pp_counters
    o.counters;
  (match o.naive with
  | Some c ->
      Format.fprintf ppf "@,naive interleavings %s%.0f (%.1fx pruned)"
        (if o.naive_partial then ">= " else "")
        c
        (c /. float_of_int (max 1 o.counters.Mc_limits.schedules))
  | None -> ());
  (match o.violation with
  | Some v ->
      Format.fprintf ppf "@,%s@,%a" v.Mc_replay.detail Mc_replay.pp
        v.Mc_replay.witness
  | None -> ());
  Format.fprintf ppf "@]"
