type exec_class = Nice | Crash | Network | All

let class_name = function
  | Nice -> "nice"
  | Crash -> "crash"
  | Network -> "network"
  | All -> "all"

let class_of_string = function
  | "nice" -> Some Nice
  | "crash" -> Some Crash
  | "network" -> Some Network
  | "all" -> Some All
  | _ -> None

let flags_of_class = function
  | Nice -> (false, false)
  | Crash -> (true, false)
  | Network -> (false, true)
  | All -> (true, true)

let default_vote_sets ~n klass =
  let all_yes = Array.make n Vote.yes in
  match klass with
  | Nice -> [ all_yes ]  (* a nice execution has every vote 1 *)
  | Crash | Network | All ->
      let one_no = Array.make n Vote.yes in
      one_no.(1) <- Vote.no;
      [ all_yes; one_no ]

type outcome = {
  protocol : string;
  klass : exec_class;
  n : int;
  f : int;
  counters : Mc_limits.counters;
  visited : Mc_limits.visited_mode;
  naive : float option;
  naive_partial : bool;
  violation : Mc_replay.violation option;
  replay_verified : bool option;
      (** engine confirmation of the counterexample; [None] when clean *)
  shard_load : (int * int) option;
      (** (occupied, buckets) of the fullest shared visited table, when
          one ran; [None] in per-item mode *)
}

let clean o = o.violation = None

let run ?(consensus = Registry.Paxos) ?u ?vote_sets ?budgets
    ?(fp = Mc_limits.default_fp) ?(pool = true) ?symmetry ?swarm_open_depth
    ?jobs ?(naive = false) ?(visited = Mc_limits.default_visited)
    ?(stealing = true) ?swarm ~protocol ~n ~f ~klass () =
  let reg = Registry.find_exn protocol in
  let module P = (val reg.Registry.proto) in
  let module C =
    (val Registry.consensus_module ~uses_consensus:reg.Registry.uses_consensus
           consensus)
  in
  let module E = Mc_explore.Make (P) (C) in
  let u = Option.value u ~default:Sim_time.default_u in
  let budgets = Option.value budgets ~default:(Mc_limits.default_budgets ~u) in
  let vote_sets =
    Option.value vote_sets ~default:(default_vote_sets ~n klass)
  in
  (* forced swarm dedups through the shared table whatever the caller's
     [?visited] said; reporting [Shared] keeps the counter caveat honest *)
  let visited = if swarm = Some true then Mc_limits.Shared else visited in
  (* symmetry canonicalization needs the renaming-aware hashed backend;
     under marshal it silently stays off rather than failing the run *)
  let symmetry =
    (match symmetry with
    | Some b -> b
    | None -> Mc_limits.default_symmetry)
    && fp = Mc_limits.Fp_hashed
  in
  let allow_crashes, allow_late = flags_of_class klass in
  let r =
    E.run
      {
        E.n;
        f;
        u;
        vote_sets;
        klass = { E.allow_crashes; allow_late };
        budgets;
        fp;
        pool;
        symmetry;
        swarm_open_depth;
        jobs;
        naive;
        visited;
        stealing;
        swarm;
      }
  in
  let replay_verified =
    Option.map
      (fun (v : Mc_replay.violation) ->
        Mc_replay.verify ~consensus v.Mc_replay.witness
          ~property:v.Mc_replay.property)
      r.E.violation
  in
  {
    protocol = reg.Registry.name;
    klass;
    n;
    f;
    counters = r.E.counters;
    visited;
    naive = r.E.naive;
    naive_partial = r.E.naive_partial;
    violation = r.E.violation;
    replay_verified;
    shard_load = r.E.shard_load;
  }

type canonical = {
  decisions : (Pid.t * Vote.decision) list;
  commit_msgs : int;
  cons_msgs : int;
}

let canonical ?(consensus = Registry.Paxos) ~protocol ~n ~f ?u () =
  let reg = Registry.find_exn protocol in
  let module P = (val reg.Registry.proto) in
  let module C =
    (val Registry.consensus_module ~uses_consensus:reg.Registry.uses_consensus
           consensus)
  in
  let module E = Mc_explore.Make (P) (C) in
  let u = Option.value u ~default:Sim_time.default_u in
  let c = E.canonical_run ~n ~f ~u () in
  {
    decisions = c.E.can_decisions;
    commit_msgs = c.E.can_commit_msgs;
    cons_msgs = c.E.can_cons_msgs;
  }

(* A fingerprint sampler: advance a context [prefix_steps] transitions
   along the engine-canonical order so it holds a representative
   mid-exploration state (live automata, in-flight messages, armed
   timers), then return a closure that recomputes its fingerprint with
   either backend. Benchmarks time the closure; context preparation
   stays outside the measured region. *)
let fingerprint_sampler ?(consensus = Registry.Paxos) ?u
    ?(prefix_steps = 6) ?(symmetry = false) ~protocol ~n ~f ~klass () =
  let reg = Registry.find_exn protocol in
  let module P = (val reg.Registry.proto) in
  let module C =
    (val Registry.consensus_module ~uses_consensus:reg.Registry.uses_consensus
           consensus)
  in
  let module E = Mc_explore.Make (P) (C) in
  let u = Option.value u ~default:Sim_time.default_u in
  let allow_crashes, allow_late = flags_of_class klass in
  let cfg =
    {
      E.n;
      f;
      u;
      votes = Array.make n Vote.yes;
      klass = { E.allow_crashes; allow_late };
      budgets = Mc_limits.default_budgets ~u;
      fp = Mc_limits.default_fp;
      pool = true;
      symmetry;
      open_depth = E.default_swarm_open_depth;
    }
  in
  let ctx = E.create_ctx cfg in
  ignore (E.exec_step ctx E.S_proposals);
  (try
     for _ = 1 to prefix_steps do
       match E.enumerate ctx with
       | [] -> raise Exit
       | cand :: _ -> ignore (E.exec_step ctx cand)
     done
   with Exit -> ());
  fun backend calls ->
    match (backend : Mc_limits.fp_backend) with
    | Mc_limits.Fp_hashed ->
        (* [E.fingerprint] dispatches on the context: with [~symmetry]
           and a non-trivial group this times the full canonicalization
           (all renamings + orbit minimum), otherwise the plain single
           hash — the pair is the bench's canonicalization ns/call *)
        for _ = 1 to calls do
          ignore (E.fingerprint ctx)
        done
    | Mc_limits.Fp_marshal ->
        for _ = 1 to calls do
          ignore (E.fingerprint_marshal ctx)
        done

let verdict_string o =
  match o.violation with
  | None ->
      if Mc_limits.exhausted o.counters then "ok (exhausted)"
      else "ok (budget-truncated)"
  | Some v ->
      Printf.sprintf "VIOLATION: %s%s"
        (Mc_replay.property_name v.Mc_replay.property)
        (match o.replay_verified with
        | Some true -> " (replay-verified)"
        | Some false -> " (REPLAY MISMATCH)"
        | None -> "")

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v>%s, class %s, n=%d f=%d: %s@,%a" o.protocol
    (class_name o.klass) o.n o.f (verdict_string o) Mc_limits.pp_counters
    o.counters;
  (match o.visited with
  | Mc_limits.Shared ->
      Format.fprintf ppf
        "@,(shared visited table: states dedup globally; counters depend \
         on --jobs)"
  | Mc_limits.Per_item -> ());
  (match o.naive with
  | Some c ->
      Format.fprintf ppf "@,naive interleavings %s%.0f (%.1fx pruned)"
        (if o.naive_partial then ">= " else "")
        c
        (c /. float_of_int (max 1 o.counters.Mc_limits.schedules))
  | None -> ());
  (match o.violation with
  | Some v ->
      Format.fprintf ppf "@,%s@,%a" v.Mc_replay.detail Mc_replay.pp
        v.Mc_replay.witness
  | None -> ());
  Format.fprintf ppf "@]"
