type t = {
  protocol : string;
  n : int;
  f : int;
  u : Sim_time.t;
  votes : Vote.t array;
  crashes : (Pid.t * Sim_time.t) list;
  delays : ((int * int) * Sim_time.t) list;
  max_time : Sim_time.t;
  schedule : string list;
  faithful : bool;
}

type property = Agreement | Validity | Termination

let property_name = function
  | Agreement -> "agreement"
  | Validity -> "validity"
  | Termination -> "termination"

type violation = {
  property : property;
  detail : string;
  witness : t;
}

(* The witness network: per-message delays keyed by (sender, k-th network
   send of that sender), an ordering that is identical in the checker and
   in the engine because each process's own sends are totally ordered in
   both (the checker never permutes events of one process against
   themselves). The closure keys messages by counting the engine's calls,
   so it resets its counters when a fresh run starts (global seq 0) and
   must not be shared across concurrently-running engines. *)
let network_of t =
  if List.for_all (fun (_, d) -> Sim_time.equal d t.u) t.delays then
    Network.exact ~u:t.u
  else begin
    let counts = Array.make t.n 0 in
    Network.adversary ~name:"mc-witness" (fun info ->
        if info.Network.seq = 0 then Array.fill counts 0 t.n 0;
        let src = Pid.index info.Network.src in
        let k = counts.(src) in
        counts.(src) <- k + 1;
        match List.assoc_opt (src, k) t.delays with
        | Some d -> d
        | None -> t.u)
  end

let scenario t =
  Scenario.make ~u:t.u ~votes:(Array.copy t.votes)
    ~crashes:(List.map (fun (p, at) -> (p, Scenario.Before at)) t.crashes)
    ~network:(network_of t) ~max_time:t.max_time ~n:t.n ~f:t.f ()

let replay ?(consensus = Registry.Paxos) t =
  let reg = Registry.find_exn t.protocol in
  let report = reg.Registry.run ~consensus (scenario t) in
  (report, Check.run report)

(* Whether the engine reproduces the violated property on replay. *)
let verify ?consensus t ~property =
  let _, verdict = replay ?consensus t in
  match property with
  | Agreement -> not verdict.Check.agreement
  | Validity -> not (Check.validity verdict)
  | Termination -> not verdict.Check.termination

let pp ppf t =
  Format.fprintf ppf
    "@[<v>protocol %s, n=%d f=%d, votes [%s]%s@,schedule:@,%a@]" t.protocol
    t.n t.f
    (String.concat ";"
       (Array.to_list (Array.map (Format.asprintf "%a" Vote.pp) t.votes)))
    (if t.faithful then "" else " (replay ticks approximate)")
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut
       (fun ppf s -> Format.fprintf ppf "  %s" s))
    t.schedule
