(** A digest-range-sharded visited table for shared-dedup exploration.

    In [--shared-visited] mode every frontier item of one vote-set group
    dedups against the same table: a state reachable from several
    schedule prefixes is explored once globally instead of once per
    prefix. The table is split into [2^bits] shards, each owning a
    contiguous range of the digest space (keyed on the top bits of the
    first digest lane) and guarded by its own mutex, so concurrent
    domains only contend on top-bit collisions.

    The resulting counters are {e jobs-dependent}: which of two racing
    items gets to count a shared state as fresh depends on timing. The
    deterministic per-item tables remain the default; this table backs
    the explicitly opted-in shared mode (see DESIGN.md). *)

type 'a t

val create : ?bits:int -> capacity:int -> unit -> 'a t
(** [create ?bits ~capacity ()] makes a table of [2^bits] shards
    (default [2^6]), pre-sizing each for [capacity / 2^bits] entries.
    @raise Invalid_argument if [bits] is outside [0..16]. *)

val find_opt : 'a t -> Fingerprint.digest -> 'a option

val insert : 'a t -> Fingerprint.digest -> 'a -> bool
(** [insert t key v] binds [key] to [v] (replacing any existing binding)
    and returns whether [key] was fresh. Racing inserts of the same key
    serialize on the shard lock: exactly one caller sees [true]. *)

val size : 'a t -> int
(** Total distinct keys ever inserted, across all shards. *)
