(** A lock-free visited table shared across domains.

    In [--shared-visited] and [--swarm] modes every worker of one
    vote-set group dedups against the same table: a state reachable from
    several schedule prefixes (or several randomized swarm walks) is
    explored once globally. The table is an array of CAS-published
    bucket lists — no mutexes anywhere — so the dedup hot path is one
    atomic load plus a short chain scan, and concurrent inserts of
    distinct keys never serialize unless they collide in a bucket.

    The resulting counters are {e jobs-dependent}: which of two racing
    workers gets to count a shared state as fresh depends on timing. The
    deterministic per-item tables remain the default; this table backs
    the explicitly opted-in shared modes (see DESIGN.md).

    Size accounting is monotone and acknowledgment-consistent: the
    counter is bumped between the winning CAS and the insert's return,
    and never decremented — so once any caller has been told its insert
    was fresh, every subsequently ordered {!size} read includes it, and
    a sequence of [size] reads never decreases. *)

type 'a t

val create : ?bits:int -> capacity:int -> unit -> 'a t
(** [create ?bits ~capacity ()] makes a table of at least [2^bits]
    buckets (default [2^6]), grown toward [capacity / 8] buckets (capped
    at [2^21]) so chains stay short at the caller's anticipated
    occupancy. Bucket memory is committed lazily, one segment (up to
    [2^12] buckets, CAS-published on first touch) at a time: creation
    allocates only the segment-pointer spine, so a generous budget
    ceiling costs nothing until digests actually land in a segment —
    which is what lets the n=5 budgets size the index space honestly
    instead of degrading into long chains under a hard [2^16] cap. The
    index space is fixed for the table's lifetime (no resize epochs);
    chains absorb any overflow past the sizing heuristic.
    @raise Invalid_argument if [bits] is outside [0..21]. *)

val buckets : 'a t -> int
(** Size of the bucket index space (allocated lazily; see {!create}).
    [float (size t) /. float (buckets t)] is the load factor the
    [mc --stats] occupancy line reports. *)

val segments_allocated : 'a t -> int
(** How many segments have been materialised by actual insertions — the
    committed fraction of the index space. *)

val find_opt : 'a t -> Fingerprint.digest -> 'a option
(** Lock-free read: one atomic load plus a chain scan. *)

val find_or_insert : 'a t -> Fingerprint.digest -> 'a -> 'a option
(** [find_or_insert t key v] is the single-probe entry point of the
    dedup hot path: [None] means [key] was absent and is now bound to
    [v] by this caller (and already counted in {!size}); [Some prior]
    means the key was present with value [prior] and nothing changed.
    Exactly one of any set of racing inserters of [key] gets [None]. *)

val insert : 'a t -> Fingerprint.digest -> 'a -> bool
(** [insert t key v] binds [key] to [v] (overwriting any existing
    binding in place) and returns whether [key] was fresh. Exactly one
    of any set of racing inserters sees [true]. Value overwrites are
    racy by design: the DPOR caller only narrows stored sleep sets, and
    losing a racing narrowing is sound, merely conservative. *)

val update : 'a t -> Fingerprint.digest -> 'a -> unit
(** Overwrite the value of an existing binding (insert if absent). *)

val size : 'a t -> int
(** Total distinct keys ever inserted, across all buckets. Monotone
    under concurrency; includes every insert whose caller has already
    observed [find_or_insert = None] (or [insert = true]). *)
