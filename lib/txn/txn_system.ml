type decision = Committed | Aborted | Blocked

type outcome = {
  txn : Txn.t;
  decision : decision;
  votes : (Pid.t * Vote.t) list;
  report : Report.t;
  recovered : Pid.t list;
  atomic : bool;
}

type t = {
  n : int;
  f : int;
  runner : Registry.t;
  consensus : Registry.consensus_impl;
  seed : int;
  nodes : Kv_store.t array;
  mutable round : int;
  mutable rev_history : outcome list;
}

(* FNV-1a over the key: deterministic, placement-stable across runs. *)
let hash_key key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    key;
  !h

let create ?(consensus = Registry.Paxos) ?(seed = 42) ~n ~f ~protocol () =
  {
    n;
    f;
    runner = Registry.find_exn protocol;
    consensus;
    seed;
    nodes = Array.init n (fun _ -> Kv_store.create ());
    round = 0;
    rev_history = [];
  }

let placement_key ~n key = Pid.of_index (hash_key key mod n)
let placement t key = placement_key ~n:t.n key
let size t = t.n
let node_store t pid = t.nodes.(Pid.index pid)

let read t ~key =
  Kv_store.get (node_store t (placement t key)) ~key

let snapshot_reads t keys =
  List.map
    (fun key ->
      (key, Kv_store.version (node_store t (placement t key)) ~key))
    keys

(* The local legs of a transaction at one node. *)
let local_reads t pid (txn : Txn.t) =
  List.filter (fun (key, _) -> Pid.equal (placement t key) pid) txn.Txn.reads

let local_writes t pid (txn : Txn.t) =
  List.filter (fun (key, _) -> Pid.equal (placement t key) pid) txn.Txn.writes

(* Optimistic validation: every read leg must still be at the version the
   transaction observed. *)
let local_vote t pid txn =
  let store = node_store t pid in
  Vote.of_bool
    (List.for_all
       (fun (key, expected) -> Kv_store.version store ~key = expected)
       (local_reads t pid txn))

let check_atomicity t (txn : Txn.t) decision =
  let owners =
    List.sort_uniq Pid.compare
      (List.map (fun (key, _) -> placement t key) txn.Txn.writes)
  in
  let applied pid =
    List.for_all
      (fun (key, value) ->
        match Kv_store.get (node_store t pid) ~key with
        | Some (v, _) -> String.equal v value
        | None -> false)
      (local_writes t pid txn)
  in
  let still_staged pid =
    Kv_store.staged (node_store t pid) ~txn_id:txn.Txn.id <> None
  in
  match decision with
  | Committed -> List.for_all applied owners
  | Aborted -> List.for_all (fun pid -> not (still_staged pid)) owners
  | Blocked ->
      (* nothing installed; the staged writes must still be recoverable *)
      List.for_all still_staged owners

let submit ?(crashes = []) ?network t txn =
  t.round <- t.round + 1;
  (* write-ahead: stage before voting *)
  List.iter
    (fun pid ->
      let writes = local_writes t pid txn in
      if writes <> [] then
        Kv_store.stage (node_store t pid) ~txn_id:txn.Txn.id ~writes)
    (Pid.all ~n:t.n);
  let votes_list =
    List.map (fun pid -> (pid, local_vote t pid txn)) (Pid.all ~n:t.n)
  in
  let votes = Array.of_list (List.map snd votes_list) in
  let scenario =
    Scenario.make ~n:t.n ~f:t.f ~votes ~crashes ?network
      ~seed:(t.seed + t.round) ()
  in
  let report = t.runner.Registry.run ~consensus:t.consensus scenario in
  let decision =
    match Report.decided_values report with
    | [] -> Blocked
    | Vote.Commit :: _ -> Committed
    | Vote.Abort :: _ -> Aborted
  in
  (* each node honours its own decision; a node that crashed undecided
     recovers by adopting the outcome somebody reached *)
  let recovered = ref [] in
  List.iter
    (fun pid ->
      let store = node_store t pid in
      let finish = function
        | Vote.Commit -> ignore (Kv_store.apply store ~txn_id:txn.Txn.id)
        | Vote.Abort -> Kv_store.discard store ~txn_id:txn.Txn.id
      in
      match (Report.decision_of report pid, decision) with
      | Some (_, d), _ -> finish d
      | None, Committed ->
          recovered := pid :: !recovered;
          finish Vote.Commit
      | None, Aborted ->
          recovered := pid :: !recovered;
          finish Vote.Abort
      | None, Blocked -> () (* stays staged; nobody knows the outcome *))
    (Pid.all ~n:t.n);
  let outcome =
    {
      txn;
      decision;
      votes = votes_list;
      report;
      recovered = List.rev !recovered;
      atomic = check_atomicity t txn decision;
    }
  in
  t.rev_history <- outcome :: t.rev_history;
  outcome

let submit_batch ?crashes ?network t txns =
  (* all transactions validated against one snapshot: refresh their read
     versions to "now", then run the rounds in order — stale reads of the
     later conflicting ones produce abort votes *)
  let snapshots =
    List.map
      (fun (txn : Txn.t) ->
        { txn with Txn.reads = snapshot_reads t (List.map fst txn.Txn.reads) })
      txns
  in
  List.map (fun txn -> submit ?crashes ?network t txn) snapshots

let recover_blocked ?network t ~txn_id =
  (* the latest outcome for this id is the authoritative one: a resolved
     (re-submitted or already-recovered) transaction must not be re-run *)
  let latest =
    List.find_opt (fun o -> String.equal o.txn.Txn.id txn_id) t.rev_history
  in
  match latest with
  | Some ({ decision = Blocked; _ } as o) ->
      t.round <- t.round + 1;
      (* re-run the commit decision with the votes recorded when the
         transaction first ran — the coordinator is back and no crash is
         injected, so the protocol reaches a decision from those votes *)
      let votes = Array.of_list (List.map snd o.votes) in
      let scenario =
        Scenario.make ~n:t.n ~f:t.f ~votes ?network ~seed:(t.seed + t.round)
          ()
      in
      let report = t.runner.Registry.run ~consensus:t.consensus scenario in
      let decision =
        match Report.decided_values report with
        | [] -> Blocked
        | Vote.Commit :: _ -> Committed
        | Vote.Abort :: _ -> Aborted
      in
      let recovered = ref [] in
      (match decision with
      | Blocked -> () (* still undecided; the staged writes stay parked *)
      | _ ->
          List.iter
            (fun pid ->
              let store = node_store t pid in
              if Kv_store.staged store ~txn_id <> None then
                recovered := pid :: !recovered;
              match decision with
              | Committed -> ignore (Kv_store.apply store ~txn_id)
              | Aborted -> Kv_store.discard store ~txn_id
              | Blocked -> ())
            (Pid.all ~n:t.n));
      let outcome =
        {
          txn = o.txn;
          decision;
          votes = o.votes;
          report;
          recovered = List.rev !recovered;
          atomic = check_atomicity t o.txn decision;
        }
      in
      t.rev_history <- outcome :: t.rev_history;
      Some outcome
  | Some _ | None -> None

let history t = List.rev t.rev_history

let pp_decision ppf = function
  | Committed -> Format.pp_print_string ppf "committed"
  | Aborted -> Format.pp_print_string ppf "aborted"
  | Blocked -> Format.pp_print_string ppf "BLOCKED"

let pp_outcome ppf o =
  Format.fprintf ppf "@[<v2>%a -> %a%s@,votes: %s@]" Txn.pp o.txn pp_decision
    o.decision
    (if o.atomic then "" else "  ATOMICITY VIOLATED")
    (String.concat ", "
       (List.map
          (fun (pid, v) ->
            Printf.sprintf "%s:%d" (Pid.to_string pid) (Vote.to_int v))
          o.votes))
