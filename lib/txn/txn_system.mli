(** A miniature distributed transactional database built on the commit
    protocols — the system the paper's introduction motivates.

    [n] database nodes each own a partition of the keyspace (the
    {!placement} function) and a versioned {!Kv_store}. A transaction is
    processed as follows:

    + every node owning one of the transaction's write keys {e stages}
      the writes (the write-ahead step);
    + every node computes its vote: yes iff each of the transaction's
      reads on that node still has the version the transaction observed
      (optimistic validation — the Helios-style "vote abort on conflict");
    + the configured atomic commit protocol runs in the simulator, under
      any crash schedule or network model injected for this round;
    + each node applies or discards its staged writes according to its
      own decision; a node that crashed mid-protocol recovers afterwards
      by adopting any decision some process reached (its staged writes
      make this safe). If {e nobody} decided — 2PC with a dead
      coordinator — the transaction stays [`Blocked] and its writes stay
      staged, which is precisely the blocking the paper contrasts INBAC
      against.

    The module checks atomicity after every round: either every owner of
    a write key installed the transaction's writes, or none did. *)

type t

type decision = Committed | Aborted | Blocked

type outcome = {
  txn : Txn.t;
  decision : decision;
  votes : (Pid.t * Vote.t) list;
  report : Report.t;  (** the underlying protocol execution *)
  recovered : Pid.t list;  (** crashed nodes that adopted the decision *)
  atomic : bool;  (** the per-round atomicity check *)
}

val create :
  ?consensus:Registry.consensus_impl ->
  ?seed:int ->
  n:int ->
  f:int ->
  protocol:string ->
  unit ->
  t
(** Keys are placed by a deterministic hash unless overridden per call.
    @raise Not_found on an unknown protocol name. *)

val placement : t -> string -> Pid.t
(** The node owning a key. *)

val placement_key : n:int -> string -> Pid.t
(** The placement function itself (deterministic FNV-1a hash mod [n]),
    usable without a [t] — the multi-shot commit service shards by the
    same function so both layers agree on key ownership. *)

val size : t -> int
(** The number of database nodes [n]. *)

val node_store : t -> Pid.t -> Kv_store.t
(** Direct read access to a node's store (for inspection and tests). *)

val read : t -> key:string -> (Kv_store.value * int) option
(** Read through the placement: current value and version of [key]. *)

val snapshot_reads : t -> string list -> (string * int) list
(** Capture the current versions of the given keys — what a transaction's
    execution phase would have observed. *)

val submit :
  ?crashes:(Pid.t * Scenario.crash) list ->
  ?network:Network.t ->
  t ->
  Txn.t ->
  outcome
(** Run one commit round for the transaction. *)

val submit_batch :
  ?crashes:(Pid.t * Scenario.crash) list ->
  ?network:Network.t ->
  t ->
  Txn.t list ->
  outcome list
(** Validate every transaction against the {e same} snapshot (as if they
    executed concurrently), then run their commit rounds in order: the
    later conflicting ones abort through stale-version votes. [?crashes]
    and [?network] apply to every round of the batch. *)

val recover_blocked :
  ?network:Network.t -> t -> txn_id:string -> outcome option
(** Resolve a transaction whose latest outcome is [Blocked] (2PC with a
    dead coordinator): re-run the commit decision with the votes recorded
    when the transaction first ran, this time crash-free — the
    coordinator is back. On a decision, every node applies or discards
    its staged writes ([recovered] lists the nodes whose staging
    drained), and the resolving outcome is appended to {!history}. [None]
    when no transaction with this id is blocked. *)

val history : t -> outcome list
(** All outcomes, oldest first. *)

val pp_outcome : Format.formatter -> outcome -> unit
