type spec = {
  batches : int;
  batch_size : int;
  keys : int;
  hot_keys : int;
  hot_fraction : float;
  reads_per_txn : int;
  writes_per_txn : int;
  crash_probability : float;
  seed : int;
}

let default =
  {
    batches = 20;
    batch_size = 4;
    keys = 64;
    hot_keys = 4;
    hot_fraction = 0.5;
    reads_per_txn = 2;
    writes_per_txn = 2;
    crash_probability = 0.0;
    seed = 7;
  }

type stats = {
  transactions : int;
  committed : int;
  aborted : int;
  blocked : int;
  abort_rate : float;
  total_messages : int;
  messages_per_commit : float;
  mean_commit_delays : float;
  p50_commit_delays : float;
  p95_commit_delays : float;
  p99_commit_delays : float;
  atomicity_ok : bool;
}

let pick_key ~keys ~hot_keys ~hot_fraction rng =
  if hot_keys > 0 && Rng.float rng < hot_fraction then
    Printf.sprintf "k%d" (Rng.int rng ~bound:hot_keys)
  else
    Printf.sprintf "k%d" (hot_keys + Rng.int rng ~bound:(max 1 (keys - hot_keys)))

let distinct_keys ~keys ~hot_keys ~hot_fraction ~count rng =
  let rec go count acc =
    if count = 0 then acc
    else begin
      let key = pick_key ~keys ~hot_keys ~hot_fraction rng in
      if List.mem key acc then go count acc else go (count - 1) (key :: acc)
    end
  in
  go count []

let generate_txn spec rng ~id =
  let touched =
    distinct_keys ~keys:spec.keys ~hot_keys:spec.hot_keys
      ~hot_fraction:spec.hot_fraction
      ~count:(spec.reads_per_txn + spec.writes_per_txn) rng
  in
  let rec split k = function
    | rest when k = 0 -> ([], rest)
    | [] -> ([], [])
    | x :: rest ->
        let reads, writes = split (k - 1) rest in
        (x :: reads, writes)
  in
  let read_keys, write_keys = split spec.reads_per_txn touched in
  Txn.make ~id
    ~reads:(List.map (fun k -> (k, 0)) read_keys)
    ~writes:
      (List.map
         (fun k -> (k, Printf.sprintf "%s@%s" id k))
         write_keys)
    ()

let run db spec =
  let rng = Rng.create spec.seed in
  let committed = ref 0 and aborted = ref 0 and blocked = ref 0 in
  let total_messages = ref 0 in
  let commit_delays = Histogram.create () in
  let atomicity_ok = ref true in
  for b = 0 to spec.batches - 1 do
    let txns =
      List.init spec.batch_size (fun i ->
          generate_txn spec rng ~id:(Printf.sprintf "b%d-t%d" b i))
    in
    let crashes =
      if Rng.float rng < spec.crash_probability then
        [
          ( Pid.of_index (Rng.int rng ~bound:(Txn_system.size db)),
            Scenario.Before (Rng.int rng ~bound:(3 * Sim_time.default_u)) );
        ]
      else []
    in
    let outcomes = Txn_system.submit_batch ~crashes db txns in
    List.iter
      (fun (o : Txn_system.outcome) ->
        if not o.Txn_system.atomic then atomicity_ok := false;
        total_messages := !total_messages + Report.total_messages o.Txn_system.report;
        match o.Txn_system.decision with
        | Txn_system.Committed ->
            incr committed;
            (match Report.delays_to_last_decision o.Txn_system.report with
            | Some d -> Histogram.add commit_delays d
            | None -> ())
        | Txn_system.Aborted -> incr aborted
        | Txn_system.Blocked -> incr blocked)
      outcomes
  done;
  let transactions = spec.batches * spec.batch_size in
  let delays = Histogram.summary commit_delays in
  {
    transactions;
    committed = !committed;
    aborted = !aborted;
    blocked = !blocked;
    abort_rate = float_of_int !aborted /. float_of_int transactions;
    total_messages = !total_messages;
    messages_per_commit =
      (if !committed = 0 then Float.nan
       else float_of_int !total_messages /. float_of_int !committed);
    mean_commit_delays = delays.Histogram.mean;
    p50_commit_delays = delays.Histogram.p50;
    p95_commit_delays = delays.Histogram.p95;
    p99_commit_delays = delays.Histogram.p99;
    atomicity_ok = !atomicity_ok;
  }

let contention_sweep ~protocol ~n ~f ~hot_fractions =
  List.map
    (fun hot_fraction ->
      let db = Txn_system.create ~n ~f ~protocol () in
      (hot_fraction, run db { default with hot_fraction }))
    hot_fractions

let protocol_comparison ?jobs ~protocols ~n ~f spec =
  (* each protocol gets its own Txn_system, so the comparison columns are
     independent workload replays — fan them out one domain per protocol *)
  Batch.run ?jobs
    (fun protocol ->
      let db = Txn_system.create ~n ~f ~protocol () in
      (protocol, run db spec))
    protocols

let pp_stats ppf s =
  Format.fprintf ppf
    "%d txns: %d committed, %d aborted (%.0f%%), %d blocked; %d msgs \
     (%.1f/commit), %.1f delays/commit (p50/p95/p99 %.1f/%.1f/%.1f)%s"
    s.transactions s.committed s.aborted (100.0 *. s.abort_rate) s.blocked
    s.total_messages s.messages_per_commit s.mean_commit_delays
    s.p50_commit_delays s.p95_commit_delays s.p99_commit_delays
    (if s.atomicity_ok then "" else "; ATOMICITY VIOLATED")
