type spec = {
  batches : int;
  batch_size : int;
  keys : int;
  hot_keys : int;
  hot_fraction : float;
  zipf_s : float option;
  reads_per_txn : int;
  writes_per_txn : int;
  crash_probability : float;
  seed : int;
}

let default =
  {
    batches = 20;
    batch_size = 4;
    keys = 64;
    hot_keys = 4;
    hot_fraction = 0.5;
    zipf_s = None;
    reads_per_txn = 2;
    writes_per_txn = 2;
    crash_probability = 0.0;
    seed = 7;
  }

type stats = {
  transactions : int;
  committed : int;
  aborted : int;
  blocked : int;
  abort_rate : float;
  total_messages : int;
  messages_per_commit : float;
  mean_commit_delays : float;
  p50_commit_delays : float;
  p95_commit_delays : float;
  p99_commit_delays : float;
  minor_words_per_txn : float;
  atomicity_ok : bool;
}

module Zipf = struct
  type t = { keys : int; s : float; cdf : float array }

  let make ~keys ~s =
    if keys < 1 then invalid_arg "Workload.Zipf.make: keys < 1";
    let s = if Float.is_nan s || s < 0.0 then 0.0 else s in
    let cdf = Array.make keys 0.0 in
    let acc = ref 0.0 in
    for i = 0 to keys - 1 do
      acc := !acc +. (1.0 /. Float.pow (float_of_int (i + 1)) s);
      cdf.(i) <- !acc
    done;
    let total = !acc in
    for i = 0 to keys - 1 do
      cdf.(i) <- cdf.(i) /. total
    done;
    cdf.(keys - 1) <- 1.0;
    { keys; s; cdf }

  let uniform ~keys = make ~keys ~s:0.0
  let keys t = t.keys
  let s t = t.s

  let mass_top t h =
    if h <= 0 then 0.0 else if h >= t.keys then 1.0 else t.cdf.(h - 1)

  (* The legacy knob: "the hot_keys most popular keys receive
     hot_fraction of the accesses" translated into the unique Zipf
     exponent with that top-h mass (bisection; the mass is monotone in
     s). Requests at or below the uniform mass h/K clamp to s = 0. *)
  let of_hot ~keys ~hot_keys ~hot_fraction =
    if keys < 1 then invalid_arg "Workload.Zipf.of_hot: keys < 1";
    let h = max 0 (min hot_keys keys) in
    let target = Float.min hot_fraction 0.9999 in
    if h = 0 || h = keys || target <= float_of_int h /. float_of_int keys
    then uniform ~keys
    else begin
      let rec bisect lo hi k =
        if k = 0 then 0.5 *. (lo +. hi)
        else
          let mid = 0.5 *. (lo +. hi) in
          if mass_top (make ~keys ~s:mid) h < target then bisect mid hi (k - 1)
          else bisect lo mid (k - 1)
      in
      make ~keys ~s:(bisect 0.0 32.0 48)
    end

  let index t rng =
    let r = Rng.float rng in
    let lo = ref 0 and hi = ref (t.keys - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if t.cdf.(mid) < r then lo := mid + 1 else hi := mid
    done;
    !lo

  let pick t rng = Printf.sprintf "k%d" (index t rng)
end

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Rng.int rng ~bound:(i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let distinct_keys ~dist ~count rng =
  let keys = Zipf.keys dist in
  let count = max 0 (min count keys) in
  let picked =
    if count = keys then List.init keys (fun i -> Printf.sprintf "k%d" i)
    else begin
      (* Rejection sampling against the popularity distribution, with a
         drawn-attempts budget: when [count] approaches [keys] under heavy
         skew, the rare tail keys would make pure rejection effectively
         non-terminating, so the remainder fills deterministically with
         the most popular unused ranks. *)
      let attempts = ref ((16 * count) + 64) in
      let rec go left acc =
        if left = 0 then acc
        else if !attempts = 0 then begin
          let rec fill i left acc =
            if left = 0 then acc
            else
              let key = Printf.sprintf "k%d" i in
              if List.mem key acc then fill (i + 1) left acc
              else fill (i + 1) (left - 1) (key :: acc)
          in
          fill 0 left acc
        end
        else begin
          decr attempts;
          let key = Zipf.pick dist rng in
          if List.mem key acc then go left acc else go (left - 1) (key :: acc)
        end
      in
      go count []
    end
  in
  (* Callers split the result into read and write sets positionally, so
     the order must not correlate with popularity — under heavy skew the
     draws come back popularity-sorted, which would systematically aim
     reads at the tail and writes at the head and erase read-write
     conflicts. A shuffle makes the split independent of rank. *)
  let arr = Array.of_list picked in
  shuffle rng arr;
  Array.to_list arr

let dist_of_spec spec =
  match spec.zipf_s with
  | Some s -> Zipf.make ~keys:spec.keys ~s
  | None ->
      Zipf.of_hot ~keys:spec.keys ~hot_keys:spec.hot_keys
        ~hot_fraction:spec.hot_fraction

let generate_txn spec ~dist rng ~id =
  let touched =
    distinct_keys ~dist ~count:(spec.reads_per_txn + spec.writes_per_txn) rng
  in
  let rec split k = function
    | rest when k = 0 -> ([], rest)
    | [] -> ([], [])
    | x :: rest ->
        let reads, writes = split (k - 1) rest in
        (x :: reads, writes)
  in
  let read_keys, write_keys = split spec.reads_per_txn touched in
  Txn.make ~id
    ~reads:(List.map (fun k -> (k, 0)) read_keys)
    ~writes:
      (List.map
         (fun k -> (k, Printf.sprintf "%s@%s" id k))
         write_keys)
    ()

let run db spec =
  let rng = Rng.create spec.seed in
  let dist = dist_of_spec spec in
  let committed = ref 0 and aborted = ref 0 and blocked = ref 0 in
  let total_messages = ref 0 in
  let commit_delays = Histogram.create () in
  let atomicity_ok = ref true in
  let gc_words0 = Gc.minor_words () in
  for b = 0 to spec.batches - 1 do
    let txns =
      List.init spec.batch_size (fun i ->
          generate_txn spec ~dist rng ~id:(Printf.sprintf "b%d-t%d" b i))
    in
    let crashes =
      if Rng.float rng < spec.crash_probability then
        [
          ( Pid.of_index (Rng.int rng ~bound:(Txn_system.size db)),
            Scenario.Before (Rng.int rng ~bound:(3 * Sim_time.default_u)) );
        ]
      else []
    in
    let outcomes = Txn_system.submit_batch ~crashes db txns in
    List.iter
      (fun (o : Txn_system.outcome) ->
        if not o.Txn_system.atomic then atomicity_ok := false;
        total_messages := !total_messages + Report.total_messages o.Txn_system.report;
        match o.Txn_system.decision with
        | Txn_system.Committed ->
            incr committed;
            (match Report.delays_to_last_decision o.Txn_system.report with
            | Some d -> Histogram.add commit_delays d
            | None -> ())
        | Txn_system.Aborted -> incr aborted
        | Txn_system.Blocked -> incr blocked)
      outcomes
  done;
  let transactions = spec.batches * spec.batch_size in
  let minor_words = Gc.minor_words () -. gc_words0 in
  let delays = Histogram.summary commit_delays in
  {
    transactions;
    committed = !committed;
    aborted = !aborted;
    blocked = !blocked;
    abort_rate = float_of_int !aborted /. float_of_int transactions;
    total_messages = !total_messages;
    messages_per_commit =
      (if !committed = 0 then Float.nan
       else float_of_int !total_messages /. float_of_int !committed);
    mean_commit_delays = delays.Histogram.mean;
    p50_commit_delays = delays.Histogram.p50;
    p95_commit_delays = delays.Histogram.p95;
    p99_commit_delays = delays.Histogram.p99;
    minor_words_per_txn = minor_words /. float_of_int (max 1 transactions);
    atomicity_ok = !atomicity_ok;
  }

let contention_sweep ~protocol ~n ~f ~hot_fractions =
  List.map
    (fun hot_fraction ->
      let db = Txn_system.create ~n ~f ~protocol () in
      (hot_fraction, run db { default with hot_fraction }))
    hot_fractions

let protocol_comparison ?jobs ~protocols ~n ~f spec =
  (* each protocol gets its own Txn_system, so the comparison columns are
     independent workload replays — fan them out one domain per protocol *)
  Batch.run ?jobs
    (fun protocol ->
      let db = Txn_system.create ~n ~f ~protocol () in
      (protocol, run db spec))
    protocols

let pp_stats ppf s =
  Format.fprintf ppf
    "%d txns: %d committed, %d aborted (%.0f%%), %d blocked; %d msgs \
     (%.1f/commit), %.1f delays/commit (p50/p95/p99 %.1f/%.1f/%.1f), %.0f \
     minor words/txn%s"
    s.transactions s.committed s.aborted (100.0 *. s.abort_rate) s.blocked
    s.total_messages s.messages_per_commit s.mean_commit_delays
    s.p50_commit_delays s.p95_commit_delays s.p99_commit_delays
    s.minor_words_per_txn
    (if s.atomicity_ok then "" else "; ATOMICITY VIOLATED")
