(** Synthetic transaction workloads over {!Txn_system}: batches of
    read-validate-write transactions with tunable contention (a
    Zipf-skewed key-popularity model), optional crash injection, and
    aggregate statistics — the database-facing view of the commit
    protocols' complexity (messages and delays per transaction). *)

module Zipf : sig
  (** Zipf(s) key popularity over a keyspace "k0" .. "k<keys-1>": rank
      [i] (0-based) is drawn with probability proportional to
      [1 / (i+1)^s]. The CDF is precomputed at construction, so a draw
      is one uniform variate plus a binary search. [s = 0] is the
      uniform distribution; the legacy binary hot-set knob maps onto an
      equivalent exponent through {!of_hot}. *)

  type t

  val make : keys:int -> s:float -> t
  (** Negative or NaN [s] clamps to 0 (uniform).
      @raise Invalid_argument when [keys < 1]. *)

  val uniform : keys:int -> t
  (** [make ~keys ~s:0.0]. *)

  val of_hot : keys:int -> hot_keys:int -> hot_fraction:float -> t
  (** The legacy contention alias: the Zipf exponent under which the
      [hot_keys] most popular keys receive a [hot_fraction] share of
      the accesses (solved by bisection; monotone in [s]).
      [hot_fraction] at or below the uniform share [hot_keys/keys]
      clamps to uniform, at or above 1 to the 0.9999 mass point.
      @raise Invalid_argument when [keys < 1]. *)

  val keys : t -> int
  val s : t -> float
  (** The (resolved) exponent. *)

  val mass_top : t -> int -> float
  (** [mass_top t h] is the probability mass of the [h] most popular
      keys (0 when [h <= 0], 1 when [h >= keys]). *)

  val index : t -> Rng.t -> int
  (** One popularity-ranked draw, as a 0-based rank. *)

  val pick : t -> Rng.t -> string
  (** [index] rendered as its key "k<rank>". *)
end

type spec = {
  batches : int;
  batch_size : int;  (** transactions validated against one snapshot *)
  keys : int;  (** keyspace size, keys "k0" .. "k<keys-1>" *)
  hot_keys : int;  (** legacy contention alias, see {!Zipf.of_hot} *)
  hot_fraction : float;  (** legacy contention alias, see {!Zipf.of_hot} *)
  zipf_s : float option;
      (** key-popularity exponent; [None] derives it from the legacy
          [hot_keys]/[hot_fraction] pair through {!Zipf.of_hot} *)
  reads_per_txn : int;
  writes_per_txn : int;
  crash_probability : float;
      (** per-batch probability that one random node crashes during the
          batch's commit rounds *)
  seed : int;
}

val default : spec
(** 20 batches x 4, 64 keys, 4 hot keys at 0.5 (as a Zipf alias),
    2 reads + 2 writes, no crashes, seed 7. *)

type stats = {
  transactions : int;
  committed : int;
  aborted : int;
  blocked : int;
  abort_rate : float;
  total_messages : int;
  messages_per_commit : float;
  mean_commit_delays : float;  (** mean protocol latency, units of U *)
  p50_commit_delays : float;
      (** latency percentiles over committed rounds ({!Histogram}
          nearest-rank, so p50 <= p95 <= p99); [nan] with no commits *)
  p95_commit_delays : float;
  p99_commit_delays : float;
  minor_words_per_txn : float;
      (** minor-heap words allocated per transaction during the run — the
          allocation-pressure gauge the bench trend line tracks *)
  atomicity_ok : bool;  (** every round passed the atomicity check *)
}

val dist_of_spec : spec -> Zipf.t
(** The spec's key-popularity distribution: [zipf_s] when given, the
    {!Zipf.of_hot} translation of the legacy hot-set pair otherwise.
    Exposed for the multi-shot commit service, whose client streams draw
    from the same distribution. *)

val distinct_keys : dist:Zipf.t -> count:int -> Rng.t -> string list
(** [count] distinct draws of {!Zipf.pick}, in shuffled order (so a
    positional read/write split does not correlate with popularity).
    [count] is clamped to [\[0, keys\]]; termination is unconditional —
    when the drawn-attempts budget is exhausted (possible only as [count]
    approaches [keys] under heavy skew, where the rare tail dominates
    rejection), the remainder fills with the most popular unused
    ranks. *)

val run : Txn_system.t -> spec -> stats

val contention_sweep :
  protocol:string -> n:int -> f:int -> hot_fractions:float list -> (float * stats) list
(** Same workload at increasing contention; the abort rate climbs, the
    per-commit message cost stays the protocol's closed form. *)

val protocol_comparison :
  ?jobs:int -> protocols:string list -> n:int -> f:int -> spec ->
  (string * stats) list
(** The same workload (same seed, same conflicts) across protocols: abort
    rates coincide, messages/latency differ — the paper's complexity
    table in database clothing. Each protocol replays the workload in its
    own {!Txn_system.t}, so the columns are computed through {!Batch.run}
    ([?jobs] domains, order and values unchanged). *)

val pp_stats : Format.formatter -> stats -> unit
