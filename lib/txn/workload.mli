(** Synthetic transaction workloads over {!Txn_system}: batches of
    read-validate-write transactions with tunable contention (a hot key
    set), optional crash injection, and aggregate statistics — the
    database-facing view of the commit protocols' complexity (messages
    and delays per transaction). *)

type spec = {
  batches : int;
  batch_size : int;  (** transactions validated against one snapshot *)
  keys : int;  (** keyspace size, keys "k0" .. "k<keys-1>" *)
  hot_keys : int;  (** size of the contended subset *)
  hot_fraction : float;  (** probability that an access hits the hot set *)
  reads_per_txn : int;
  writes_per_txn : int;
  crash_probability : float;
      (** per-batch probability that one random node crashes during the
          batch's commit rounds *)
  seed : int;
}

val default : spec
(** 20 batches x 4, 64 keys, 4 hot keys at 0.5, 2 reads + 2 writes, no
    crashes, seed 7. *)

type stats = {
  transactions : int;
  committed : int;
  aborted : int;
  blocked : int;
  abort_rate : float;
  total_messages : int;
  messages_per_commit : float;
  mean_commit_delays : float;  (** mean protocol latency, units of U *)
  p50_commit_delays : float;
      (** latency percentiles over committed rounds ({!Histogram}
          nearest-rank, so p50 <= p95 <= p99); [nan] with no commits *)
  p95_commit_delays : float;
  p99_commit_delays : float;
  atomicity_ok : bool;  (** every round passed the atomicity check *)
}

val pick_key : keys:int -> hot_keys:int -> hot_fraction:float -> Rng.t -> string
(** One key draw of the contention model: a hot key ("k0" ..
    "k<hot_keys-1>") with probability [hot_fraction], uniform over the
    rest of the keyspace otherwise. Exposed for the multi-shot commit
    service, whose client streams draw from the same distribution. *)

val distinct_keys :
  keys:int -> hot_keys:int -> hot_fraction:float -> count:int -> Rng.t ->
  string list
(** [count] distinct draws of {!pick_key} (requires [count <= keys]). *)

val run : Txn_system.t -> spec -> stats

val contention_sweep :
  protocol:string -> n:int -> f:int -> hot_fractions:float list -> (float * stats) list
(** Same workload at increasing contention; the abort rate climbs, the
    per-commit message cost stays the protocol's closed form. *)

val protocol_comparison :
  ?jobs:int -> protocols:string list -> n:int -> f:int -> spec ->
  (string * stats) list
(** The same workload (same seed, same conflicts) across protocols: abort
    rates coincide, messages/latency differ — the paper's complexity
    table in database clothing. Each protocol replays the workload in its
    own {!Txn_system.t}, so the columns are computed through {!Batch.run}
    ([?jobs] domains, order and values unchanged). *)

val pp_stats : Format.formatter -> stats -> unit
