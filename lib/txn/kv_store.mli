(** A single database node's versioned key-value store with write-ahead
    staging.

    Writes of an in-flight transaction are {e staged} first; committing a
    transaction {!apply}s its staged writes atomically (bumping each
    key's version), aborting {!discard}s them. The staging area survives
    a simulated crash — it plays the role of the write-ahead log that
    lets a recovering node finish a transaction whose outcome was decided
    while it was down. *)

type t

type value = string

val create : unit -> t
val get : t -> key:string -> (value * int) option
(** Current value and version (versions start at 1 on first write). *)

val version : t -> key:string -> int
(** 0 when the key was never written. *)

val stage : t -> txn_id:string -> writes:(string * value) list -> unit
(** Stage a transaction's writes. Staging twice for the same id replaces
    the previous staging. *)

val staged : t -> txn_id:string -> (string * value) list option

val apply : t -> txn_id:string -> bool
(** Atomically install the staged writes; returns false when nothing was
    staged under that id (nothing happens then). *)

val discard : t -> txn_id:string -> unit

val staged_ids : t -> string list
(** Ids of every transaction with writes still staged, sorted. An empty
    list means the write-ahead area has fully drained — the invariant the
    recovery tests check. *)

val keys : t -> string list
(** All keys ever written, sorted. *)

val pp : Format.formatter -> t -> unit
