type value = string

type t = {
  data : (string, value * int) Hashtbl.t;
  staging : (string, (string * value) list) Hashtbl.t;
}

let create () = { data = Hashtbl.create 16; staging = Hashtbl.create 4 }
let get t ~key = Hashtbl.find_opt t.data key

let version t ~key =
  match Hashtbl.find_opt t.data key with Some (_, v) -> v | None -> 0

let stage t ~txn_id ~writes = Hashtbl.replace t.staging txn_id writes
let staged t ~txn_id = Hashtbl.find_opt t.staging txn_id

let apply t ~txn_id =
  match Hashtbl.find_opt t.staging txn_id with
  | None -> false
  | Some writes ->
      List.iter
        (fun (key, value) ->
          let v = version t ~key in
          Hashtbl.replace t.data key (value, v + 1))
        writes;
      Hashtbl.remove t.staging txn_id;
      true

let discard t ~txn_id = Hashtbl.remove t.staging txn_id

let staged_ids t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.staging [] |> List.sort compare

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.data [] |> List.sort compare

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter
    (fun key ->
      match get t ~key with
      | Some (value, version) ->
          Format.fprintf ppf "%s = %S (v%d)@," key value version
      | None -> ())
    (keys t);
  Format.pp_close_box ppf ()
