type row = {
  protocol : string;
  claimed : Props.cell;
  observed_ff : Props.t;
  observed_cf : Props.t;
  observed_nf : Props.t;
  runs_ff : int;
  runs_cf : int;
  runs_nf : int;
  ok : bool;
}

let u = Sim_time.default_u

let batteries ~n ~f ~seeds =
  let nice = Scenario.nice ~n ~f () in
  let failure_free =
    [
      nice;
      Scenario.with_no_votes nice [ Pid.of_rank 1 ];
      Scenario.with_no_votes nice [ Pid.of_rank n ];
      Scenario.with_no_votes nice [ Pid.of_rank 2; Pid.of_rank n ];
      Scenario.with_no_votes nice (Pid.all ~n);
    ]
    @ List.map
        (fun seed ->
          Scenario.with_seed
            (Scenario.with_network nice (Network.jittered ~u))
            seed)
        seeds
  in
  let crash_targets = [ Pid.of_rank 1; Pid.of_rank 2; Pid.of_rank n ] in
  let crash_times = [ 0; u; 2 * u; (3 * u) + (u / 2) ] in
  let crashes =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun t ->
            [
              Scenario.with_crashes nice [ (p, Scenario.Before t) ];
              Scenario.with_crashes nice [ (p, Scenario.During_sends (t, 1)) ];
            ])
          crash_times)
      crash_targets
    @ List.map (fun seed -> Witness.crash_storm ~n ~f ~seed) seeds
    @ List.map
        (fun seed ->
          Scenario.with_no_votes (Witness.crash_storm ~n ~f ~seed:(seed + 100))
            [ Pid.of_rank 2 ])
        seeds
  in
  let network =
    List.map (fun seed -> Witness.eventual_synchrony ~n ~f ~seed) seeds
    @ List.map
        (fun seed ->
          Scenario.with_no_votes
            (Witness.eventual_synchrony ~n ~f ~seed:(seed + 100))
            [ Pid.of_rank 1 ])
        seeds
  in
  List.map (fun s -> (Classify.Failure_free, s)) failure_free
  @ List.map (fun s -> (Classify.Crash_failure, s)) crashes
  @ List.map (fun s -> (Classify.Network_failure, s)) network

let observe verdicts =
  List.fold_left
    (fun acc (v : Check.verdict) ->
      Props.make
        ~a:(acc.Props.a && v.Check.agreement)
        ~v:(acc.Props.v && Check.validity v)
        ~t:(acc.Props.t && v.Check.termination))
    Props.avt verdicts

let matrix ?(n = 5) ?(f = 2) ?(seeds = [ 1; 2; 3 ]) ?jobs () =
  let tagged = batteries ~n ~f ~seeds in
  let of_class c =
    List.filter_map (fun (c', s) -> if c = c' then Some s else None) tagged
  in
  let ff = of_class Classify.Failure_free in
  let cf = of_class Classify.Crash_failure in
  let nf = of_class Classify.Network_failure in
  let runs_ff = List.length ff in
  let runs_cf = List.length cf in
  let runs_nf = List.length nf in
  let scenarios = ff @ cf @ nf in
  (* one flat (protocol x scenario) batch: every run is independent, so
     the whole matrix parallelizes, and [Batch.run]'s order guarantee
     keeps the rows identical to the sequential fold *)
  let work =
    List.concat_map
      (fun (r : Registry.t) -> List.map (fun s -> (r, s)) scenarios)
      Registry.all
  in
  let verdicts =
    Array.of_list
      (Batch.run ?jobs (fun ((r : Registry.t), s) -> Check.run (r.Registry.run s)) work)
  in
  let per_protocol = runs_ff + runs_cf + runs_nf in
  let slice base lo len =
    List.init len (fun k -> verdicts.(base + lo + k))
  in
  List.mapi
    (fun i (r : Registry.t) ->
      let entry = Complexity.find_exn r.Registry.name in
      let claimed = entry.Complexity.cell in
      let base = i * per_protocol in
      let observed_ff = observe (slice base 0 runs_ff) in
      let observed_cf = observe (slice base runs_ff runs_cf) in
      let observed_nf = observe (slice base (runs_ff + runs_cf) runs_nf) in
      {
        protocol = r.Registry.name;
        claimed;
        observed_ff;
        observed_cf;
        observed_nf;
        runs_ff;
        runs_cf;
        runs_nf;
        ok =
          (* weak-semantics baselines are exempt from the failure-free
             NBAC contract; everyone must still honour the claimed cell *)
          (entry.Complexity.weak_semantics <> None
          || Props.equal observed_ff Props.avt)
          && Props.subset claimed.Props.cf observed_cf
          && Props.subset claimed.Props.nf observed_nf;
      })
    Registry.all

let render_checked ?n ?f ?seeds ?jobs () =
  let rows = matrix ?n ?f ?seeds ?jobs () in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Robustness matrix - properties that survived every run of each class\n\
     (claimed cell must be contained in the observed properties)\n\n";
  let table =
    Ascii.create
      ~header:
        [
          "protocol"; "claimed (CF,NF)"; "failure-free"; "crash-failure";
          "network-failure"; "runs (ff/cf/nf)"; "ok";
        ]
  in
  List.iter
    (fun r ->
      Ascii.add_row table
        [
          (if Complexity.is_weak r.protocol then r.protocol ^ " (weak)"
           else r.protocol);
          Format.asprintf "%a" Props.pp_cell r.claimed;
          Props.to_string r.observed_ff;
          Props.to_string r.observed_cf;
          Props.to_string r.observed_nf;
          Printf.sprintf "%d/%d/%d" r.runs_ff r.runs_cf r.runs_nf;
          (if r.ok then "yes" else "NO");
        ])
    rows;
  Buffer.add_string buf (Ascii.render table);
  (Buffer.contents buf, List.for_all (fun r -> r.ok) rows)

let render ?n ?f ?seeds ?jobs () = fst (render_checked ?n ?f ?seeds ?jobs ())

let all_ok ?n ?f ?seeds ?jobs () =
  List.for_all (fun r -> r.ok) (matrix ?n ?f ?seeds ?jobs ())
