(** Reproduction of the paper's Table 1: the 27-cell map from robustness
    requirements to tight (delays, messages) lower bounds, plus the
    verification that our matching protocols achieve those bounds. *)

type verification = {
  cell : Props.cell;
  protocol : string;  (** the protocol realizing this local maximum *)
  measurements : Measure.nice list;
  all_ok : bool;
}

val symbolic_messages : Props.cell -> string
(** "0", "n-1+f", "2n-2" or "2n-2+f". *)

val grid : unit -> string
(** The 8x8 grid with "d / m" entries (symbolic), empty cells left blank,
    exactly the shape of the paper's Table 1. *)

val verifications :
  ?jobs:int -> pairs:(int * int) list -> unit -> verification list
(** For each locally-maximal cell, run its matching optimal protocol over
    the sweep and check the measured optima against the bounds. Message-
    optimal protocols are checked against [Bounds.messages], delay-optimal
    ones against [Bounds.delays] (and [Bounds.messages_given_optimal_delays]
    where applicable). The whole (cell, (n, f)) cross-product runs through
    {!Batch.run}; [?jobs] never changes the result. *)

val render : ?jobs:int -> pairs:(int * int) list -> unit -> string
(** Grid plus verification summary. *)

val render_checked :
  ?jobs:int -> pairs:(int * int) list -> unit -> string * bool
(** {!render}, plus whether every verification row achieved its bound —
    the CLI turns a [false] into a nonzero exit status. *)
