let delay_optimal_protocols =
  [
    ("avnbac-delay", Props.cell ~cf:Props.av ~nf:Props.av);
    ("0nbac", Props.cell ~cf:Props.at ~nf:Props.at);
    ("1nbac", Props.cell ~cf:Props.avt ~nf:Props.vt);
    ("inbac", Props.cell ~cf:Props.avt ~nf:Props.avt);
  ]

let message_optimal_protocols =
  [
    ("0nbac", Props.cell ~cf:Props.at ~nf:Props.at);
    ("anbac", Props.cell ~cf:Props.av ~nf:Props.a);
    ("avnbac-msg", Props.cell ~cf:Props.av ~nf:Props.av);
    ("(n-1+f)nbac", Props.cell ~cf:Props.avt ~nf:Props.t_);
    ("(2n-2)nbac", Props.cell ~cf:Props.avt ~nf:Props.vt);
    ("(2n-2+f)nbac", Props.cell ~cf:Props.avt ~nf:Props.avt);
  ]

let render_one ~title ~protocols ~bound_of ~measured_of ~pairs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf title;
  Buffer.add_string buf "\n\n";
  let table =
    Ascii.create
      ~header:[ "protocol"; "cell"; "n"; "f"; "bound"; "measured"; "tight" ]
  in
  List.iter
    (fun (protocol, cell) ->
      let runs = Measure.sweep ~protocols:[ protocol ] ~pairs () in
      List.iter
        (fun (m : Measure.nice) ->
          let bound = bound_of cell ~n:m.Measure.n ~f:m.Measure.f in
          let measured = measured_of m in
          Ascii.add_row table
            [
              protocol;
              Format.asprintf "%a" Props.pp_cell cell;
              string_of_int m.Measure.n;
              string_of_int m.Measure.f;
              string_of_int bound;
              string_of_int measured;
              (if measured = bound then "yes" else "NO");
            ])
        runs;
      Ascii.add_separator table)
    protocols;
  Buffer.add_string buf (Ascii.render table);
  Buffer.contents buf

let measured_delays (m : Measure.nice) =
  int_of_float m.Measure.metrics.Metrics.delays

let measured_messages (m : Measure.nice) = m.Measure.metrics.Metrics.messages

let render_delay_optimal ~pairs =
  render_one
    ~title:
      "Table 2 - delay-optimal protocols: measured message delays in nice \
       executions\nmatch the tight lower bound of their cell"
    ~protocols:delay_optimal_protocols
    ~bound_of:(fun cell ~n:_ ~f:_ -> Bounds.delays cell)
    ~measured_of:measured_delays ~pairs

let render_message_optimal ~pairs =
  render_one
    ~title:
      "Table 3 - message-optimal protocols: measured messages in nice \
       executions\nmatch the tight lower bound of their cell"
    ~protocols:message_optimal_protocols
    ~bound_of:(fun cell ~n ~f -> Bounds.messages ~n ~f cell)
    ~measured_of:measured_messages ~pairs

let all_ok ~pairs =
  List.for_all
    (fun (protocol, cell) ->
      List.for_all
        (fun (m : Measure.nice) ->
          measured_delays m = Bounds.delays cell
          && m.Measure.metrics.Metrics.all_decided)
        (Measure.sweep ~protocols:[ protocol ] ~pairs ()))
    delay_optimal_protocols
  && List.for_all
       (fun (protocol, cell) ->
         List.for_all
           (fun (m : Measure.nice) ->
             measured_messages m
             = Bounds.messages ~n:m.Measure.n ~f:m.Measure.f cell
             && m.Measure.metrics.Metrics.all_decided)
           (Measure.sweep ~protocols:[ protocol ] ~pairs ()))
       message_optimal_protocols
