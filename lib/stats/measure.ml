type nice = {
  protocol : string;
  n : int;
  f : int;
  metrics : Metrics.t;
  expected_messages : int;
  expected_delays : int;
}

let messages_match r = r.metrics.Metrics.messages = r.expected_messages

let delays_match r =
  Float.equal r.metrics.Metrics.delays (float_of_int r.expected_delays)

let ok r =
  messages_match r && delays_match r && r.metrics.Metrics.all_decided
  && not r.metrics.Metrics.consensus_invoked

let nice_run ?consensus ~protocol ~n ~f () =
  let runner = Registry.find_exn protocol in
  let entry = Complexity.find_exn protocol in
  let report = runner.Registry.run ?consensus (Scenario.nice ~n ~f ()) in
  {
    protocol;
    n;
    f;
    metrics = Metrics.of_nice report;
    expected_messages = entry.Complexity.messages ~n ~f;
    expected_delays = entry.Complexity.delays ~n ~f;
  }

let sweep ?jobs ~protocols ~pairs () =
  (* flat (protocol, (n, f)) cross-product: each nice run is independent
     and Batch.run keeps the concat_map order *)
  List.concat_map
    (fun protocol ->
      List.filter_map
        (fun (n, f) ->
          if f >= 1 && f <= n - 1 then Some (protocol, n, f) else None)
        pairs)
    protocols
  |> Batch.run ?jobs (fun (protocol, n, f) -> nice_run ~protocol ~n ~f ())

let default_pairs =
  let ns = [ 2; 3; 5; 8; 13; 21; 34 ] in
  List.concat_map
    (fun n ->
      let fs = List.sort_uniq compare [ 1; 2; n / 2; n - 1 ] in
      List.filter_map
        (fun f -> if f >= 1 && f <= n - 1 then Some (n, f) else None)
        fs)
    ns
