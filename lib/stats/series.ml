type point = { x : int; messages : int; delays : float }
type series = { protocol : string; points : point list }

let point_of ~protocol ~n ~f ~x =
  let m = Measure.nice_run ~protocol ~n ~f () in
  {
    x;
    messages = m.Measure.metrics.Metrics.messages;
    delays = m.Measure.metrics.Metrics.delays;
  }

(* Each (protocol, x) point is one independent nice run: flatten the
   cross-product into a single [Batch.run] so the whole figure fans out
   over domains while the series keep their sequential order. *)
let series_batch ?jobs ~protocols ~xs ~keep ~point () =
  let work =
    List.concat_map
      (fun protocol ->
        List.filter_map
          (fun x -> if keep x then Some (protocol, x) else None)
          xs)
      protocols
  in
  let points =
    Batch.run ?jobs (fun (protocol, x) -> (protocol, point ~protocol ~x)) work
  in
  List.map
    (fun protocol ->
      {
        protocol;
        points =
          List.filter_map
            (fun (p, pt) -> if String.equal p protocol then Some pt else None)
            points;
      })
    protocols

let over_n ?jobs ~protocols ~f ~ns () =
  series_batch ?jobs ~protocols ~xs:ns
    ~keep:(fun n -> f <= n - 1)
    ~point:(fun ~protocol ~x -> point_of ~protocol ~n:x ~f ~x)
    ()

let over_f ?jobs ~protocols ~n ~fs () =
  series_batch ?jobs ~protocols ~xs:fs
    ~keep:(fun f -> f >= 1 && f <= n - 1)
    ~point:(fun ~protocol ~x -> point_of ~protocol ~n ~f:x ~x)
    ()

let crossover_f1 ~ns =
  List.filter_map
    (fun n ->
      if n >= 2 then begin
        let inbac = point_of ~protocol:"inbac" ~n ~f:1 ~x:n in
        let two_pc = point_of ~protocol:"2pc" ~n ~f:1 ~x:n in
        Some (n, inbac.messages, two_pc.messages)
      end
      else None)
    ns

let to_csv ~x_label series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "protocol,%s,messages,delays\n" x_label);
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          Buffer.add_string buf
            (Printf.sprintf "%s,%d,%d,%.1f\n" s.protocol p.x p.messages p.delays))
        s.points)
    series;
  Buffer.contents buf

let render ~title ~x_label series =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf title;
  Buffer.add_string buf "\n\n";
  let table =
    Ascii.create ~header:[ "protocol"; x_label; "messages"; "delays" ]
  in
  List.iter
    (fun s ->
      List.iter
        (fun p ->
          Ascii.add_row table
            [
              s.protocol;
              string_of_int p.x;
              string_of_int p.messages;
              Printf.sprintf "%.0f" p.delays;
            ])
        s.points;
      Ascii.add_separator table)
    series;
  Buffer.add_string buf (Ascii.render table);
  Buffer.contents buf

let render_over_n ?jobs ~protocols ~f ~ns () =
  render
    ~title:
      (Printf.sprintf
         "Nice-execution complexity vs n (f = %d) - the comparison series" f)
    ~x_label:"n"
    (over_n ?jobs ~protocols ~f ~ns ())

let render_over_f ?jobs ~protocols ~n ~fs () =
  render
    ~title:
      (Printf.sprintf
         "Nice-execution complexity vs f (n = %d) - the resilience price" n)
    ~x_label:"f"
    (over_f ?jobs ~protocols ~n ~fs ())
