let protocols =
  [
    "inbac";
    "(n-1+f)nbac";
    "1nbac";
    "2pc";
    "3pc";
    "paxos-commit";
    "faster-paxos-commit";
    "(2n-2+f)nbac";
  ]

let symbolic = function
  | "inbac" -> ("2fn", "2")
  | "(n-1+f)nbac" -> ("n-1+f", "n+2f")
  | "1nbac" -> ("2n(n-1)", "1")
  | "2pc" -> ("2n-2", "2")
  | "3pc" -> ("4n-4", "4")
  | "paxos-commit" -> ("(n-1)(f+2)+f", "3")
  | "faster-paxos-commit" -> ("2(n-1)(f+1)", "2")
  | "(2n-2+f)nbac" -> ("2n-2+f", "2n+f-2")
  | _ -> ("?", "?")

let render ?jobs ~pairs () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Section 6 comparison - spontaneous start, nice executions\n\
     (messages and delays; INBAC rows are the paper's contribution)\n\n";
  let table =
    Ascii.create
      ~header:
        [
          "protocol"; "cell"; "msgs (formula)"; "delays (formula)"; "n"; "f";
          "msgs"; "delays"; "matches";
        ]
  in
  (* one flat batch over the whole protocol x (n, f) grid; rows are then
     emitted in the same nested order as before *)
  let valid = List.filter (fun (n, f) -> f >= 1 && f <= n - 1) pairs in
  let per = List.length valid in
  let work =
    List.concat_map
      (fun protocol -> List.map (fun (n, f) -> (protocol, n, f)) valid)
      protocols
  in
  let measured =
    Array.of_list
      (Batch.run ?jobs
         (fun (protocol, n, f) -> Measure.nice_run ~protocol ~n ~f ())
         work)
  in
  List.iteri
    (fun i protocol ->
      let entry = Complexity.find_exn protocol in
      let msg_sym, delay_sym = symbolic protocol in
      List.iteri
        (fun k (n, f) ->
          let m = measured.((i * per) + k) in
          Ascii.add_row table
            [
              protocol;
              Format.asprintf "%a" Props.pp_cell entry.Complexity.cell;
              msg_sym;
              delay_sym;
              string_of_int n;
              string_of_int f;
              string_of_int m.Measure.metrics.Metrics.messages;
              Printf.sprintf "%.0f" m.Measure.metrics.Metrics.delays;
              (if Measure.ok m then "yes" else "NO");
            ])
        valid;
      Ascii.add_separator table)
    protocols;
  Buffer.add_string buf (Ascii.render table);
  Buffer.contents buf

type claim = { description : string; holds : bool }

let msgs (m : Measure.nice) = m.Measure.metrics.Metrics.messages
let delays (m : Measure.nice) = int_of_float m.Measure.metrics.Metrics.delays

let claims ?jobs () =
  let pairs_f1 = List.filter (fun (n, _) -> n >= 2) [ (2, 1); (5, 1); (13, 1) ] in
  let pairs_f2 = [ (5, 2); (8, 3); (13, 5) ] in
  (* the claims below probe the same few (protocol, n, f) points many
     times over: measure each point once, in parallel, up front *)
  let cache = Hashtbl.create 64 in
  let work =
    List.concat_map
      (fun protocol ->
        List.map (fun (n, f) -> (protocol, n, f)) (pairs_f1 @ pairs_f2))
      protocols
  in
  List.iter2
    (fun key m -> Hashtbl.replace cache key m)
    work
    (Batch.run ?jobs
       (fun (protocol, n, f) -> Measure.nice_run ~protocol ~n ~f ())
       work);
  let nice protocol n f =
    match Hashtbl.find_opt cache (protocol, n, f) with
    | Some m -> m
    | None -> Measure.nice_run ~protocol ~n ~f ()
  in
  [
    {
      description =
        "INBAC has the same best-case message delays as 2PC (2, spontaneous \
         start)";
      holds =
        List.for_all
          (fun (n, f) -> delays (nice "inbac" n f) = delays (nice "2pc" n f))
          (pairs_f1 @ pairs_f2);
    };
    {
      description = "for f = 1, INBAC uses 2n messages vs 2PC's 2n-2";
      holds =
        List.for_all
          (fun (n, f) ->
            msgs (nice "inbac" n f) = 2 * n
            && msgs (nice "2pc" n f) = (2 * n) - 2)
          pairs_f1;
    };
    {
      description =
        "for f >= 2, n >= 3: Paxos Commit wins on messages, INBAC on delays";
      holds =
        List.for_all
          (fun (n, f) ->
            msgs (nice "paxos-commit" n f) < msgs (nice "inbac" n f)
            && delays (nice "inbac" n f) < delays (nice "paxos-commit" n f))
          pairs_f2;
    };
    {
      description =
        "Faster Paxos Commit matches INBAC's 2 delays but never uses fewer \
         messages (Theorem 5 tightness)";
      holds =
        List.for_all
          (fun (n, f) ->
            let fpc = nice "faster-paxos-commit" n f in
            delays fpc = 2 && msgs fpc >= msgs (nice "inbac" n f))
          (pairs_f1 @ pairs_f2);
    };
    {
      description =
        "(n-1+f)NBAC uses the fewest messages and 1NBAC the fewest delays \
         of all compared protocols";
      holds =
        List.for_all
          (fun (n, f) ->
            let all = List.map (fun p -> nice p n f) protocols in
            let chain = nice "(n-1+f)nbac" n f in
            let one = nice "1nbac" n f in
            List.for_all (fun m -> msgs chain <= msgs m) all
            && List.for_all (fun m -> delays one <= delays m) all)
          pairs_f2;
    };
  ]

let render_claims_checked ?jobs () =
  let cs = claims ?jobs () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "Section 6 qualitative claims, checked mechanically:\n\n";
  List.iter
    (fun c ->
      Buffer.add_string buf
        (Printf.sprintf "  [%s] %s\n" (if c.holds then "ok" else "FAIL")
           c.description))
    cs;
  (Buffer.contents buf, List.for_all (fun c -> c.holds) cs)

let render_claims ?jobs () = fst (render_claims_checked ?jobs ())
