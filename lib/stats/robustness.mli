(** The robustness matrix: which NBAC properties each protocol actually
    kept, per execution class, over a battery of generated scenarios —
    checked against the cell the protocol claims (Table 1 captions /
    Section 6).

    Observed properties are the conjunction over all runs of a class: a
    property is "observed" only if no run of the battery violated it.
    Passing means claimed ⊆ observed (an adversary battery can only
    refute, never prove). *)

type row = {
  protocol : string;
  claimed : Props.cell;
  observed_ff : Props.t;  (** failure-free battery; must be AVT *)
  observed_cf : Props.t;
  observed_nf : Props.t;
  runs_ff : int;  (** number of failure-free scenarios actually run *)
  runs_cf : int;  (** number of crash-failure scenarios actually run *)
  runs_nf : int;  (** number of network-failure scenarios actually run *)
  ok : bool;
}

val batteries :
  n:int -> f:int -> seeds:int list ->
  (Classify.class_ * Scenario.t) list
(** The generated scenarios, tagged with their intended class. *)

val matrix :
  ?n:int -> ?f:int -> ?seeds:int list -> ?jobs:int -> unit -> row list
(** Defaults: n = 5, f = 2 (a correct majority survives, as the
    consensus-based protocols' termination claims require), seeds
    [1; 2; 3]. Every (protocol, scenario) run is independent, so the
    whole matrix is evaluated through {!Batch.run} — [?jobs] controls
    the number of domains; the rows are identical to a sequential
    evaluation regardless of [jobs]. *)

val render :
  ?n:int -> ?f:int -> ?seeds:int list -> ?jobs:int -> unit -> string

val render_checked :
  ?n:int -> ?f:int -> ?seeds:int list -> ?jobs:int -> unit -> string * bool
(** {!render}, plus whether every row passed (one matrix evaluation). *)

val all_ok :
  ?n:int -> ?f:int -> ?seeds:int list -> ?jobs:int -> unit -> bool
