(** Model-checking summary: per protocol x execution class, the size of
    the explored schedule space and the verdict, checked against the cell
    each protocol claims (crash class against CF, network class against
    NF, nice against full NBAC).

    This is the exhaustive counterpart of {!Robustness}: where the
    fuzzing battery samples schedules by seed, each row here visits every
    schedule of the bounded space (or reports the truncation). The L1
    witnesses fall out mechanically: 2PC loses termination in the crash
    class, 1NBAC and the INBAC ack-undershoot variant lose agreement in
    the network class — each with an engine-replayable counterexample. *)

val default_protocols : string list

val default_classes : Mc_run.exec_class list

type row = {
  outcome : Mc_run.outcome;
  claimed : Props.t;
  ok : bool;
}

val rows :
  ?protocols:string list ->
  ?classes:Mc_run.exec_class list ->
  ?budgets:Mc_limits.budgets ->
  ?fp:Mc_limits.fp_backend ->
  ?pool:bool ->
  ?symmetry:bool ->
  ?jobs:int ->
  ?visited:Mc_limits.visited_mode ->
  n:int ->
  f:int ->
  unit ->
  row list

val render :
  ?protocols:string list ->
  ?classes:Mc_run.exec_class list ->
  ?budgets:Mc_limits.budgets ->
  ?fp:Mc_limits.fp_backend ->
  ?pool:bool ->
  ?symmetry:bool ->
  ?jobs:int ->
  ?visited:Mc_limits.visited_mode ->
  n:int ->
  f:int ->
  unit ->
  string

val render_checked :
  ?protocols:string list ->
  ?classes:Mc_run.exec_class list ->
  ?budgets:Mc_limits.budgets ->
  ?fp:Mc_limits.fp_backend ->
  ?pool:bool ->
  ?symmetry:bool ->
  ?jobs:int ->
  ?visited:Mc_limits.visited_mode ->
  n:int ->
  f:int ->
  unit ->
  string * bool
(** {!render}, plus whether every row is consistent with its claim. *)
