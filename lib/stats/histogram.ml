(* Two representations behind one interface. [Exact] retains every
   sample verbatim (sort-based nearest-rank percentiles) and is right for
   bounded runs. [Streaming] is the soak-mode variant: a fixed array of
   equal-width bins over [0, max] plus an overflow bin, so memory is
   O(bins) however many samples arrive; percentiles come back as the
   upper edge of the covering bin (error bounded by one bin width),
   clamped to the true observed maximum. *)

type exact = { mutable data : float array; mutable len : int }

type streaming = {
  width : float;
  counts : int array;  (* [bins] equal-width bins + 1 overflow bin *)
  mutable n : int;
  mutable sum : float;
  mutable vmax : float;
}

type t = Exact of exact | Streaming of streaming

let create ?(capacity = 1024) () =
  Exact { data = Array.make (max 1 capacity) 0.0; len = 0 }

let streaming ~bins ~max =
  if bins < 1 then invalid_arg "Histogram.streaming: bins < 1";
  if not (max > 0.0) then invalid_arg "Histogram.streaming: max <= 0";
  Streaming
    {
      width = max /. float_of_int bins;
      counts = Array.make (bins + 1) 0;
      n = 0;
      sum = 0.0;
      vmax = Float.neg_infinity;
    }

let add t x =
  match t with
  | Exact e ->
      if e.len = Array.length e.data then begin
        let grown = Array.make (2 * e.len) 0.0 in
        Array.blit e.data 0 grown 0 e.len;
        e.data <- grown
      end;
      e.data.(e.len) <- x;
      e.len <- e.len + 1
  | Streaming s ->
      let bins = Array.length s.counts - 1 in
      let i =
        if x <= 0.0 then 0
        else Stdlib.min bins (int_of_float (x /. s.width))
      in
      s.counts.(i) <- s.counts.(i) + 1;
      s.n <- s.n + 1;
      s.sum <- s.sum +. x;
      if x > s.vmax then s.vmax <- x

let count = function Exact e -> e.len | Streaming s -> s.n

let sorted e =
  let a = Array.sub e.data 0 e.len in
  Array.sort Float.compare a;
  a

let percentile_of_sorted a q =
  let n = Array.length a in
  if n = 0 then Float.nan
  else
    (* nearest rank: the smallest sample with at least a [q] fraction of
       the distribution at or below it *)
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    a.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))

(* Nearest rank over the cumulative bin counts: the covering bin's upper
   edge over-reports by at most one bin width; samples past [max] land
   in the overflow bin and report the observed maximum. Cumulative
   counts are monotone in [q], so percentiles come out ordered. *)
let percentile_of_bins s q =
  if s.n = 0 then Float.nan
  else begin
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int s.n)))
    in
    let bins = Array.length s.counts - 1 in
    let i = ref 0 and cum = ref s.counts.(0) in
    while !cum < rank && !i < bins do
      incr i;
      cum := !cum + s.counts.(!i)
    done;
    if !i >= bins then s.vmax
    else Float.min s.vmax (float_of_int (!i + 1) *. s.width)
  end

let percentile t q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Histogram.percentile: q outside [0, 1]";
  match t with
  | Exact e -> percentile_of_sorted (sorted e) q
  | Streaming s -> percentile_of_bins s q

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summary t =
  match t with
  | Exact e ->
      let a = sorted e in
      let n = Array.length a in
      {
        count = n;
        mean =
          (if n = 0 then Float.nan
           else Array.fold_left ( +. ) 0.0 a /. float_of_int n);
        p50 = percentile_of_sorted a 0.50;
        p95 = percentile_of_sorted a 0.95;
        p99 = percentile_of_sorted a 0.99;
        max = (if n = 0 then Float.nan else a.(n - 1));
      }
  | Streaming s ->
      {
        count = s.n;
        mean = (if s.n = 0 then Float.nan else s.sum /. float_of_int s.n);
        p50 = percentile_of_bins s 0.50;
        p95 = percentile_of_bins s 0.95;
        p99 = percentile_of_bins s 0.99;
        max = (if s.n = 0 then Float.nan else s.vmax);
      }

let pp_summary ppf s =
  if s.count = 0 then Format.pp_print_string ppf "no samples"
  else
    Format.fprintf ppf "p50/p95/p99 %.1f/%.1f/%.1f (max %.1f, n=%d)" s.p50
      s.p95 s.p99 s.max s.count
