type t = { mutable data : float array; mutable len : int }

let create ?(capacity = 1024) () =
  { data = Array.make (max 1 capacity) 0.0; len = 0 }

let add t x =
  if t.len = Array.length t.data then begin
    let grown = Array.make (2 * t.len) 0.0 in
    Array.blit t.data 0 grown 0 t.len;
    t.data <- grown
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let count t = t.len

let sorted t =
  let a = Array.sub t.data 0 t.len in
  Array.sort Float.compare a;
  a

let percentile_of_sorted a q =
  let n = Array.length a in
  if n = 0 then Float.nan
  else
    (* nearest rank: the smallest sample with at least a [q] fraction of
       the distribution at or below it *)
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    a.(max 0 (min (n - 1) (rank - 1)))

let percentile t q =
  if not (q >= 0.0 && q <= 1.0) then
    invalid_arg "Histogram.percentile: q outside [0, 1]";
  percentile_of_sorted (sorted t) q

type summary = {
  count : int;
  mean : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summary t =
  let a = sorted t in
  let n = Array.length a in
  {
    count = n;
    mean =
      (if n = 0 then Float.nan
       else Array.fold_left ( +. ) 0.0 a /. float_of_int n);
    p50 = percentile_of_sorted a 0.50;
    p95 = percentile_of_sorted a 0.95;
    p99 = percentile_of_sorted a 0.99;
    max = (if n = 0 then Float.nan else a.(n - 1));
  }

let pp_summary ppf s =
  if s.count = 0 then Format.pp_print_string ppf "no samples"
  else
    Format.fprintf ppf "p50/p95/p99 %.1f/%.1f/%.1f (max %.1f, n=%d)" s.p50
      s.p95 s.p99 s.max s.count
