(** Reproduction of the paper's Section 6 comparison (its Tables 4/5):
    INBAC against (n-1+f)NBAC, 1NBAC, 2PC, 3PC, Paxos Commit and Faster
    Paxos Commit under the spontaneous-start normalization, plus the
    qualitative claims the section makes. *)

val protocols : string list

val render : ?jobs:int -> pairs:(int * int) list -> unit -> string
(** Per-protocol rows: symbolic messages/delays, measured values, cell.
    The protocol x (n, f) grid runs through {!Batch.run}; [?jobs] sets
    the domain count without changing the output. *)

type claim = { description : string; holds : bool }

val claims : ?jobs:int -> unit -> claim list
(** The section's headline comparisons, checked mechanically:
    - INBAC matches 2PC's best-case delays (both 2, spontaneous start);
    - for f = 1, INBAC uses [2n] vs 2PC's [2n-2] messages;
    - for f >= 2, n >= 3, Paxos Commit beats INBAC on messages while
      INBAC beats it on delays;
    - Faster Paxos Commit needs two delays but never fewer messages than
      INBAC's [2fn];
    - (n-1+f)NBAC is the best in messages, 1NBAC the best in delays. *)

val render_claims : ?jobs:int -> unit -> string

val render_claims_checked : ?jobs:int -> unit -> string * bool
(** {!render_claims}, plus whether every claim holds. *)
