(** Statistical stress runs: many seeded fault scenarios per protocol,
    aggregated into violation counts and decision-latency statistics.
    Complements the deterministic witnesses: the witnesses show {e that}
    a guarantee can break, the stress runs estimate {e how rarely} the
    generic adversaries stumble on it (and confirm that the indulgent
    protocols never break at all). *)

type result = {
  protocol : string;
  label : string;
  runs : int;
  nbac_ok : int;
  agreement_violations : int;
  validity_violations : int;
  termination_violations : int;
  mean_decision_delays : float;
      (** mean, over runs where every correct process decided, of the
          last decision time in units of U *)
  max_decision_delays : float;
}

val crash_failure :
  ?runs:int -> ?jobs:int -> protocol:string -> n:int -> f:int -> unit -> result
(** Random crash storms (seeded 1..runs). Seeded runs are independent
    and evaluated through {!Batch.run}; [?jobs] sets the domain count
    and does not affect the aggregate. *)

val network_failure :
  ?runs:int -> ?jobs:int -> protocol:string -> n:int -> f:int -> unit -> result
(** Eventually-synchronous networks (seeded 1..runs). *)

val mixed :
  ?runs:int -> ?jobs:int -> protocol:string -> n:int -> f:int -> unit -> result
(** One random crash inside an eventually-synchronous network. *)

val render :
  ?runs:int -> ?jobs:int -> protocols:string list -> n:int -> f:int -> unit ->
  string
(** All three batteries for each protocol, as one table. *)
