type verification = {
  cell : Props.cell;
  protocol : string;
  measurements : Measure.nice list;
  all_ok : bool;
}

let symbolic_messages c =
  let two_delay =
    Props.equal c.Props.cf Props.avt && c.Props.nf.Props.a
  in
  if two_delay then "2n-2+f"
  else if c.Props.nf.Props.v then "2n-2"
  else if c.Props.cf.Props.v then "n-1+f"
  else "0"

let grid () =
  let table =
    Ascii.create
      ~header:("CF \\ NF" :: List.map Props.to_string Props.all_subsets)
  in
  List.iter
    (fun cf ->
      let cells =
        List.map
          (fun nf ->
            if Props.subset nf cf then begin
              let c = Props.cell ~cf ~nf in
              Printf.sprintf "%d / %s" (Bounds.delays c) (symbolic_messages c)
            end
            else "")
          Props.all_subsets
      in
      Ascii.add_row table (Props.to_string cf :: cells))
    Props.all_subsets;
  Ascii.render table

(* The locally-maximal cells and the matching optimal protocol for each,
   as established in Sections 4 and 5 (Tables 2 and 3 of the paper). *)
let maxima =
  [
    (Props.cell ~cf:Props.at ~nf:Props.at, "0nbac", `Both);
    (Props.cell ~cf:Props.av ~nf:Props.a, "anbac", `Messages);
    (Props.cell ~cf:Props.avt ~nf:Props.t_, "(n-1+f)nbac", `Messages);
    (Props.cell ~cf:Props.av ~nf:Props.av, "avnbac-msg", `Messages);
    (Props.cell ~cf:Props.av ~nf:Props.av, "avnbac-delay", `Delays_and_message_cap);
    (Props.cell ~cf:Props.avt ~nf:Props.vt, "(2n-2)nbac", `Messages);
    (Props.cell ~cf:Props.avt ~nf:Props.vt, "1nbac", `Delays);
    (Props.cell ~cf:Props.avt ~nf:Props.avt, "(2n-2+f)nbac", `Messages);
    (Props.cell ~cf:Props.avt ~nf:Props.avt, "inbac", `Delays_and_message_cap);
  ]

let check_one cell which (m : Measure.nice) =
  let n = m.Measure.n and f = m.Measure.f in
  let metric = m.Measure.metrics in
  let msg_bound = Bounds.messages ~n ~f cell in
  let delay_bound = Bounds.delays cell in
  match which with
  | `Both ->
      metric.Metrics.messages = msg_bound
      && Float.equal metric.Metrics.delays (float_of_int delay_bound)
  | `Messages -> metric.Metrics.messages = msg_bound
  | `Delays -> Float.equal metric.Metrics.delays (float_of_int delay_bound)
  | `Delays_and_message_cap ->
      (* delay-optimal protocols that additionally match the message
         optimum among delay-optimal protocols (Theorem 5 for INBAC) *)
      Float.equal metric.Metrics.delays (float_of_int delay_bound)
      && metric.Metrics.messages
         = Bounds.messages_given_optimal_delays ~n ~f cell

let verifications ?jobs ~pairs () =
  (* one flat batch over (maximal cell, (n, f)) instead of nine separate
     sweeps: every nice run is independent and Batch.run's ordering makes
     the per-cell measurement lists identical to the sequential sweeps *)
  let valid = List.filter (fun (n, f) -> f >= 1 && f <= n - 1) pairs in
  let per = List.length valid in
  let work =
    List.concat_map
      (fun (_, protocol, _) ->
        List.map (fun (n, f) -> (protocol, n, f)) valid)
      maxima
  in
  let measured =
    Array.of_list
      (Batch.run ?jobs
         (fun (protocol, n, f) -> Measure.nice_run ~protocol ~n ~f ())
         work)
  in
  List.mapi
    (fun i (cell, protocol, which) ->
      let measurements = List.init per (fun k -> measured.((i * per) + k)) in
      let all_ok =
        measurements <> []
        && List.for_all
             (fun m ->
               check_one cell which m && m.Measure.metrics.Metrics.all_decided)
             measurements
      in
      { cell; protocol; measurements; all_ok })
    maxima

let render_checked ?jobs ~pairs () =
  let vs = verifications ?jobs ~pairs () in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "Table 1 - tight lower bounds (message delays / messages) per cell\n";
  Buffer.add_string buf
    "(CF = properties kept in every crash-failure execution, NF = in every\n\
     network-failure execution; a cell exists only when NF is a subset of CF)\n\n";
  Buffer.add_string buf (grid ());
  Buffer.add_string buf
    "\nVerification: each locally-maximal cell's optimal protocol, measured\n\
     over the (n, f) sweep, achieves its bound in every nice execution:\n\n";
  let table =
    Ascii.create
      ~header:[ "cell"; "protocol"; "optimal in"; "runs"; "achieves bound" ]
  in
  List.iter
    (fun v ->
      let which =
        match List.find_opt (fun (c, p, _) -> c = v.cell && p = v.protocol) maxima with
        | Some (_, _, `Both) -> "delays+messages"
        | Some (_, _, `Messages) -> "messages"
        | Some (_, _, `Delays) -> "delays"
        | Some (_, _, `Delays_and_message_cap) -> "delays (msg-opt given delays)"
        | None -> "?"
      in
      Ascii.add_row table
        [
          Format.asprintf "%a" Props.pp_cell v.cell;
          v.protocol;
          which;
          string_of_int (List.length v.measurements);
          (if v.all_ok then "yes" else "NO");
        ])
    vs;
  Buffer.add_string buf (Ascii.render table);
  (Buffer.contents buf, List.for_all (fun v -> v.all_ok) vs)

let render ?jobs ~pairs () = fst (render_checked ?jobs ~pairs ())
