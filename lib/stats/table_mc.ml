let default_protocols =
  [
    "inbac"; "inbac-fast-abort"; "inbac-undershoot"; "1nbac"; "2pc";
    "2pc-classic"; "3pc"; "(n-1+f)nbac"; "(2n-2)nbac"; "(2n-2+f)nbac";
  ]

let default_classes = Mc_run.[ Nice; Crash; Network ]

type row = {
  outcome : Mc_run.outcome;
  claimed : Props.t;  (** what the protocol's cell claims for this class *)
  ok : bool;
}

(* Which claimed property a model-checking violation refutes. *)
let claims_property (p : Props.t) = function
  | Mc_replay.Agreement -> p.Props.a
  | Mc_replay.Validity -> p.Props.v
  | Mc_replay.Termination -> p.Props.t

let claimed_for_class (cell : Props.cell) = function
  | Mc_run.Nice -> Props.avt  (* failure-free executions must solve NBAC *)
  | Mc_run.Crash -> cell.Props.cf
  | Mc_run.Network | Mc_run.All -> cell.Props.nf

(* A violation refutes the claim when the violated property is claimed
   for the class (and the engine must confirm the counterexample); a
   clean exploration can only fail to refute — like the fuzzing battery,
   but over EVERY schedule at the bound when the counters say
   "exhausted". *)
let row_ok (o : Mc_run.outcome) claimed =
  match o.Mc_run.violation with
  | None -> true
  | Some v ->
      (not (claims_property claimed v.Mc_replay.property))
      && o.Mc_run.replay_verified = Some true

let rows ?(protocols = default_protocols) ?(classes = default_classes)
    ?budgets ?fp ?pool ?symmetry ?jobs ?visited ~n ~f () =
  List.concat_map
    (fun protocol ->
      let cell = (Complexity.find_exn protocol).Complexity.cell in
      List.map
        (fun klass ->
          let outcome =
            Mc_run.run ?budgets ?fp ?pool ?symmetry ?jobs ?visited ~protocol
              ~n ~f ~klass ()
          in
          let claimed = claimed_for_class cell klass in
          { outcome; claimed; ok = row_ok outcome claimed })
        classes)
    protocols

let render_checked ?protocols ?classes ?budgets ?fp ?pool ?symmetry ?jobs
    ?visited ~n ~f () =
  let rs =
    rows ?protocols ?classes ?budgets ?fp ?pool ?symmetry ?jobs ?visited ~n ~f
      ()
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Model checking at n=%d, f=%d - every schedule of the bounded space\n\
        per execution class (nice: synchronous and failure-free; crash: up\n\
        to f crash injections; network: commit-layer messages may miss\n\
        their synchronous slot). A verdict row is consistent when every\n\
        violation found refutes only properties the protocol's cell does\n\
        not claim for that class, and the engine replays it.\n\n"
       n f);
  (* the default (per-item) header stays byte-identical; shared mode is
     labelled because its counters are jobs-dependent *)
  (match visited with
  | Some Mc_limits.Shared ->
      Buffer.add_string buf
        "Shared visited table: states dedup globally per vote-set group;\n\
         state counts depend on --jobs (verdicts do not).\n\n"
  | Some Mc_limits.Per_item | None -> ());
  let table =
    Ascii.create
      ~header:
        [
          "protocol"; "class"; "states"; "schedules"; "pruned"; "verdict";
          "claimed"; "ok";
        ]
  in
  List.iter
    (fun r ->
      let o = r.outcome in
      let c = o.Mc_run.counters in
      Ascii.add_row table
        [
          o.Mc_run.protocol;
          Mc_run.class_name o.Mc_run.klass;
          string_of_int c.Mc_limits.states;
          string_of_int c.Mc_limits.schedules;
          string_of_int (c.Mc_limits.sleep_skips + c.Mc_limits.dedup_hits);
          Mc_run.verdict_string o;
          Props.to_string r.claimed;
          (if r.ok then "yes" else "NO");
        ])
    rs;
  Buffer.add_string buf (Ascii.render table);
  (Buffer.contents buf, List.for_all (fun r -> r.ok) rs)

let render ?protocols ?classes ?budgets ?fp ?pool ?symmetry ?jobs ?visited ~n
    ~f () =
  fst
    (render_checked ?protocols ?classes ?budgets ?fp ?pool ?symmetry ?jobs
       ?visited ~n ~f ())
