(** Complexity series — the "figures" of the reproduction: messages and
    delays as functions of [n] (at fixed [f]) or of [f] (at fixed [n]),
    per protocol, measured on nice executions. Rendered as aligned tables
    and as CSV for external plotting. *)

type point = { x : int; messages : int; delays : float }
type series = { protocol : string; points : point list }

val over_n :
  ?jobs:int -> protocols:string list -> f:int -> ns:int list -> unit ->
  series list
(** Skips (n, f) combinations with [f > n-1]. Each (protocol, n) point
    is an independent nice run, evaluated through {!Batch.run}: [?jobs]
    sets the domain count and the result is independent of it. *)

val over_f :
  ?jobs:int -> protocols:string list -> n:int -> fs:int list -> unit ->
  series list

val crossover_f1 : ns:int list -> (int * int * int) list
(** The paper's f = 1 comparison: [(n, inbac messages, 2pc messages)] —
    INBAC pays exactly 2 extra messages over 2PC at every n. *)

val to_csv : x_label:string -> series list -> string
(** One line per (protocol, x): [protocol,x,messages,delays]. *)

val render_over_n :
  ?jobs:int -> protocols:string list -> f:int -> ns:int list -> unit -> string

val render_over_f :
  ?jobs:int -> protocols:string list -> n:int -> fs:int list -> unit -> string
