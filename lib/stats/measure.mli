(** Nice-execution measurements checked against the paper's closed forms. *)

type nice = {
  protocol : string;
  n : int;
  f : int;
  metrics : Metrics.t;
  expected_messages : int;
  expected_delays : int;
}

val messages_match : nice -> bool
val delays_match : nice -> bool
val ok : nice -> bool
(** Both match, every process decided commit, and consensus stayed idle. *)

val nice_run : ?consensus:Registry.consensus_impl -> protocol:string -> n:int -> f:int -> unit -> nice
(** Run the protocol's nice execution and pair the measured metrics with
    the {!Complexity} formulas.
    @raise Not_found for unknown protocols. *)

val sweep :
  ?jobs:int -> protocols:string list -> pairs:(int * int) list -> unit ->
  nice list
(** [nice_run] over every (protocol, (n, f)) combination with [f <= n-1].
    The runs are independent and fanned out through {!Batch.run};
    [?jobs] sets the domain count without affecting the result order. *)

val default_pairs : (int * int) list
(** The (n, f) grid used by the benches: n ∈ {2, 3, 5, 8, 13, 21, 34},
    f ∈ {1, 2, n/2, n-1} (deduplicated, clamped). *)
