type result = {
  protocol : string;
  label : string;
  runs : int;
  nbac_ok : int;
  agreement_violations : int;
  validity_violations : int;
  termination_violations : int;
  mean_decision_delays : float;
  max_decision_delays : float;
}

let aggregate ~protocol ~label reports =
  let runs = List.length reports in
  let nbac_ok = ref 0 in
  let agreement_violations = ref 0 in
  let validity_violations = ref 0 in
  let termination_violations = ref 0 in
  let delays = ref [] in
  List.iter
    (fun report ->
      let v = Check.run report in
      if Check.solves_nbac v then incr nbac_ok;
      if not v.Check.agreement then incr agreement_violations;
      if not (Check.validity v) then incr validity_violations;
      if not v.Check.termination then incr termination_violations;
      if Report.all_correct_decided report then
        match Report.delays_to_last_decision report with
        | Some d -> delays := d :: !delays
        | None -> ())
    reports;
  let mean_decision_delays =
    match !delays with
    | [] -> Float.nan
    | ds -> List.fold_left ( +. ) 0.0 ds /. float_of_int (List.length ds)
  in
  let max_decision_delays =
    List.fold_left Float.max 0.0 !delays
  in
  {
    protocol;
    label;
    runs;
    nbac_ok = !nbac_ok;
    agreement_violations = !agreement_violations;
    validity_violations = !validity_violations;
    termination_violations = !termination_violations;
    mean_decision_delays;
    max_decision_delays;
  }

let battery ?jobs ~label ~protocol scenario_of ~runs =
  let runner = Registry.find_exn protocol in
  (* seeded runs are independent; Batch.run preserves seed order so the
     aggregate folds over the same report sequence as List.init did *)
  let reports =
    Batch.run ?jobs
      (fun seed -> runner.Registry.run (scenario_of seed))
      (List.init runs (fun i -> i + 1))
  in
  aggregate ~protocol ~label reports

let crash_failure ?(runs = 50) ?jobs ~protocol ~n ~f () =
  battery ?jobs ~label:"crash storms" ~protocol
    (fun seed -> Witness.crash_storm ~n ~f ~seed)
    ~runs

let network_failure ?(runs = 50) ?jobs ~protocol ~n ~f () =
  battery ?jobs ~label:"eventual synchrony" ~protocol
    (fun seed -> Witness.eventual_synchrony ~n ~f ~seed)
    ~runs

let mixed ?(runs = 50) ?jobs ~protocol ~n ~f () =
  let u = Sim_time.default_u in
  battery ?jobs ~label:"crash + slow network" ~protocol
    (fun seed ->
      let rng = Rng.create (seed * 7919) in
      let victim = Pid.of_rank (1 + Rng.int rng ~bound:n) in
      Scenario.with_crashes
        (Witness.eventual_synchrony ~n ~f ~seed)
        [ (victim, Scenario.Before (Rng.int rng ~bound:(6 * u))) ])
    ~runs

let render ?(runs = 50) ?jobs ~protocols ~n ~f () =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "Stress batteries: %d seeded scenarios per cell (n=%d, f=%d)\n\
        violations counted over NBAC's three properties\n\n"
       runs n f);
  let table =
    Ascii.create
      ~header:
        [
          "protocol"; "battery"; "NBAC ok"; "A viol."; "V viol."; "T viol.";
          "mean delays"; "max delays";
        ]
  in
  List.iter
    (fun protocol ->
      List.iter
        (fun result ->
          Ascii.add_row table
            [
              result.protocol;
              result.label;
              Printf.sprintf "%d/%d" result.nbac_ok result.runs;
              string_of_int result.agreement_violations;
              string_of_int result.validity_violations;
              string_of_int result.termination_violations;
              (if Float.is_nan result.mean_decision_delays then "-"
               else Printf.sprintf "%.1f" result.mean_decision_delays);
              Printf.sprintf "%.0f" result.max_decision_delays;
            ])
        [
          crash_failure ~runs ?jobs ~protocol ~n ~f ();
          network_failure ~runs ?jobs ~protocol ~n ~f ();
          mixed ~runs ?jobs ~protocol ~n ~f ();
        ];
      Ascii.add_separator table)
    protocols;
  Buffer.add_string buf (Ascii.render table);
  Buffer.contents buf
