(** A latency accumulator with exact percentiles.

    Samples are kept verbatim (a growable float buffer) and percentiles
    are computed by nearest-rank over a sorted copy, so [p50 <= p95 <=
    p99 <= max] holds by construction — the property the bench JSON
    validator gates on. Exactness over streaming approximation is the
    right trade here: the largest consumer (the multi-shot commit bench)
    records one sample per committed transaction, a few thousand floats
    per arm. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is the initial buffer size (default 1024); the buffer
    doubles as needed. *)

val add : t -> float -> unit
val count : t -> int

val percentile : t -> float -> float
(** [percentile t q] with [q] in [\[0, 1\]]: the nearest-rank [q]-th
    percentile, [nan] when no sample was recorded.
    @raise Invalid_argument when [q] is outside [\[0, 1\]]. *)

type summary = {
  count : int;
  mean : float;  (** [nan] when empty, like the percentiles *)
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val summary : t -> summary

val pp_summary : Format.formatter -> summary -> unit
(** ["p50/p95/p99 1.0/2.0/3.0 (max 4.0, n=128)"], or ["no samples"]. *)
