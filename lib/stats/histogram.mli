(** A latency accumulator with exact or streaming percentiles.

    The default ({!create}) keeps samples verbatim (a growable float
    buffer) and computes percentiles by nearest-rank over a sorted copy —
    exact, and the right trade for bounded runs that record a few
    thousand floats per arm. The soak-mode variant ({!streaming}) folds
    samples into a fixed array of equal-width bins plus an overflow bin,
    so memory stays O(bins) over a million-transaction run; its
    percentiles report the covering bin's upper edge (error bounded by
    one bin width, [max /. bins]), clamped to the exact observed maximum.
    Either way [p50 <= p95 <= p99 <= max] holds by construction — the
    property the bench JSON validator gates on. *)

type t

val create : ?capacity:int -> unit -> t
(** The exact variant. [capacity] is the initial buffer size (default
    1024); the buffer doubles as needed. *)

val streaming : bins:int -> max:float -> t
(** The fixed-memory variant: [bins] equal-width bins over [\[0, max\]]
    plus one overflow bin for samples beyond [max] (those report the
    observed maximum from any percentile that lands on them). [count],
    [mean] and [max] stay exact; percentiles carry at most one bin width
    ([max /. bins]) of error.
    @raise Invalid_argument when [bins < 1] or [max <= 0]. *)

val add : t -> float -> unit
val count : t -> int

val percentile : t -> float -> float
(** [percentile t q] with [q] in [\[0, 1\]]: the nearest-rank [q]-th
    percentile, [nan] when no sample was recorded.
    @raise Invalid_argument when [q] is outside [\[0, 1\]]. *)

type summary = {
  count : int;
  mean : float;  (** [nan] when empty, like the percentiles *)
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val summary : t -> summary

val pp_summary : Format.formatter -> summary -> unit
(** ["p50/p95/p99 1.0/2.0/3.0 (max 4.0, n=128)"], or ["no samples"]. *)
