(** Protocol and consensus automaton signatures.

    Every protocol of the paper is implemented as a pure state machine: the
    handlers receive the current state and an event and return the new
    state together with a list of {!type:action}s. All effects (message
    transmission, timers, decisions, invoking the consensus service) are
    interpreted by the engine, which keeps protocol code directly
    comparable to the paper's pseudo-code and unit-testable in isolation.

    Conventions shared with the pseudo-code:
    - [Env.u] is the known upper bound [U] on synchronous message delay;
      one "unit" of a timer equals [U] (appendix remark (d));
    - timers are named, may be set several times, and deliver one timeout
      per set (unless cancelled in the meantime — see {!Cancel_timer});
    - a message delivery event has priority over a timeout event at the
      same instant (appendix remark (b));
    - guards model the pseudo-code's "upon <state predicate>" events
      (e.g. INBAC's [cnt + cnt_help >= n - f and wait ...]). *)

type env = {
  n : int;  (** number of processes *)
  f : int;  (** maximum number of crashes tolerated, 1 <= f <= n - 1 *)
  u : Sim_time.t;  (** synchronous delay bound U, in ticks *)
  self : Pid.t;
}

(** When a timer fires, relative to now ([After]) or at an absolute
    multiple of [U] ([At_delay k] = instant [k * U]), matching the
    pseudo-code's "set timer to time k". *)
type fire = At_delay of int | After of Sim_time.t

type 'msg action =
  | Send of Pid.t * 'msg
      (** [pl.Send]: transmit over the perfect point-to-point link. A
          self-addressed send is delivered immediately and not counted as
          a network message (paper footnote 10). *)
  | Set_timer of { id : string; fire : fire }
  | Cancel_timer of string
      (** Invalidate every timeout of this name (at this layer) that is
          currently outstanding: a cancelled set is suppressed at fire
          time and does not invoke the protocol handler. A later
          [Set_timer] with the same name arms the timer afresh.
          Cancelling a timer that was never set is a no-op. Protocols use
          this to retire their timeout machinery once they have decided,
          so stale timeouts neither run handlers nor stretch the run's
          quiescence time. *)
  | Decide of Vote.decision
      (** Decide at this layer: the commit protocol's decision, or the
          consensus service's decision when emitted by a consensus
          automaton. Only the first decision of each process is recorded
          (and traced — a conflicting re-decision is additionally traced
          so the checkers can flag the stability breach); protocols guard
          with their own [decided] flags as in the paper. *)
  | Propose_consensus of Vote.t
      (** Commit layer only: propose to the underlying uniform consensus
          instance [uc]/[iuc]. *)
  | Note of string * string
      (** Trace annotation, e.g. INBAC phase transitions (Figure 1). *)

type 'state state_hasher = Fingerprint.t -> 'state -> unit
(** Canonical state hasher: feed every semantically relevant field of the
    state into the accumulator, in a fixed order, framing variable-length
    data with an explicit length. Two states must feed identical word
    sequences iff they are structurally equal — the model checker
    deduplicates visited states by the resulting digest, so an
    under-hashed field is an unsoundness (distinct states equated), not a
    slowdown.

    Renaming discipline (symmetry reduction): every pid-valued datum must
    go through {!Fingerprint.add_pid} (helpers: {!Proto_util.fp_pid} and
    friends), and pid-{e keyed} collections whose order is not itself
    semantically meaningful should be fed in renamed-sorted order
    ([Proto_util.fp_vset]/[fp_pid_set] do). The checker then hashes a
    state under candidate process permutations and collapses each
    symmetry orbit to one fingerprint; with no permutation installed the
    renaming helpers are the identity, so hashing is unchanged. *)

type 'msg msg_hasher = Fingerprint.t -> 'msg -> unit
(** Canonical {e message} hasher, the payload-side companion of
    {!type:state_hasher} with the same renaming discipline. The model
    checker normally covers an in-flight payload by its intern id (one
    word), but a canonicalization pass must re-hash payloads under the
    candidate renaming, which is what this hook provides. [None] is only
    sound for symmetry reduction when the message type embeds no pids and
    no rank-derived data (the fallback marshals the payload, which is
    renaming-blind). *)

module type PROTOCOL = sig
  type state
  type msg

  val name : string

  val uses_consensus : bool
  (** Whether any execution may invoke the consensus service. Protocols
      with [uses_consensus = false] never emit [Propose_consensus]. *)

  val pp_msg : Format.formatter -> msg -> unit

  val init : env -> state

  val on_propose : env -> state -> Vote.t -> state * msg action list
  (** The process proposes its vote (the [Propose] event). *)

  val on_deliver : env -> state -> src:Pid.t -> msg -> state * msg action list
  val on_timeout : env -> state -> id:string -> state * msg action list

  val on_consensus_decide :
    env -> state -> Vote.t -> state * msg action list
  (** The underlying consensus instance decided. Never invoked for
      protocols with [uses_consensus = false]. *)

  val guards : (string * (env -> state -> bool)) list
  (** State-predicate events. After every handler, the engine fires
      [on_guard] for each guard whose predicate holds, re-evaluating until
      none holds (each firing must change the state so that its predicate
      becomes false, as in the pseudo-code). *)

  val on_guard : env -> state -> id:string -> state * msg action list

  val hash_state : state state_hasher option
  (** Zero-marshal fingerprinting for the model checker. [None] falls
      back to hashing [Marshal.to_string state []] — correct but an order
      of magnitude slower, and additionally sensitive to the physical
      sharing of the state value where the canonical hasher sees only
      structure. *)

  val hash_msg : msg msg_hasher option
  (** See {!type:msg_hasher}. *)

  val symmetry : n:int -> f:int -> Symmetry.t
  (** The protocol's process-permutation group: which processes are
      behaviorally interchangeable at this [(n, f)]. Most protocols of
      the paper are symmetric in everything but a coordinator prefix
      ({!Symmetry.after_rank}); chain- and ring-structured ones are
      {!Symmetry.trivial}. Declaring too little loses state-space
      collapse; declaring too much is unsound (see {!Symmetry}). *)
end

module type CONSENSUS = sig
  type state
  type msg

  val name : string

  val pp_msg : Format.formatter -> msg -> unit
  val init : env -> state
  val on_propose : env -> state -> Vote.t -> state * msg action list
  val on_deliver : env -> state -> src:Pid.t -> msg -> state * msg action list
  val on_timeout : env -> state -> id:string -> state * msg action list

  val hash_state : state state_hasher option
  (** See {!PROTOCOL.hash_state}. *)

  val hash_msg : msg msg_hasher option
  (** See {!type:msg_hasher}. *)

  val symmetry : n:int -> f:int -> Symmetry.t
  (** See {!PROTOCOL.symmetry}. A consensus automaton whose behavior
      depends on rank only through renamable data (e.g. Paxos ballot
      ownership, provided [hash_msg]/[hash_state] rename it) may declare
      {!Symmetry.full}; the machine meets it with the commit layer's
      group. *)
end
