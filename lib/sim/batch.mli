(** Parallel batch execution of independent simulated runs.

    Every reproduction artifact (the tables, the robustness matrix, the
    stress batteries, the complexity series, the workload comparison) is
    the aggregation of many {e independent} executions: each
    {!Engine.Make} run owns all of its mutable state — event queue,
    trace, RNG — so a batch of runs is embarrassingly parallel. [run]
    fans the work out over OCaml 5 [Domain] workers and returns the
    results {b in input order}, so batched artifacts are byte-identical
    to what the sequential path produces.

    The worker count is capped at [Domain.recommended_domain_count ()]
    (and at the batch size); pass [~jobs:1] to force the sequential path
    — the escape hatch micro-benchmarks use so that they measure
    single-run cost, not scheduling. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]: the parallelism used when
    [?jobs] is omitted. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [run ?jobs f items] applies [f] to every item, fanning the
    applications out over [min jobs (length items)] domains, and returns
    the results in input order. [f] must not share mutable state across
    items (engine runs never do). If any application raises, the batch
    still completes and the exception of the {e earliest} item that
    failed is re-raised — the same exception the sequential path would
    surface first. Equivalent to [List.map f items] when [jobs <= 1] or
    the list has fewer than two items. *)
