(** Parallel batch execution of independent simulated runs.

    Every reproduction artifact (the tables, the robustness matrix, the
    stress batteries, the complexity series, the workload comparison) is
    the aggregation of many {e independent} executions: each
    {!Engine.Make} run owns all of its mutable state — event queue,
    trace, RNG — so a batch of runs is embarrassingly parallel. [run]
    fans the work out over OCaml 5 [Domain] workers and returns the
    results {b in input order}, so batched artifacts are byte-identical
    to what the sequential path produces.

    The worker count defaults to {!default_jobs} (and is capped at the
    batch size); pass [~jobs:1] to force the sequential path — the
    escape hatch micro-benchmarks use so that they measure single-run
    cost, not scheduling.

    Both runners refuse to nest: invoked from inside one of their own
    worker domains (a parallel consumer built from parallel pieces) they
    run sequentially instead of spawning [jobs^2] domains — the outer
    fan-out already owns the cores. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], clamped against the
    [ACTABLE_JOBS] environment variable when it is set to a positive
    integer: the parallelism used when [?jobs] is omitted. The override
    only caps the default — an explicit [~jobs] argument is passed
    through untouched. Unparsable or non-positive values of
    [ACTABLE_JOBS] are ignored. *)

val run : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [run ?jobs f items] applies [f] to every item, fanning the
    applications out over [min jobs (length items)] domains, and returns
    the results in input order. [f] must not share mutable state across
    items (engine runs never do). If any application raises, the shared
    cursor is poisoned so workers stop claiming further items (in-flight
    applications still finish), and the exception of the {e earliest}
    item that failed is re-raised with its original backtrace — the same
    exception the sequential path would surface first, because items are
    claimed in index order. Equivalent to [List.map f items] when
    [jobs <= 1], when the list has fewer than two items, or when called
    from inside a worker domain of either runner (no nested spawning). *)

val run_stealing :
  ?jobs:int ->
  ?split:('a -> 'a list option) ->
  merge:('b -> 'b -> 'b) ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [run_stealing ?jobs ?split ~merge f items] is [run] for batches with
    heavily skewed per-item costs: every domain owns a deque of work
    units, pops its own newest unit, and — when out of work — steals the
    {e oldest half} of another domain's deque (the shallowest, typically
    fattest units), so one fat item no longer pins a domain while the
    rest idle, and the steal traffic amortizes to O(log n) lock
    acquisitions per deque. An idle worker backs off exponentially and
    per-domain ([Domain.cpu_relax] spins doubling into timed sleeps
    capped at 1ms), so thieves cannot starve their victims on machines
    with fewer cores than domains.

    When some domain is starving, a worker about to execute a unit first
    offers it to [split]; [Some pieces] (non-empty) replaces the unit
    with [pieces], which land on the claimant's deque and become
    stealable immediately — items re-split on demand, exactly when the
    fleet needs parallelism. [None] (or [Some []]) means "not worth
    splitting; execute as is". With [split] absent, every item maps to
    exactly one [f] application.

    All results originating from the same input item are folded with
    [merge]; the returned list has one entry per input item, in input
    order. The piece structure and merge order depend on runtime timing,
    so [merge] must be commutative and associative for the per-item
    results to be reproducible ([Mc_limits.add_counters] qualifies), and
    even then any result component sensitive to the {e decomposition}
    (e.g. dedup counts against per-piece tables) is only deterministic
    when [split] is absent.

    On the first exception the scheduler is poisoned (no further units
    start) and the exception whose originating item has the smallest
    index is re-raised with its backtrace. Equivalent to
    [List.map f items] when [jobs <= 1], when the list has fewer than
    two items, or when called from inside a worker domain ([split] is
    never consulted on those paths). *)
