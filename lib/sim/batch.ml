let default_jobs () = Domain.recommended_domain_count ()

(* Work stealing is overkill here: items (simulated runs) are coarse and
   numerous, so a shared atomic cursor over an array balances well. Each
   slot is written by exactly one worker before the joins, and read only
   after them, so [Domain.join] provides the needed happens-before. *)
let run ?jobs f items =
  let work = Array.of_list items in
  let n = Array.length work in
  let jobs =
    min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          let r =
            try Ok (f work.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ())
          in
          results.(i) <- Some r;
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false (* every index claimed before the joins *))
  end
