(* ------------------------------------------------------------------ *)
(* Worker-count policy.

   [default_jobs] clamps the runtime's recommendation against the
   ACTABLE_JOBS environment override: the variable caps the parallelism
   used when a caller omits [?jobs] (containers and CI runners often
   advertise more domains than the cgroup actually grants). An explicit
   [~jobs] argument is never clamped — callers who ask get what they
   asked for.

   Nested fan-outs must not oversubscribe: a worker domain that itself
   calls [run] (a parallel consumer built from parallel pieces) would
   spawn jobs^2 domains. Every worker marks its domain via a DLS flag,
   and both runners fall back to the sequential path when invoked from a
   marked domain — the outer fan-out already owns the cores. *)

let env_jobs () =
  match Sys.getenv_opt "ACTABLE_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some j when j >= 1 -> Some (min j 256)
      | _ -> None)

let default_jobs () =
  let recommended = max 1 (Domain.recommended_domain_count ()) in
  match env_jobs () with
  | Some cap -> min recommended cap
  | None -> recommended

let inside_worker = Domain.DLS.new_key (fun () -> false)

(* The calling domain doubles as worker 0, so it must carry the mark for
   the duration of the batch and drop it afterwards (spawned domains die
   with their mark). *)
let as_worker body =
  Domain.DLS.set inside_worker true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set inside_worker false) body

(* ------------------------------------------------------------------ *)
(* The shared-cursor runner.

   Items (simulated runs) are coarse and numerous, so a shared atomic
   cursor over an array balances well. Each slot is written by exactly
   one worker before the joins, and read only after them, so
   [Domain.join] provides the needed happens-before. On the first
   failure the cursor is poisoned (pushed past [n]) so the other workers
   stop claiming items: claims are issued in index order, hence every
   index below the earliest failure has already been claimed and runs to
   completion — the re-raised exception is exactly the one the
   sequential path would surface first. *)

let run ?jobs f items =
  let work = Array.of_list items in
  let n = Array.length work in
  let jobs =
    min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside_worker then List.map f items
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (match f work.(i) with
          | v -> results.(i) <- Some (Ok v)
          | exception e ->
              results.(i) <- Some (Error (e, Printexc.get_raw_backtrace ()));
              Atomic.set cursor n (* poison: abort the batch promptly *));
          loop ()
        end
      in
      loop ()
    in
    let spawned () =
      Domain.DLS.set inside_worker true;
      worker ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn spawned) in
    as_worker worker;
    List.iter Domain.join helpers;
    (* Unclaimed (None) slots can only follow the earliest Error: claims
       are contiguous, so scanning in order meets that Error first. *)
    let first_error =
      Array.fold_left
        (fun acc r ->
          match (acc, r) with
          | None, Some (Error (e, bt)) -> Some (e, bt)
          | _ -> acc)
        None results
    in
    match first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list results
        |> List.map (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false (* no error: all ran *))
  end

(* ------------------------------------------------------------------ *)
(* The work-stealing runner.

   For fan-outs whose items have heavily skewed costs (the model
   checker's schedule-prefix subtrees), a shared cursor still pins one
   fat item on one domain. Here every domain owns a deque of
   (origin, payload) units; it pops its own newest end (depth-first on
   the pieces it created), and an idle domain steals from the oldest end
   of a victim — and takes the victim's whole oldest *half*, not one
   unit: steal granularity that halves the victim amortizes the lock
   traffic over log(n) steals per deque instead of one steal per unit,
   which is what made fine-grained stealing a net loss on few cores.
   When the fleet is starving (some worker found nothing to pop or
   steal) a worker claiming a unit first offers it to [split]: the
   returned pieces replace the unit, land on the claimant's deque, and
   are immediately stealable — items re-split on demand, exactly when
   the parallelism needs it.

   An idle worker backs off per-domain and exponentially: a short
   [cpu_relax] spin that doubles per failed sweep, escalating to timed
   sleeps capped at 1ms. Each worker keeps its own attempt counter (no
   cross-domain reads on the idle path), so on machines with fewer cores
   than domains a thief cannot starve the very victim it waits on, and
   on big machines a momentarily idle worker still reacts within
   microseconds.

   Results are accumulated per originating item under a mutex with
   [merge], so [merge] must be commutative and associative; the piece
   structure (and with it the merge order) depends on timing. Callers
   that need bit-deterministic per-item results simply pass no [split]:
   each item then maps to exactly one [f] application and [merge] is
   never called. *)

type 'a deque = {
  mu : Mutex.t;
  mutable units : (int * 'a) list;  (* head = owner's (newest) end *)
}

(* Exponential per-domain backoff. Attempts 1..6 spin 2^attempt pause
   instructions; later attempts sleep, doubling from 50us to a 1ms cap.
   The counter is per-worker state, reset on every successful claim. *)
let backoff attempt =
  if attempt <= 6 then
    for _ = 1 to 1 lsl attempt do
      Domain.cpu_relax ()
    done
  else
    Unix.sleepf (min 0.001 (0.00005 *. float_of_int (1 lsl (min (attempt - 7) 5))))

let run_stealing ?jobs ?split ~merge f items =
  let work = Array.of_list items in
  let n = Array.length work in
  let jobs =
    min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside_worker then List.map f items
  else begin
    let deques =
      Array.init jobs (fun _ -> { mu = Mutex.create (); units = [] })
    in
    (* round-robin seeding, index order preserved within each deque *)
    for i = n - 1 downto 0 do
      let d = deques.(i mod jobs) in
      d.units <- (i, work.(i)) :: d.units
    done;
    let remaining = Atomic.make n in
    let starving = Atomic.make 0 in
    let poisoned = Atomic.make false in
    let state_mu = Mutex.create () in
    let results = Array.make n None in
    let error = ref None in
    let record_ok origin r =
      Mutex.lock state_mu;
      results.(origin) <-
        (match results.(origin) with
        | None -> Some r
        | Some prev -> Some (merge prev r));
      Mutex.unlock state_mu
    in
    let record_error origin e bt =
      Mutex.lock state_mu;
      (match !error with
      | Some (o, _, _) when o <= origin -> ()
      | _ -> error := Some (origin, e, bt));
      Mutex.unlock state_mu;
      Atomic.set poisoned true
    in
    let pop_own d =
      Mutex.lock d.mu;
      let u =
        match d.units with
        | [] -> None
        | x :: tl ->
            d.units <- tl;
            Some x
      in
      Mutex.unlock d.mu;
      u
    in
    (* Take the victim's oldest half (at least one unit), oldest first.
       The shallowest units are the fattest, and batching them means one
       lock acquisition moves half the victim's backlog. *)
    let steal d =
      Mutex.lock d.mu;
      let batch =
        match d.units with
        | [] -> []
        | units ->
            let len = List.length units in
            let keep = len / 2 in
            let rec split_at k acc = function
              | rest when k = 0 -> (List.rev acc, rest)
              | x :: tl -> split_at (k - 1) (x :: acc) tl
              | [] -> (List.rev acc, [])
            in
            let kept, oldest = split_at keep [] units in
            d.units <- kept;
            List.rev oldest (* oldest unit first *)
      in
      Mutex.unlock d.mu;
      batch
    in
    let push_pieces d origin pieces =
      Mutex.lock d.mu;
      d.units <- List.map (fun p -> (origin, p)) pieces @ d.units;
      Mutex.unlock d.mu
    in
    let push_units d us =
      Mutex.lock d.mu;
      d.units <- us @ d.units;
      Mutex.unlock d.mu
    in
    let worker w () =
      let my = deques.(w) in
      let flagged = ref false in
      let stop_starving () =
        if !flagged then begin
          Atomic.decr starving;
          flagged := false
        end
      in
      let start_starving () =
        if not !flagged then begin
          Atomic.incr starving;
          flagged := true
        end
      in
      let next_unit () =
        match pop_own my with
        | Some u -> Some u
        | None ->
            let rec sweep k =
              if k > jobs - 2 then None
              else
                match steal deques.((w + 1 + k) mod jobs) with
                | first :: rest ->
                    (* run the fattest stolen unit; bank the others *)
                    if rest <> [] then push_units my rest;
                    Some first
                | [] -> sweep (k + 1)
            in
            sweep 0
      in
      let run_unit origin payload =
        (match f payload with
        | r -> record_ok origin r
        | exception e -> record_error origin e (Printexc.get_raw_backtrace ()));
        Atomic.decr remaining
      in
      let idle = ref 0 in
      let rec loop () =
        if not (Atomic.get poisoned) then
          match next_unit () with
          | Some (origin, payload) ->
              stop_starving ();
              idle := 0;
              (match
                 if Atomic.get starving > 0 then split else None
               with
              | None -> run_unit origin payload
              | Some sp -> (
                  match sp payload with
                  | Some (_ :: _ as pieces) ->
                      (* the unit is replaced by its pieces *)
                      ignore
                        (Atomic.fetch_and_add remaining
                           (List.length pieces - 1));
                      push_pieces my origin pieces
                  | Some [] | None -> run_unit origin payload
                  | exception e ->
                      record_error origin e (Printexc.get_raw_backtrace ());
                      Atomic.decr remaining));
              loop ()
          | None ->
              if Atomic.get remaining > 0 then begin
                start_starving ();
                incr idle;
                backoff !idle;
                loop ()
              end
      in
      loop ();
      stop_starving ()
    in
    let spawned i () =
      Domain.DLS.set inside_worker true;
      worker i ()
    in
    let helpers =
      List.init (jobs - 1) (fun i -> Domain.spawn (spawned (i + 1)))
    in
    as_worker (worker 0);
    List.iter Domain.join helpers;
    match !error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list results
        |> List.map (function
             | Some r -> r
             | None -> assert false (* remaining = 0: every origin merged *))
  end
