let default_jobs () = Domain.recommended_domain_count ()

(* ------------------------------------------------------------------ *)
(* The shared-cursor runner.

   Items (simulated runs) are coarse and numerous, so a shared atomic
   cursor over an array balances well. Each slot is written by exactly
   one worker before the joins, and read only after them, so
   [Domain.join] provides the needed happens-before. On the first
   failure the cursor is poisoned (pushed past [n]) so the other workers
   stop claiming items: claims are issued in index order, hence every
   index below the earliest failure has already been claimed and runs to
   completion — the re-raised exception is exactly the one the
   sequential path would surface first. *)

let run ?jobs f items =
  let work = Array.of_list items in
  let n = Array.length work in
  let jobs =
    min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let results = Array.make n None in
    let cursor = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add cursor 1 in
        if i < n then begin
          (match f work.(i) with
          | v -> results.(i) <- Some (Ok v)
          | exception e ->
              results.(i) <- Some (Error (e, Printexc.get_raw_backtrace ()));
              Atomic.set cursor n (* poison: abort the batch promptly *));
          loop ()
        end
      in
      loop ()
    in
    let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join helpers;
    (* Unclaimed (None) slots can only follow the earliest Error: claims
       are contiguous, so scanning in order meets that Error first. *)
    let first_error =
      Array.fold_left
        (fun acc r ->
          match (acc, r) with
          | None, Some (Error (e, bt)) -> Some (e, bt)
          | _ -> acc)
        None results
    in
    match first_error with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list results
        |> List.map (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false (* no error: all ran *))
  end

(* ------------------------------------------------------------------ *)
(* The work-stealing runner.

   For fan-outs whose items have heavily skewed costs (the model
   checker's schedule-prefix subtrees), a shared cursor still pins one
   fat item on one domain. Here every domain owns a deque of
   (origin, payload) units; it pops its own newest end (depth-first on
   the pieces it created), and an idle domain steals from the oldest end
   of a victim — the shallowest, hence fattest, pending unit. When the
   fleet is starving (some worker found nothing to pop or steal) a
   worker claiming a unit first offers it to [split]: the returned
   pieces replace the unit, land on the claimant's deque, and are
   immediately stealable — items re-split on demand, exactly when the
   parallelism needs it.

   Results are accumulated per originating item under a mutex with
   [merge], so [merge] must be commutative and associative; the piece
   structure (and with it the merge order) depends on timing. Callers
   that need bit-deterministic per-item results simply pass no [split]:
   each item then maps to exactly one [f] application and [merge] is
   never called. *)

type 'a deque = {
  mu : Mutex.t;
  mutable units : (int * 'a) list;  (* head = owner's (newest) end *)
}

let run_stealing ?jobs ?split ~merge f items =
  let work = Array.of_list items in
  let n = Array.length work in
  let jobs =
    min (match jobs with Some j -> max 1 j | None -> default_jobs ()) n
  in
  if jobs <= 1 || n <= 1 then List.map f items
  else begin
    let deques =
      Array.init jobs (fun _ -> { mu = Mutex.create (); units = [] })
    in
    (* round-robin seeding, index order preserved within each deque *)
    for i = n - 1 downto 0 do
      let d = deques.(i mod jobs) in
      d.units <- (i, work.(i)) :: d.units
    done;
    let remaining = Atomic.make n in
    let starving = Atomic.make 0 in
    let poisoned = Atomic.make false in
    let state_mu = Mutex.create () in
    let results = Array.make n None in
    let error = ref None in
    let record_ok origin r =
      Mutex.lock state_mu;
      results.(origin) <-
        (match results.(origin) with
        | None -> Some r
        | Some prev -> Some (merge prev r));
      Mutex.unlock state_mu
    in
    let record_error origin e bt =
      Mutex.lock state_mu;
      (match !error with
      | Some (o, _, _) when o <= origin -> ()
      | _ -> error := Some (origin, e, bt));
      Mutex.unlock state_mu;
      Atomic.set poisoned true
    in
    let pop_own d =
      Mutex.lock d.mu;
      let u =
        match d.units with
        | [] -> None
        | x :: tl ->
            d.units <- tl;
            Some x
      in
      Mutex.unlock d.mu;
      u
    in
    let steal d =
      Mutex.lock d.mu;
      let u =
        match List.rev d.units with
        | [] -> None
        | oldest :: rev_tl ->
            d.units <- List.rev rev_tl;
            Some oldest
      in
      Mutex.unlock d.mu;
      u
    in
    let push_pieces d origin pieces =
      Mutex.lock d.mu;
      d.units <- List.map (fun p -> (origin, p)) pieces @ d.units;
      Mutex.unlock d.mu
    in
    let worker w () =
      let my = deques.(w) in
      let flagged = ref false in
      let stop_starving () =
        if !flagged then begin
          Atomic.decr starving;
          flagged := false
        end
      in
      let start_starving () =
        if not !flagged then begin
          Atomic.incr starving;
          flagged := true
        end
      in
      let next_unit () =
        match pop_own my with
        | Some u -> Some u
        | None ->
            let rec sweep k =
              if k > jobs - 2 then None
              else
                match steal deques.((w + 1 + k) mod jobs) with
                | Some u -> Some u
                | None -> sweep (k + 1)
            in
            sweep 0
      in
      let run_unit origin payload =
        (match f payload with
        | r -> record_ok origin r
        | exception e -> record_error origin e (Printexc.get_raw_backtrace ()));
        Atomic.decr remaining
      in
      let idle = ref 0 in
      let rec loop () =
        if not (Atomic.get poisoned) then
          match next_unit () with
          | Some (origin, payload) ->
              stop_starving ();
              idle := 0;
              (match
                 if Atomic.get starving > 0 then split else None
               with
              | None -> run_unit origin payload
              | Some sp -> (
                  match sp payload with
                  | Some (_ :: _ as pieces) ->
                      (* the unit is replaced by its pieces *)
                      ignore
                        (Atomic.fetch_and_add remaining
                           (List.length pieces - 1));
                      push_pieces my origin pieces
                  | Some [] | None -> run_unit origin payload
                  | exception e ->
                      record_error origin e (Printexc.get_raw_backtrace ());
                      Atomic.decr remaining));
              loop ()
          | None ->
              if Atomic.get remaining > 0 then begin
                start_starving ();
                incr idle;
                (* brief spin, then yield the core: on machines with
                   fewer cores than domains a spinning thief would
                   otherwise starve the very victim it waits on *)
                if !idle < 64 then Domain.cpu_relax ()
                else Unix.sleepf 0.0002;
                loop ()
              end
      in
      loop ();
      stop_starving ()
    in
    let helpers =
      List.init (jobs - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    List.iter Domain.join helpers;
    match !error with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list results
        |> List.map (function
             | Some r -> r
             | None -> assert false (* remaining = 0: every origin merged *))
  end
