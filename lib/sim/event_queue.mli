(** A deterministic priority queue of simulation events.

    Events are ordered by [(time, class, sequence)]:
    - primary key: simulated time,
    - secondary key: event class — the paper's appendix requires that "a
      message delivery event has a higher priority than a timeout event"
      when both occur at the same instant; the engine encodes crashes <
      proposals < deliveries < timeouts as classes 0..3,
    - tertiary key: insertion sequence, which makes the pop order a pure
      function of the push order (no reliance on heap internals). *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:Sim_time.t -> klass:int -> 'a -> unit
(** @raise Invalid_argument if [time < 0] or [klass < 0]. *)

val pop : 'a t -> (Sim_time.t * int * 'a) option
(** Remove and return the minimum event as [(time, klass, payload)], or
    [None] when empty. *)

val peek_time : 'a t -> Sim_time.t option
val is_empty : 'a t -> bool
val size : 'a t -> int

val capacity : 'a t -> int
(** Number of backing slots currently allocated. Draining the queue keeps
    a bounded capacity (popped cells are cleared in place, never pinning
    their payloads), so an engine queue that empties between instants
    does not re-grow from scratch on every refill; a drain after an
    unusually large burst shrinks back to the retention bound. Exposed
    for the regression tests. *)
