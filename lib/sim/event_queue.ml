type 'a cell = { time : Sim_time.t; klass : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a cell array;
  (* [heap.(0..len-1)] is a binary min-heap on (time, klass, seq). *)
  mutable len : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; len = 0; next_seq = 0 }

let cell_lt a b =
  match Sim_time.compare a.time b.time with
  | 0 -> (
      match Int.compare a.klass b.klass with
      | 0 -> a.seq < b.seq
      | c -> c < 0)
  | c -> c < 0

(* [seed] fills the fresh slots, which also covers growing from an empty
   heap (no live cell to borrow as filler). *)
let grow t seed =
  let cap = Array.length t.heap in
  if t.len = cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    let heap = Array.make new_cap seed in
    Array.blit t.heap 0 heap 0 t.len;
    t.heap <- heap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_lt t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && cell_lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && cell_lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time ~klass payload =
  if time < 0 then invalid_arg "Event_queue.add: negative time";
  if klass < 0 then invalid_arg "Event_queue.add: negative class";
  let cell = { time; klass; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t cell;
  t.heap.(t.len) <- cell;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      (* the vacated slot keeps a duplicate reference to a live cell so a
         long-lived queue does not pin the popped payload *)
      t.heap.(t.len) <- t.heap.(0);
      sift_down t 0
    end
    else
      (* drained: drop the backing array, releasing every dead slot *)
      t.heap <- [||];
    Some (top.time, top.klass, top.payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time
let is_empty t = t.len = 0
let size t = t.len
