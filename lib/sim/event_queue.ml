type 'a cell = {
  mutable time : Sim_time.t;
  mutable klass : int;
  mutable seq : int;
  mutable payload : 'a option;
      (* cleared to [None] when the cell pops, so dead heap slots (the
         region beyond [len], plus grow-seed duplicates) never pin a
         popped payload however long the queue lives *)
}

type 'a t = {
  mutable heap : 'a cell array;
  (* [heap.(0..len-1)] is a binary min-heap on (time, klass, seq). *)
  mutable len : int;
  mutable next_seq : int;
  mutable free : 'a cell list;
      (* popped cells awaiting reuse by [add]. A cell enters the list at
         most once per live period (pop handles each live cell exactly
         once), so mutating a reused cell can never corrupt another live
         slot — the only other references to it are dead heap slots,
         which are never read. *)
  mutable free_len : int;
}

(* An engine queue drains between instants and refills at the next one;
   the backing array is kept across drains (popped cells are cleared, not
   freed) so steady-state refills re-use capacity instead of re-growing
   from 16 every instant. The retained capacity is bounded: a drain after
   an unusually large burst shrinks the array back to this many slots. *)
let max_retained = 256

let create () = { heap = [||]; len = 0; next_seq = 0; free = []; free_len = 0 }

let cell_lt a b =
  match Sim_time.compare a.time b.time with
  | 0 -> (
      match Int.compare a.klass b.klass with
      | 0 -> a.seq < b.seq
      | c -> c < 0)
  | c -> c < 0

(* [seed] fills the fresh slots, which also covers growing from an empty
   heap (no live cell to borrow as filler); the duplicates it leaves in
   the dead region un-pin themselves when the seed cell pops. *)
let grow t seed =
  let cap = Array.length t.heap in
  if t.len = cap then begin
    let new_cap = if cap = 0 then 16 else cap * 2 in
    let heap = Array.make new_cap seed in
    Array.blit t.heap 0 heap 0 t.len;
    t.heap <- heap
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if cell_lt t.heap.(i) t.heap.(parent) then begin
      let tmp = t.heap.(i) in
      t.heap.(i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && cell_lt t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && cell_lt t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.heap.(i) in
    t.heap.(i) <- t.heap.(!smallest);
    t.heap.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t ~time ~klass payload =
  if time < 0 then invalid_arg "Event_queue.add: negative time";
  if klass < 0 then invalid_arg "Event_queue.add: negative class";
  let cell =
    match t.free with
    | c :: rest ->
        t.free <- rest;
        t.free_len <- t.free_len - 1;
        c.time <- time;
        c.klass <- klass;
        c.seq <- t.next_seq;
        c.payload <- Some payload;
        c
    | [] -> { time; klass; seq = t.next_seq; payload = Some payload }
  in
  t.next_seq <- t.next_seq + 1;
  grow t cell;
  t.heap.(t.len) <- cell;
  t.len <- t.len + 1;
  sift_up t (t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.heap.(0) in
    let payload =
      match top.payload with
      | Some p -> p
      | None -> assert false (* live cells always carry their payload *)
    in
    (* clearing the popped cell itself un-pins the payload through every
       alias of the record (dead slots, grow-seed duplicates) *)
    top.payload <- None;
    if t.free_len < max_retained then begin
      t.free <- top :: t.free;
      t.free_len <- t.free_len + 1
    end;
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.heap.(0) <- t.heap.(t.len);
      (* the cleared cell parks in the vacated slot: capacity survives
         drain/refill cycles without the slot pinning anything *)
      t.heap.(t.len) <- top;
      sift_down t 0
    end
    else if Array.length t.heap > max_retained then
      (* drained after a burst: keep a bounded number of (cleared) slots *)
      t.heap <- Array.sub t.heap 0 max_retained;
    Some (top.time, top.klass, payload)
  end

let peek_time t = if t.len = 0 then None else Some t.heap.(0).time
let is_empty t = t.len = 0
let size t = t.len
let capacity t = Array.length t.heap
