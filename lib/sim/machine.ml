let guard_fuel = 10_000

module Make (P : Proto.PROTOCOL) (C : Proto.CONSENSUS) = struct
  type wire = Commit_msg of P.msg | Cons_msg of C.msg

  let layer_of_wire = function
    | Commit_msg _ -> Trace.Commit_layer
    | Cons_msg _ -> Trace.Consensus_layer

  let tag_of_wire = function
    | Commit_msg m -> Format.asprintf "%a" P.pp_msg m
    | Cons_msg m -> Format.asprintf "%a" C.pp_msg m

  type sink = {
    send : now:Sim_time.t -> src:Pid.t -> dst:Pid.t -> wire -> Sim_time.t;
    set_timer :
      now:Sim_time.t -> pid:Pid.t -> layer:Trace.layer -> id:string ->
      fire:Proto.fire -> at:Sim_time.t -> epoch:int -> unit;
  }

  type snapshot = {
    mutable s_stamp : int;
        (* value of [t.stamp] when this record was (re)captured; entries
           whose [last_mut] exceeds it have diverged from the record *)
    mutable s_pooled : bool;
    mutable s_trace : Trace.snapshot;
    mutable s_crash_count : int;
    mutable s_epoch_bumps : int;
    s_pstates : P.state array;
    s_cstates : C.state array;
    s_crashed : Sim_time.t option array;
    s_decisions : (Sim_time.t * Vote.decision) option array;
    s_cons_decided : bool array;
    s_send_budget : (Sim_time.t * int) option array;
    s_timer_epochs : (Trace.layer * string * int) list array;
  }

  type t = {
    env_of : Pid.t -> Proto.env;
    u : Sim_time.t;
    mutable sink : sink;
        (* swapped by [reset] when a pooled machine is re-bound to a new
           commit instance *)
    trace : Trace.t;
    trace_on : bool;
        (* tracing never feeds back into the automata; drivers that never
           read traces skip the per-event entry and tag rendering *)
    tags : (wire, string) Hashtbl.t;
        (* memoized [tag_of_wire]: rendering a message tag runs the Format
           machinery, and the model checker re-sends structurally equal
           payloads millions of times across re-executed schedules *)
    pstates : P.state array;
    cstates : C.state array;
    crashed : Sim_time.t option array;
    decisions : (Sim_time.t * Vote.decision) option array;
    cons_decided : bool array;
        (* consensus decision already handed to the commit layer *)
    send_budget : (Sim_time.t * int ref) option array;
        (* [During_sends] crash: remaining network sends at that instant *)
    timer_epochs : (Trace.layer * string * int) list array;
        (* per process: current cancellation epoch of each named timer.
           Immutable alists so snapshot/restore share them by reference
           instead of copying a hashtable per process per snapshot. *)
    pool_on : bool;
    mutable pool : snapshot list;
        (* released snapshot records awaiting recapture *)
    mutable pool_owner : int;
        (* Domain id that owns the pooled records. Pools are strictly
           domain-local: if the machine is ever driven from a different
           domain, the pool is dropped and re-owned rather than handing
           records captured on one domain to another (see [adopt]). *)
    mutable stamp : int;
        (* bumped after every capture; [last_mut] entries are compared
           against a record's [s_stamp] to find which pids diverged *)
    last_mut : int array;
        (* per pid: [stamp] at the time of its last mutation. Monotone:
           restore re-marks rewound entries with the current stamp rather
           than rewinding, so the dirty test stays sound for pooled
           records captured at any earlier stamp. *)
    mutable crash_count : int;
    mutable epoch_bumps : int;
        (* monotone-per-path mutation counters (rewound by [restore]):
           the model checker compares them across steps to skip
           re-filtering its pending lists on quiet steps *)
  }

  let create ?(pool = false) ?(record_trace = true) ~env_of ~n ~u ~sink () =
    {
      env_of;
      u;
      sink;
      trace = Trace.create ();
      trace_on = record_trace;
      tags = Hashtbl.create 64;
      pstates = Array.init n (fun i -> P.init (env_of (Pid.of_index i)));
      cstates = Array.init n (fun i -> C.init (env_of (Pid.of_index i)));
      crashed = Array.make n None;
      decisions = Array.make n None;
      cons_decided = Array.make n false;
      send_budget = Array.make n None;
      timer_epochs = Array.make n [];
      pool_on = pool;
      pool = [];
      pool_owner = (Domain.self () :> int);
      stamp = 1;
      last_mut = Array.make n 0;
      crash_count = 0;
      epoch_bumps = 0;
    }

  (* Every write to a per-pid slot must mark the pid as mutated at the
     current stamp, or pooled snapshots would treat the slot as still
     agreeing with their captured copy. *)
  let touch t i = t.last_mut.(i) <- t.stamp

  let empty_trace = Trace.snapshot (Trace.create ())

  let reset t ~sink =
    t.sink <- sink;
    Trace.restore t.trace empty_trace;
    for i = 0 to Array.length t.pstates - 1 do
      let env = t.env_of (Pid.of_index i) in
      t.pstates.(i) <- P.init env;
      t.cstates.(i) <- C.init env;
      t.crashed.(i) <- None;
      t.decisions.(i) <- None;
      t.cons_decided.(i) <- false;
      t.send_budget.(i) <- None;
      t.timer_epochs.(i) <- [];
      t.last_mut.(i) <- 0
    done;
    t.pool <- [];
    t.stamp <- 1;
    t.crash_count <- 0;
    t.epoch_bumps <- 0

  let trace t = t.trace
  let pstate t p = t.pstates.(Pid.index p)
  let cstate t p = t.cstates.(Pid.index p)
  let decisions t = t.decisions
  let crashed_at t = t.crashed
  let is_crashed t p = t.crashed.(Pid.index p) <> None
  let cons_handed t p = t.cons_decided.(Pid.index p)

  let timer_epoch t pid layer id =
    let rec find = function
      | [] -> 0
      | (l, i, e) :: tl ->
          if l = layer && String.equal i id then e else find tl
    in
    find t.timer_epochs.(Pid.index pid)

  let tag t payload =
    match Hashtbl.find_opt t.tags payload with
    | Some s -> s
    | None ->
        let s = tag_of_wire payload in
        Hashtbl.add t.tags payload s;
        s

  (* Fingerprinting. The per-protocol canonical hashers are resolved once
     at functor application; a module without one falls back to hashing
     its marshalled bytes (equality then means marshal-byte equality,
     like the checker's original fingerprints). *)
  let marshal_hasher h s = Fingerprint.add_string h (Marshal.to_string s [])

  let p_hasher =
    match P.hash_state with Some f -> f | None -> marshal_hasher

  let c_hasher =
    match C.hash_state with Some f -> f | None -> marshal_hasher

  let hash_pstate t h p = p_hasher h t.pstates.(Pid.index p)
  let hash_cstate t h p = c_hasher h t.cstates.(Pid.index p)

  let p_msg_hasher =
    match P.hash_msg with Some f -> f | None -> marshal_hasher

  let c_msg_hasher =
    match C.hash_msg with Some f -> f | None -> marshal_hasher

  let hash_wire h = function
    | Commit_msg m ->
        Fingerprint.add_int h 0;
        p_msg_hasher h m
    | Cons_msg m ->
        Fingerprint.add_int h 1;
        c_msg_hasher h m

  (* The marshal fallbacks hash raw bytes, in which embedded pids escape
     the renaming — sound only for the identity permutation. A module
     pair missing any canonical hasher therefore degrades the machine's
     symmetry to the trivial group rather than risking unsound orbit
     collapses. *)
  let symmetry ~n ~f =
    match (P.hash_state, C.hash_state, P.hash_msg, C.hash_msg) with
    | Some _, Some _, Some _, Some _ ->
        Symmetry.meet (P.symmetry ~n ~f) (C.symmetry ~n ~f)
    | _ -> Symmetry.trivial ~n

  let mark_crashed t ~now pid =
    if not (is_crashed t pid) then begin
      t.crashed.(Pid.index pid) <- Some now;
      touch t (Pid.index pid);
      t.crash_count <- t.crash_count + 1;
      if t.trace_on then Trace.add t.trace (Trace.Crash { at = now; pid })
    end

  (* Whether [src] may transmit one more network message now, honouring a
     [During_sends] crash budget: exhausting the budget kills the process
     on the spot ("crashes while sending"). *)
  let may_send t ~now src =
    match t.send_budget.(Pid.index src) with
    | Some (at, remaining) when Sim_time.equal at now ->
        if !remaining > 0 then begin
          decr remaining;
          touch t (Pid.index src);
          true
        end
        else begin
          mark_crashed t ~now src;
          false
        end
    | Some _ | None -> not (is_crashed t src)

  let transmit t ~now ~src ~dst payload =
    if Pid.equal src dst then begin
      (* a self-addressed message "arrives immediately" (footnote 10) and
         is not a network message: no budget consumed *)
      let deliver_at = t.sink.send ~now ~src ~dst payload in
      if t.trace_on then
        Trace.add t.trace
          (Trace.Send
             {
               at = now;
               src;
               dst;
               layer = layer_of_wire payload;
               tag = tag t payload;
               deliver_at;
             })
    end
    else if may_send t ~now src then begin
      let deliver_at = t.sink.send ~now ~src ~dst payload in
      if t.trace_on then
        Trace.add t.trace
          (Trace.Send
             {
               at = now;
               src;
               dst;
               layer = layer_of_wire payload;
               tag = tag t payload;
               deliver_at;
             })
    end

  let fire_time ~now ~u = function
    | Proto.At_delay k -> k * u
    | Proto.After d -> Sim_time.( + ) now d

  let set_timer t ~now ~pid ~layer ~id fire =
    let at = fire_time ~now ~u:t.u fire in
    let at = Sim_time.max at now in
    t.sink.set_timer ~now ~pid ~layer ~id ~fire ~at
      ~epoch:(timer_epoch t pid layer id)

  (* Bumping the epoch strands every outstanding fire of this timer; sets
     made after the cancellation carry the new epoch and fire normally. *)
  let cancel_timer t ~pid ~layer ~id =
    let i = Pid.index pid in
    let epoch = timer_epoch t pid layer id in
    t.timer_epochs.(i) <-
      (layer, id, epoch + 1)
      :: List.filter
           (fun (l, i', _) -> not (l = layer && String.equal i' id))
           t.timer_epochs.(i);
    touch t i;
    t.epoch_bumps <- t.epoch_bumps + 1

  let record_decision t ~now ~pid decision =
    match t.decisions.(Pid.index pid) with
    | None ->
        t.decisions.(Pid.index pid) <- Some (now, decision);
        touch t (Pid.index pid);
        if t.trace_on then
          Trace.add t.trace (Trace.Decide { at = now; pid; decision })
    | Some (_, first) ->
        (* A re-decision with the same value is not an event: tracing it
           would duplicate the entry every decision consumer reads. A
           conflicting one is traced so the spec checkers can flag the
           stability breach instead of never seeing it. *)
        if t.trace_on && not (Vote.decision_equal first decision) then
          Trace.add t.trace (Trace.Decide { at = now; pid; decision })

  (* Interpreting actions. Commit-layer actions may invoke the consensus
     service ([Propose_consensus]) and consensus decisions re-enter the
     commit layer, hence the mutual recursion. [interpret_commit] runs the
     guard loop after the actions; [commit_actions] interprets actions
     only (used from inside the guard loop itself). *)
  let rec commit_actions t ~now ~pid actions =
    let env = t.env_of pid in
    List.iter
      (fun action ->
        if is_crashed t pid then ()
          (* the process died mid-action-list (send budget exhausted) *)
        else
        match (action : P.msg Proto.action) with
        | Proto.Send (dst, m) -> transmit t ~now ~src:pid ~dst (Commit_msg m)
        | Proto.Set_timer { id; fire } ->
            set_timer t ~now ~pid ~layer:Trace.Commit_layer ~id fire
        | Proto.Cancel_timer id ->
            cancel_timer t ~pid ~layer:Trace.Commit_layer ~id
        | Proto.Decide d -> record_decision t ~now ~pid d
        | Proto.Propose_consensus v ->
            if t.trace_on then
              Trace.add t.trace
                (Trace.Note
                   {
                     at = now;
                     pid;
                     label = "consensus-propose";
                     value = Format.asprintf "%a" Vote.pp v;
                   });
            let cstate, cactions = C.on_propose env t.cstates.(Pid.index pid) v in
            t.cstates.(Pid.index pid) <- cstate;
            touch t (Pid.index pid);
            interpret_cons t ~now ~pid cactions
        | Proto.Note (label, value) ->
            if t.trace_on then
              Trace.add t.trace (Trace.Note { at = now; pid; label; value }))
      actions

  and interpret_commit t ~now ~pid actions =
    commit_actions t ~now ~pid actions;
    run_guards t ~now ~pid

  and interpret_cons t ~now ~pid actions =
    List.iter
      (fun action ->
        if is_crashed t pid then ()
        else
        match (action : C.msg Proto.action) with
        | Proto.Send (dst, m) -> transmit t ~now ~src:pid ~dst (Cons_msg m)
        | Proto.Set_timer { id; fire } ->
            set_timer t ~now ~pid ~layer:Trace.Consensus_layer ~id fire
        | Proto.Cancel_timer id ->
            cancel_timer t ~pid ~layer:Trace.Consensus_layer ~id
        | Proto.Decide d ->
            (* The consensus instance at [pid] decided; hand the value to
               the commit layer exactly once. *)
            if not t.cons_decided.(Pid.index pid) then begin
              t.cons_decided.(Pid.index pid) <- true;
              touch t (Pid.index pid);
              if t.trace_on then
                Trace.add t.trace
                  (Trace.Note
                     {
                       at = now;
                       pid;
                       label = "consensus-decide";
                       value = Format.asprintf "%a" Vote.pp_decision d;
                     });
              let env = t.env_of pid in
              let pstate, pactions =
                P.on_consensus_decide env t.pstates.(Pid.index pid)
                  (Vote.vote_of_decision d)
              in
              t.pstates.(Pid.index pid) <- pstate;
              touch t (Pid.index pid);
              interpret_commit t ~now ~pid pactions
            end
        | Proto.Propose_consensus _ ->
            failwith "Machine: consensus automaton proposed to consensus"
        | Proto.Note (label, value) ->
            if t.trace_on then
              Trace.add t.trace (Trace.Note { at = now; pid; label; value }))
      actions

  and run_guards t ~now ~pid =
    if is_crashed t pid then ()
    else begin
      let env = t.env_of pid in
      let rec loop fuel =
        if fuel = 0 then
          failwith
            (Printf.sprintf "Engine: guard loop of %s did not quiesce at %s"
               P.name (Pid.to_string pid));
        let state = t.pstates.(Pid.index pid) in
        match List.find_opt (fun (_, pred) -> pred env state) P.guards with
        | None -> ()
        | Some (id, _) ->
            if t.trace_on then
              Trace.add t.trace (Trace.Guard { at = now; pid; guard = id });
            let state, actions = P.on_guard env state ~id in
            t.pstates.(Pid.index pid) <- state;
            touch t (Pid.index pid);
            commit_actions t ~now ~pid actions;
            loop (fuel - 1)
      in
      loop guard_fuel
    end

  (* ---- steps ----------------------------------------------------- *)

  let set_send_budget t pid ~at k =
    t.send_budget.(Pid.index pid) <- Some (at, ref k);
    touch t (Pid.index pid)

  let crash t ~now pid = mark_crashed t ~now pid

  let propose t ~now pid vote =
    if not (is_crashed t pid) then begin
      if t.trace_on then
        Trace.add t.trace (Trace.Propose { at = now; pid; vote });
      let env = t.env_of pid in
      let state, actions = P.on_propose env t.pstates.(Pid.index pid) vote in
      t.pstates.(Pid.index pid) <- state;
      touch t (Pid.index pid);
      interpret_commit t ~now ~pid actions
    end

  let deliver t ~now ~sent_at ~src ~dst payload =
    if is_crashed t dst then begin
      if t.trace_on then
        Trace.add t.trace (Trace.Discard { at = now; dst; tag = tag t payload })
    end
    else begin
      if t.trace_on then
        Trace.add t.trace
          (Trace.Deliver
             {
               at = now;
               src;
               dst;
               layer = layer_of_wire payload;
               tag = tag t payload;
               sent_at;
             });
      let env = t.env_of dst in
      match payload with
      | Commit_msg m ->
          let state, actions = P.on_deliver env t.pstates.(Pid.index dst) ~src m in
          t.pstates.(Pid.index dst) <- state;
          touch t (Pid.index dst);
          interpret_commit t ~now ~pid:dst actions
      | Cons_msg m ->
          let state, actions = C.on_deliver env t.cstates.(Pid.index dst) ~src m in
          t.cstates.(Pid.index dst) <- state;
          touch t (Pid.index dst);
          interpret_cons t ~now ~pid:dst actions
    end

  let timeout t ~now ~pid ~layer ~id ~epoch =
    if epoch <> timer_epoch t pid layer id then false
    else begin
      (if not (is_crashed t pid) then begin
         if t.trace_on then
           Trace.add t.trace (Trace.Timeout { at = now; pid; timer = id });
         let env = t.env_of pid in
         match layer with
         | Trace.Commit_layer ->
             let state, actions = P.on_timeout env t.pstates.(Pid.index pid) ~id in
             t.pstates.(Pid.index pid) <- state;
             touch t (Pid.index pid);
             interpret_commit t ~now ~pid actions
         | Trace.Consensus_layer ->
             let state, actions = C.on_timeout env t.cstates.(Pid.index pid) ~id in
             t.cstates.(Pid.index pid) <- state;
             touch t (Pid.index pid);
             interpret_cons t ~now ~pid actions
       end);
      true
    end

  (* ---- snapshots -------------------------------------------------- *)

  let crash_count t = t.crash_count
  let epoch_bump_count t = t.epoch_bumps

  let budget_value (at, remaining) = (at, !remaining)

  let fresh_snapshot t =
    let s =
      {
        s_stamp = t.stamp;
        s_pooled = false;
        s_trace = Trace.snapshot t.trace;
        s_crash_count = t.crash_count;
        s_epoch_bumps = t.epoch_bumps;
        s_pstates = Array.copy t.pstates;
        s_cstates = Array.copy t.cstates;
        s_crashed = Array.copy t.crashed;
        s_decisions = Array.copy t.decisions;
        s_cons_decided = Array.copy t.cons_decided;
        s_send_budget = Array.map (Option.map budget_value) t.send_budget;
        s_timer_epochs = Array.copy t.timer_epochs;
      }
    in
    t.stamp <- t.stamp + 1;
    s

  (* Recapture into a released record: only pids mutated since the
     record's own capture stamp can disagree with its arrays (every write
     path calls [touch], and [restore]'s writes re-mark with the current
     stamp instead of rewinding, so the comparison is sound even though
     the record sat in the pool across intervening restores). *)
  let capture_into t s =
    s.s_pooled <- false;
    s.s_trace <- Trace.snapshot t.trace;
    s.s_crash_count <- t.crash_count;
    s.s_epoch_bumps <- t.epoch_bumps;
    let stamp = s.s_stamp in
    for i = 0 to Array.length t.pstates - 1 do
      if t.last_mut.(i) > stamp then begin
        s.s_pstates.(i) <- t.pstates.(i);
        s.s_cstates.(i) <- t.cstates.(i);
        s.s_crashed.(i) <- t.crashed.(i);
        s.s_decisions.(i) <- t.decisions.(i);
        s.s_cons_decided.(i) <- t.cons_decided.(i);
        s.s_send_budget.(i) <- Option.map budget_value t.send_budget.(i);
        s.s_timer_epochs.(i) <- t.timer_epochs.(i)
      end
    done;
    s.s_stamp <- t.stamp;
    t.stamp <- t.stamp + 1;
    s

  (* Pooled records never cross domains: a machine driven from a new
     domain abandons the records captured on the old one (they are
     garbage-collected) and starts a fresh pool it owns. The check is a
     single int compare on the hot path; in the common case (the model
     checker creates one machine per worker domain and never migrates
     it) the branch is never taken. *)
  let adopt t =
    let d = (Domain.self () :> int) in
    if t.pool_owner <> d then begin
      t.pool <- [];
      t.pool_owner <- d
    end

  let snapshot t =
    if t.pool_on then adopt t;
    match t.pool with
    | s :: rest ->
        t.pool <- rest;
        capture_into t s
    | [] -> fresh_snapshot t

  let release t s =
    if t.pool_on && not s.s_pooled then begin
      s.s_pooled <- true;
      if t.pool_owner = (Domain.self () :> int) then t.pool <- s :: t.pool
      (* else: [s] was captured while another domain owned the pool —
         retire it to the GC instead of handing it across domains *)
    end

  let restore t s =
    Trace.restore t.trace s.s_trace;
    t.crash_count <- s.s_crash_count;
    t.epoch_bumps <- s.s_epoch_bumps;
    if t.pool_on then begin
      let stamp = s.s_stamp in
      for i = 0 to Array.length t.pstates - 1 do
        if t.last_mut.(i) > stamp then begin
          t.pstates.(i) <- s.s_pstates.(i);
          t.cstates.(i) <- s.s_cstates.(i);
          t.crashed.(i) <- s.s_crashed.(i);
          t.decisions.(i) <- s.s_decisions.(i);
          t.cons_decided.(i) <- s.s_cons_decided.(i);
          t.send_budget.(i) <-
            Option.map (fun (at, remaining) -> (at, ref remaining))
              s.s_send_budget.(i);
          t.timer_epochs.(i) <- s.s_timer_epochs.(i);
          t.last_mut.(i) <- t.stamp
        end
      done
    end
    else begin
      Array.blit s.s_pstates 0 t.pstates 0 (Array.length t.pstates);
      Array.blit s.s_cstates 0 t.cstates 0 (Array.length t.cstates);
      Array.blit s.s_crashed 0 t.crashed 0 (Array.length t.crashed);
      Array.blit s.s_decisions 0 t.decisions 0 (Array.length t.decisions);
      Array.blit s.s_cons_decided 0 t.cons_decided 0
        (Array.length t.cons_decided);
      Array.iteri
        (fun i b ->
          t.send_budget.(i) <-
            Option.map (fun (at, remaining) -> (at, ref remaining)) b)
        s.s_send_budget;
      Array.blit s.s_timer_epochs 0 t.timer_epochs 0
        (Array.length t.timer_epochs)
    end
end
