(* Tags encode (generation, slot): the slot indexes the fixed-size
   per-instance bookkeeping (pending counts), the generation makes every
   tag unique across the queue's lifetime even though slots are recycled.
   A tag from a superseded generation fails the generation check at every
   site, so events queued under it dangle harmlessly — the same soundness
   argument as the original monotone tags, but with O(live instances)
   memory instead of O(all tags ever). *)

let slot_bits = 20
let slot_mask = (1 lsl slot_bits) - 1

type 'a t = {
  queue : (int * 'a) Event_queue.t;
  mutable gens : int array;  (* per slot: current generation *)
  mutable pending : int array;  (* per slot: pending of the current gen *)
  mutable free : int list;  (* retired slots awaiting re-allocation *)
  mutable slots_used : int;  (* high-water slot count *)
  mutable events : int;
}

let create () =
  {
    queue = Event_queue.create ();
    gens = Array.make 64 0;
    pending = Array.make 64 0;
    free = [];
    slots_used = 0;
    events = 0;
  }

let slot tag = tag land slot_mask
let gen tag = tag asr slot_bits

let ensure t s =
  let len = Array.length t.pending in
  if s >= len then begin
    let cap = ref (2 * len) in
    while s >= !cap do
      cap := 2 * !cap
    done;
    let grown = Array.make !cap 0 in
    Array.blit t.pending 0 grown 0 len;
    t.pending <- grown;
    let ggrown = Array.make !cap 0 in
    Array.blit t.gens 0 ggrown 0 len;
    t.gens <- ggrown
  end

let alloc t =
  let s =
    match t.free with
    | s :: rest ->
        t.free <- rest;
        s
    | [] ->
        let s = t.slots_used in
        if s > slot_mask then failwith "Mux.alloc: live instance slots exhausted";
        t.slots_used <- s + 1;
        ensure t s;
        s
  in
  t.pending.(s) <- 0;
  (t.gens.(s) lsl slot_bits) lor s

let retire t tag =
  let s = slot tag in
  if s < Array.length t.gens && t.gens.(s) = gen tag then begin
    t.gens.(s) <- t.gens.(s) + 1;
    t.pending.(s) <- 0;
    t.free <- s :: t.free
  end

let add t ~instance ~time ~klass payload =
  if instance >= 0 then begin
    let s = slot instance in
    ensure t s;
    if s >= t.slots_used then t.slots_used <- s + 1;
    if t.gens.(s) = gen instance then t.pending.(s) <- t.pending.(s) + 1
  end;
  t.events <- t.events + 1;
  Event_queue.add t.queue ~time ~klass (instance, payload)

let pop t =
  match Event_queue.pop t.queue with
  | None -> None
  | Some (time, klass, (instance, payload)) ->
      (if instance >= 0 then
         let s = slot instance in
         if s < Array.length t.gens && t.gens.(s) = gen instance then
           t.pending.(s) <- t.pending.(s) - 1);
      t.events <- t.events - 1;
      Some (time, klass, instance, payload)

let pending t instance =
  if instance < 0 then 0
  else
    let s = slot instance in
    if s < Array.length t.pending && t.gens.(s) = gen instance then
      t.pending.(s)
    else 0

let size t = t.events
let is_empty t = t.events = 0
