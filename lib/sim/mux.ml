type 'a t = {
  queue : (int * 'a) Event_queue.t;
  mutable pending : int array;  (* indexed by instance id, grown on demand *)
  mutable events : int;
  mutable next_tag : int;
}

let create () =
  {
    queue = Event_queue.create ();
    pending = Array.make 64 0;
    events = 0;
    next_tag = 0;
  }

let alloc t =
  let tag = t.next_tag in
  t.next_tag <- tag + 1;
  tag

let ensure t instance =
  let len = Array.length t.pending in
  if instance >= len then begin
    let cap = ref (2 * len) in
    while instance >= !cap do
      cap := 2 * !cap
    done;
    let grown = Array.make !cap 0 in
    Array.blit t.pending 0 grown 0 len;
    t.pending <- grown
  end

let add t ~instance ~time ~klass payload =
  if instance >= 0 then begin
    ensure t instance;
    t.pending.(instance) <- t.pending.(instance) + 1
  end;
  t.events <- t.events + 1;
  Event_queue.add t.queue ~time ~klass (instance, payload)

let pop t =
  match Event_queue.pop t.queue with
  | None -> None
  | Some (time, klass, (instance, payload)) ->
      if instance >= 0 then t.pending.(instance) <- t.pending.(instance) - 1;
      t.events <- t.events - 1;
      Some (time, klass, instance, payload)

let pending t instance =
  if instance >= 0 && instance < Array.length t.pending then
    t.pending.(instance)
  else 0

let size t = t.events
let is_empty t = t.events = 0
