(** The pluggable automata-composition core.

    [Make (P) (C)] interprets the pure protocol automaton [P], co-hosted
    with one consensus instance of [C] per process, exactly as the paper's
    engine does — action interpretation, the guard loop, the
    commit/consensus mutual recursion, decision recording, crash marking,
    send budgets and timer-cancellation epochs — but leaves {e scheduling}
    to the caller through a {!sink}: every message transmission and timer
    arming is reported to the sink, and the caller decides when (and
    whether, and in which order) the resulting delivery and timeout events
    re-enter through {!propose} / {!deliver} / {!timeout} / {!crash}.

    Two drivers share this core: {!Engine} plugs a timed event queue and a
    network model into the sink (the simulation), and [ac_mc] plugs a
    pending-event frontier into it (the model checker), so both execute
    bit-identical protocol semantics. *)

val guard_fuel : int
(** Guard-loop re-evaluation bound before the run is declared divergent. *)

module Make (P : Proto.PROTOCOL) (C : Proto.CONSENSUS) : sig
  type wire = Commit_msg of P.msg | Cons_msg of C.msg

  val layer_of_wire : wire -> Trace.layer
  val tag_of_wire : wire -> string

  type sink = {
    send :
      now:Sim_time.t -> src:Pid.t -> dst:Pid.t -> wire -> Sim_time.t;
        (** Schedule a delivery (self-addressed sends included: the engine
            delivers those at [now], footnote 10). Returns the delivery
            instant for the trace. Only called for transmissions that
            actually happen: sends of crashed processes and sends beyond a
            [During_sends] budget are suppressed before the sink. *)
    set_timer :
      now:Sim_time.t -> pid:Pid.t -> layer:Trace.layer -> id:string ->
      fire:Proto.fire -> at:Sim_time.t -> epoch:int -> unit;
        (** Schedule a timeout at absolute instant [at] (the protocol's
            [fire] spec resolved against [now] and clamped to [now]; the
            raw spec is also passed so a replaying driver can re-anchor
            [After] timers to shifted instants). [epoch] is the timer's
            cancellation epoch at set time; pass it back to {!timeout},
            which suppresses stale fires. *)
  }

  type t

  val create :
    ?pool:bool -> ?record_trace:bool ->
    env_of:(Pid.t -> Proto.env) -> n:int -> u:Sim_time.t -> sink:sink ->
    unit -> t
  (** [?pool] (default [false]) turns on snapshot pooling: {!release}d
      snapshot records are recycled by the next {!snapshot}, which
      re-copies only the per-pid slots mutated since the record's own
      capture, and {!restore} writes back only the slots mutated since
      the snapshot was taken. Observable behaviour is identical either
      way; the pool only changes allocation.

      [?record_trace] (default [true]) controls whether {!trace}
      accumulates an entry per event. Tracing never feeds back into the
      automata, so turning it off changes no observable behaviour — it
      skips the per-event entry allocation and the message-tag rendering,
      which is what a driver that never reads traces (the multi-shot
      commit service) wants on its hot path. *)

  val reset : t -> sink:sink -> unit
  (** Reinitialize the machine for a fresh run under a new [sink]:
      protocol and consensus states return to [init], crash/decision/
      timer bookkeeping and the trace are cleared. Equivalent to
      {!create} with the original parameters but reuses every array —
      the per-instance recycling path of the commit service. Snapshot
      records captured before a reset must not be restored after it. *)

  (* ---- inspection ------------------------------------------------ *)

  val trace : t -> Trace.t
  val pstate : t -> Pid.t -> P.state
  val cstate : t -> Pid.t -> C.state
  val decisions : t -> (Sim_time.t * Vote.decision) option array
  val crashed_at : t -> Sim_time.t option array
  val is_crashed : t -> Pid.t -> bool
  val cons_handed : t -> Pid.t -> bool
  (** Whether the consensus decision was already handed to the commit layer
      at this process. *)

  val timer_epoch : t -> Pid.t -> Trace.layer -> string -> int

  val crash_count : t -> int
  val epoch_bump_count : t -> int
  (** Monotone-per-path mutation counters: crashes marked and timer-epoch
      bumps ([Cancel_timer]) so far on the current execution path. Both
      are rewound by {!restore}. The model checker compares them across a
      step to skip re-filtering its pending event lists when nothing
      could have gone stale. *)

  val hash_pstate : t -> Fingerprint.t -> Pid.t -> unit
  val hash_cstate : t -> Fingerprint.t -> Pid.t -> unit
  (** Feed the process's protocol / consensus state into the accumulator
      via the module's {!Proto.PROTOCOL.hash_state} canonicalizer, or by
      hashing its marshalled bytes when the module does not provide one. *)

  val hash_wire : Fingerprint.t -> wire -> unit
  (** Feed a message payload (layer tag first) through the per-module
      {!Proto.PROTOCOL.hash_msg} canonicalizers, falling back to
      marshalled bytes. *)

  val symmetry : n:int -> f:int -> Symmetry.t
  (** The machine's process-interchangeability group: the meet of the
      protocol's and the consensus service's declared groups, degraded to
      {!Symmetry.trivial} when any canonical hasher is missing (marshal
      fallbacks embed unrenamed pids). *)

  (* ---- steps ----------------------------------------------------- *)

  val set_send_budget : t -> Pid.t -> at:Sim_time.t -> int -> unit
  (** Arm a [During_sends] crash: at instant [at] the process may transmit
      that many more network messages, then dies mid-action-list. *)

  val crash : t -> now:Sim_time.t -> Pid.t -> unit

  val propose : t -> now:Sim_time.t -> Pid.t -> Vote.t -> unit
  (** No-op (beyond nothing) when the process already crashed. *)

  val deliver :
    t -> now:Sim_time.t -> sent_at:Sim_time.t -> src:Pid.t -> dst:Pid.t ->
    wire -> unit
  (** Runs the destination handler, or traces a [Discard] when the
      destination has crashed. *)

  val timeout :
    t -> now:Sim_time.t -> pid:Pid.t -> layer:Trace.layer -> id:string ->
    epoch:int -> bool
  (** [false] when the fire was cancelled in the meantime (its epoch lags
      the current one): the event must count as suppressed, not as
      activity. A valid-epoch fire at a crashed process returns [true]
      without running the handler, like the engine always did. *)

  (* ---- snapshots (for the model checker) ------------------------- *)

  type snapshot

  val snapshot : t -> snapshot
  val restore : t -> snapshot -> unit
  (** [restore t s] rewinds [t] to the exact state captured by
      [snapshot t]: process states, decisions, crashes, budgets, timer
      epochs and the trace. Sink callbacks are not rewound — the caller
      owns whatever the sink accumulated. *)

  val release : t -> snapshot -> unit
  (** Return a snapshot record to the machine's pool for recycling by a
      later {!snapshot}. The caller promises never to {!restore} from it
      again. No-op when the machine was created without [~pool:true];
      releasing the same record twice is a no-op.

      Pools are strictly domain-local: if the machine is driven from a
      new domain, {!snapshot} abandons the records pooled on the old one
      and starts a fresh pool, and [release] retires (rather than pools)
      a record captured under another domain — pooled records are never
      handed across domains. *)
end
