let guard_fuel = 10_000

(* Event classes: crash < propose < deliver < timeout at equal time. A
   [During_sends] crash is marked by a class-4 event so that the process
   still executes its handlers at the crash instant (it dies "while
   sending", i.e. when its send budget runs out, or at the end of the
   instant otherwise). *)
let crash_class = 0
let propose_class = 1

let deliver_class (scenario : Scenario.t) =
  if scenario.Scenario.deliveries_first then 2 else 3

let timeout_class (scenario : Scenario.t) =
  if scenario.Scenario.deliveries_first then 3 else 2

let late_crash_class = 4

module Make (P : Proto.PROTOCOL) (C : Proto.CONSENSUS) = struct
  type wire = Commit_msg of P.msg | Cons_msg of C.msg

  type ev =
    | Crash of Pid.t
    | Propose of Pid.t
    | Deliver of {
        src : Pid.t;
        dst : Pid.t;
        payload : wire;
        sent_at : Sim_time.t;
      }
    | Timeout of {
        pid : Pid.t;
        layer : Trace.layer;
        id : string;
        epoch : int;
            (* the timer's cancellation epoch at set time: a fire whose
               epoch lags the current one was cancelled in the meantime *)
      }

  type st = {
    scenario : Scenario.t;
    env_of : Pid.t -> Proto.env;
    queue : ev Event_queue.t;
    rng : Rng.t;
    trace : Trace.t;
    pstates : P.state array;
    cstates : C.state array;
    crashed : Sim_time.t option array;
    decisions : (Sim_time.t * Vote.decision) option array;
    cons_decided : bool array;
        (* consensus decision already handed to the commit layer *)
    send_budget : (Sim_time.t * int ref) option array;
        (* [During_sends] crash: remaining network sends at that instant *)
    timer_epochs : (Trace.layer * string, int) Hashtbl.t array;
        (* per process: current cancellation epoch of each named timer *)
    mutable send_seq : int;
    mutable last_event_time : Sim_time.t;
  }

  let layer_of_wire = function
    | Commit_msg _ -> Trace.Commit_layer
    | Cons_msg _ -> Trace.Consensus_layer

  let tag_of_wire = function
    | Commit_msg m -> Format.asprintf "%a" P.pp_msg m
    | Cons_msg m -> Format.asprintf "%a" C.pp_msg m

  let is_crashed st p = st.crashed.(Pid.index p) <> None

  let mark_crashed st ~now pid =
    if not (is_crashed st pid) then begin
      st.crashed.(Pid.index pid) <- Some now;
      Trace.add st.trace (Trace.Crash { at = now; pid })
    end

  (* Whether [src] may transmit one more network message now, honouring a
     [During_sends] crash budget: exhausting the budget kills the process
     on the spot ("crashes while sending"). *)
  let may_send st ~now src =
    match st.send_budget.(Pid.index src) with
    | Some (at, remaining) when Sim_time.equal at now ->
        if !remaining > 0 then begin
          decr remaining;
          true
        end
        else begin
          mark_crashed st ~now src;
          false
        end
    | Some _ | None -> not (is_crashed st src)

  let transmit st ~now ~src ~dst payload =
    let layer = layer_of_wire payload in
    let tag = tag_of_wire payload in
    if Pid.equal src dst then begin
      (* a self-addressed message "arrives immediately" (footnote 10) and
         is not a network message: no budget consumed *)
      Trace.add st.trace
        (Trace.Send { at = now; src; dst; layer; tag; deliver_at = now });
      Event_queue.add st.queue ~time:now ~klass:(deliver_class st.scenario)
        (Deliver { src; dst; payload; sent_at = now })
    end
    else if may_send st ~now src then begin
      let info = { Network.src; dst; layer; sent_at = now; seq = st.send_seq } in
      st.send_seq <- st.send_seq + 1;
      let deliver_at =
        Sim_time.( + ) now (Network.delay st.scenario.Scenario.network st.rng info)
      in
      Trace.add st.trace
        (Trace.Send { at = now; src; dst; layer; tag; deliver_at });
      Event_queue.add st.queue ~time:deliver_at ~klass:(deliver_class st.scenario)
        (Deliver { src; dst; payload; sent_at = now })
    end

  let fire_time ~now ~u = function
    | Proto.At_delay k -> k * u
    | Proto.After d -> Sim_time.( + ) now d

  let timer_epoch st pid layer id =
    Option.value
      (Hashtbl.find_opt st.timer_epochs.(Pid.index pid) (layer, id))
      ~default:0

  let set_timer st ~now ~pid ~layer ~id fire =
    let at = fire_time ~now ~u:st.scenario.Scenario.u fire in
    let at = Sim_time.max at now in
    Event_queue.add st.queue ~time:at ~klass:(timeout_class st.scenario)
      (Timeout { pid; layer; id; epoch = timer_epoch st pid layer id })

  (* Bumping the epoch strands every outstanding fire of this timer; sets
     made after the cancellation carry the new epoch and fire normally. *)
  let cancel_timer st ~pid ~layer ~id =
    Hashtbl.replace st.timer_epochs.(Pid.index pid) (layer, id)
      (timer_epoch st pid layer id + 1)

  let record_decision st ~now ~pid decision =
    match st.decisions.(Pid.index pid) with
    | None ->
        st.decisions.(Pid.index pid) <- Some (now, decision);
        Trace.add st.trace (Trace.Decide { at = now; pid; decision })
    | Some (_, first) ->
        (* A re-decision with the same value is not an event: tracing it
           would duplicate the entry every decision consumer reads. A
           conflicting one is traced so the spec checkers can flag the
           stability breach instead of never seeing it. *)
        if not (Vote.decision_equal first decision) then
          Trace.add st.trace (Trace.Decide { at = now; pid; decision })

  (* Interpreting actions. Commit-layer actions may invoke the consensus
     service ([Propose_consensus]) and consensus decisions re-enter the
     commit layer, hence the mutual recursion. [interpret_commit] runs the
     guard loop after the actions; [commit_actions] interprets actions
     only (used from inside the guard loop itself). *)
  let rec commit_actions st ~now ~pid actions =
    let env = st.env_of pid in
    List.iter
      (fun action ->
        if is_crashed st pid then ()
          (* the process died mid-action-list (send budget exhausted) *)
        else
        match (action : P.msg Proto.action) with
        | Proto.Send (dst, m) -> transmit st ~now ~src:pid ~dst (Commit_msg m)
        | Proto.Set_timer { id; fire } ->
            set_timer st ~now ~pid ~layer:Trace.Commit_layer ~id fire
        | Proto.Cancel_timer id ->
            cancel_timer st ~pid ~layer:Trace.Commit_layer ~id
        | Proto.Decide d -> record_decision st ~now ~pid d
        | Proto.Propose_consensus v ->
            Trace.add st.trace
              (Trace.Note
                 {
                   at = now;
                   pid;
                   label = "consensus-propose";
                   value = Format.asprintf "%a" Vote.pp v;
                 });
            let cstate, cactions = C.on_propose env st.cstates.(Pid.index pid) v in
            st.cstates.(Pid.index pid) <- cstate;
            interpret_cons st ~now ~pid cactions
        | Proto.Note (label, value) ->
            Trace.add st.trace (Trace.Note { at = now; pid; label; value }))
      actions

  and interpret_commit st ~now ~pid actions =
    commit_actions st ~now ~pid actions;
    run_guards st ~now ~pid

  and interpret_cons st ~now ~pid actions =
    List.iter
      (fun action ->
        if is_crashed st pid then ()
        else
        match (action : C.msg Proto.action) with
        | Proto.Send (dst, m) -> transmit st ~now ~src:pid ~dst (Cons_msg m)
        | Proto.Set_timer { id; fire } ->
            set_timer st ~now ~pid ~layer:Trace.Consensus_layer ~id fire
        | Proto.Cancel_timer id ->
            cancel_timer st ~pid ~layer:Trace.Consensus_layer ~id
        | Proto.Decide d ->
            (* The consensus instance at [pid] decided; hand the value to
               the commit layer exactly once. *)
            if not st.cons_decided.(Pid.index pid) then begin
              st.cons_decided.(Pid.index pid) <- true;
              Trace.add st.trace
                (Trace.Note
                   {
                     at = now;
                     pid;
                     label = "consensus-decide";
                     value = Format.asprintf "%a" Vote.pp_decision d;
                   });
              let env = st.env_of pid in
              let pstate, pactions =
                P.on_consensus_decide env st.pstates.(Pid.index pid)
                  (Vote.vote_of_decision d)
              in
              st.pstates.(Pid.index pid) <- pstate;
              interpret_commit st ~now ~pid pactions
            end
        | Proto.Propose_consensus _ ->
            failwith "Engine: consensus automaton proposed to consensus"
        | Proto.Note (label, value) ->
            Trace.add st.trace (Trace.Note { at = now; pid; label; value }))
      actions

  and run_guards st ~now ~pid =
    if is_crashed st pid then ()
    else begin
    let env = st.env_of pid in
    let rec loop fuel =
      if fuel = 0 then
        failwith
          (Printf.sprintf "Engine: guard loop of %s did not quiesce at %s"
             P.name (Pid.to_string pid));
      let state = st.pstates.(Pid.index pid) in
      match
        List.find_opt (fun (_, pred) -> pred env state) P.guards
      with
      | None -> ()
      | Some (id, _) ->
          Trace.add st.trace (Trace.Guard { at = now; pid; guard = id });
          let state, actions = P.on_guard env state ~id in
          st.pstates.(Pid.index pid) <- state;
          commit_actions st ~now ~pid actions;
          loop (fuel - 1)
    in
    loop guard_fuel
    end

  (* Returns whether the event actually happened: a cancelled timeout is
     suppressed as if it had been removed from the queue, in particular it
     must not count as activity for the quiescence timestamp. *)
  let handle_event st ~now ev =
    match ev with
    | Crash pid -> mark_crashed st ~now pid; true
    | Propose pid ->
        if not (is_crashed st pid) then begin
          let vote = st.scenario.Scenario.votes.(Pid.index pid) in
          Trace.add st.trace (Trace.Propose { at = now; pid; vote });
          let env = st.env_of pid in
          let state, actions = P.on_propose env st.pstates.(Pid.index pid) vote in
          st.pstates.(Pid.index pid) <- state;
          interpret_commit st ~now ~pid:pid actions
        end;
        true
    | Deliver { src; dst; payload; sent_at } ->
        let layer = layer_of_wire payload in
        let tag = tag_of_wire payload in
        (if is_crashed st dst then
           Trace.add st.trace (Trace.Discard { at = now; dst; tag })
         else begin
           Trace.add st.trace
             (Trace.Deliver { at = now; src; dst; layer; tag; sent_at });
           let env = st.env_of dst in
           match payload with
           | Commit_msg m ->
               let state, actions =
                 P.on_deliver env st.pstates.(Pid.index dst) ~src m
               in
               st.pstates.(Pid.index dst) <- state;
               interpret_commit st ~now ~pid:dst actions
           | Cons_msg m ->
               let state, actions =
                 C.on_deliver env st.cstates.(Pid.index dst) ~src m
               in
               st.cstates.(Pid.index dst) <- state;
               interpret_cons st ~now ~pid:dst actions
         end);
        true
    | Timeout { pid; layer; id; epoch } ->
        if epoch <> timer_epoch st pid layer id then false
        else begin
          (if not (is_crashed st pid) then begin
             Trace.add st.trace (Trace.Timeout { at = now; pid; timer = id });
             let env = st.env_of pid in
             match layer with
             | Trace.Commit_layer ->
                 let state, actions =
                   P.on_timeout env st.pstates.(Pid.index pid) ~id
                 in
                 st.pstates.(Pid.index pid) <- state;
                 interpret_commit st ~now ~pid actions
             | Trace.Consensus_layer ->
                 let state, actions =
                   C.on_timeout env st.cstates.(Pid.index pid) ~id
                 in
                 st.cstates.(Pid.index pid) <- state;
                 interpret_cons st ~now ~pid actions
           end);
          true
        end

  let run (scenario : Scenario.t) =
    let n = scenario.Scenario.n in
    let env_of pid =
      {
        Proto.n;
        f = scenario.Scenario.f;
        u = scenario.Scenario.u;
        self = pid;
      }
    in
    let st =
      {
        scenario;
        env_of;
        queue = Event_queue.create ();
        rng = Rng.create scenario.Scenario.seed;
        trace = Trace.create ();
        pstates = Array.init n (fun i -> P.init (env_of (Pid.of_index i)));
        cstates = Array.init n (fun i -> C.init (env_of (Pid.of_index i)));
        crashed = Array.make n None;
        decisions = Array.make n None;
        cons_decided = Array.make n false;
        send_budget = Array.make n None;
        timer_epochs = Array.init n (fun _ -> Hashtbl.create 8);
        send_seq = 0;
        last_event_time = Sim_time.zero;
      }
    in
    List.iter
      (fun (pid, crash) ->
        match (crash : Scenario.crash) with
        | Scenario.Before at ->
            Event_queue.add st.queue ~time:at ~klass:crash_class (Crash pid)
        | Scenario.During_sends (at, k) ->
            st.send_budget.(Pid.index pid) <- Some (at, ref k);
            Event_queue.add st.queue ~time:at ~klass:late_crash_class
              (Crash pid))
      scenario.Scenario.crashes;
    List.iter
      (fun pid ->
        Event_queue.add st.queue ~time:Sim_time.zero ~klass:propose_class
          (Propose pid))
      (Pid.all ~n);
    let rec loop () =
      match Event_queue.pop st.queue with
      | None -> Report.Quiescent st.last_event_time
      | Some (time, _klass, ev) ->
          if time > scenario.Scenario.max_time then Report.Max_time_reached
          else begin
            if handle_event st ~now:time ev then st.last_event_time <- time;
            loop ()
          end
    in
    let outcome = loop () in
    {
      Report.scenario;
      protocol = P.name;
      consensus = (if P.uses_consensus then Some C.name else None);
      trace = st.trace;
      decisions = st.decisions;
      crashed_at = st.crashed;
      outcome;
    }
end
