let guard_fuel = Machine.guard_fuel

(* Event classes: crash < propose < deliver < timeout at equal time. A
   [During_sends] crash is marked by a class-4 event so that the process
   still executes its handlers at the crash instant (it dies "while
   sending", i.e. when its send budget runs out, or at the end of the
   instant otherwise). *)
let crash_class = 0
let propose_class = 1

let deliver_class (scenario : Scenario.t) =
  if scenario.Scenario.deliveries_first then 2 else 3

let timeout_class (scenario : Scenario.t) =
  if scenario.Scenario.deliveries_first then 3 else 2

let late_crash_class = 4

(* The timed driver: a discrete-event queue and a network model plugged
   into the {!Machine} interpreter through its sink. The machine owns the
   automata-composition semantics; this module only decides when each
   scheduled event fires. *)
module Make (P : Proto.PROTOCOL) (C : Proto.CONSENSUS) = struct
  module M = Machine.Make (P) (C)

  type ev =
    | Crash of Pid.t
    | Propose of Pid.t
    | Deliver of {
        src : Pid.t;
        dst : Pid.t;
        payload : M.wire;
        sent_at : Sim_time.t;
      }
    | Timeout of {
        pid : Pid.t;
        layer : Trace.layer;
        id : string;
        epoch : int;
            (* the timer's cancellation epoch at set time: a fire whose
               epoch lags the current one was cancelled in the meantime *)
      }

  let run (scenario : Scenario.t) =
    let n = scenario.Scenario.n in
    let env_of pid =
      {
        Proto.n;
        f = scenario.Scenario.f;
        u = scenario.Scenario.u;
        self = pid;
      }
    in
    let queue = Event_queue.create () in
    let rng = Rng.create scenario.Scenario.seed in
    let send_seq = ref 0 in
    let sink =
      {
        M.send =
          (fun ~now ~src ~dst payload ->
            if Pid.equal src dst then begin
              Event_queue.add queue ~time:now
                ~klass:(deliver_class scenario)
                (Deliver { src; dst; payload; sent_at = now });
              now
            end
            else begin
              let info =
                {
                  Network.src;
                  dst;
                  layer = M.layer_of_wire payload;
                  sent_at = now;
                  seq = !send_seq;
                }
              in
              incr send_seq;
              let deliver_at =
                Sim_time.( + ) now
                  (Network.delay scenario.Scenario.network rng info)
              in
              Event_queue.add queue ~time:deliver_at
                ~klass:(deliver_class scenario)
                (Deliver { src; dst; payload; sent_at = now });
              deliver_at
            end);
        M.set_timer =
          (fun ~now:_ ~pid ~layer ~id ~fire:_ ~at ~epoch ->
            Event_queue.add queue ~time:at ~klass:(timeout_class scenario)
              (Timeout { pid; layer; id; epoch }));
      }
    in
    let m = M.create ~env_of ~n ~u:scenario.Scenario.u ~sink () in
    List.iter
      (fun (pid, crash) ->
        match (crash : Scenario.crash) with
        | Scenario.Before at ->
            Event_queue.add queue ~time:at ~klass:crash_class (Crash pid)
        | Scenario.During_sends (at, k) ->
            M.set_send_budget m pid ~at k;
            Event_queue.add queue ~time:at ~klass:late_crash_class (Crash pid))
      scenario.Scenario.crashes;
    List.iter
      (fun pid ->
        Event_queue.add queue ~time:Sim_time.zero ~klass:propose_class
          (Propose pid))
      (Pid.all ~n);
    (* Returns whether the event actually happened: a cancelled timeout is
       suppressed as if it had been removed from the queue, in particular
       it must not count as activity for the quiescence timestamp. *)
    let handle_event ~now = function
      | Crash pid -> M.crash m ~now pid; true
      | Propose pid ->
          M.propose m ~now pid scenario.Scenario.votes.(Pid.index pid);
          true
      | Deliver { src; dst; payload; sent_at } ->
          M.deliver m ~now ~sent_at ~src ~dst payload;
          true
      | Timeout { pid; layer; id; epoch } ->
          M.timeout m ~now ~pid ~layer ~id ~epoch
    in
    let last_event_time = ref Sim_time.zero in
    let rec loop () =
      match Event_queue.pop queue with
      | None -> Report.Quiescent !last_event_time
      | Some (time, _klass, ev) ->
          if time > scenario.Scenario.max_time then Report.Max_time_reached
          else begin
            if handle_event ~now:time ev then last_event_time := time;
            loop ()
          end
    in
    let outcome = loop () in
    {
      Report.scenario;
      protocol = P.name;
      consensus = (if P.uses_consensus then Some C.name else None);
      trace = M.trace m;
      decisions = M.decisions m;
      crashed_at = M.crashed_at m;
      outcome;
    }
end
