(** Instance-tagged event multiplexing over one {!Event_queue}.

    The multi-shot commit service drives many concurrent protocol
    instances through a single simulated clock: every instance's
    proposals, deliveries and timeouts interleave in one deterministic
    [(time, class, sequence)] order, exactly as the engine orders the
    events of a single run. [Mux] adds the one thing the service needs on
    top of {!Event_queue}: each event carries the integer tag of the
    instance it belongs to, and the queue tracks how many events are
    still outstanding per instance — an instance whose pending count
    drops to zero has quiesced (nothing in flight can change its state
    any more), which is the service's cue to finalize it.

    Events tagged with a negative instance id are service-level events
    (client submissions, batch-window expiries, shard outages); they are
    ordered like any other event but never tracked.

    Tags are allocated through {!alloc} and are never repeated, which is
    what makes {e re-tagging} sound: when a parked instance is re-driven
    (a recovery retry, or an elected stand-in coordinator taking over),
    the service binds the instance to a fresh tag and schedules the new
    machine's events under it — any event still queued under the old tag
    (a stale crash broadcast, a superseded election timer) dangles
    harmlessly, because nothing resolves the old tag any more. A tag
    encodes a (generation, slot) pair: the low {!slot} bits index the
    per-instance bookkeeping, and {!retire} recycles the slot under a
    bumped generation, so the queue's memory is proportional to the
    {e live} instance count rather than to every tag ever allocated — the
    property a million-transaction soak needs. Raw small integers (below
    [2^20]) used directly as instance ids behave exactly like first-
    generation tags. *)

type 'a t

val create : unit -> 'a t

val alloc : 'a t -> int
(** A fresh instance tag, never equal to any tag returned before on this
    queue. Its pending count starts at 0. *)

val retire : 'a t -> int -> unit
(** Release [tag]'s slot for re-allocation. Events still queued under
    [tag] become inert: they no longer affect any pending count (theirs,
    or the count of a later tag recycled onto the same slot). Retiring a
    stale (already superseded) tag is a no-op. *)

val slot : int -> int
(** The bookkeeping slot a tag occupies (its low bits). Two live tags
    never share a slot, so callers can index their own per-instance
    tables by [slot tag], provided stale tags are rejected by comparing
    the full tag. *)

val add : 'a t -> instance:int -> time:Sim_time.t -> klass:int -> 'a -> unit
(** Enqueue an event for [instance] (or a service event when
    [instance < 0]).
    @raise Invalid_argument if [time < 0] or [klass < 0]. *)

val pop : 'a t -> (Sim_time.t * int * int * 'a) option
(** Remove and return the minimum event as
    [(time, klass, instance, payload)], decrementing the instance's
    pending count; [None] when empty. *)

val pending : 'a t -> int -> int
(** Events still queued for this instance. 0 for ids never seen and for
    tags whose slot has been retired. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
