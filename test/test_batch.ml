(* Tests for the parallel batch runner: order preservation, the jobs=1
   escape hatch, exception propagation, and — the property everything
   else rides on — that parallel artifact regeneration is byte-identical
   to sequential. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_order_preserved () =
  let items = List.init 50 (fun i -> i) in
  check (Alcotest.list tint) "results in input order"
    (List.map (fun x -> x * x) items)
    (Batch.run ~jobs:3 (fun x -> x * x) items)

let test_jobs_one_is_sequential () =
  let items = [ 5; 4; 3; 2; 1 ] in
  check (Alcotest.list tint) "jobs:1 equals List.map"
    (List.map succ items)
    (Batch.run ~jobs:1 succ items)

let test_edge_cases () =
  check (Alcotest.list tint) "empty input" [] (Batch.run ~jobs:4 succ []);
  check (Alcotest.list tint) "singleton" [ 8 ] (Batch.run ~jobs:4 succ [ 7 ]);
  check tbool "default_jobs positive" true (Batch.default_jobs () >= 1);
  check (Alcotest.list tint) "jobs above item count" [ 2; 3 ]
    (Batch.run ~jobs:64 succ [ 1; 2 ])

let test_exception_propagation () =
  Alcotest.check_raises "earliest item's exception re-raised"
    (Failure "boom:2") (fun () ->
      ignore
        (Batch.run ~jobs:4
           (fun x ->
             if x >= 2 then failwith (Printf.sprintf "boom:%d" x) else x)
           [ 0; 1; 2; 3; 4 ]))

(* The poison fix: after the first failure, workers must stop claiming
   items. Item 0 fails instantly; the other 63 items each park on a
   barrier-free sleep, so a runner that keeps grinding would execute all
   of them. Promptness = most items never started. *)
let test_poison_aborts_promptly () =
  let executed = Atomic.make 0 in
  let n = 64 in
  Alcotest.check_raises "failure re-raised" (Failure "poison") (fun () ->
      ignore
        (Batch.run ~jobs:2
           (fun x ->
             Atomic.incr executed;
             if x = 0 then failwith "poison"
             else begin
               Unix.sleepf 0.002;
               x
             end)
           (List.init n Fun.id)));
  let ran = Atomic.get executed in
  check tbool
    (Printf.sprintf "poisoned batch stopped early (ran %d of %d)" ran n)
    true
    (ran < n / 2)

let test_poison_keeps_backtrace () =
  (* the re-raise must carry the ORIGINAL backtrace, not the join site *)
  Printexc.record_backtrace true;
  let raiser x = if x = 1 then failwith "bt" else x in
  (try ignore (Batch.run ~jobs:2 raiser [ 0; 1; 2; 3 ]) with Failure _ ->
    let bt = Printexc.get_backtrace () in
    check tbool "backtrace mentions the raising frame" true
      (String.length bt > 0))

(* ---- jobs clamping and the no-nesting guard ----------------------- *)

(* ACTABLE_JOBS only caps the DEFAULT: it can lower what
   recommended_domain_count reports, never raise it, and garbage or
   non-positive values are ignored. Explicit ~jobs arguments are always
   passed through untouched. *)
let test_env_jobs_clamp () =
  let with_env v body =
    let old = Sys.getenv_opt "ACTABLE_JOBS" in
    Unix.putenv "ACTABLE_JOBS" v;
    Fun.protect body ~finally:(fun () ->
        Unix.putenv "ACTABLE_JOBS" (Option.value old ~default:""))
  in
  let unclamped =
    with_env "" (fun () -> Batch.default_jobs ())
  in
  check tbool "default positive" true (unclamped >= 1);
  with_env "1" (fun () ->
      check tint "ACTABLE_JOBS=1 caps the default to 1" 1
        (Batch.default_jobs ()));
  with_env "1" (fun () ->
      check (Alcotest.list tint) "explicit ~jobs ignores the env cap"
        [ 2; 3; 4 ]
        (Batch.run ~jobs:4 succ [ 1; 2; 3 ]));
  List.iter
    (fun garbage ->
      with_env garbage (fun () ->
          check tint
            (Printf.sprintf "ACTABLE_JOBS=%S ignored" garbage)
            unclamped (Batch.default_jobs ())))
    [ "zero"; "0"; "-3"; "2.5"; "" ];
  with_env "100000" (fun () ->
      check tint "huge cap cannot raise the default" unclamped
        (Batch.default_jobs ()))

(* The no-nesting guard: Batch.run invoked from inside a worker domain
   must degrade to sequential instead of spawning domains from a domain
   (which deadlocked under contention and oversubscribed the machine).
   Every inner run below asks for 4 domains; if the guard works, each
   inner batch executes entirely on its caller's domain. *)
let test_nested_run_stays_inline () =
  let outer = List.init 6 Fun.id in
  let results =
    Batch.run ~jobs:3
      (fun i ->
        let here = (Domain.self () :> int) in
        let inner_domains =
          Batch.run ~jobs:4 (fun _ -> (Domain.self () :> int)) (List.init 8 Fun.id)
        in
        let inline = List.for_all (fun d -> d = here) inner_domains in
        (i, inline))
      outer
  in
  List.iter
    (fun (i, inline) ->
      check tbool
        (Printf.sprintf "item %d: nested run stayed on its worker" i)
        true inline)
    results;
  check tint "outer results complete" (List.length outer)
    (List.length results)

let test_nested_stealing_stays_inline () =
  let results =
    Batch.run_stealing ~jobs:3 ~merge:( + )
      (fun i ->
        let here = (Domain.self () :> int) in
        let inner =
          Batch.run_stealing ~jobs:4 ~merge:( + )
            (fun _ -> if (Domain.self () :> int) = here then 0 else 1)
            (List.init 8 Fun.id)
        in
        ignore (List.fold_left ( + ) 0 inner);
        if List.for_all (fun x -> x = 0) inner then i else -1000)
      (List.init 6 Fun.id)
  in
  check (Alcotest.list tint) "nested stealing stayed inline"
    (List.init 6 Fun.id) results

(* ---- the work-stealing runner ------------------------------------- *)

let merge_add = ( + )

let test_stealing_order_preserved () =
  let items = List.init 50 Fun.id in
  check (Alcotest.list tint) "results in input order"
    (List.map (fun x -> x * x) items)
    (Batch.run_stealing ~jobs:3 ~merge:merge_add (fun x -> x * x) items)

let test_stealing_no_split_equals_run () =
  let items = List.init 30 Fun.id in
  check (Alcotest.list tint) "run_stealing without split = run"
    (Batch.run ~jobs:4 succ items)
    (Batch.run_stealing ~jobs:4 ~merge:merge_add succ items)

(* Splitting and merging: each item is a list of ints; split breaks it
   into singletons, f sums a piece, merge adds the partial sums — so
   whatever decomposition the scheduler picks, every origin's result
   must equal the plain sum of its list. *)
let test_stealing_split_merge_sums () =
  let items = List.init 16 (fun i -> List.init (i + 13) (fun j -> j + i)) in
  let split = function
    | [] | [ _ ] -> None
    | xs -> Some (List.map (fun x -> [ x ]) xs)
  in
  let f xs =
    (* make items slow enough that workers actually starve and split *)
    if List.length xs > 1 then Unix.sleepf 0.001;
    List.fold_left ( + ) 0 xs
  in
  check (Alcotest.list tint) "per-origin sums survive any decomposition"
    (List.map (List.fold_left ( + ) 0) items)
    (Batch.run_stealing ~jobs:4 ~split ~merge:merge_add f items)

(* Skewed load with more domains than this machine has cores: one item
   dwarfs the rest, so most workers spend the run starved — exactly the
   regime the idle backoff (spin, then escalate to short sleeps) and the
   steal-half granularity exist for. Passing means no livelock and
   correct per-origin sums whatever got stolen from whom. *)
let test_stealing_skewed_backoff () =
  let items =
    List.init 24 (fun i ->
        if i = 0 then List.init 64 Fun.id else [ i; i + 1 ])
  in
  let split = function
    | [] | [ _ ] -> None
    | xs -> Some (List.map (fun x -> [ x ]) xs)
  in
  let f xs =
    if List.length xs > 1 then Unix.sleepf 0.0005;
    List.fold_left ( + ) 0 xs
  in
  check (Alcotest.list tint) "per-origin sums survive the skew"
    (List.map (List.fold_left ( + ) 0) items)
    (Batch.run_stealing ~jobs:8 ~split ~merge:merge_add f items)

let test_stealing_exception_earliest_origin () =
  Alcotest.check_raises "smallest-origin exception re-raised"
    (Failure "steal:1") (fun () ->
      ignore
        (Batch.run_stealing ~jobs:2 ~merge:merge_add
           (fun x ->
             if x >= 1 then failwith (Printf.sprintf "steal:%d" x) else x)
           [ 0; 1 ]))

let test_stealing_edge_cases () =
  check (Alcotest.list tint) "empty input" []
    (Batch.run_stealing ~jobs:4 ~merge:merge_add succ []);
  check (Alcotest.list tint) "singleton" [ 8 ]
    (Batch.run_stealing ~jobs:4 ~merge:merge_add succ [ 7 ]);
  check (Alcotest.list tint) "jobs:1 equals List.map" [ 2; 3; 4 ]
    (Batch.run_stealing ~jobs:1 ~merge:merge_add succ [ 1; 2; 3 ])

(* Determinism of the reworked consumers: the robustness battery run
   through 4 domains must agree element-for-element with the sequential
   evaluation, traces included. *)

let test_robustness_matrix_deterministic () =
  let sequential = Robustness.matrix ~n:4 ~f:1 ~seeds:[ 1 ] ~jobs:1 () in
  let parallel = Robustness.matrix ~n:4 ~f:1 ~seeds:[ 1 ] ~jobs:4 () in
  check tint "same row count" (List.length sequential) (List.length parallel);
  List.iter2
    (fun (a : Robustness.row) (b : Robustness.row) ->
      check tbool (Printf.sprintf "row %s identical" a.Robustness.protocol)
        true (a = b))
    sequential parallel

let test_parallel_traces_identical () =
  let scenarios =
    List.map snd (Robustness.batteries ~n:4 ~f:1 ~seeds:[ 1 ])
  in
  let runner = Registry.find_exn "inbac" in
  let trace_of s =
    Format.asprintf "%a" Trace.pp (runner.Registry.run s).Report.trace
  in
  let sequential = List.map trace_of scenarios in
  let parallel = Batch.run ~jobs:4 trace_of scenarios in
  List.iteri
    (fun i (a, b) ->
      check tbool (Printf.sprintf "scenario %d trace identical" i) true (a = b))
    (List.combine sequential parallel)

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "batch"
    [
      ( "runner",
        [
          quick "order preserved" test_order_preserved;
          quick "jobs:1 sequential" test_jobs_one_is_sequential;
          quick "edge cases" test_edge_cases;
          quick "exception propagation" test_exception_propagation;
          quick "poison aborts promptly" test_poison_aborts_promptly;
          quick "poison keeps backtrace" test_poison_keeps_backtrace;
        ] );
      ( "jobs-guard",
        [
          quick "ACTABLE_JOBS clamps the default" test_env_jobs_clamp;
          quick "nested run stays inline" test_nested_run_stays_inline;
          quick "nested stealing stays inline"
            test_nested_stealing_stays_inline;
        ] );
      ( "stealing",
        [
          quick "order preserved" test_stealing_order_preserved;
          quick "no split = run" test_stealing_no_split_equals_run;
          quick "split/merge sums" test_stealing_split_merge_sums;
          quick "skewed load, oversubscribed backoff"
            test_stealing_skewed_backoff;
          quick "earliest-origin exception"
            test_stealing_exception_earliest_origin;
          quick "edge cases" test_stealing_edge_cases;
        ] );
      ( "determinism",
        [
          quick "robustness matrix" test_robustness_matrix_deterministic;
          quick "traces across domains" test_parallel_traces_identical;
        ] );
    ]
