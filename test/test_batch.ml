(* Tests for the parallel batch runner: order preservation, the jobs=1
   escape hatch, exception propagation, and — the property everything
   else rides on — that parallel artifact regeneration is byte-identical
   to sequential. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let test_order_preserved () =
  let items = List.init 50 (fun i -> i) in
  check (Alcotest.list tint) "results in input order"
    (List.map (fun x -> x * x) items)
    (Batch.run ~jobs:3 (fun x -> x * x) items)

let test_jobs_one_is_sequential () =
  let items = [ 5; 4; 3; 2; 1 ] in
  check (Alcotest.list tint) "jobs:1 equals List.map"
    (List.map succ items)
    (Batch.run ~jobs:1 succ items)

let test_edge_cases () =
  check (Alcotest.list tint) "empty input" [] (Batch.run ~jobs:4 succ []);
  check (Alcotest.list tint) "singleton" [ 8 ] (Batch.run ~jobs:4 succ [ 7 ]);
  check tbool "default_jobs positive" true (Batch.default_jobs () >= 1);
  check (Alcotest.list tint) "jobs above item count" [ 2; 3 ]
    (Batch.run ~jobs:64 succ [ 1; 2 ])

let test_exception_propagation () =
  Alcotest.check_raises "earliest item's exception re-raised"
    (Failure "boom:2") (fun () ->
      ignore
        (Batch.run ~jobs:4
           (fun x ->
             if x >= 2 then failwith (Printf.sprintf "boom:%d" x) else x)
           [ 0; 1; 2; 3; 4 ]))

(* Determinism of the reworked consumers: the robustness battery run
   through 4 domains must agree element-for-element with the sequential
   evaluation, traces included. *)

let test_robustness_matrix_deterministic () =
  let sequential = Robustness.matrix ~n:4 ~f:1 ~seeds:[ 1 ] ~jobs:1 () in
  let parallel = Robustness.matrix ~n:4 ~f:1 ~seeds:[ 1 ] ~jobs:4 () in
  check tint "same row count" (List.length sequential) (List.length parallel);
  List.iter2
    (fun (a : Robustness.row) (b : Robustness.row) ->
      check tbool (Printf.sprintf "row %s identical" a.Robustness.protocol)
        true (a = b))
    sequential parallel

let test_parallel_traces_identical () =
  let scenarios =
    List.map snd (Robustness.batteries ~n:4 ~f:1 ~seeds:[ 1 ])
  in
  let runner = Registry.find_exn "inbac" in
  let trace_of s =
    Format.asprintf "%a" Trace.pp (runner.Registry.run s).Report.trace
  in
  let sequential = List.map trace_of scenarios in
  let parallel = Batch.run ~jobs:4 trace_of scenarios in
  List.iteri
    (fun i (a, b) ->
      check tbool (Printf.sprintf "scenario %d trace identical" i) true (a = b))
    (List.combine sequential parallel)

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "batch"
    [
      ( "runner",
        [
          quick "order preserved" test_order_preserved;
          quick "jobs:1 sequential" test_jobs_one_is_sequential;
          quick "edge cases" test_edge_cases;
          quick "exception propagation" test_exception_propagation;
        ] );
      ( "determinism",
        [
          quick "robustness matrix" test_robustness_matrix_deterministic;
          quick "traces across domains" test_parallel_traces_identical;
        ] );
    ]
