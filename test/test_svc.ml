(* Tests for the multi-shot commit service: nominal runs resolve every
   transaction, the pipelining/batching knobs do what they claim, blocked
   instances park without stalling the pipeline and drain through shard
   recovery, and a run is a deterministic function of its spec. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let u = Sim_time.default_u

let small =
  {
    Commit_service.default with
    Commit_service.clients = 32;
    txns = 200;
    seed = 7;
  }

let run ?(spec = small) protocol = Commit_service.run ~protocol ~n:3 ~f:1 spec

(* the fields a run determines exactly (no wall-clock noise) *)
let fingerprint (s : Commit_service.stats) =
  ( ( s.Commit_service.transactions,
      s.Commit_service.committed,
      s.Commit_service.aborted,
      s.Commit_service.local_aborts,
      s.Commit_service.parked ),
    ( s.Commit_service.instances,
      s.Commit_service.retries,
      s.Commit_service.peak_in_flight,
      s.Commit_service.total_messages,
      s.Commit_service.staged_left ),
    s.Commit_service.makespan_delays )

let test_nominal_resolves_all () =
  List.iter
    (fun protocol ->
      let s = run protocol in
      check tint (protocol ^ " issued all") 200 s.Commit_service.transactions;
      check tint (protocol ^ " nothing parked") 0 s.Commit_service.parked;
      check tint (protocol ^ " staging drained") 0 s.Commit_service.staged_left;
      check tint (protocol ^ " accounted") 200
        (s.Commit_service.committed + s.Commit_service.aborted
       + s.Commit_service.local_aborts);
      check tbool (protocol ^ " commits") true (s.Commit_service.committed > 0);
      check tbool (protocol ^ " atomic") true s.Commit_service.atomicity_ok;
      check tbool (protocol ^ " agreement") true s.Commit_service.agreement_ok;
      let l = s.Commit_service.latency in
      check tbool (protocol ^ " percentiles ordered") true
        (l.Histogram.p50 <= l.Histogram.p95
        && l.Histogram.p95 <= l.Histogram.p99))
    [ "inbac"; "paxos-commit"; "2pc" ]

let test_deterministic () =
  List.iter
    (fun protocol ->
      check tbool (protocol ^ " same spec, same run") true
        (fingerprint (run protocol) = fingerprint (run protocol)))
    [ "inbac"; "2pc" ]

let test_pipelining () =
  let deep = run "inbac" in
  let serial =
    run ~spec:{ small with Commit_service.pipeline_depth = 1 } "inbac"
  in
  check tbool "deep pipeline overlaps instances" true
    (deep.Commit_service.peak_in_flight > 1);
  check tint "depth 1 serializes" 1 serial.Commit_service.peak_in_flight;
  check tint "serialized run still resolves" 0 serial.Commit_service.parked;
  check tbool "serialized run still atomic" true
    serial.Commit_service.atomicity_ok

let test_batching () =
  let batched = run "inbac" in
  let unbatched =
    run ~spec:{ small with Commit_service.max_batch = 1 } "inbac"
  in
  check tbool "co-resident transactions share instances" true
    (batched.Commit_service.mean_batch > 1.0);
  check tbool "max_batch 1 gives one txn per instance" true
    (unbatched.Commit_service.mean_batch = 1.0);
  check tbool "batching launches fewer instances" true
    (batched.Commit_service.instances < unbatched.Commit_service.instances)

let test_two_pc_parks_and_recovers () =
  (* the 2PC coordinator shard goes down at 3U and comes back at 40U:
     in-flight instances park, the recovered shard adopts what it missed,
     and every parked instance re-runs to a decision (re-election off —
     this exercises the pure park/recovery path) *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, Some (40 * u)) ];
      election_timeout = None;
    }
  in
  let s = run ~spec "2pc" in
  check tbool "parked instances re-ran" true (s.Commit_service.retries > 0);
  check tint "recovery drained every instance" 0 s.Commit_service.parked;
  check tint "no staging left" 0 s.Commit_service.staged_left;
  check tbool "commits resumed" true (s.Commit_service.committed > 0);
  check tbool "atomic across the outage" true s.Commit_service.atomicity_ok;
  check tbool "agreement across the outage" true s.Commit_service.agreement_ok

let test_two_pc_parks_without_recovery () =
  (* with re-election off, a never-healing coordinator outage strands its
     parked instances — the blocking behavior the regression test below
     shows re-election (the default) eliminates. staged_left counts live
     shards only, so the parked instances' write-ahead entries on the
     two surviving shards must still be visible there. *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
      election_timeout = None;
    }
  in
  let s = run ~spec "2pc" in
  check tbool "instances stay parked" true (s.Commit_service.parked > 0);
  check tbool "their writes stay staged" true
    (s.Commit_service.staged_left > 0);
  check tint "every issued txn accounted" s.Commit_service.transactions
    (s.Commit_service.committed + s.Commit_service.aborted
   + s.Commit_service.local_aborts + s.Commit_service.parked);
  check tbool "parked-not-installed is still atomic" true
    s.Commit_service.atomicity_ok

let test_no_recovery_liveness_regression () =
  (* Regression (ISSUE 9): a never-recovering coordinator outage used to
     strand its parked instances forever — staged writes held, locks
     held, clients stalled. With re-election on (the default), a
     surviving shard must take over and drive every parked instance to a
     decision: the run terminates fully drained. *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
    }
  in
  let s = run ~spec "2pc" in
  check tint "no instance left parked" 0 s.Commit_service.parked;
  check tint "no staging left on live shards" 0 s.Commit_service.staged_left;
  check tbool "commits kept flowing past the outage" true
    (s.Commit_service.committed > 0);
  check tint "every issued txn accounted" s.Commit_service.transactions
    (s.Commit_service.committed + s.Commit_service.aborted
   + s.Commit_service.local_aborts);
  check tbool "atomic" true s.Commit_service.atomicity_ok;
  check tbool "agreement" true s.Commit_service.agreement_ok

let test_election_accounting () =
  (* the drained no-recovery run is driven by elections: stand-ins are
     counted, their stolen decisions are counted, and no recovery ever
     happens so the retry counter stays at zero *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
    }
  in
  let s = run ~spec "2pc" in
  check tbool "elections happened" true (s.Commit_service.elections > 0);
  check tbool "stand-ins reached decisions" true (s.Commit_service.stolen > 0);
  check tbool "stolen bounded by elections" true
    (s.Commit_service.stolen <= s.Commit_service.elections);
  check tint "no recovery, no retries" 0 s.Commit_service.retries;
  check tbool "parked time recorded" true
    (s.Commit_service.time_parked.Histogram.count >= s.Commit_service.stolen);
  let tp = s.Commit_service.time_parked in
  check tbool "parked percentiles ordered" true
    (tp.Histogram.p50 <= tp.Histogram.p95 && tp.Histogram.p95 <= tp.Histogram.p99)

let test_election_vs_recovery_reconciles () =
  (* outage heals *after* the election timers have fired: stand-ins
     decide first, the recovering shard adopts their outcomes, and the
     whole history stays atomic with everything drained *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, Some (80 * u)) ];
    }
  in
  let s = run ~spec "2pc" in
  check tbool "elections beat the recovery" true
    (s.Commit_service.elections > 0);
  check tint "drained" 0 s.Commit_service.parked;
  check tint "no staging left anywhere after recovery" 0
    s.Commit_service.staged_left;
  check tint "accounted" s.Commit_service.transactions
    (s.Commit_service.committed + s.Commit_service.aborted
   + s.Commit_service.local_aborts);
  check tbool "atomic" true s.Commit_service.atomicity_ok;
  check tbool "agreement" true s.Commit_service.agreement_ok

let test_nominal_run_has_no_elections () =
  let s = run "inbac" in
  check tint "no outage, no elections" 0 s.Commit_service.elections;
  check tint "no outage, nothing stolen" 0 s.Commit_service.stolen;
  check tint "no outage, no parked time" 0
    s.Commit_service.time_parked.Histogram.count

let test_inbac_crash_non_blocking () =
  (* same unrecovered outage, but INBAC tolerates f=1: every instance
     still decides (aborting when the dead shard's vote is missing) — the
     non-blocking contrast the paper draws against 2PC *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
    }
  in
  let s = run ~spec "inbac" in
  check tint "nothing parks" 0 s.Commit_service.parked;
  check tbool "pre-outage commits exist" true (s.Commit_service.committed > 0);
  check tbool "atomic" true s.Commit_service.atomicity_ok;
  check tbool "agreement" true s.Commit_service.agreement_ok

let test_zipf_s_passthrough () =
  let s =
    run ~spec:{ small with Commit_service.zipf_s = Some 1.25 } "inbac"
  in
  check (Alcotest.float 1e-9) "explicit exponent echoed" 1.25
    s.Commit_service.zipf_s;
  let s' = run "inbac" in
  check tbool "legacy alias resolves to a positive exponent" true
    (s'.Commit_service.zipf_s > 0.0)

(* Differential: with a recovery in the schedule, turning re-election on
   changes *when* parked instances decide but never *what* they decide —
   the stand-in applies the same all-yes vote rule as the recovery
   retry. The spec is constrained so both runs are event-identical up to
   the first election timer: every transaction is issued by the initial
   client submits (txns <= clients), every batch launches immediately
   (pipeline >= txns), and the outage lands after that horizon. *)
let qcheck_election_differential =
  let gen =
    QCheck.(
      quad (int_range 0 1000) (int_range 8 32) (int_range 10 40)
        (int_range 10 80))
  in
  QCheck.Test.make ~count:25
    ~name:"re-election preserves per-transaction decisions" gen
    (fun (seed, clients, timeout_u, recover_gap_u) ->
      let txns = max 4 (clients / 2) in
      let down_at = 4 * u in
      let base election_timeout =
        {
          Commit_service.default with
          Commit_service.clients;
          txns;
          seed;
          pipeline_depth = txns;
          outages = [ (1, down_at, Some (down_at + (recover_gap_u * u))) ];
          election_timeout;
        }
      in
      let decisions spec =
        let tbl = Hashtbl.create 64 in
        let s =
          Commit_service.run
            ~observe:(fun id d -> Hashtbl.replace tbl id d)
            ~protocol:"2pc" ~n:3 ~f:1 spec
        in
        (tbl, s)
      in
      let on, s_on = decisions (base (Some (timeout_u * u))) in
      let off, s_off = decisions (base None) in
      s_on.Commit_service.parked = 0
      && s_off.Commit_service.parked = 0
      && s_on.Commit_service.atomicity_ok
      && s_off.Commit_service.atomicity_ok
      && Hashtbl.length on = Hashtbl.length off
      && Hashtbl.fold
           (fun id d acc ->
             acc
             &&
             match Hashtbl.find_opt off id with
             | Some d' -> Vote.decision_equal d d'
             | None -> false)
           on true)

let test_parallel_arms_byte_identical () =
  (* the bench runs its arms through Batch.run: the deterministic JSON
     body of every arm must come out byte-identical whether the arms run
     on one domain or four *)
  let specs =
    [
      ("inbac", small);
      ("2pc", small);
      ( "2pc",
        {
          small with
          Commit_service.txns = 150;
          outages = [ (1, 3 * u, None) ];
        } );
      ("paxos-commit", { small with Commit_service.zipf_s = Some 0.9 });
    ]
  in
  let arm_bodies jobs =
    Batch.run ~jobs
      (fun (protocol, spec) ->
        Commit_service.arm_json_body
          (Commit_service.run ~protocol ~n:3 ~f:1 spec))
      specs
  in
  List.iter2
    (fun a b -> check Alcotest.string "arm body identical across jobs" a b)
    (arm_bodies 1) (arm_bodies 4)

let test_spec_validation () =
  check tbool "unknown protocol" true
    (try
       ignore (Commit_service.run ~protocol:"nope" ~n:3 ~f:1 small);
       false
     with Not_found -> true);
  let invalid spec =
    try
      ignore (Commit_service.run ~protocol:"inbac" ~n:3 ~f:1 spec);
      false
    with Invalid_argument _ -> true
  in
  check tbool "no clients" true
    (invalid { small with Commit_service.clients = 0 });
  check tbool "no writes" true
    (invalid { small with Commit_service.writes_per_txn = 0 });
  check tbool "pipeline depth < 1" true
    (invalid { small with Commit_service.pipeline_depth = 0 });
  check tbool "outage rank out of range" true
    (invalid { small with Commit_service.outages = [ (9, u, None) ] });
  check tbool "election timeout < 1" true
    (invalid { small with Commit_service.election_timeout = Some 0 })

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "svc"
    [
      ( "commit-service",
        [
          quick "nominal resolves all" test_nominal_resolves_all;
          quick "deterministic" test_deterministic;
          quick "pipelining" test_pipelining;
          quick "batching" test_batching;
          quick "2pc parks and recovers" test_two_pc_parks_and_recovers;
          quick "2pc parks without recovery"
            test_two_pc_parks_without_recovery;
          quick "no-recovery liveness regression"
            test_no_recovery_liveness_regression;
          quick "election accounting" test_election_accounting;
          quick "election then recovery reconciles"
            test_election_vs_recovery_reconciles;
          quick "nominal run has no elections"
            test_nominal_run_has_no_elections;
          quick "inbac crash non-blocking" test_inbac_crash_non_blocking;
          quick "zipf-s passthrough" test_zipf_s_passthrough;
          quick "parallel arms byte-identical"
            test_parallel_arms_byte_identical;
          quick "spec validation" test_spec_validation;
          prop qcheck_election_differential;
        ] );
    ]
