(* Tests for the multi-shot commit service: nominal runs resolve every
   transaction, the pipelining/batching knobs do what they claim, blocked
   instances park without stalling the pipeline and drain through shard
   recovery, and a run is a deterministic function of its spec. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let u = Sim_time.default_u

let small =
  {
    Commit_service.default with
    Commit_service.clients = 32;
    txns = 200;
    seed = 7;
  }

let run ?(spec = small) protocol = Commit_service.run ~protocol ~n:3 ~f:1 spec

(* the fields a run determines exactly (no wall-clock noise) *)
let fingerprint (s : Commit_service.stats) =
  ( ( s.Commit_service.transactions,
      s.Commit_service.committed,
      s.Commit_service.aborted,
      s.Commit_service.local_aborts,
      s.Commit_service.parked ),
    ( s.Commit_service.instances,
      s.Commit_service.retries,
      s.Commit_service.peak_in_flight,
      s.Commit_service.total_messages,
      s.Commit_service.staged_left ),
    s.Commit_service.makespan_delays )

let test_nominal_resolves_all () =
  List.iter
    (fun protocol ->
      let s = run protocol in
      check tint (protocol ^ " issued all") 200 s.Commit_service.transactions;
      check tint (protocol ^ " nothing parked") 0 s.Commit_service.parked;
      check tint (protocol ^ " staging drained") 0 s.Commit_service.staged_left;
      check tint (protocol ^ " accounted") 200
        (s.Commit_service.committed + s.Commit_service.aborted
       + s.Commit_service.local_aborts);
      check tbool (protocol ^ " commits") true (s.Commit_service.committed > 0);
      check tbool (protocol ^ " atomic") true s.Commit_service.atomicity_ok;
      check tbool (protocol ^ " agreement") true s.Commit_service.agreement_ok;
      let l = s.Commit_service.latency in
      check tbool (protocol ^ " percentiles ordered") true
        (l.Histogram.p50 <= l.Histogram.p95
        && l.Histogram.p95 <= l.Histogram.p99))
    [ "inbac"; "paxos-commit"; "2pc" ]

let test_deterministic () =
  List.iter
    (fun protocol ->
      check tbool (protocol ^ " same spec, same run") true
        (fingerprint (run protocol) = fingerprint (run protocol)))
    [ "inbac"; "2pc" ]

let test_pipelining () =
  let deep = run "inbac" in
  let serial =
    run ~spec:{ small with Commit_service.pipeline_depth = 1 } "inbac"
  in
  check tbool "deep pipeline overlaps instances" true
    (deep.Commit_service.peak_in_flight > 1);
  check tint "depth 1 serializes" 1 serial.Commit_service.peak_in_flight;
  check tint "serialized run still resolves" 0 serial.Commit_service.parked;
  check tbool "serialized run still atomic" true
    serial.Commit_service.atomicity_ok

let test_batching () =
  let batched = run "inbac" in
  let unbatched =
    run ~spec:{ small with Commit_service.max_batch = 1 } "inbac"
  in
  check tbool "co-resident transactions share instances" true
    (batched.Commit_service.mean_batch > 1.0);
  check tbool "max_batch 1 gives one txn per instance" true
    (unbatched.Commit_service.mean_batch = 1.0);
  check tbool "batching launches fewer instances" true
    (batched.Commit_service.instances < unbatched.Commit_service.instances)

let test_two_pc_parks_and_recovers () =
  (* the 2PC coordinator shard goes down at 3U and comes back at 40U:
     in-flight instances park, the recovered shard adopts what it missed,
     and every parked instance re-runs to a decision *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, Some (40 * u)) ];
    }
  in
  let s = run ~spec "2pc" in
  check tbool "parked instances re-ran" true (s.Commit_service.retries > 0);
  check tint "recovery drained every instance" 0 s.Commit_service.parked;
  check tint "no staging left" 0 s.Commit_service.staged_left;
  check tbool "commits resumed" true (s.Commit_service.committed > 0);
  check tbool "atomic across the outage" true s.Commit_service.atomicity_ok;
  check tbool "agreement across the outage" true s.Commit_service.agreement_ok

let test_two_pc_parks_without_recovery () =
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
    }
  in
  let s = run ~spec "2pc" in
  check tbool "instances stay parked" true (s.Commit_service.parked > 0);
  check tbool "their writes stay staged" true
    (s.Commit_service.staged_left > 0);
  check tint "every issued txn accounted" s.Commit_service.transactions
    (s.Commit_service.committed + s.Commit_service.aborted
   + s.Commit_service.local_aborts + s.Commit_service.parked);
  check tbool "parked-not-installed is still atomic" true
    s.Commit_service.atomicity_ok

let test_inbac_crash_non_blocking () =
  (* same unrecovered outage, but INBAC tolerates f=1: every instance
     still decides (aborting when the dead shard's vote is missing) — the
     non-blocking contrast the paper draws against 2PC *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
    }
  in
  let s = run ~spec "inbac" in
  check tint "nothing parks" 0 s.Commit_service.parked;
  check tbool "pre-outage commits exist" true (s.Commit_service.committed > 0);
  check tbool "atomic" true s.Commit_service.atomicity_ok;
  check tbool "agreement" true s.Commit_service.agreement_ok

let test_spec_validation () =
  check tbool "unknown protocol" true
    (try
       ignore (Commit_service.run ~protocol:"nope" ~n:3 ~f:1 small);
       false
     with Not_found -> true);
  let invalid spec =
    try
      ignore (Commit_service.run ~protocol:"inbac" ~n:3 ~f:1 spec);
      false
    with Invalid_argument _ -> true
  in
  check tbool "no clients" true
    (invalid { small with Commit_service.clients = 0 });
  check tbool "no writes" true
    (invalid { small with Commit_service.writes_per_txn = 0 });
  check tbool "pipeline depth < 1" true
    (invalid { small with Commit_service.pipeline_depth = 0 });
  check tbool "outage rank out of range" true
    (invalid { small with Commit_service.outages = [ (9, u, None) ] })

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "svc"
    [
      ( "commit-service",
        [
          quick "nominal resolves all" test_nominal_resolves_all;
          quick "deterministic" test_deterministic;
          quick "pipelining" test_pipelining;
          quick "batching" test_batching;
          quick "2pc parks and recovers" test_two_pc_parks_and_recovers;
          quick "2pc parks without recovery"
            test_two_pc_parks_without_recovery;
          quick "inbac crash non-blocking" test_inbac_crash_non_blocking;
          quick "spec validation" test_spec_validation;
        ] );
    ]
