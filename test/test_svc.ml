(* Tests for the multi-shot commit service: nominal runs resolve every
   transaction, the pipelining/batching knobs do what they claim, blocked
   instances park without stalling the pipeline and drain through shard
   recovery, and a run is a deterministic function of its spec. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let u = Sim_time.default_u

let small =
  {
    Commit_service.default with
    Commit_service.clients = 32;
    txns = 200;
    seed = 7;
  }

let run ?(spec = small) protocol = Commit_service.run ~protocol ~n:3 ~f:1 spec

(* the fields a run determines exactly (no wall-clock noise) *)
let fingerprint (s : Commit_service.stats) =
  ( ( s.Commit_service.transactions,
      s.Commit_service.committed,
      s.Commit_service.aborted,
      s.Commit_service.local_aborts,
      s.Commit_service.parked ),
    ( s.Commit_service.instances,
      s.Commit_service.retries,
      s.Commit_service.peak_in_flight,
      s.Commit_service.total_messages,
      s.Commit_service.staged_left ),
    s.Commit_service.makespan_delays )

let test_nominal_resolves_all () =
  List.iter
    (fun protocol ->
      let s = run protocol in
      check tint (protocol ^ " issued all") 200 s.Commit_service.transactions;
      check tint (protocol ^ " nothing parked") 0 s.Commit_service.parked;
      check tint (protocol ^ " staging drained") 0 s.Commit_service.staged_left;
      check tint (protocol ^ " accounted") 200
        (s.Commit_service.committed + s.Commit_service.aborted
       + s.Commit_service.local_aborts);
      check tbool (protocol ^ " commits") true (s.Commit_service.committed > 0);
      check tbool (protocol ^ " atomic") true s.Commit_service.atomicity_ok;
      check tbool (protocol ^ " agreement") true s.Commit_service.agreement_ok;
      let l = s.Commit_service.latency in
      check tbool (protocol ^ " percentiles ordered") true
        (l.Histogram.p50 <= l.Histogram.p95
        && l.Histogram.p95 <= l.Histogram.p99))
    [ "inbac"; "paxos-commit"; "2pc" ]

let test_deterministic () =
  List.iter
    (fun protocol ->
      check tbool (protocol ^ " same spec, same run") true
        (fingerprint (run protocol) = fingerprint (run protocol)))
    [ "inbac"; "2pc" ]

let test_pipelining () =
  let deep = run "inbac" in
  let serial =
    run ~spec:{ small with Commit_service.pipeline_depth = 1 } "inbac"
  in
  check tbool "deep pipeline overlaps instances" true
    (deep.Commit_service.peak_in_flight > 1);
  check tint "depth 1 serializes" 1 serial.Commit_service.peak_in_flight;
  check tint "serialized run still resolves" 0 serial.Commit_service.parked;
  check tbool "serialized run still atomic" true
    serial.Commit_service.atomicity_ok

let test_batching () =
  let batched = run "inbac" in
  let unbatched =
    run ~spec:{ small with Commit_service.max_batch = 1 } "inbac"
  in
  check tbool "co-resident transactions share instances" true
    (batched.Commit_service.mean_batch > 1.0);
  check tbool "max_batch 1 gives one txn per instance" true
    (unbatched.Commit_service.mean_batch = 1.0);
  check tbool "batching launches fewer instances" true
    (batched.Commit_service.instances < unbatched.Commit_service.instances)

let test_two_pc_parks_and_recovers () =
  (* the 2PC coordinator shard goes down at 3U and comes back at 40U:
     in-flight instances park, the recovered shard adopts what it missed,
     and every parked instance re-runs to a decision (re-election off —
     this exercises the pure park/recovery path) *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, Some (40 * u)) ];
      election_timeout = None;
    }
  in
  let s = run ~spec "2pc" in
  check tbool "parked instances re-ran" true (s.Commit_service.retries > 0);
  check tint "recovery drained every instance" 0 s.Commit_service.parked;
  check tint "no staging left" 0 s.Commit_service.staged_left;
  check tbool "commits resumed" true (s.Commit_service.committed > 0);
  check tbool "atomic across the outage" true s.Commit_service.atomicity_ok;
  check tbool "agreement across the outage" true s.Commit_service.agreement_ok

let test_two_pc_parks_without_recovery () =
  (* with re-election off, a never-healing coordinator outage strands its
     parked instances — the blocking behavior the regression test below
     shows re-election (the default) eliminates. staged_left counts live
     shards only, so the parked instances' write-ahead entries on the
     two surviving shards must still be visible there. *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
      election_timeout = None;
    }
  in
  let s = run ~spec "2pc" in
  check tbool "instances stay parked" true (s.Commit_service.parked > 0);
  check tbool "their writes stay staged" true
    (s.Commit_service.staged_left > 0);
  check tint "every issued txn accounted" s.Commit_service.transactions
    (s.Commit_service.committed + s.Commit_service.aborted
   + s.Commit_service.local_aborts + s.Commit_service.parked);
  check tbool "parked-not-installed is still atomic" true
    s.Commit_service.atomicity_ok

let test_no_recovery_liveness_regression () =
  (* Regression (ISSUE 9): a never-recovering coordinator outage used to
     strand its parked instances forever — staged writes held, locks
     held, clients stalled. With re-election on (the default), a
     surviving shard must take over and drive every parked instance to a
     decision: the run terminates fully drained. *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
    }
  in
  let s = run ~spec "2pc" in
  check tint "no instance left parked" 0 s.Commit_service.parked;
  check tint "no staging left on live shards" 0 s.Commit_service.staged_left;
  check tbool "commits kept flowing past the outage" true
    (s.Commit_service.committed > 0);
  check tint "every issued txn accounted" s.Commit_service.transactions
    (s.Commit_service.committed + s.Commit_service.aborted
   + s.Commit_service.local_aborts);
  check tbool "atomic" true s.Commit_service.atomicity_ok;
  check tbool "agreement" true s.Commit_service.agreement_ok

let test_election_accounting () =
  (* the drained no-recovery run is driven by elections: stand-ins are
     counted, their stolen decisions are counted, and no recovery ever
     happens so the retry counter stays at zero *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
    }
  in
  let s = run ~spec "2pc" in
  check tbool "elections happened" true (s.Commit_service.elections > 0);
  check tbool "stand-ins reached decisions" true (s.Commit_service.stolen > 0);
  check tbool "stolen bounded by elections" true
    (s.Commit_service.stolen <= s.Commit_service.elections);
  check tint "no recovery, no retries" 0 s.Commit_service.retries;
  check tbool "parked time recorded" true
    (s.Commit_service.time_parked.Histogram.count >= s.Commit_service.stolen);
  let tp = s.Commit_service.time_parked in
  check tbool "parked percentiles ordered" true
    (tp.Histogram.p50 <= tp.Histogram.p95 && tp.Histogram.p95 <= tp.Histogram.p99)

let test_election_vs_recovery_reconciles () =
  (* outage heals *after* the election timers have fired: stand-ins
     decide first, the recovering shard adopts their outcomes, and the
     whole history stays atomic with everything drained *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, Some (80 * u)) ];
    }
  in
  let s = run ~spec "2pc" in
  check tbool "elections beat the recovery" true
    (s.Commit_service.elections > 0);
  check tint "drained" 0 s.Commit_service.parked;
  check tint "no staging left anywhere after recovery" 0
    s.Commit_service.staged_left;
  check tint "accounted" s.Commit_service.transactions
    (s.Commit_service.committed + s.Commit_service.aborted
   + s.Commit_service.local_aborts);
  check tbool "atomic" true s.Commit_service.atomicity_ok;
  check tbool "agreement" true s.Commit_service.agreement_ok

let test_nominal_run_has_no_elections () =
  let s = run "inbac" in
  check tint "no outage, no elections" 0 s.Commit_service.elections;
  check tint "no outage, nothing stolen" 0 s.Commit_service.stolen;
  check tint "no outage, no parked time" 0
    s.Commit_service.time_parked.Histogram.count

let test_inbac_crash_non_blocking () =
  (* same unrecovered outage, but INBAC tolerates f=1: every instance
     still decides (aborting when the dead shard's vote is missing) — the
     non-blocking contrast the paper draws against 2PC *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      outages = [ (1, 3 * u, None) ];
    }
  in
  let s = run ~spec "inbac" in
  check tint "nothing parks" 0 s.Commit_service.parked;
  check tbool "pre-outage commits exist" true (s.Commit_service.committed > 0);
  check tbool "atomic" true s.Commit_service.atomicity_ok;
  check tbool "agreement" true s.Commit_service.agreement_ok

let test_zipf_s_passthrough () =
  let s =
    run ~spec:{ small with Commit_service.zipf_s = Some 1.25 } "inbac"
  in
  check (Alcotest.float 1e-9) "explicit exponent echoed" 1.25
    s.Commit_service.zipf_s;
  let s' = run "inbac" in
  check tbool "legacy alias resolves to a positive exponent" true
    (s'.Commit_service.zipf_s > 0.0)

(* ------------------------------------------------------------------ *)
(* Queued admission (ISSUE 10): FIFO fairness, liveness across outages,
   deadlock freedom, and the queue-vs-abort differential *)

let test_queue_fifo_fairness () =
  (* one key, one-transaction batches: the first arrival locks the key
     and everyone else joins its FIFO wait queue. With a generous budget
     nothing may abort, and decisions must come out in admission order —
     transaction ids are assigned at submit time, so the observed
     decision sequence must be exactly the id sequence. *)
  let spec =
    {
      Commit_service.default with
      Commit_service.clients = 16;
      txns = 64;
      keys = 1;
      reads_per_txn = 0;
      writes_per_txn = 1;
      max_batch = 1;
      batch_window = 0;
      wait_budget = 1_000_000;
      seed = 5;
    }
  in
  let order = ref [] in
  let s =
    Commit_service.run
      ~observe:(fun id _ -> order := id :: !order)
      ~protocol:"2pc" ~n:3 ~f:1 spec
  in
  check tint "everything commits" s.Commit_service.transactions
    s.Commit_service.committed;
  check tint "nothing aborts under a generous budget" 0
    (s.Commit_service.aborted + s.Commit_service.local_aborts);
  check tbool "the hot key made transactions wait" true
    (s.Commit_service.queued > 0);
  let ids =
    List.rev_map
      (fun id -> int_of_string (String.sub id 1 (String.length id - 1)))
      !order
  in
  check
    (Alcotest.list tint)
    "decisions in submission order" (List.sort compare ids) ids

let test_queue_drains_across_outage () =
  (* contended queue-mode run with a healing coordinator outage: waiters
     parked behind blocked holders must drain through recovery adoption,
     and the queue counters must stay internally consistent *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      zipf_s = Some 0.8;
      keys = 64;
      outages = [ (1, 3 * u, Some (40 * u)) ];
      election_timeout = None;
    }
  in
  let s = run ~spec "2pc" in
  check tbool "contention queued transactions" true
    (s.Commit_service.queued > 0);
  check tint "recovery drained everything" 0 s.Commit_service.parked;
  check tint "no staging left" 0 s.Commit_service.staged_left;
  check tbool "queue aborts within local aborts" true
    (s.Commit_service.queue_aborts <= s.Commit_service.local_aborts);
  check tint "accounted" s.Commit_service.transactions
    (s.Commit_service.committed + s.Commit_service.aborted
   + s.Commit_service.local_aborts);
  check tbool "atomic" true s.Commit_service.atomicity_ok;
  check tbool "agreement" true s.Commit_service.agreement_ok

let test_queue_drains_with_elections () =
  (* never-healing outage, re-election on (the default): stand-ins decide
     the blocked holders, whose queues drain on takeover — the contended
     run still terminates fully drained *)
  let spec =
    {
      Commit_service.default with
      Commit_service.txns = 400;
      seed = 7;
      zipf_s = Some 0.8;
      keys = 64;
      outages = [ (1, 3 * u, None) ];
    }
  in
  let s = run ~spec "2pc" in
  check tbool "contention queued transactions" true
    (s.Commit_service.queued > 0);
  check tbool "elections happened" true (s.Commit_service.elections > 0);
  check tint "drained" 0 s.Commit_service.parked;
  check tint "no staging left on live shards" 0 s.Commit_service.staged_left;
  check tbool "atomic" true s.Commit_service.atomicity_ok;
  check tbool "agreement" true s.Commit_service.agreement_ok

let test_queue_accounting () =
  (* hot-key run: the queue counters and derived gauges must be
     internally consistent, and the abort-mode twin must never queue *)
  let spec =
    {
      small with
      Commit_service.zipf_s = Some 1.2;
      Commit_service.keys = 32;
    }
  in
  let q = run ~spec "2pc" in
  check Alcotest.string "queue mode reported" "queue"
    q.Commit_service.admission_mode;
  check tbool "waiters recorded" true (q.Commit_service.queued > 0);
  check tbool "queue aborts within local aborts" true
    (q.Commit_service.queue_aborts <= q.Commit_service.local_aborts);
  check tbool "queue depth sampled per wait" true
    (q.Commit_service.queue_depth.Histogram.count >= q.Commit_service.queued);
  check (Alcotest.float 1e-9) "goodput is the committed fraction"
    (float_of_int q.Commit_service.committed
    /. float_of_int q.Commit_service.transactions)
    q.Commit_service.goodput;
  check tbool "allocation gauge is live" true
    (q.Commit_service.minor_words_per_txn > 0.0);
  let a =
    run
      ~spec:
        { spec with Commit_service.admission = Commit_service.Abort_on_conflict }
      "2pc"
  in
  check Alcotest.string "abort mode reported" "abort"
    a.Commit_service.admission_mode;
  check tint "abort mode never queues" 0 a.Commit_service.queued;
  check tint "abort mode has no queue aborts" 0 a.Commit_service.queue_aborts;
  check tbool "queueing beats aborting on goodput" true
    (q.Commit_service.goodput > a.Commit_service.goodput)

let test_soak_mode_neutral () =
  (* soak mode swaps exact histograms for streaming ones and recycles
     aggressively; the simulation itself must be unchanged — every
     deterministic counter identical, percentiles still ordered *)
  let spec = { small with Commit_service.zipf_s = Some 0.8 } in
  let plain = run ~spec "2pc" in
  let soak = run ~spec:{ spec with Commit_service.soak = true } "2pc" in
  check tbool "soak changes no counter" true
    (fingerprint plain = fingerprint soak);
  check tint "same latency sample count"
    plain.Commit_service.latency.Histogram.count
    soak.Commit_service.latency.Histogram.count;
  let l = soak.Commit_service.latency in
  check tbool "streaming percentiles ordered" true
    (l.Histogram.p50 <= l.Histogram.p95
    && l.Histogram.p95 <= l.Histogram.p99
    && l.Histogram.p99 <= l.Histogram.max)

let test_recycle_neutral () =
  (* machine/instance pooling is an allocation optimisation only: the
     deterministic arm JSON must be byte-identical with recycling off *)
  List.iter
    (fun spec ->
      let body recycle =
        Commit_service.arm_json_body
          (Commit_service.run ~protocol:"2pc" ~n:3 ~f:1
             { spec with Commit_service.recycle })
      in
      check Alcotest.string "recycling is behaviour-neutral" (body true)
        (body false))
    [
      { small with Commit_service.zipf_s = Some 0.8 };
      {
        small with
        Commit_service.txns = 150;
        outages = [ (1, 3 * u, None) ];
      };
    ]

let qcheck_queue_deadlock_free =
  (* liveness property: random multi-key transactions over a small
     keyspace, queued admission, no outages — every run must terminate
     fully drained (waiters hold no locks, so no hold-and-wait cycle can
     form; the wait budget bounds re-queue chains) with the books
     balanced *)
  let gen =
    QCheck.(
      quad (int_range 0 1000) (int_range 4 48) (int_range 1 4)
        (int_range 0 15))
  in
  QCheck.Test.make ~count:25 ~name:"queued admission is deadlock-free" gen
    (fun (seed, clients, writes, zipf_decis) ->
      let spec =
        {
          Commit_service.default with
          Commit_service.clients;
          txns = clients * 4;
          keys = 64;
          writes_per_txn = writes;
          zipf_s = Some (float_of_int zipf_decis /. 10.0);
          seed;
        }
      in
      let s = Commit_service.run ~protocol:"2pc" ~n:3 ~f:1 spec in
      s.Commit_service.parked = 0
      && s.Commit_service.staged_left = 0
      && s.Commit_service.committed + s.Commit_service.aborted
         + s.Commit_service.local_aborts
         = s.Commit_service.transactions
      && s.Commit_service.queue_aborts <= s.Commit_service.local_aborts
      && s.Commit_service.atomicity_ok
      && s.Commit_service.agreement_ok)

let qcheck_admission_differential =
  (* queue vs abort under crash injection: both policies must preserve
     atomicity and agreement, and at zero contention (one closed-loop
     client, one transaction in flight at a time) the admission policy is
     unreachable code — the two runs must make identical per-transaction
     decisions *)
  let gen =
    QCheck.(
      quad (int_range 0 1000) (int_range 8 32) (int_range 10 60)
        (int_range 0 12))
  in
  QCheck.Test.make ~count:25
    ~name:"queue vs abort: safe under faults, identical at zero contention"
    gen
    (fun (seed, clients, recover_gap_u, zipf_decis) ->
      let base admission clients =
        {
          Commit_service.default with
          Commit_service.clients;
          txns = clients * 4;
          keys = 64;
          zipf_s = Some (float_of_int zipf_decis /. 10.0);
          outages = [ (1, 4 * u, Some ((4 + recover_gap_u) * u)) ];
          admission;
          seed;
        }
      in
      let decisions spec =
        let tbl = Hashtbl.create 64 in
        let s =
          Commit_service.run
            ~observe:(fun id d -> Hashtbl.replace tbl id d)
            ~protocol:"2pc" ~n:3 ~f:1 spec
        in
        (tbl, s)
      in
      let _, sq = decisions (base Commit_service.Queue_waiters clients) in
      let _, sa = decisions (base Commit_service.Abort_on_conflict clients) in
      let qz, szq = decisions (base Commit_service.Queue_waiters 1) in
      let az, sza = decisions (base Commit_service.Abort_on_conflict 1) in
      sq.Commit_service.atomicity_ok && sq.Commit_service.agreement_ok
      && sa.Commit_service.atomicity_ok && sa.Commit_service.agreement_ok
      && sa.Commit_service.queued = 0
      && fingerprint szq = fingerprint sza
      && Hashtbl.length qz = Hashtbl.length az
      && Hashtbl.fold
           (fun id d acc ->
             acc
             &&
             match Hashtbl.find_opt az id with
             | Some d' -> Vote.decision_equal d d'
             | None -> false)
           qz true)

(* Differential: with a recovery in the schedule, turning re-election on
   changes *when* parked instances decide but never *what* they decide —
   the stand-in applies the same all-yes vote rule as the recovery
   retry. The spec is constrained so both runs are event-identical up to
   the first election timer: every transaction is issued by the initial
   client submits (txns <= clients), every batch launches immediately
   (pipeline >= txns), and the outage lands after that horizon.
   Admission is pinned to abort-on-conflict: a wait queue's drain time
   depends on *when* its holder decides, which is exactly what the two
   runs differ on. *)
let qcheck_election_differential =
  let gen =
    QCheck.(
      quad (int_range 0 1000) (int_range 8 32) (int_range 10 40)
        (int_range 10 80))
  in
  QCheck.Test.make ~count:25
    ~name:"re-election preserves per-transaction decisions" gen
    (fun (seed, clients, timeout_u, recover_gap_u) ->
      let txns = max 4 (clients / 2) in
      let down_at = 4 * u in
      let base election_timeout =
        {
          Commit_service.default with
          Commit_service.clients;
          txns;
          seed;
          pipeline_depth = txns;
          admission = Commit_service.Abort_on_conflict;
          outages = [ (1, down_at, Some (down_at + (recover_gap_u * u))) ];
          election_timeout;
        }
      in
      let decisions spec =
        let tbl = Hashtbl.create 64 in
        let s =
          Commit_service.run
            ~observe:(fun id d -> Hashtbl.replace tbl id d)
            ~protocol:"2pc" ~n:3 ~f:1 spec
        in
        (tbl, s)
      in
      let on, s_on = decisions (base (Some (timeout_u * u))) in
      let off, s_off = decisions (base None) in
      s_on.Commit_service.parked = 0
      && s_off.Commit_service.parked = 0
      && s_on.Commit_service.atomicity_ok
      && s_off.Commit_service.atomicity_ok
      && Hashtbl.length on = Hashtbl.length off
      && Hashtbl.fold
           (fun id d acc ->
             acc
             &&
             match Hashtbl.find_opt off id with
             | Some d' -> Vote.decision_equal d d'
             | None -> false)
           on true)

let test_parallel_arms_byte_identical () =
  (* the bench runs its arms through Batch.run: the deterministic JSON
     body of every arm must come out byte-identical whether the arms run
     on one domain or four *)
  let specs =
    [
      ("inbac", small);
      ("2pc", small);
      ( "2pc",
        {
          small with
          Commit_service.txns = 150;
          outages = [ (1, 3 * u, None) ];
        } );
      ("paxos-commit", { small with Commit_service.zipf_s = Some 0.9 });
    ]
  in
  let arm_bodies jobs =
    Batch.run ~jobs
      (fun (protocol, spec) ->
        Commit_service.arm_json_body
          (Commit_service.run ~protocol ~n:3 ~f:1 spec))
      specs
  in
  List.iter2
    (fun a b -> check Alcotest.string "arm body identical across jobs" a b)
    (arm_bodies 1) (arm_bodies 4)

let test_spec_validation () =
  check tbool "unknown protocol" true
    (try
       ignore (Commit_service.run ~protocol:"nope" ~n:3 ~f:1 small);
       false
     with Not_found -> true);
  let invalid spec =
    try
      ignore (Commit_service.run ~protocol:"inbac" ~n:3 ~f:1 spec);
      false
    with Invalid_argument _ -> true
  in
  check tbool "no clients" true
    (invalid { small with Commit_service.clients = 0 });
  check tbool "no writes" true
    (invalid { small with Commit_service.writes_per_txn = 0 });
  check tbool "pipeline depth < 1" true
    (invalid { small with Commit_service.pipeline_depth = 0 });
  check tbool "outage rank out of range" true
    (invalid { small with Commit_service.outages = [ (9, u, None) ] });
  check tbool "election timeout < 1" true
    (invalid { small with Commit_service.election_timeout = Some 0 })

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "svc"
    [
      ( "commit-service",
        [
          quick "nominal resolves all" test_nominal_resolves_all;
          quick "deterministic" test_deterministic;
          quick "pipelining" test_pipelining;
          quick "batching" test_batching;
          quick "2pc parks and recovers" test_two_pc_parks_and_recovers;
          quick "2pc parks without recovery"
            test_two_pc_parks_without_recovery;
          quick "no-recovery liveness regression"
            test_no_recovery_liveness_regression;
          quick "election accounting" test_election_accounting;
          quick "election then recovery reconciles"
            test_election_vs_recovery_reconciles;
          quick "nominal run has no elections"
            test_nominal_run_has_no_elections;
          quick "inbac crash non-blocking" test_inbac_crash_non_blocking;
          quick "zipf-s passthrough" test_zipf_s_passthrough;
          quick "parallel arms byte-identical"
            test_parallel_arms_byte_identical;
          quick "spec validation" test_spec_validation;
          prop qcheck_election_differential;
        ] );
      ( "queued-admission",
        [
          quick "fifo fairness" test_queue_fifo_fairness;
          quick "drains across outage" test_queue_drains_across_outage;
          quick "drains with elections" test_queue_drains_with_elections;
          quick "queue accounting" test_queue_accounting;
          quick "soak mode neutral" test_soak_mode_neutral;
          quick "recycle neutral" test_recycle_neutral;
          prop qcheck_queue_deadlock_free;
          prop qcheck_admission_differential;
        ] );
    ]
