(* End-to-end checks of the reproduction harness itself: every table the
   bench regenerates must verify, and the rendered artifacts must contain
   what the paper's tables contain. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  ln = 0 || go 0

let pairs = [ (3, 1); (5, 2); (8, 3) ]

let test_table1_verifies () =
  List.iter
    (fun (v : Table_one.verification) ->
      check tbool
        (Printf.sprintf "cell %s via %s"
           (Format.asprintf "%a" Props.pp_cell v.Table_one.cell)
           v.Table_one.protocol)
        true v.Table_one.all_ok)
    (Table_one.verifications ~pairs ())

let test_table1_grid_shape () =
  let grid = Table_one.grid () in
  (* the four 2-delay cells and the four message-bound classes all appear *)
  check tbool "2n-2+f cells" true (contains grid "2 / 2n-2+f");
  check tbool "n-1+f cells" true (contains grid "1 / n-1+f");
  check tbool "2n-2 cells" true (contains grid "1 / 2n-2");
  check tbool "free cells" true (contains grid "1 / 0");
  (* 27 non-empty cells *)
  let count_occurrences s sub =
    let rec go i acc =
      if i + String.length sub > String.length s then acc
      else if String.sub s i (String.length sub) = sub then
        go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  check Alcotest.int "27 non-empty cells" 27
    (count_occurrences grid " / ")

let test_table2_and_3_verify () =
  check tbool "delay- and message-optimal tables verify" true
    (Table_optimal.all_ok ~pairs)

let test_table2_render () =
  let s = Table_optimal.render_delay_optimal ~pairs in
  List.iter
    (fun p -> check tbool (p ^ " present") true (contains s p))
    [ "avnbac-delay"; "0nbac"; "1nbac"; "inbac" ];
  check tbool "no failure marker" false (contains s "| NO ")

let test_table3_render () =
  let s = Table_optimal.render_message_optimal ~pairs in
  List.iter
    (fun p -> check tbool (p ^ " present") true (contains s p))
    [ "0nbac"; "anbac"; "avnbac-msg"; "(n-1+f)nbac"; "(2n-2)nbac"; "(2n-2+f)nbac" ];
  check tbool "no failure marker" false (contains s "| NO ")

let test_table4_claims () =
  List.iter
    (fun (c : Table_compare.claim) ->
      check tbool c.Table_compare.description true c.Table_compare.holds)
    (Table_compare.claims ())

let test_table4_render () =
  let s = Table_compare.render ~pairs () in
  check tbool "inbac row" true (contains s "inbac");
  check tbool "2fn formula" true (contains s "2fn");
  check tbool "no failure marker" false (contains s "| NO ")

let test_robustness_matrix () =
  check tbool "every protocol's claimed cell observed" true
    (Robustness.all_ok ())

let test_weak_semantics () =
  check tbool "gaps demonstrated, contracts intact" true (Table_weak.all_ok ());
  let s = Table_weak.render () in
  check tbool "calvin row" true (contains s "calvin-commit");
  check tbool "majority row" true (contains s "majority-commit");
  check tbool "no failure marker" false (contains s "BROKEN")

let test_weak_flags () =
  check tbool "majority flagged weak" true (Complexity.is_weak "majority-commit");
  check tbool "calvin is strict (NBAC failure-free)" false
    (Complexity.is_weak "calvin-commit");
  check tbool "inbac is strict" false (Complexity.is_weak "inbac");
  check tbool "strict list excludes weak" false
    (List.mem "majority-commit" Complexity.strict_names)

let test_figure_one () =
  let s = Figure_one.render ~n:5 ~f:2 () in
  check tbool "dot graph present" true (contains s "digraph inbac_process");
  check tbool "nice log present" true (contains s "nice execution");
  check tbool "phases logged" true (contains s "phase 2");
  check tbool "direct path logged" true (contains s "decide via direct");
  check tbool "consensus path logged in failure runs" true
    (contains s "decide via consensus")

let test_complexity_covers_registry () =
  List.iter
    (fun name ->
      check tbool (name ^ " has a complexity entry") true
        (Complexity.find name <> None))
    Registry.names

let test_measure_default_pairs_legal () =
  List.iter
    (fun (n, f) ->
      check tbool "pair legal" true (n >= 2 && f >= 1 && f <= n - 1))
    Measure.default_pairs

let test_ascii_table () =
  let t = Ascii.create ~header:[ "a"; "bb" ] in
  Ascii.add_row t [ "x"; "y" ];
  Ascii.add_separator t;
  Ascii.add_row t [ "long-cell"; "z" ];
  let s = Ascii.render t in
  check tbool "header" true (contains s "| a ");
  check tbool "separator" true (contains s "+");
  Alcotest.match_raises "row width checked"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> Ascii.add_row t [ "only-one" ])

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  let slow name fn = Alcotest.test_case name `Slow fn in
  Alcotest.run "tables"
    [
      ( "table 1",
        [
          slow "verifications" test_table1_verifies;
          quick "grid shape" test_table1_grid_shape;
        ] );
      ( "tables 2-3",
        [
          slow "verify" test_table2_and_3_verify;
          quick "table 2 render" test_table2_render;
          quick "table 3 render" test_table3_render;
        ] );
      ( "table 4",
        [ slow "claims" test_table4_claims; quick "render" test_table4_render ] );
      ("robustness", [ slow "matrix" test_robustness_matrix ]);
      ( "weak semantics (section 6.3)",
        [ quick "table" test_weak_semantics; quick "flags" test_weak_flags ] );
      ("figure 1", [ quick "render" test_figure_one ]);
      ( "harness",
        [
          quick "complexity covers registry" test_complexity_covers_registry;
          quick "default pairs legal" test_measure_default_pairs_legal;
          quick "ascii table" test_ascii_table;
        ] );
    ]
