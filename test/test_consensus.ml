(* Tests for the consensus substrates (Paxos, Floodset): agreement,
   validity, termination under crashes and delay adversaries, driven
   through a minimal commit-layer probe that proposes its vote to the
   consensus service at time 0. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let u = Sim_time.default_u

module Cons_probe = struct
  type msg = |
  type state = { decided : bool }

  let name = "cons-probe"
  let uses_consensus = true
  let pp_msg _ppf (m : msg) = (match m with _ -> .)
  let init _env = { decided = false }
  let on_propose _env state v = (state, [ Proto.Propose_consensus v ])
  let on_deliver _env _state ~src:_ (m : msg) = (match m with _ -> .)
  let on_timeout _env state ~id:_ = (state, [])
  let guards = []
  let on_guard _env _state ~id = failwith ("cons-probe: unknown guard " ^ id)

  let on_consensus_decide _env state d =
    if state.decided then (state, [])
    else ({ decided = true }, [ Proto.Decide (Vote.decision_of_vote d) ])

  let hash_state = None
  let hash_msg = None
  let symmetry ~n ~f:_ = Symmetry.trivial ~n
end

module Paxos_run = Engine.Make (Cons_probe) (Consensus_paxos)
module Trivial_run = Engine.Make (Cons_probe) (Consensus_trivial)
module Floodset_run = Engine.Make (Cons_probe) (Consensus_floodset)

let consensus_verdict (report : Report.t) =
  let decisions = Report.decided_values report in
  let proposals = Trace.proposals report.Report.trace in
  let agreement =
    match decisions with
    | [] -> true
    | d :: rest -> List.for_all (Vote.decision_equal d) rest
  in
  let validity =
    List.for_all
      (fun d ->
        List.exists
          (fun (_, v) -> Vote.equal (Vote.vote_of_decision d) v)
          proposals)
      decisions
  in
  (agreement, validity)

let test_paxos_unanimous () =
  let report = Paxos_run.run (Scenario.nice ~n:5 ~f:2 ()) in
  check tbool "all decided" true (Report.all_correct_decided report);
  List.iter
    (fun d -> check tbool "commit" true (Vote.decision_equal d Vote.commit))
    (Report.decided_values report)

let test_paxos_mixed_votes () =
  let scenario =
    Scenario.with_no_votes (Scenario.nice ~n:5 ~f:2 ())
      [ Pid.of_rank 2; Pid.of_rank 4 ]
  in
  let report = Paxos_run.run scenario in
  let agreement, validity = consensus_verdict report in
  check tbool "agreement" true agreement;
  check tbool "validity" true validity;
  check tbool "termination" true (Report.all_correct_decided report)

let test_paxos_minority_crash () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
      [
        (Pid.of_rank 1, Scenario.Before (2 * u));
        (Pid.of_rank 3, Scenario.Before 0);
      ]
  in
  let report = Paxos_run.run scenario in
  let agreement, validity = consensus_verdict report in
  check tbool "agreement" true agreement;
  check tbool "validity" true validity;
  check tbool "correct majority decides" true (Report.all_correct_decided report)

let test_paxos_majority_crash_safe () =
  (* with only a minority alive, Paxos may not terminate — but it must
     never disagree *)
  let scenario =
    Scenario.with_crashes
      (Scenario.make ~n:5 ~f:4 ~max_time:(60 * u) ())
      [
        (Pid.of_rank 1, Scenario.Before u);
        (Pid.of_rank 2, Scenario.Before u);
        (Pid.of_rank 3, Scenario.Before (2 * u));
      ]
  in
  let report = Paxos_run.run scenario in
  let agreement, validity = consensus_verdict report in
  check tbool "agreement regardless of liveness" true agreement;
  check tbool "validity regardless of liveness" true validity

let test_paxos_eventual_synchrony () =
  List.iter
    (fun seed ->
      let scenario =
        Scenario.make ~n:5 ~f:2 ~seed
          ~network:
            (Network.eventually_synchronous ~u ~gst:(10 * u)
               ~max_early_delay:(5 * u))
          ()
      in
      let report = Paxos_run.run scenario in
      let agreement, validity = consensus_verdict report in
      check tbool "agreement" true agreement;
      check tbool "validity" true validity;
      check tbool "terminates after GST" true (Report.all_correct_decided report))
    [ 1; 2; 3; 4; 5 ]

let test_paxos_retry_backoff () =
  check tbool "base delay is 4u" true (Consensus_paxos.retry_base_delay ~u = 4 * u)

let prop_paxos_random =
  QCheck.Test.make ~count:60 ~name:"paxos: agreement+validity, random faults"
    QCheck.(triple small_int (int_range 3 7) (int_range 0 1))
    (fun (seed, n, crash_one) ->
      let votes =
        Array.init n (fun i ->
            if (seed + i) mod 3 = 0 then Vote.no else Vote.yes)
      in
      let crashes =
        if crash_one = 1 then
          [ (Pid.of_rank ((seed mod n) + 1), Scenario.Before (seed mod 4 * u)) ]
        else []
      in
      let scenario =
        Scenario.make ~n ~f:1 ~votes ~crashes ~seed
          ~network:(Network.jittered ~u) ()
      in
      let report = Paxos_run.run scenario in
      let agreement, validity = consensus_verdict report in
      agreement && validity && Report.all_correct_decided report)

let test_floodset_unanimous () =
  let report = Floodset_run.run (Scenario.nice ~n:5 ~f:3 ()) in
  check tbool "all decided" true (Report.all_correct_decided report);
  List.iter
    (fun d -> check tbool "commit" true (Vote.decision_equal d Vote.commit))
    (Report.decided_values report)

let test_floodset_zero_dominates () =
  let scenario =
    Scenario.with_no_votes (Scenario.nice ~n:5 ~f:2 ()) [ Pid.of_rank 4 ]
  in
  let report = Floodset_run.run scenario in
  List.iter
    (fun d -> check tbool "abort wins" true (Vote.decision_equal d Vote.abort))
    (Report.decided_values report);
  check tbool "terminates" true (Report.all_correct_decided report)

let test_floodset_tolerates_many_crashes () =
  (* n-1 crashes: beyond any majority requirement, f+1 rounds still end *)
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:4 ())
      [
        (Pid.of_rank 1, Scenario.During_sends (0, 1));
        (Pid.of_rank 2, Scenario.Before u);
        (Pid.of_rank 3, Scenario.Before (2 * u));
        (Pid.of_rank 4, Scenario.Before (3 * u));
      ]
  in
  let report = Floodset_run.run scenario in
  let agreement, validity = consensus_verdict report in
  check tbool "agreement" true agreement;
  check tbool "validity" true validity;
  check tbool "the survivor decides" true (Report.all_correct_decided report)

let prop_floodset_random_crashes =
  QCheck.Test.make ~count:60
    ~name:"floodset: uniform agreement under aligned starts and crashes"
    QCheck.(pair small_int (int_range 3 6))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let f = 1 + Rng.int rng ~bound:(n - 1) in
      let crashes =
        List.filteri (fun i _ -> i < f) (Rng.shuffle rng (Pid.all ~n))
        |> List.map (fun p ->
               let at = Rng.int rng ~bound:((f + 2) * u) in
               if Rng.bool rng then (p, Scenario.Before at)
               else (p, Scenario.During_sends (at, Rng.int rng ~bound:n)))
      in
      let votes =
        Array.init n (fun i -> if (seed + i) mod 4 = 0 then Vote.no else Vote.yes)
      in
      let scenario = Scenario.make ~n ~f ~votes ~crashes ~seed () in
      let report = Floodset_run.run scenario in
      let agreement, validity = consensus_verdict report in
      agreement && validity && Report.all_correct_decided report)

let test_trivial_is_unsafe_on_purpose () =
  (* the documented non-agreement of the test-plumbing consensus *)
  let scenario =
    Scenario.with_no_votes (Scenario.nice ~n:3 ~f:1 ()) [ Pid.of_rank 2 ]
  in
  let report = Trivial_run.run scenario in
  let agreement, _ = consensus_verdict report in
  check tbool "trivial consensus disagrees on mixed proposals" false agreement

let test_null_consensus_rejects_proposals () =
  Alcotest.match_raises "null consensus"
    (function Failure _ -> true | _ -> false)
    (fun () ->
      let module Null_run = Engine.Make (Cons_probe) (Consensus_null) in
      ignore (Null_run.run (Scenario.nice ~n:3 ~f:1 ())))

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "consensus"
    [
      ( "paxos",
        [
          quick "unanimous" test_paxos_unanimous;
          quick "mixed votes" test_paxos_mixed_votes;
          quick "minority crash" test_paxos_minority_crash;
          quick "majority crash stays safe" test_paxos_majority_crash_safe;
          quick "eventual synchrony" test_paxos_eventual_synchrony;
          quick "retry backoff" test_paxos_retry_backoff;
          prop prop_paxos_random;
        ] );
      ( "floodset",
        [
          quick "unanimous" test_floodset_unanimous;
          quick "zero dominates" test_floodset_zero_dominates;
          quick "tolerates n-1 crashes" test_floodset_tolerates_many_crashes;
          prop prop_floodset_random_crashes;
        ] );
      ( "plumbing",
        [
          quick "trivial is unsafe by design" test_trivial_is_unsafe_on_purpose;
          quick "null rejects proposals" test_null_consensus_rejects_proposals;
        ] );
    ]
