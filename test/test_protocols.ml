(* Behavioural tests for every commit protocol: nice-execution complexity
   against the paper's closed forms, abort paths, protocol-specific fault
   behaviour, and generic property-based checks of each protocol's
   claimed cell. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let u = Sim_time.default_u
let run name scenario = (Registry.find_exn name).Registry.run scenario

let decisions_of report =
  List.map (fun (_, _, d) -> d) (Trace.decisions report.Report.trace)

let all_abort report =
  let ds = decisions_of report in
  ds <> [] && List.for_all (Vote.decision_equal Vote.abort) ds

let all_commit report =
  let ds = decisions_of report in
  ds <> [] && List.for_all (Vote.decision_equal Vote.commit) ds

(* ------------------------------------------------------------------ *)
(* Nice executions: measured = closed form, for every protocol *)

let test_nice_complexity () =
  List.iter
    (fun (m : Measure.nice) ->
      let label what =
        Printf.sprintf "%s n=%d f=%d %s" m.Measure.protocol m.Measure.n
          m.Measure.f what
      in
      check tint (label "messages") m.Measure.expected_messages
        m.Measure.metrics.Metrics.messages;
      check (Alcotest.float 1e-9) (label "delays")
        (float_of_int m.Measure.expected_delays)
        m.Measure.metrics.Metrics.delays;
      check tbool (label "all decided") true m.Measure.metrics.Metrics.all_decided;
      check tbool (label "consensus idle") false
        m.Measure.metrics.Metrics.consensus_invoked)
    (Measure.sweep ~protocols:Registry.names ~pairs:Measure.default_pairs ())

(* ------------------------------------------------------------------ *)
(* Failure-free executions solve NBAC for every protocol, any votes *)

let test_failure_free_abort_paths () =
  (* weak-semantics baselines (Section 6.3) are exempt: they do not claim
     NBAC even in failure-free executions *)
  List.iter
    (fun name ->
      List.iter
        (fun zeros ->
          let scenario =
            Scenario.with_no_votes (Scenario.nice ~n:5 ~f:2 ())
              (List.map Pid.of_rank zeros)
          in
          let report = run name scenario in
          let v = Check.run report in
          check tbool
            (Printf.sprintf "%s zeros=%s solves NBAC" name
               (String.concat "," (List.map string_of_int zeros)))
            true (Check.solves_nbac v);
          check tbool (name ^ " aborts") true (all_abort report))
        [ [ 1 ]; [ 3 ]; [ 5 ]; [ 1; 5 ]; [ 1; 2; 3; 4; 5 ] ])
    Complexity.strict_names

let prop_failure_free_nbac =
  QCheck.Test.make ~count:120
    ~name:"failure-free executions solve NBAC (all protocols, any votes)"
    QCheck.(triple (int_range 0 20) small_int (int_range 2 7))
    (fun (proto_ix, seed, n) ->
      let strict = Complexity.strict_names in
      let name = List.nth strict (proto_ix mod List.length strict) in
      let rng = Rng.create seed in
      let votes = Array.init n (fun _ -> Vote.of_bool (Rng.bool rng)) in
      let scenario =
        Scenario.make ~n ~f:1 ~votes ~seed ~network:(Network.jittered ~u) ()
      in
      let report = run name scenario in
      Check.solves_nbac (Check.run report))

(* ------------------------------------------------------------------ *)
(* 2PC *)

let test_two_pc_blocks_on_coordinator_crash () =
  let report = run "2pc" (Witness.two_pc_blocks ~n:5) in
  let v = Check.run report in
  check tbool "termination violated" false v.Check.termination;
  check tbool "agreement intact" true v.Check.agreement;
  check tbool "no participant decided" true (decisions_of report = [])

let test_two_pc_participant_crash_aborts () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:1 ())
      [ (Pid.of_rank 3, Scenario.Before 0) ]
  in
  let report = run "2pc" scenario in
  check tbool "abort" true (all_abort report);
  check tbool "survivors all decide" true (Report.all_correct_decided report)

let test_two_pc_unilateral_abort () =
  let scenario =
    Scenario.with_no_votes (Scenario.nice ~n:4 ~f:1 ()) [ Pid.of_rank 2 ]
  in
  let report = run "2pc" scenario in
  match Report.decision_of report (Pid.of_rank 2) with
  | Some (at, d) ->
      check tbool "no-voter aborts instantly" true
        (at = 0 && Vote.decision_equal d Vote.abort)
  | None -> Alcotest.fail "no-voter did not decide"

(* ------------------------------------------------------------------ *)
(* 3PC *)

let test_three_pc_survives_coordinator_crash () =
  List.iter
    (fun at ->
      let scenario =
        Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
          [ (Pid.of_rank 1, Scenario.Before (at * u)) ]
      in
      let report = run "3pc" scenario in
      check tbool
        (Printf.sprintf "NBAC despite coordinator crash at %d delays" at)
        true
        (Check.solves_nbac (Check.run report)))
    [ 0; 1; 2; 3; 4 ]

let test_three_pc_partial_precommit () =
  (* coordinator precommits to a strict subset then dies: the backup must
     drive everyone to one outcome *)
  List.iter
    (fun keep ->
      let scenario =
        Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
          [ (Pid.of_rank 1, Scenario.During_sends (u, keep)) ]
      in
      let report = run "3pc" scenario in
      check tbool
        (Printf.sprintf "NBAC with %d precommits escaping" keep)
        true
        (Check.solves_nbac (Check.run report)))
    [ 0; 1; 2; 3 ]

let test_three_pc_cascading_backups () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
      [
        (Pid.of_rank 1, Scenario.During_sends (3 * u, 2));
        (Pid.of_rank 2, Scenario.During_sends (8 * u, 1));
      ]
  in
  let report = run "3pc" scenario in
  check tbool "NBAC after the first backup also dies" true
    (Check.solves_nbac (Check.run report))

(* ------------------------------------------------------------------ *)
(* Chain / star / cycle *)

let test_chain_crash_aborts () =
  List.iter
    (fun rank ->
      let scenario =
        Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
          [ (Pid.of_rank rank, Scenario.Before 0) ]
      in
      let report = run "(n-1+f)nbac" scenario in
      let v = Check.run report in
      check tbool (Printf.sprintf "NBAC with P%d crashed" rank) true
        (Check.solves_nbac v);
      check tbool "chain silence aborts" true (all_abort report))
    [ 1; 3; 5 ]

let test_chain_late_crash_still_commits () =
  (* a crash after the chain and suffix completed cannot flip anyone *)
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:1 ())
      [ (Pid.of_rank 2, Scenario.Before (6 * u)) ]
  in
  let report = run "(n-1+f)nbac" scenario in
  check tbool "commit" true (all_commit report);
  check tbool "NBAC" true (Check.solves_nbac (Check.run report))

let test_star_relay_preserves_agreement () =
  List.iter
    (fun keep ->
      let report = run "(2n-2)nbac" (Witness.star_nbac_partial_broadcast ~n:5 ~keep) in
      let v = Check.run report in
      check tbool (Printf.sprintf "agreement with %d B-copies escaping" keep)
        true v.Check.agreement;
      check tbool "termination" true v.Check.termination)
    [ 0; 1; 2; 3 ]

let test_star_hub_crash_aborts () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
      [ (Pid.of_rank 5, Scenario.Before 0) ]
  in
  let report = run "(2n-2)nbac" scenario in
  check tbool "hub crash aborts" true (all_abort report);
  check tbool "NBAC" true (Check.solves_nbac (Check.run report))

let test_cycle_crash_tolerance () =
  List.iter
    (fun (rank, at) ->
      let scenario =
        Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
          [ (Pid.of_rank rank, Scenario.Before (at * u)) ]
      in
      let report = run "(2n-2+f)nbac" scenario in
      check tbool
        (Printf.sprintf "NBAC with P%d crashed at %d" rank at)
        true
        (Check.solves_nbac (Check.run report)))
    [ (1, 0); (3, 2); (5, 4); (2, 6); (1, 20) ]

let test_cycle_token_crash_mid_ring () =
  (* the B token holder dies while forwarding *)
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
      [ (Pid.of_rank 2, Scenario.During_sends (6 * u, 0)) ]
  in
  let report = run "(2n-2+f)nbac" scenario in
  check tbool "NBAC via helpers/consensus" true
    (Check.solves_nbac (Check.run report))

(* ------------------------------------------------------------------ *)
(* 0NBAC / avNBAC / aNBAC *)

let test_zero_nbac_silent_commit () =
  let report = run "0nbac" (Scenario.nice ~n:6 ~f:2 ()) in
  check tint "zero messages" 0 (Report.total_messages report);
  check tbool "commit" true (all_commit report)

let test_zero_nbac_abort_costs_messages () =
  let scenario =
    Scenario.with_no_votes (Scenario.nice ~n:5 ~f:2 ()) [ Pid.of_rank 2 ]
  in
  let report = run "0nbac" scenario in
  check tbool "abort" true (all_abort report);
  check tbool "messages were needed" true (Report.total_messages report > 0)

let test_zero_nbac_crash_keeps_at () =
  (* (AT, AT): agreement and termination under crashes; validity may go *)
  List.iter
    (fun at ->
      let scenario =
        Scenario.with_crashes
          (Scenario.with_no_votes (Scenario.nice ~n:5 ~f:2 ()) [ Pid.of_rank 2 ])
          [ (Pid.of_rank 2, Scenario.During_sends (at, 2)) ]
      in
      let report = run "0nbac" scenario in
      let v = Check.run report in
      check tbool "agreement" true v.Check.agreement;
      check tbool "termination" true v.Check.termination)
    [ 0; u; 2 * u ]

let test_avnbac_delay_blocks_but_safe () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:4 ~f:1 ())
      [ (Pid.of_rank 2, Scenario.Before 0) ]
  in
  let report = run "avnbac-delay" scenario in
  let v = Check.run report in
  check tbool "agreement" true v.Check.agreement;
  check tbool "validity" true (Check.validity v);
  check tbool "nobody decides (termination waived)" true
    (decisions_of report = [])

let test_avnbac_msg_hub_crash () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:4 ~f:1 ())
      [ (Pid.of_rank 4, Scenario.Before 0) ]
  in
  let report = run "avnbac-msg" scenario in
  let v = Check.run report in
  check tbool "agreement" true v.Check.agreement;
  check tbool "validity" true (Check.validity v);
  check tbool "participants block" true (decisions_of report = [])

let test_anbac_zero_voter_needs_all_acks () =
  (* a crash hides one acknowledgement: the 0-voter must noop, not decide *)
  let scenario =
    Scenario.with_crashes
      (Scenario.with_no_votes (Scenario.nice ~n:5 ~f:1 ()) [ Pid.of_rank 2 ])
      [ (Pid.of_rank 4, Scenario.Before 0) ]
  in
  let report = run "anbac" scenario in
  let v = Check.run report in
  check tbool "agreement" true v.Check.agreement;
  check tbool "the 0-voter never decides" true
    (Report.decision_of report (Pid.of_rank 2) = None)

let test_anbac_zero_voter_decides_failure_free () =
  let scenario =
    Scenario.with_no_votes (Scenario.nice ~n:5 ~f:1 ()) [ Pid.of_rank 2 ]
  in
  let report = run "anbac" scenario in
  check tbool "all abort" true (all_abort report);
  check tbool "NBAC" true (Check.solves_nbac (Check.run report))

(* ------------------------------------------------------------------ *)
(* Paxos Commit variants *)

let test_paxos_commit_leader_crash () =
  List.iter
    (fun at ->
      let scenario =
        Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
          [ (Pid.of_rank 1, Scenario.Before (at * u)) ]
      in
      let report = run "paxos-commit" scenario in
      check tbool (Printf.sprintf "NBAC, leader dead at %d" at) true
        (Check.solves_nbac (Check.run report)))
    [ 0; 1; 2 ]

let test_paxos_commit_partial_outcome () =
  (* the leader's Outcome broadcast is cut short *)
  List.iter
    (fun keep ->
      let scenario =
        Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
          [ (Pid.of_rank 1, Scenario.During_sends (2 * u, keep)) ]
      in
      let report = run "paxos-commit" scenario in
      check tbool (Printf.sprintf "NBAC, %d outcomes escaped" keep) true
        (Check.solves_nbac (Check.run report)))
    [ 0; 1; 2; 3 ]

let test_paxos_commit_acceptor_crash () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
      [ (Pid.of_rank 2, Scenario.Before u) ]
  in
  let report = run "paxos-commit" scenario in
  check tbool "NBAC despite acceptor crash" true
    (Check.solves_nbac (Check.run report))

let test_faster_paxos_commit_partial_report () =
  List.iter
    (fun keep ->
      let scenario =
        Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
          [ (Pid.of_rank 2, Scenario.During_sends (u, keep)) ]
      in
      let report = run "faster-paxos-commit" scenario in
      check tbool (Printf.sprintf "NBAC, %d reports escaped" keep) true
        (Check.solves_nbac (Check.run report)))
    [ 0; 1; 2; 3 ]

let test_faster_paxos_commit_rm_crash_mid_vote () =
  let scenario =
    Scenario.with_crashes (Scenario.nice ~n:5 ~f:2 ())
      [ (Pid.of_rank 4, Scenario.During_sends (0, 1)) ]
  in
  let report = run "faster-paxos-commit" scenario in
  check tbool "NBAC with a half-sent vote" true
    (Check.solves_nbac (Check.run report))

(* ------------------------------------------------------------------ *)
(* Generic property: claimed crash-failure cell holds under random faults *)

let prop_crash_failure_claims =
  QCheck.Test.make ~count:120
    ~name:"crash-failure executions keep each protocol's claimed CF cell"
    QCheck.(pair (int_range 0 13) small_int)
    (fun (proto_ix, seed) ->
      let name = List.nth Registry.names (proto_ix mod List.length Registry.names) in
      let claimed = (Complexity.find_exn name).Complexity.cell in
      let scenario = Witness.crash_storm ~n:5 ~f:2 ~seed in
      let report = run name scenario in
      Check.holds (Check.run report) claimed.Props.cf)

let prop_network_failure_claims =
  QCheck.Test.make ~count:60
    ~name:"network-failure executions keep each protocol's claimed NF cell"
    QCheck.(pair (int_range 0 13) small_int)
    (fun (proto_ix, seed) ->
      let name = List.nth Registry.names (proto_ix mod List.length Registry.names) in
      let claimed = (Complexity.find_exn name).Complexity.cell in
      let scenario = Witness.eventual_synchrony ~n:5 ~f:2 ~seed in
      let report = run name scenario in
      Check.holds (Check.run report) claimed.Props.nf)

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  let slow name fn = Alcotest.test_case name `Slow fn in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "protocols"
    [
      ( "nice executions",
        [ slow "measured = closed form (full sweep)" test_nice_complexity ] );
      ( "failure-free",
        [
          quick "abort paths" test_failure_free_abort_paths;
          prop prop_failure_free_nbac;
        ] );
      ( "2pc",
        [
          quick "blocks on coordinator crash" test_two_pc_blocks_on_coordinator_crash;
          quick "participant crash aborts" test_two_pc_participant_crash_aborts;
          quick "unilateral abort" test_two_pc_unilateral_abort;
        ] );
      ( "3pc",
        [
          quick "survives coordinator crash" test_three_pc_survives_coordinator_crash;
          quick "partial precommit" test_three_pc_partial_precommit;
          quick "cascading backups" test_three_pc_cascading_backups;
        ] );
      ( "chain/star/cycle",
        [
          quick "chain crash aborts" test_chain_crash_aborts;
          quick "chain late crash commits" test_chain_late_crash_still_commits;
          quick "star relay agreement" test_star_relay_preserves_agreement;
          quick "star hub crash" test_star_hub_crash_aborts;
          quick "cycle crash tolerance" test_cycle_crash_tolerance;
          quick "cycle token crash" test_cycle_token_crash_mid_ring;
        ] );
      ( "0nbac/avnbac/anbac",
        [
          quick "silent commit" test_zero_nbac_silent_commit;
          quick "abort costs messages" test_zero_nbac_abort_costs_messages;
          quick "crash keeps (AT)" test_zero_nbac_crash_keeps_at;
          quick "avnbac-delay blocks but safe" test_avnbac_delay_blocks_but_safe;
          quick "avnbac-msg hub crash" test_avnbac_msg_hub_crash;
          quick "anbac missing ack blocks" test_anbac_zero_voter_needs_all_acks;
          quick "anbac aborts failure-free" test_anbac_zero_voter_decides_failure_free;
        ] );
      ( "paxos commit",
        [
          quick "leader crash" test_paxos_commit_leader_crash;
          quick "partial outcome" test_paxos_commit_partial_outcome;
          quick "acceptor crash" test_paxos_commit_acceptor_crash;
          quick "faster: partial report" test_faster_paxos_commit_partial_report;
          quick "faster: rm crash mid vote" test_faster_paxos_commit_rm_crash_mid_vote;
        ] );
      ( "claimed cells",
        [ prop prop_crash_failure_claims; prop prop_network_failure_claims ] );
    ]
