(* The design-decision ablations and the complexity series: each knob
   must matter exactly where DESIGN.md claims it does. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

(* ------------------------------------------------------------------ *)
(* Ablation 1: delivery-before-timeout priority (appendix remark (b)) *)

let flip_expectations =
  (* which protocols must survive the flip: those whose nice path is
     event-driven rather than aligned on exact timer boundaries *)
  [
    ("inbac", false);
    ("1nbac", false);
    ("(n-1+f)nbac", false);
    ("(2n-2)nbac", false);
    ("0nbac", true);
    ("2pc", true);
  ]

let test_priority_flip () =
  let rows = Ablation.priority_flip ~n:5 ~f:2 () in
  List.iter
    (fun (r : Ablation.flip_row) ->
      check tbool (r.Ablation.protocol ^ " fine under the paper rule") true
        r.Ablation.nbac_with_priority;
      match List.assoc_opt r.Ablation.protocol flip_expectations with
      | Some expected ->
          check tbool
            (r.Ablation.protocol ^ " flipped-priority expectation")
            expected r.Ablation.nbac_flipped
      | None -> ())
    rows;
  check tbool "the ablation demonstrates a failure" true
    (List.exists (fun r -> not r.Ablation.nbac_flipped) rows)

let test_flip_is_scenario_local () =
  (* the knob must not leak: a default scenario still uses the paper rule *)
  let nice = Scenario.nice ~n:4 ~f:1 () in
  check tbool "default is deliveries-first" true nice.Scenario.deliveries_first

(* ------------------------------------------------------------------ *)
(* Ablation 2: consensus modularity (Theorem 6) *)

let test_consensus_choice () =
  List.iter
    (fun (r : Ablation.consensus_row) ->
      check tbool (r.Ablation.scenario_label ^ ": same outcome") true
        r.Ablation.same_outcome;
      check tbool
        (r.Ablation.scenario_label ^ ": both fallbacks actually ran")
        true
        (r.Ablation.paxos_cons_messages > 0
        && r.Ablation.floodset_cons_messages > 0))
    (Ablation.consensus_choice ~n:5 ~f:2 ())

(* ------------------------------------------------------------------ *)
(* Ablation 3: fast abort *)

let test_fast_abort () =
  match Ablation.fast_abort ~n:5 ~f:2 () with
  | [ std; fast ] ->
      check tint "identical nice messages" std.Ablation.nice_messages
        fast.Ablation.nice_messages;
      check (Alcotest.float 1e-9) "identical nice delays"
        std.Ablation.nice_delays fast.Ablation.nice_delays;
      check (Alcotest.float 1e-9) "standard abort takes 2 delays" 2.0
        std.Ablation.abort_delays;
      check (Alcotest.float 1e-9) "fast abort takes 1 delay" 1.0
        fast.Ablation.abort_delays
  | _ -> Alcotest.fail "expected two variants"

(* ------------------------------------------------------------------ *)
(* Ablation 4: the Section 6 normalization *)

let test_normalization () =
  match Ablation.normalization ~n:5 () with
  | [ spontaneous; classic ] ->
      check tint "n-1 extra messages"
        (spontaneous.Ablation.nice_messages + 4)
        classic.Ablation.nice_messages;
      check (Alcotest.float 1e-9) "one extra delay"
        (spontaneous.Ablation.nice_delays +. 1.0)
        classic.Ablation.nice_delays
  | _ -> Alcotest.fail "expected two variants"

let test_classic_2pc_blocks_too () =
  let report =
    (Registry.find_exn "2pc-classic").Registry.run (Witness.two_pc_blocks ~n:5)
  in
  let v = Check.run report in
  check tbool "classic 2PC also blocks" false v.Check.termination;
  check tbool "agreement intact" true v.Check.agreement

(* ------------------------------------------------------------------ *)
(* Series *)

let test_series_match_formulas () =
  let ns = [ 3; 5; 8; 13 ] in
  List.iter
    (fun (s : Series.series) ->
      let entry = Complexity.find_exn s.Series.protocol in
      List.iter
        (fun (p : Series.point) ->
          check tint
            (Printf.sprintf "%s messages at n=%d" s.Series.protocol p.Series.x)
            (entry.Complexity.messages ~n:p.Series.x ~f:2)
            p.Series.messages;
          check (Alcotest.float 1e-9)
            (Printf.sprintf "%s delays at n=%d" s.Series.protocol p.Series.x)
            (float_of_int (entry.Complexity.delays ~n:p.Series.x ~f:2))
            p.Series.delays)
        s.Series.points)
    (Series.over_n
       ~protocols:[ "inbac"; "2pc"; "paxos-commit"; "(2n-2+f)nbac" ]
       ~f:2 ~ns ())

let test_series_over_f () =
  List.iter
    (fun (s : Series.series) ->
      let entry = Complexity.find_exn s.Series.protocol in
      List.iter
        (fun (p : Series.point) ->
          check tint
            (Printf.sprintf "%s messages at f=%d" s.Series.protocol p.Series.x)
            (entry.Complexity.messages ~n:9 ~f:p.Series.x)
            p.Series.messages)
        s.Series.points)
    (Series.over_f ~protocols:[ "inbac"; "faster-paxos-commit" ] ~n:9
       ~fs:[ 1; 2; 4; 8 ] ())

let test_crossover_delta_two () =
  List.iter
    (fun (n, inbac, two_pc) ->
      check tint (Printf.sprintf "delta at n=%d" n) 2 (inbac - two_pc);
      check tint "inbac = 2n" (2 * n) inbac)
    (Series.crossover_f1 ~ns:[ 2; 3; 5; 8; 13; 21 ])

let test_series_skips_illegal_pairs () =
  match Series.over_n ~protocols:[ "inbac" ] ~f:4 ~ns:[ 3; 5; 8 ] () with
  | [ s ] ->
      check tint "n=3 skipped when f=4" 2 (List.length s.Series.points)
  | _ -> Alcotest.fail "expected one series"

let test_csv_shape () =
  let csv =
    Series.to_csv ~x_label:"n"
      (Series.over_n ~protocols:[ "inbac" ] ~f:1 ~ns:[ 3; 5 ] ())
  in
  let lines = String.split_on_char '\n' (String.trim csv) in
  check tint "header + 2 points" 3 (List.length lines);
  check tbool "header row" true (List.hd lines = "protocol,n,messages,delays")

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "ablation"
    [
      ( "priority flip",
        [
          quick "expectations" test_priority_flip;
          quick "scenario-local" test_flip_is_scenario_local;
        ] );
      ("consensus choice", [ quick "modularity" test_consensus_choice ]);
      ("fast abort", [ quick "latency" test_fast_abort ]);
      ( "normalization",
        [
          quick "deltas" test_normalization;
          quick "classic 2pc blocks" test_classic_2pc_blocks_too;
        ] );
      ( "series",
        [
          quick "formulas over n" test_series_match_formulas;
          quick "formulas over f" test_series_over_f;
          quick "f=1 crossover" test_crossover_delta_two;
          quick "illegal pairs skipped" test_series_skips_illegal_pairs;
          quick "csv shape" test_csv_shape;
        ] );
    ]
