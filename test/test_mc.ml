(* Tests for ac_mc: cross-validation of the checker's canonical schedule
   against the engine, the L1 witnesses it must rediscover, counter
   determinism across domain counts, and the pruning ratio. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int

let find_decision ds p =
  List.find_map (fun (q, d) -> if Pid.equal p q then Some d else None) ds

(* ------------------------------------------------------------------ *)
(* Canonical-schedule cross-validation: the checker's engine-ordered
   synchronous schedule must agree with [Engine.run] on [Scenario.nice]
   in every decision and in both per-layer message counts, for every
   registered protocol. A divergence means the interpreter the explorer
   branches from is not the semantics the engine executes. *)

let cross_validate protocol () =
  let n = 3 and f = 1 in
  let c = Mc_run.canonical ~protocol ~n ~f () in
  let report =
    (Registry.find_exn protocol).Registry.run (Scenario.nice ~n ~f ())
  in
  List.iter
    (fun p ->
      let mc_d = find_decision c.Mc_run.decisions p in
      let engine_d = Option.map snd (Report.decision_of report p) in
      check tbool
        (Printf.sprintf "%s: %s decides the same" protocol (Pid.to_string p))
        true
        (match (mc_d, engine_d) with
        | Some a, Some b -> Vote.decision_equal a b
        | None, None -> true
        | _ -> false))
    (Pid.all ~n);
  check tint
    (Printf.sprintf "%s: commit-layer messages" protocol)
    (Report.commit_messages report)
    c.Mc_run.commit_msgs;
  check tint
    (Printf.sprintf "%s: consensus-layer messages" protocol)
    (Report.consensus_messages report)
    c.Mc_run.cons_msgs

let cross_validation_tests =
  List.map
    (fun p -> Alcotest.test_case p `Quick (cross_validate p))
    Registry.names

(* ------------------------------------------------------------------ *)
(* The L1 witnesses, rediscovered by exhaustive search *)

let run ?budgets ?naive ~protocol ~klass () =
  Mc_run.run ?budgets ?naive ~protocol ~n:3 ~f:1 ~klass ()

let test_2pc_blocks_on_crash () =
  let o = run ~protocol:"2pc" ~klass:Mc_run.Crash () in
  check tbool "termination violation found" true
    (match o.Mc_run.violation with
    | Some v -> v.Mc_replay.property = Mc_replay.Termination
    | None -> false);
  check tbool "engine replays it" true (o.Mc_run.replay_verified = Some true);
  check tbool "the witness crashes someone" true
    (match o.Mc_run.violation with
    | Some v -> v.Mc_replay.witness.Mc_replay.crashes <> []
    | None -> false)

let test_undershoot_crash_disagreement () =
  (* found by the checker: at f=1 the undershoot's ack list is empty, so
     one crash splits the decision — no network failure needed *)
  let o = run ~protocol:"inbac-undershoot" ~klass:Mc_run.Crash () in
  check tbool "agreement violation found" true
    (match o.Mc_run.violation with
    | Some v -> v.Mc_replay.property = Mc_replay.Agreement
    | None -> false);
  check tbool "engine replays it" true (o.Mc_run.replay_verified = Some true)

let test_inbac_crash_clean () =
  let o = run ~protocol:"inbac" ~klass:Mc_run.Crash () in
  check tbool "no violation" true (Mc_run.clean o);
  check tbool "space exhausted" true (Mc_limits.exhausted o.Mc_run.counters)

let test_3pc_crash_clean () =
  let o = run ~protocol:"3pc" ~klass:Mc_run.Crash () in
  check tbool "no violation" true (Mc_run.clean o);
  check tbool "space exhausted" true (Mc_limits.exhausted o.Mc_run.counters)

(* ------------------------------------------------------------------ *)
(* Determinism and pruning *)

let test_counters_jobs_independent () =
  let at jobs =
    Mc_run.run ~jobs ~protocol:"inbac" ~n:3 ~f:1 ~klass:Mc_run.Crash ()
  in
  let a = (at 1).Mc_run.counters and b = (at 4).Mc_run.counters in
  check tint "states" a.Mc_limits.states b.Mc_limits.states;
  check tint "schedules" a.Mc_limits.schedules b.Mc_limits.schedules;
  check tint "sleep skips" a.Mc_limits.sleep_skips b.Mc_limits.sleep_skips;
  check tint "dedup hits" a.Mc_limits.dedup_hits b.Mc_limits.dedup_hits

let test_witness_deterministic () =
  let witness () =
    match
      (run ~protocol:"2pc" ~klass:Mc_run.Crash ()).Mc_run.violation
    with
    | Some v -> v.Mc_replay.witness.Mc_replay.schedule
    | None -> []
  in
  check (Alcotest.list Alcotest.string) "same shrunk schedule" (witness ())
    (witness ())

let test_dpor_prunes () =
  let o = run ~naive:true ~protocol:"inbac" ~klass:Mc_run.Crash () in
  check tbool "naive count computed" true (o.Mc_run.naive <> None);
  match o.Mc_run.naive with
  | Some naive ->
      check tbool "at least 10x fewer schedules than naive" true
        (naive /. float_of_int (max 1 o.Mc_run.counters.Mc_limits.schedules)
        >= 10.)
  | None -> ()

(* ------------------------------------------------------------------ *)
(* Fingerprint soundness. The hashed backend replaces marshal-byte
   equality, so it must (a) give independently rebuilt but structurally
   equal checker states equal digests, (b) change the digest whenever a
   vote, a protocol phase, or the pending-message set changes, and
   (c) drive the exploration to exactly the counters the Marshal backend
   produces. *)

module Fp_suite
    (Name : sig
      val name : string
    end)
    (P : Proto.PROTOCOL)
    (C : Proto.CONSENSUS) =
struct
  module E = Mc_explore.Make (P) (C)

  let cfg ?(pool = true)
      ?(klass = { E.allow_crashes = true; allow_late = false }) votes =
    {
      E.n = 3;
      f = 1;
      u = Sim_time.default_u;
      votes;
      klass;
      budgets = Mc_limits.default_budgets ~u:Sim_time.default_u;
      fp = Mc_limits.Fp_hashed;
      pool;
      (* the suite exercises [fingerprint_hashed] directly, so the
         canonicalization layer stays out of the way *)
      symmetry = false;
      open_depth = E.default_swarm_open_depth;
    }

  let all_yes = [| Vote.yes; Vote.yes; Vote.yes |]
  let one_no = [| Vote.yes; Vote.no; Vote.yes |]

  (* A fresh context advanced [k] transitions along the deterministic
     first-candidate schedule: two calls build structurally equal states
     through entirely separate machines, sinks and intern tables. *)
  let ctx_at votes k =
    let ctx = E.create_ctx (cfg votes) in
    ignore (E.exec_step ctx E.S_proposals);
    (try
       for _ = 1 to k do
         match E.enumerate ctx with
         | [] -> raise Exit
         | c :: _ -> ignore (E.exec_step ctx c)
       done
     with Exit -> ());
    ctx

  let prop_equal_states_equal_digest =
    QCheck.Test.make ~count:30
      ~name:(Name.name ^ ": independently rebuilt equal states hash equal")
      QCheck.(int_range 0 12)
      (fun k ->
        Fingerprint.equal
          (E.fingerprint_hashed (ctx_at all_yes k))
          (E.fingerprint_hashed (ctx_at all_yes k)))

  let prop_step_changes_digest =
    QCheck.Test.make ~count:30
      ~name:
        (Name.name
       ^ ": a step (phase / message-set change) changes the digest")
      QCheck.(int_range 0 8)
      (fun k ->
        let ctx = ctx_at all_yes k in
        let before = E.fingerprint_hashed ctx in
        match E.enumerate ctx with
        | [] -> true (* terminal: nothing left to mutate *)
        | c :: _ ->
            ignore (E.exec_step ctx c);
            not (Fingerprint.equal before (E.fingerprint_hashed ctx)))

  let test_vote_mutation () =
    check tbool "flipping one vote changes the digest" true
      (not
         (Fingerprint.equal
            (E.fingerprint_hashed (ctx_at all_yes 0))
            (E.fingerprint_hashed (ctx_at one_no 0))))

  (* Snapshot-pool observational equivalence: a pooled context driven
     through a random schedule — with save / excursion / restore detours
     that force snapshot records through the free list — must agree with
     an unpooled context step for step on digests, and at the end on the
     rendered trace. The detour executes a sibling candidate before
     restoring, so the restore always has dirty state to rewind; it runs
     in BOTH contexts (pooled and legacy full-copy restore) because the
     payload-intern table and creation counters are deliberately never
     rewound, so digests are only comparable across contexts with
     identical histories. *)
  let pool_equivalence_prop ~label klass =
    QCheck.Test.make ~count:25
      ~name:(Name.name ^ ": pooled = unpooled over random " ^ label
             ^ " schedules")
      QCheck.(pair (list_of_size Gen.(int_range 1 20) (int_range 0 1000)) bool)
      (fun (choices, excursions) ->
        let a = E.create_ctx (cfg ~pool:true ~klass all_yes) in
        let b = E.create_ctx (cfg ~pool:false ~klass all_yes) in
        ignore (E.exec_step a E.S_proposals);
        ignore (E.exec_step b E.S_proposals);
        List.for_all
          (fun c ->
            let ca = E.enumerate a and cb = E.enumerate b in
            let la = List.length ca in
            la = List.length cb
            && (la = 0
               ||
               let i = c mod la in
               if excursions && la > 1 then
                 List.iter
                   (fun (ctx, cands) ->
                     let s = E.save ctx in
                     ignore (E.exec_step ctx (List.nth cands ((i + 1) mod la)));
                     E.restore ctx s;
                     E.release ctx s)
                   [ (a, ca); (b, cb) ];
               ignore (E.exec_step a (List.nth ca i));
               ignore (E.exec_step b (List.nth cb i));
               Fingerprint.equal (E.fingerprint_hashed a)
                 (E.fingerprint_hashed b)))
          choices
        && Format.asprintf "%a" Trace.pp (E.M.trace a.E.m)
           = Format.asprintf "%a" Trace.pp (E.M.trace b.E.m))

  let prop_pool_equivalence_crash =
    pool_equivalence_prop ~label:"crash"
      { E.allow_crashes = true; allow_late = false }

  let prop_pool_equivalence_network =
    pool_equivalence_prop ~label:"network"
      { E.allow_crashes = false; allow_late = true }

  (* Recycled snapshot records must not alias live ones: releasing [s2]
     hands its record to the next [save]; mutating and restoring through
     the recycled record must reproduce its own capture point and leave
     the still-held older snapshot [s1] intact. *)
  let test_pool_no_aliasing () =
    let ctx = E.create_ctx (cfg all_yes) in
    ignore (E.exec_step ctx E.S_proposals);
    let step () =
      match E.enumerate ctx with
      | [] -> ()
      | c :: _ -> ignore (E.exec_step ctx c)
    in
    let s1 = E.save ctx in
    let fp1 = E.fingerprint_hashed ctx in
    step ();
    step ();
    let s2 = E.save ctx in
    step ();
    E.restore ctx s2;
    E.release ctx s2;
    let fp2 = E.fingerprint_hashed ctx in
    let s3 = E.save ctx in
    step ();
    step ();
    E.restore ctx s3;
    check tbool "s3 (recycled record) restores its own capture point" true
      (Fingerprint.equal fp2 (E.fingerprint_hashed ctx));
    E.release ctx s3;
    E.restore ctx s1;
    check tbool "s1 unaffected by pool reuse" true
      (Fingerprint.equal fp1 (E.fingerprint_hashed ctx))

  let tests =
    [
      QCheck_alcotest.to_alcotest prop_equal_states_equal_digest;
      QCheck_alcotest.to_alcotest prop_step_changes_digest;
      Alcotest.test_case (Name.name ^ ": vote mutation") `Quick
        test_vote_mutation;
    ]

  let pool_tests =
    [
      QCheck_alcotest.to_alcotest prop_pool_equivalence_crash;
      QCheck_alcotest.to_alcotest prop_pool_equivalence_network;
      Alcotest.test_case (Name.name ^ ": recycled records do not alias")
        `Quick test_pool_no_aliasing;
    ]
end

module Fp_inbac =
  Fp_suite
    (struct
      let name = "inbac"
    end)
    (Inbac)
    (Consensus_paxos)

module Fp_2pc =
  Fp_suite
    (struct
      let name = "2pc"
    end)
    (Two_pc)
    (Consensus_null)

let test_backends_agree protocol () =
  (* symmetry canonicalization only exists on the hashed backend, so the
     hashed-vs-marshal counter identity is pinned with it off *)
  let at fp =
    (Mc_run.run ~fp ~symmetry:false ~jobs:1 ~protocol ~n:3 ~f:1
       ~klass:Mc_run.Crash ())
      .Mc_run.counters
  in
  let a = at Mc_limits.Fp_hashed and b = at Mc_limits.Fp_marshal in
  check tint "states" a.Mc_limits.states b.Mc_limits.states;
  check tint "transitions" a.Mc_limits.transitions b.Mc_limits.transitions;
  check tint "schedules" a.Mc_limits.schedules b.Mc_limits.schedules;
  check tint "terminals" a.Mc_limits.terminals b.Mc_limits.terminals;
  check tint "horizon cuts" a.Mc_limits.horizon_cuts b.Mc_limits.horizon_cuts;
  check tint "depth cuts" a.Mc_limits.depth_cuts b.Mc_limits.depth_cuts;
  check tint "dedup hits" a.Mc_limits.dedup_hits b.Mc_limits.dedup_hits;
  check tint "sleep skips" a.Mc_limits.sleep_skips b.Mc_limits.sleep_skips;
  check tint "peak visited" a.Mc_limits.peak_visited b.Mc_limits.peak_visited

(* ------------------------------------------------------------------ *)
(* Frontier scheduling: the structural-progress fix, mctable
   byte-determinism under the stealing scheduler, and the shared
   visited table's counter contract. *)

(* Regression for the frontier fixed-point bug: the root expansion
   [[]] -> [[S_proposals]] is a 1 -> 1 round, which the old
   equal-length check mistook for a fixed point — every crash-free
   exploration ran as a single frontier item, with no parallelism. *)
let test_frontier_nice_regression () =
  let cfg =
    {
      Fp_inbac.E.n = 3;
      f = 1;
      u = Sim_time.default_u;
      votes = Fp_inbac.all_yes;
      klass = { Fp_inbac.E.allow_crashes = false; allow_late = false };
      budgets = Mc_limits.default_budgets ~u:Sim_time.default_u;
      fp = Mc_limits.Fp_hashed;
      pool = true;
      symmetry = false;
      open_depth = Fp_inbac.E.default_swarm_open_depth;
    }
  in
  let items = Fp_inbac.E.frontier cfg in
  check tbool
    (Printf.sprintf "nice-class frontier splits (%d items)"
       (List.length items))
    true
    (List.length items > 1)

(* The deterministic contract, end to end: the rendered mctable — the
   user-facing artifact — must be byte-identical across job counts under
   the work-stealing scheduler. Restricted to two protocols and the
   crash class to stay test-sized. *)
let test_mctable_bytes_across_jobs () =
  let render jobs =
    Table_mc.render ~protocols:[ "inbac"; "2pc" ] ~classes:[ Mc_run.Crash ]
      ~jobs ~n:3 ~f:1 ()
  in
  let j1 = render 1 in
  check Alcotest.string "jobs 1 = jobs 2" j1 (render 2);
  check Alcotest.string "jobs 1 = jobs 8" j1 (render 8)

(* Global dedup can only shrink the explored space: the shared table
   must never report MORE states than per-item mode, and must reach the
   same (clean, exhausted) verdict on the pinned config. *)
let test_shared_visited_fewer_states () =
  let at visited jobs =
    Mc_run.run ~visited ~jobs ~protocol:"inbac" ~n:3 ~f:1
      ~klass:Mc_run.Crash ()
  in
  let per_item = at Mc_limits.Per_item 1 in
  List.iter
    (fun jobs ->
      let shared = at Mc_limits.Shared jobs in
      check tbool
        (Printf.sprintf "clean at jobs %d" jobs)
        true (Mc_run.clean shared);
      check tbool
        (Printf.sprintf "no budget hit at jobs %d" jobs)
        false shared.Mc_run.counters.Mc_limits.budget_hit;
      check tbool
        (Printf.sprintf "shared states <= per-item states at jobs %d" jobs)
        true
        (shared.Mc_run.counters.Mc_limits.states
        <= per_item.Mc_run.counters.Mc_limits.states))
    [ 1; 4 ]

(* Stealing without splitting maps every frontier item to exactly one
   exploration, so its counters must equal the legacy cursor's. *)
let test_stealing_matches_cursor () =
  let at stealing =
    (Mc_run.run ~stealing ~jobs:4 ~protocol:"inbac" ~n:3 ~f:1
       ~klass:Mc_run.Crash ())
      .Mc_run.counters
  in
  let a = at true and b = at false in
  check tint "states" a.Mc_limits.states b.Mc_limits.states;
  check tint "transitions" a.Mc_limits.transitions b.Mc_limits.transitions;
  check tint "schedules" a.Mc_limits.schedules b.Mc_limits.schedules;
  check tint "dedup hits" a.Mc_limits.dedup_hits b.Mc_limits.dedup_hits;
  check tint "sleep skips" a.Mc_limits.sleep_skips b.Mc_limits.sleep_skips

(* ------------------------------------------------------------------ *)
(* Swarm mode: independent randomized-order walks, one per domain,
   coupled only through the shared visited table. *)

(* Differential contract, property-tested over the job count: whatever
   the domain count, a swarm run must reach the same verdict as the
   sequential per-item explorer (clean runs stay clean, violations name
   the same property), explore at least one state, and — when the
   baseline exhausts a clean space — stay within the per-item envelope
   (global dedup plus the bounded open-depth prefix can only shrink the
   space). Counters themselves are jobs-dependent by contract, so only
   the envelope is asserted, never equality. *)
let swarm_differential ~protocol ~klass ~budgets =
  let name =
    Printf.sprintf "swarm %s/%s verdict = sequential (any jobs)" protocol
      (Mc_run.class_name klass)
  in
  let baseline =
    Mc_run.run ~budgets ~jobs:1 ~protocol ~n:3 ~f:1 ~klass ()
  in
  let violation_key o =
    Option.map
      (fun (v : Mc_replay.violation) ->
        Mc_replay.property_name v.Mc_replay.property)
      o.Mc_run.violation
  in
  let base_exhausted =
    Mc_run.clean baseline
    && Mc_limits.exhausted baseline.Mc_run.counters
  in
  QCheck.Test.make ~count:6 ~name
    QCheck.(int_range 1 6)
    (fun jobs ->
      let swarm =
        Mc_run.run ~budgets ~swarm:true ~jobs ~protocol ~n:3 ~f:1 ~klass ()
      in
      let states = swarm.Mc_run.counters.Mc_limits.states in
      violation_key swarm = violation_key baseline
      && states > 0
      && ((not base_exhausted)
         || states <= baseline.Mc_run.counters.Mc_limits.states))

let network_capped =
  {
    (Mc_limits.default_budgets ~u:Sim_time.default_u) with
    Mc_limits.max_states = 2_000;
  }

let swarm_differential_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      swarm_differential ~protocol:"inbac" ~klass:Mc_run.Crash
        ~budgets:(Mc_limits.default_budgets ~u:Sim_time.default_u);
      swarm_differential ~protocol:"2pc" ~klass:Mc_run.Crash
        ~budgets:(Mc_limits.default_budgets ~u:Sim_time.default_u);
      swarm_differential ~protocol:"inbac" ~klass:Mc_run.Network
        ~budgets:network_capped;
      swarm_differential ~protocol:"2pc" ~klass:Mc_run.Network
        ~budgets:network_capped;
    ]

(* Eight domains hammer one lock-free shards table with overlapping key
   streams: [find_or_insert] acknowledges each distinct key fresh
   ([None]) exactly once table-wide, so the per-domain fresh counts must
   sum to both the table size and the distinct-key count, while a
   concurrent reader checks [size] never moves backwards (the counter is
   monotone and acknowledgment-consistent — no transient under-report
   window between a winning CAS and the size bump being visible). *)
let test_shards_stress () =
  let distinct = 4_096 and domains = 8 in
  let table = Mc_shards.create ~capacity:distinct () in
  let stop = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let last = ref 0 in
        let monotone = ref true in
        while not (Atomic.get stop) do
          let s = Mc_shards.size table in
          if s < !last then monotone := false;
          last := s;
          Domain.cpu_relax ()
        done;
        !monotone)
  in
  let key i =
    { Fingerprint.d1 = i * 0x2545F4914F6CDD1D land max_int; d2 = i }
  in
  let worker d () =
    let fresh = ref 0 in
    for k = 0 to distinct - 1 do
      (* every domain inserts every key, each in a different order *)
      let i = (k + (d * 997)) mod distinct in
      if Mc_shards.find_or_insert table (key i) d = None then incr fresh
    done;
    !fresh
  in
  let workers = List.init domains (fun d -> Domain.spawn (worker d)) in
  let fresh_sum =
    List.fold_left (fun acc w -> acc + Domain.join w) 0 workers
  in
  Atomic.set stop true;
  check tbool "size monotone under concurrent inserts" true
    (Domain.join reader);
  check tint "fresh-insert acknowledgments sum to distinct keys" distinct
    fresh_sum;
  check tint "size equals distinct keys" distinct (Mc_shards.size table);
  (* and every key is findable with some inserter's value *)
  let missing = ref 0 in
  for i = 0 to distinct - 1 do
    if Mc_shards.find_opt table (key i) = None then incr missing
  done;
  check tint "no key lost" 0 !missing

(* A wildly out-of-range open-depth must clamp instead of breaking the
   walkers, and the clamped run must agree with the default verdict. *)
let test_open_depth_clamp () =
  let module E = Fp_inbac.E in
  check tint "negative clamps to 0" 0 (E.clamp_open_depth (-3));
  check tint "huge clamps to 32" 32 (E.clamp_open_depth 1_000);
  check tint "in-range value passes through" 6 (E.clamp_open_depth 6);
  check tint "default is in range" E.default_swarm_open_depth
    (E.clamp_open_depth E.default_swarm_open_depth);
  let verdict d =
    Mc_run.verdict_string
      (Mc_run.run ~swarm:true ?swarm_open_depth:d ~jobs:2 ~protocol:"inbac"
         ~n:3 ~f:1 ~klass:Mc_run.Crash ())
  in
  check Alcotest.string "open-depth 1000 reaches the default verdict"
    (verdict None)
    (verdict (Some 1_000))

(* n=5-sized budgets must not preallocate the shards index space: the
   spine caps at 2^21 buckets, segments materialize on first touch, and
   keys stay findable across segment boundaries. *)
let test_shards_growth () =
  let huge = Mc_shards.create ~capacity:100_000_000 () in
  check tint "buckets capped at 2^21" (1 lsl 21) (Mc_shards.buckets huge);
  check tint "no segments before the first insert" 0
    (Mc_shards.segments_allocated huge);
  let key i =
    { Fingerprint.d1 = i * 0x2545F4914F6CDD1D land max_int; d2 = i }
  in
  for i = 0 to 999 do
    ignore (Mc_shards.find_or_insert huge (key i) i)
  done;
  check tint "inserts land" 1_000 (Mc_shards.size huge);
  check tbool "segments materialize lazily" true
    (let segs = Mc_shards.segments_allocated huge in
     segs >= 1 && segs <= 512);
  let missing = ref 0 in
  for i = 0 to 999 do
    if Mc_shards.find_opt huge (key i) = None then incr missing
  done;
  check tint "no key lost across segments" 0 !missing

(* ------------------------------------------------------------------ *)
(* Symmetry reduction: canonicalization must be invisible in verdicts. *)

let violation_property o =
  Option.map
    (fun (v : Mc_replay.violation) ->
      Mc_replay.property_name v.Mc_replay.property)
    o.Mc_run.violation

(* Differential contract, property-tested over budget shapes and vote
   vectors: symmetry-on and symmetry-off must reach the same verdict
   (same violated property, or both clean) with the same
   counterexample-replay outcome, and when the off arm exhausts a clean
   space the on arm must exhaust it too, inside the off arm's state
   envelope — canonicalization merges orbits, it never drops an
   equivalence class. Randomizing the vote vector exercises the
   vote-refinement of the permutation group (unequal votes split the
   process classes). *)
let symmetry_differential ~protocol ~klass =
  let name =
    Printf.sprintf "symmetry %s/%s verdict = plain (any budgets/votes)"
      protocol
      (Mc_run.class_name klass)
  in
  let u = Sim_time.default_u in
  QCheck.Test.make ~count:4 ~name
    QCheck.(
      triple (int_range 1 2) (int_range 1 2)
        (array_of_size (Gen.return 4) bool))
    (fun (late, hor, yeas) ->
      (* network classes stay at horizon U: one more horizon unit opens
         the consensus retry cascade and a minutes-long space — the
         differential is about verdict equality, not about stressing the
         cascade (the crash classes do range over the horizon) *)
      let hor = match klass with Mc_run.Network -> 1 | _ -> hor in
      let budgets =
        {
          (Mc_limits.default_budgets ~u) with
          Mc_limits.horizon = hor * u;
          max_late = late;
        }
      in
      let votes =
        Array.map (fun y -> if y then Vote.yes else Vote.no) yeas
      in
      let arm symmetry =
        Mc_run.run ~budgets ~symmetry ~vote_sets:[ votes ] ~jobs:1 ~protocol
          ~n:4 ~f:1 ~klass ()
      in
      let off = arm false and on = arm true in
      violation_property off = violation_property on
      && off.Mc_run.replay_verified = on.Mc_run.replay_verified
      &&
      if Mc_run.clean off && Mc_limits.exhausted off.Mc_run.counters then
        Mc_limits.exhausted on.Mc_run.counters
        && on.Mc_run.counters.Mc_limits.states
           <= off.Mc_run.counters.Mc_limits.states
      else true)

let symmetry_differential_tests =
  List.map QCheck_alcotest.to_alcotest
    (List.concat_map
       (fun protocol ->
         [
           symmetry_differential ~protocol ~klass:Mc_run.Crash;
           symmetry_differential ~protocol ~klass:Mc_run.Network;
         ])
       [ "inbac"; "2pc"; "paxos-commit" ])

(* The artifact-level neutrality: every mctable row — verdict string and
   consistency flag, violated or clean — identical between the modes, on
   exhaustible spaces (crash at the default budgets, network at
   max_late=1 horizon=U) so "exhausted" annotations match too. *)
let test_mctable_verdicts_symmetry () =
  let protocols = [ "inbac"; "2pc"; "inbac-undershoot" ] in
  let compare_rows ~classes ~budgets =
    let rows symmetry =
      Table_mc.rows ~protocols ~classes ~budgets ~symmetry ~jobs:2 ~n:4 ~f:1
        ()
    in
    List.iter2
      (fun (a : Table_mc.row) (b : Table_mc.row) ->
        check Alcotest.string "verdict"
          (Mc_run.verdict_string a.Table_mc.outcome)
          (Mc_run.verdict_string b.Table_mc.outcome);
        check tbool "consistency flag" a.Table_mc.ok b.Table_mc.ok)
      (rows false) (rows true)
  in
  compare_rows ~classes:[ Mc_run.Crash ]
    ~budgets:(Mc_limits.default_budgets ~u:Sim_time.default_u);
  compare_rows ~classes:[ Mc_run.Network ]
    ~budgets:
      {
        (Mc_limits.default_budgets ~u:Sim_time.default_u) with
        Mc_limits.horizon = Sim_time.default_u;
        max_late = 1;
      }

(* ------------------------------------------------------------------ *)
(* Snapshot-pool neutrality at the run and artifact level. *)

(* The user-facing artifact must not change by a byte when the pool is
   switched off. *)
let test_mctable_bytes_pool () =
  let render pool =
    Table_mc.render ~protocols:[ "inbac"; "2pc" ] ~classes:[ Mc_run.Crash ]
      ~pool ~jobs:2 ~n:3 ~f:1 ()
  in
  check Alcotest.string "pool on = pool off" (render true) (render false)

(* Network-class counters (overtake bookkeeping, late budgets — the
   paths with the most snapshot traffic) under a small state budget:
   identical with the pool on and off. *)
let test_pool_network_counters () =
  let at pool =
    let budgets =
      {
        (Mc_limits.default_budgets ~u:Sim_time.default_u) with
        Mc_limits.max_states = 500;
      }
    in
    (Mc_run.run ~budgets ~pool ~jobs:1 ~protocol:"inbac" ~n:3 ~f:1
       ~klass:Mc_run.Network ())
      .Mc_run.counters
  in
  let a = at true and b = at false in
  check tint "states" a.Mc_limits.states b.Mc_limits.states;
  check tint "transitions" a.Mc_limits.transitions b.Mc_limits.transitions;
  check tint "schedules" a.Mc_limits.schedules b.Mc_limits.schedules;
  check tint "dedup hits" a.Mc_limits.dedup_hits b.Mc_limits.dedup_hits;
  check tint "sleep skips" a.Mc_limits.sleep_skips b.Mc_limits.sleep_skips

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  Alcotest.run "mc"
    [
      ("canonical-vs-engine", cross_validation_tests);
      ( "fingerprint",
        Fp_inbac.tests @ Fp_2pc.tests
        @ [
            quick "inbac: backends explore identically"
              (test_backends_agree "inbac");
            quick "2pc: backends explore identically"
              (test_backends_agree "2pc");
          ] );
      ( "witnesses",
        [
          quick "2pc blocks on coordinator crash" test_2pc_blocks_on_crash;
          quick "undershoot splits on one crash"
            test_undershoot_crash_disagreement;
          quick "inbac crash space clean" test_inbac_crash_clean;
          quick "3pc crash space clean" test_3pc_crash_clean;
        ] );
      ( "determinism",
        [
          quick "counters independent of --jobs" test_counters_jobs_independent;
          quick "shrunk witness deterministic" test_witness_deterministic;
          quick "dpor + dedup prune >= 10x" test_dpor_prunes;
        ] );
      ( "frontier-scheduling",
        [
          quick "nice frontier splits (fixed-point regression)"
            test_frontier_nice_regression;
          quick "mctable bytes identical across jobs 1/2/8"
            test_mctable_bytes_across_jobs;
          quick "shared visited never more states"
            test_shared_visited_fewer_states;
          quick "stealing counters = cursor counters"
            test_stealing_matches_cursor;
        ] );
      ( "swarm",
        swarm_differential_tests
        @ [
            quick "shards: 8-domain stress, size = fresh-insert sum"
              test_shards_stress;
            quick "shards: capped spine, lazy segments" test_shards_growth;
            quick "open-depth clamps and stays verdict-neutral"
              test_open_depth_clamp;
          ] );
      ( "symmetry",
        symmetry_differential_tests
        @ [
            quick "mctable verdicts identical symmetry on/off"
              test_mctable_verdicts_symmetry;
          ] );
      ( "snapshot-pool",
        Fp_inbac.pool_tests @ Fp_2pc.pool_tests
        @ [
            quick "mctable bytes identical pool on/off"
              test_mctable_bytes_pool;
            quick "network-class counters identical pool on/off"
              test_pool_network_counters;
          ] );
    ]
