(* Tests for the transactional KV substrate: the store's staging
   semantics, transaction validation, and the end-to-end system built on
   the commit protocols — including atomicity under random faults. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let tint = Alcotest.int
let u = Sim_time.default_u

(* ------------------------------------------------------------------ *)
(* Kv_store *)

let test_store_versions () =
  let s = Kv_store.create () in
  check tbool "missing key" true (Kv_store.get s ~key:"a" = None);
  check tint "version 0 before any write" 0 (Kv_store.version s ~key:"a");
  Kv_store.stage s ~txn_id:"t" ~writes:[ ("a", "1") ];
  check tbool "staged not visible" true (Kv_store.get s ~key:"a" = None);
  check tbool "apply installs" true (Kv_store.apply s ~txn_id:"t");
  check tbool "value visible" true (Kv_store.get s ~key:"a" = Some ("1", 1));
  Kv_store.stage s ~txn_id:"t2" ~writes:[ ("a", "2") ];
  ignore (Kv_store.apply s ~txn_id:"t2");
  check tbool "version bumped" true (Kv_store.get s ~key:"a" = Some ("2", 2))

let test_store_discard () =
  let s = Kv_store.create () in
  Kv_store.stage s ~txn_id:"t" ~writes:[ ("a", "1") ];
  Kv_store.discard s ~txn_id:"t";
  check tbool "apply after discard is a no-op" false (Kv_store.apply s ~txn_id:"t");
  check tbool "nothing installed" true (Kv_store.get s ~key:"a" = None)

let test_store_restage_replaces () =
  let s = Kv_store.create () in
  Kv_store.stage s ~txn_id:"t" ~writes:[ ("a", "old") ];
  Kv_store.stage s ~txn_id:"t" ~writes:[ ("a", "new") ];
  ignore (Kv_store.apply s ~txn_id:"t");
  check tbool "second staging wins" true (Kv_store.get s ~key:"a" = Some ("new", 1))

let test_store_apply_atomic () =
  let s = Kv_store.create () in
  Kv_store.stage s ~txn_id:"t" ~writes:[ ("a", "1"); ("b", "2"); ("c", "3") ];
  ignore (Kv_store.apply s ~txn_id:"t");
  check (Alcotest.list Alcotest.string) "all keys installed" [ "a"; "b"; "c" ]
    (Kv_store.keys s)

(* ------------------------------------------------------------------ *)
(* Txn *)

let test_txn_validation () =
  Alcotest.match_raises "empty id"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Txn.make ~id:"" ~writes:[] ()));
  Alcotest.match_raises "duplicate write"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Txn.make ~id:"t" ~writes:[ ("a", "1"); ("a", "2") ] ()));
  let t =
    Txn.make ~id:"t" ~reads:[ ("a", 1) ] ~writes:[ ("b", "2"); ("a", "3") ] ()
  in
  check (Alcotest.list Alcotest.string) "keys" [ "a"; "b" ] (Txn.keys t)

(* ------------------------------------------------------------------ *)
(* Txn_system *)

let test_system_commit_and_read () =
  let db = Txn_system.create ~n:4 ~f:1 ~protocol:"inbac" () in
  let o =
    Txn_system.submit db (Txn.make ~id:"t1" ~writes:[ ("x", "7"); ("y", "8") ] ())
  in
  check tbool "committed" true (o.Txn_system.decision = Txn_system.Committed);
  check tbool "atomic" true o.Txn_system.atomic;
  check tbool "read through placement" true
    (Txn_system.read db ~key:"x" = Some ("7", 1));
  check tbool "read y" true (Txn_system.read db ~key:"y" = Some ("8", 1))

let test_system_stale_read_aborts () =
  let db = Txn_system.create ~n:4 ~f:1 ~protocol:"inbac" () in
  ignore (Txn_system.submit db (Txn.make ~id:"seed" ~writes:[ ("x", "1") ] ()));
  let stale = [ ("x", 0) ] in
  let o =
    Txn_system.submit db (Txn.make ~id:"t" ~reads:stale ~writes:[ ("x", "2") ] ())
  in
  check tbool "aborted on stale read" true
    (o.Txn_system.decision = Txn_system.Aborted);
  check tbool "atomic" true o.Txn_system.atomic;
  check tbool "value unchanged" true (Txn_system.read db ~key:"x" = Some ("1", 1))

let test_system_batch_conflict () =
  let db = Txn_system.create ~n:5 ~f:2 ~protocol:"inbac" () in
  ignore (Txn_system.submit db (Txn.make ~id:"seed" ~writes:[ ("k", "0") ] ()));
  let reads = Txn_system.snapshot_reads db [ "k" ] in
  let a = Txn.make ~id:"a" ~reads ~writes:[ ("k", "A") ] () in
  let b = Txn.make ~id:"b" ~reads ~writes:[ ("k", "B") ] () in
  match Txn_system.submit_batch db [ a; b ] with
  | [ oa; ob ] ->
      check tbool "first commits" true
        (oa.Txn_system.decision = Txn_system.Committed);
      check tbool "second aborts on the conflict" true
        (ob.Txn_system.decision = Txn_system.Aborted);
      check tbool "final value from the winner" true
        (Txn_system.read db ~key:"k" = Some ("A", 2))
  | _ -> Alcotest.fail "expected two outcomes"

let test_system_crash_recovery () =
  let db = Txn_system.create ~n:5 ~f:2 ~protocol:"inbac" () in
  let o =
    Txn_system.submit
      ~crashes:[ (Pid.of_rank 1, Scenario.Before u) ]
      db
      (Txn.make ~id:"t" ~writes:[ ("a", "1"); ("b", "2"); ("c", "3"); ("d", "4") ] ())
  in
  check tbool "committed despite the crash" true
    (o.Txn_system.decision = Txn_system.Committed);
  check tbool "atomic after recovery" true o.Txn_system.atomic;
  check tbool "crashed node recovered" true (o.Txn_system.recovered <> [])

let test_system_two_pc_blocks () =
  let db = Txn_system.create ~n:4 ~f:1 ~protocol:"2pc" () in
  let o =
    Txn_system.submit
      ~crashes:[ (Pid.of_rank 1, Scenario.Before u) ]
      db
      (Txn.make ~id:"t" ~writes:[ ("a", "1") ] ())
  in
  check tbool "blocked" true (o.Txn_system.decision = Txn_system.Blocked);
  check tbool "writes stay staged (recoverable)" true o.Txn_system.atomic;
  check tbool "nothing installed" true (Txn_system.read db ~key:"a" = None)

let test_system_placement_deterministic () =
  let db = Txn_system.create ~n:7 ~f:2 ~protocol:"inbac" () in
  List.iter
    (fun key ->
      check tbool "placement stable" true
        (Pid.equal (Txn_system.placement db key) (Txn_system.placement db key)))
    [ "a"; "zzz"; "user:42"; "" ]

let test_system_history () =
  let db = Txn_system.create ~n:4 ~f:1 ~protocol:"inbac" () in
  ignore (Txn_system.submit db (Txn.make ~id:"t1" ~writes:[ ("a", "1") ] ()));
  ignore (Txn_system.submit db (Txn.make ~id:"t2" ~writes:[ ("a", "2") ] ()));
  let h = Txn_system.history db in
  check tint "two outcomes" 2 (List.length h);
  check tbool "oldest first" true
    ((List.hd h).Txn_system.txn.Txn.id = "t1")

let prop_atomicity_under_faults =
  QCheck.Test.make ~count:100
    ~name:"atomicity holds for every protocol under random crashes"
    QCheck.(triple (int_range 0 3) small_int (int_range 4 7))
    (fun (proto_ix, seed, n) ->
      let protocol =
        List.nth [ "inbac"; "3pc"; "paxos-commit"; "(2n-2+f)nbac" ] proto_ix
      in
      let db = Txn_system.create ~seed ~n ~f:2 ~protocol () in
      let rng = Rng.create seed in
      ignore
        (Txn_system.submit db
           (Txn.make ~id:"seed"
              ~writes:[ ("a", "0"); ("b", "0"); ("c", "0"); ("d", "0") ]
              ()));
      let outcomes =
        List.init 4 (fun i ->
            let crashes =
              if Rng.bool rng then
                [
                  ( Pid.of_rank (1 + Rng.int rng ~bound:n),
                    Scenario.Before (Rng.int rng ~bound:(4 * u)) );
                ]
              else []
            in
            let reads = Txn_system.snapshot_reads db [ "a"; "b" ] in
            Txn_system.submit ~crashes db
              (Txn.make
                 ~id:(Printf.sprintf "t%d" i)
                 ~reads
                 ~writes:[ ("a", string_of_int i); ("c", string_of_int i) ]
                 ()))
      in
      List.for_all (fun o -> o.Txn_system.atomic) outcomes)

let test_recover_blocked_drains_staging () =
  let n = 4 in
  let db = Txn_system.create ~n ~f:1 ~protocol:"2pc" () in
  let o =
    Txn_system.submit
      ~crashes:[ (Pid.of_rank 1, Scenario.Before u) ]
      db
      (Txn.make ~id:"t" ~writes:[ ("a", "1"); ("b", "2"); ("c", "3") ] ())
  in
  check tbool "blocked first" true (o.Txn_system.decision = Txn_system.Blocked);
  let staged_somewhere () =
    List.exists
      (fun pid -> Kv_store.staged_ids (Txn_system.node_store db pid) <> [])
      (Pid.all ~n)
  in
  check tbool "writes staged while blocked" true (staged_somewhere ());
  (match Txn_system.recover_blocked db ~txn_id:"t" with
  | None -> Alcotest.fail "expected a recovery outcome"
  | Some r ->
      check tbool "resolved" true (r.Txn_system.decision = Txn_system.Committed);
      check tbool "atomic" true r.Txn_system.atomic;
      check tbool "staged nodes recorded" true (r.Txn_system.recovered <> []));
  check tbool "staging drained everywhere" false (staged_somewhere ());
  check tbool "writes installed" true
    (Txn_system.read db ~key:"a" = Some ("1", 1));
  check tbool "second recovery is a no-op" true
    (Txn_system.recover_blocked db ~txn_id:"t" = None);
  check tbool "unknown id is a no-op" true
    (Txn_system.recover_blocked db ~txn_id:"nope" = None);
  check tint "resolution appended to history" 2
    (List.length (Txn_system.history db))

(* Satellite: submit_batch under combined crash + network-failure
   injection. Protocols that stay safe under eventual synchrony must keep
   every round atomic, and — everything being seeded — the decision
   sequence must replay identically, with the conflicting transactions
   (same read snapshot, same write key) aborting the same way. *)
let prop_batch_atomicity_under_combined_faults =
  QCheck.Test.make ~count:60
    ~name:"submit_batch atomic and deterministic under crash + network faults"
    QCheck.(pair (int_range 0 1) small_int)
    (fun (proto_ix, seed) ->
      let protocol = List.nth [ "paxos-commit"; "(2n-2+f)nbac" ] proto_ix in
      let n = 5 in
      let run () =
        let db = Txn_system.create ~seed ~n ~f:2 ~protocol () in
        ignore
          (Txn_system.submit db
             (Txn.make ~id:"seed"
                ~writes:[ ("a", "0"); ("b", "0"); ("c", "0") ]
                ()));
        let rng = Rng.create (seed + 1) in
        let crashes =
          if Rng.bool rng then
            [
              ( Pid.of_rank (1 + Rng.int rng ~bound:n),
                Scenario.Before (Rng.int rng ~bound:(4 * u)) );
            ]
          else []
        in
        let network =
          Network.eventually_synchronous ~u
            ~gst:((2 + Rng.int rng ~bound:6) * u)
            ~max_early_delay:(2 * u)
        in
        let reads = Txn_system.snapshot_reads db [ "a"; "b" ] in
        let txns =
          List.init 4 (fun i ->
              Txn.make
                ~id:(Printf.sprintf "t%d" i)
                ~reads
                ~writes:[ ("a", string_of_int i); ("c", string_of_int i) ]
                ())
        in
        Txn_system.submit_batch ~crashes ~network db txns
      in
      let a = run () and b = run () in
      let decisions os = List.map (fun o -> o.Txn_system.decision) os in
      List.for_all (fun o -> o.Txn_system.atomic) a
      && decisions a = decisions b
      && List.length
           (List.filter (fun d -> d = Txn_system.Committed) (decisions a))
         <= 1)

(* ------------------------------------------------------------------ *)
(* Workload *)

let test_workload_protocol_independent_aborts () =
  let spec = { Workload.default with Workload.batches = 8 } in
  let results =
    Workload.protocol_comparison ~protocols:[ "inbac"; "2pc"; "3pc" ] ~n:5
      ~f:2 spec
  in
  match results with
  | (_, first) :: rest ->
      List.iter
        (fun (p, s) ->
          check tint (p ^ " same aborts as inbac") first.Workload.aborted
            s.Workload.aborted;
          check tbool (p ^ " atomic") true s.Workload.atomicity_ok)
        rest
  | [] -> Alcotest.fail "no results"

let test_workload_messages_match_formula () =
  (* every commit round of the workload is a failure-free run: messages
     per transaction equal the protocol's closed form *)
  let n = 5 and f = 2 in
  let spec = { Workload.default with Workload.batches = 6 } in
  List.iter
    (fun protocol ->
      let db = Txn_system.create ~n ~f ~protocol () in
      let s = Workload.run db spec in
      let expected =
        (Complexity.find_exn protocol).Complexity.messages ~n ~f
        * s.Workload.transactions
      in
      check tint (protocol ^ " total messages") expected s.Workload.total_messages)
    [ "inbac"; "2pc"; "paxos-commit" ]

let test_workload_contention_monotone_at_extremes () =
  let sweep =
    Workload.contention_sweep ~protocol:"inbac" ~n:5 ~f:2
      ~hot_fractions:[ 0.0; 1.0 ]
  in
  match sweep with
  | [ (_, cold); (_, hot) ] ->
      check tbool "full contention aborts more" true
        (hot.Workload.abort_rate > cold.Workload.abort_rate);
      check tbool "all accounted" true
        (hot.Workload.committed + hot.Workload.aborted + hot.Workload.blocked
        = hot.Workload.transactions)
  | _ -> Alcotest.fail "expected two sweep points"

let test_workload_crash_injection_stays_atomic () =
  let spec =
    {
      Workload.default with
      Workload.batches = 10;
      Workload.crash_probability = 0.5;
    }
  in
  let db = Txn_system.create ~n:5 ~f:2 ~protocol:"inbac" () in
  let s = Workload.run db spec in
  check tbool "atomicity under crash injection" true s.Workload.atomicity_ok;
  check tint "nothing blocked (INBAC terminates)" 0 s.Workload.blocked

let test_workload_determinism () =
  let stats () =
    let db = Txn_system.create ~n:5 ~f:2 ~protocol:"inbac" () in
    Workload.run db { Workload.default with Workload.batches = 5 }
  in
  check tbool "same seed, same stats" true (stats () = stats ())

(* ------------------------------------------------------------------ *)
(* Zipf key popularity + distinct_keys (satellite: termination/bias) *)

let test_zipf_construction () =
  Alcotest.match_raises "keys < 1"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Workload.Zipf.make ~keys:0 ~s:1.0));
  let d = Workload.Zipf.make ~keys:16 ~s:(-3.0) in
  check (Alcotest.float 1e-9) "negative s clamps to uniform" 0.0
    (Workload.Zipf.s d);
  let d = Workload.Zipf.make ~keys:16 ~s:Float.nan in
  check (Alcotest.float 1e-9) "nan s clamps to uniform" 0.0
    (Workload.Zipf.s d);
  let u16 = Workload.Zipf.uniform ~keys:16 in
  check (Alcotest.float 1e-9) "uniform top-4 mass" 0.25
    (Workload.Zipf.mass_top u16 4);
  check (Alcotest.float 1e-9) "mass of nothing" 0.0
    (Workload.Zipf.mass_top u16 0);
  check (Alcotest.float 1e-9) "mass of everything" 1.0
    (Workload.Zipf.mass_top u16 16)

let test_zipf_of_hot_inverts () =
  (* the legacy alias solves for the exponent whose top-h mass matches *)
  List.iter
    (fun (hot_keys, hot_fraction) ->
      let d = Workload.Zipf.of_hot ~keys:64 ~hot_keys ~hot_fraction in
      check (Alcotest.float 1e-3)
        (Printf.sprintf "top-%d mass inverts %.2f" hot_keys hot_fraction)
        hot_fraction
        (Workload.Zipf.mass_top d hot_keys))
    [ (4, 0.5); (8, 0.3); (16, 0.9); (2, 0.2) ];
  let d = Workload.Zipf.of_hot ~keys:64 ~hot_keys:4 ~hot_fraction:0.01 in
  check (Alcotest.float 1e-9) "sub-uniform request clamps to uniform" 0.0
    (Workload.Zipf.s d)

let prop_zipf_draws_in_range_and_skewed =
  QCheck.Test.make ~count:100 ~name:"zipf draws in range, mass matches CDF"
    QCheck.(triple small_int (int_range 2 128) (int_range 0 30))
    (fun (seed, keys, s10) ->
      let s = float_of_int s10 /. 10.0 in
      let d = Workload.Zipf.make ~keys ~s in
      let rng = Rng.create seed in
      let draws = 2000 in
      let h = max 1 (keys / 4) in
      let in_top = ref 0 in
      let ok = ref true in
      for _ = 1 to draws do
        let i = Workload.Zipf.index d rng in
        if i < 0 || i >= keys then ok := false;
        if i < h then incr in_top
      done;
      let expect = Workload.Zipf.mass_top d h in
      let got = float_of_int !in_top /. float_of_int draws in
      (* 2000 draws: the empirical top-quartile mass sits within a wide
         tolerance of the analytic CDF mass *)
      !ok && Float.abs (got -. expect) < 0.06)

let prop_distinct_keys_unique_and_terminates =
  QCheck.Test.make ~count:200
    ~name:"distinct_keys: distinct, in range, terminates at every count"
    QCheck.(
      quad small_int (int_range 1 48) (int_range 0 60) (int_range 0 80))
    (fun (seed, keys, count, s10) ->
      (* count deliberately ranges past keys; s up to 8 covers the heavy
         skew where rejection alone would stall on the tail *)
      let d = Workload.Zipf.make ~keys ~s:(float_of_int s10 /. 10.0) in
      let rng = Rng.create seed in
      let picked = Workload.distinct_keys ~dist:d ~count rng in
      let expect = max 0 (min count keys) in
      List.length picked = expect
      && List.length (List.sort_uniq String.compare picked) = expect
      && List.for_all
           (fun k ->
             String.length k > 1
             && k.[0] = 'k'
             &&
             match int_of_string_opt (String.sub k 1 (String.length k - 1)) with
             | Some i -> i >= 0 && i < keys
             | None -> false)
           picked)

let test_distinct_keys_edge_counts () =
  let d = Workload.Zipf.make ~keys:8 ~s:1.0 in
  let rng = Rng.create 1 in
  check tint "count 0 is empty" 0
    (List.length (Workload.distinct_keys ~dist:d ~count:0 rng));
  check tint "negative count clamps to empty" 0
    (List.length (Workload.distinct_keys ~dist:d ~count:(-3) rng));
  check tint "count beyond keys clamps to keys" 8
    (List.length (Workload.distinct_keys ~dist:d ~count:100 rng));
  (* hot_keys = 0 must not loop: the legacy alias degenerates to uniform *)
  let d0 = Workload.Zipf.of_hot ~keys:8 ~hot_keys:0 ~hot_fraction:0.9 in
  check tint "hot_keys 0 still draws" 4
    (List.length (Workload.distinct_keys ~dist:d0 ~count:4 rng))

(* ------------------------------------------------------------------ *)
(* Histogram percentile pins (satellite: empty/single-sample inputs) *)

let test_histogram_empty_and_single () =
  let h = Histogram.create () in
  let s = Histogram.summary h in
  check tint "empty count" 0 s.Histogram.count;
  check tbool "empty mean is nan" true (Float.is_nan s.Histogram.mean);
  check tbool "empty p50 is nan" true (Float.is_nan s.Histogram.p50);
  check tbool "empty p99 is nan" true (Float.is_nan s.Histogram.p99);
  check tbool "empty max is nan" true (Float.is_nan s.Histogram.max);
  Histogram.add h 42.0;
  let s = Histogram.summary h in
  check tint "single count" 1 s.Histogram.count;
  let f = Alcotest.float 1e-9 in
  check f "single mean" 42.0 s.Histogram.mean;
  check f "single p50" 42.0 s.Histogram.p50;
  check f "single p95" 42.0 s.Histogram.p95;
  check f "single p99" 42.0 s.Histogram.p99;
  check f "single max" 42.0 s.Histogram.max;
  check f "percentile 0 of one sample" 42.0 (Histogram.percentile h 0.0);
  check f "percentile 1 of one sample" 42.0 (Histogram.percentile h 1.0)

let test_histogram_percentile_bounds () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.match_raises "q > 1"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Histogram.percentile h 1.5));
  Alcotest.match_raises "q < 0"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Histogram.percentile h (-0.1)));
  let s = Histogram.summary h in
  check tbool "percentiles ordered" true
    (s.Histogram.p50 <= s.Histogram.p95
    && s.Histogram.p95 <= s.Histogram.p99
    && s.Histogram.p99 <= s.Histogram.max)

(* Streaming histogram (soak mode): constant-memory fixed-bin percentiles.
   Same interface as the exact variant; percentiles report the covering
   bin's upper edge clamped to the observed maximum, so the error is
   bounded by one bin width. *)

let test_streaming_construction () =
  Alcotest.match_raises "bins < 1"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Histogram.streaming ~bins:0 ~max:10.0));
  Alcotest.match_raises "max <= 0"
    (function Invalid_argument _ -> true | _ -> false)
    (fun () -> ignore (Histogram.streaming ~bins:16 ~max:0.0))

let test_streaming_empty_and_single () =
  let h = Histogram.streaming ~bins:100 ~max:100.0 in
  let s = Histogram.summary h in
  check tint "empty count" 0 s.Histogram.count;
  check tbool "empty mean is nan" true (Float.is_nan s.Histogram.mean);
  check tbool "empty p50 is nan" true (Float.is_nan s.Histogram.p50);
  check tbool "empty p99 is nan" true (Float.is_nan s.Histogram.p99);
  check tbool "empty max is nan" true (Float.is_nan s.Histogram.max);
  check tbool "empty percentile is nan" true
    (Float.is_nan (Histogram.percentile h 0.5));
  Histogram.add h 42.0;
  let s = Histogram.summary h in
  let f = Alcotest.float 1e-9 in
  check tint "single count" 1 s.Histogram.count;
  check f "single mean" 42.0 s.Histogram.mean;
  (* the covering bin's upper edge is 43, clamped to the observed max *)
  check f "single p50 clamps to the sample" 42.0 s.Histogram.p50;
  check f "single p99 clamps to the sample" 42.0 s.Histogram.p99;
  check f "single max" 42.0 s.Histogram.max

let test_streaming_overflow () =
  let h = Histogram.streaming ~bins:100 ~max:100.0 in
  Histogram.add h 42.0;
  Histogram.add h 1.0e9;
  let s = Histogram.summary h in
  let f = Alcotest.float 1e-9 in
  (* the overflow sample reports the observed maximum exactly, and the
     in-range percentile reports its bin's upper edge *)
  check f "p50 is the covering bin's upper edge" 43.0 s.Histogram.p50;
  check f "p99 walks into the overflow bin" 1.0e9 s.Histogram.p99;
  check f "max is exact" 1.0e9 s.Histogram.max;
  check f "mean is exact" ((42.0 +. 1.0e9) /. 2.0) s.Histogram.mean

let prop_streaming_bounded_error =
  let gen =
    QCheck.(
      pair
        (list_of_size Gen.(1 -- 200) (float_bound_inclusive 100.0))
        (int_range 4 64))
  in
  QCheck.Test.make ~count:100
    ~name:"streaming percentiles within one bin width of exact" gen
    (fun (samples, bins) ->
      let bound = 100.0 in
      let width = bound /. float_of_int bins in
      let exact = Histogram.create () in
      let stream = Histogram.streaming ~bins ~max:bound in
      List.iter
        (fun x ->
          Histogram.add exact x;
          Histogram.add stream x)
        samples;
      let se = Histogram.summary exact and ss = Histogram.summary stream in
      let close e s = s >= e -. 1e-9 && s <= e +. width +. 1e-9 in
      Histogram.count stream = Histogram.count exact
      && Float.abs (ss.Histogram.mean -. se.Histogram.mean) < 1e-6
      && ss.Histogram.max = se.Histogram.max
      && close se.Histogram.p50 ss.Histogram.p50
      && close se.Histogram.p95 ss.Histogram.p95
      && close se.Histogram.p99 ss.Histogram.p99
      && ss.Histogram.p50 <= ss.Histogram.p95
      && ss.Histogram.p95 <= ss.Histogram.p99
      && ss.Histogram.p99 <= ss.Histogram.max)

let () =
  let quick name fn = Alcotest.test_case name `Quick fn in
  let prop t = QCheck_alcotest.to_alcotest t in
  Alcotest.run "txn"
    [
      ( "kv-store",
        [
          quick "versions" test_store_versions;
          quick "discard" test_store_discard;
          quick "restage replaces" test_store_restage_replaces;
          quick "apply atomic" test_store_apply_atomic;
        ] );
      ("txn", [ quick "validation" test_txn_validation ]);
      ( "system",
        [
          quick "commit and read" test_system_commit_and_read;
          quick "stale read aborts" test_system_stale_read_aborts;
          quick "batch conflict" test_system_batch_conflict;
          quick "crash recovery" test_system_crash_recovery;
          quick "2pc blocks" test_system_two_pc_blocks;
          quick "placement deterministic" test_system_placement_deterministic;
          quick "history" test_system_history;
          quick "recover blocked drains staging"
            test_recover_blocked_drains_staging;
          prop prop_atomicity_under_faults;
          prop prop_batch_atomicity_under_combined_faults;
        ] );
      ( "workload",
        [
          quick "protocol-independent aborts"
            test_workload_protocol_independent_aborts;
          quick "messages match formula" test_workload_messages_match_formula;
          quick "contention extremes" test_workload_contention_monotone_at_extremes;
          quick "crash injection atomic" test_workload_crash_injection_stays_atomic;
          quick "determinism" test_workload_determinism;
        ] );
      ( "zipf",
        [
          quick "construction" test_zipf_construction;
          quick "of_hot inverts" test_zipf_of_hot_inverts;
          quick "distinct_keys edge counts" test_distinct_keys_edge_counts;
          prop prop_zipf_draws_in_range_and_skewed;
          prop prop_distinct_keys_unique_and_terminates;
        ] );
      ( "histogram",
        [
          quick "empty and single sample" test_histogram_empty_and_single;
          quick "percentile bounds" test_histogram_percentile_bounds;
          quick "streaming construction" test_streaming_construction;
          quick "streaming empty and single" test_streaming_empty_and_single;
          quick "streaming overflow" test_streaming_overflow;
          prop prop_streaming_bounded_error;
        ] );
    ]
