(* The exhaustive crash matrix: for every strict protocol, crash every
   process at every slot of its schedule (both crash flavours), and check
   that the protocol's claimed crash-failure property set survives. This
   is the systematic version of the hand-picked crash tests — hundreds of
   executions per protocol, every one checked. *)

let check = Alcotest.check
let tbool = Alcotest.bool
let u = Sim_time.default_u
let n = 5
let f = 2

(* How far each protocol's synchronous schedule reaches (in delay slots),
   with one slot of slack: crashes beyond it cannot change anything. *)
let horizon protocol =
  let entry = Complexity.find_exn protocol in
  entry.Complexity.delays ~n ~f + 2

let scenario_of pid kind slot =
  let crash =
    match kind with
    | `Before -> Scenario.Before (slot * u)
    | `During k -> Scenario.During_sends (slot * u, k)
  in
  Scenario.with_crashes (Scenario.nice ~n ~f ()) [ (pid, crash) ]

let matrix_for protocol =
  let runner = Registry.find_exn protocol in
  let entry = Complexity.find_exn protocol in
  let claimed = entry.Complexity.cell.Props.cf in
  let kinds = [ `Before; `During 0; `During 1; `During (n - 2) ] in
  let checked = ref 0 in
  List.iter
    (fun pid ->
      List.iter
        (fun slot ->
          List.iter
            (fun kind ->
              let report = runner.Registry.run (scenario_of pid kind slot) in
              let verdict = Check.run report in
              incr checked;
              check tbool
                (Printf.sprintf "%s: crash %s at slot %d (%s) keeps %s"
                   protocol (Pid.to_string pid) slot
                   (match kind with
                   | `Before -> "before"
                   | `During k -> Printf.sprintf "during, %d sends" k)
                   (Props.to_string claimed))
                true
                (Check.holds verdict claimed))
            kinds)
        (List.init (horizon protocol) (fun s -> s)))
    (Pid.all ~n);
  !checked

(* Consensus-based protocols run their fallback through Paxos; with a
   single crash and n = 5 the correct majority is comfortable. *)
let strict_protocols =
  List.filter (fun p -> p <> "inbac-undershoot") Complexity.strict_names
(* inbac-undershoot claims (T, T): at f = 1 its ack list is empty, so a
   single crash already splits the decision and can hide a 0 vote (the
   ac_mc model checker found the witness; [actable mc --protocol
   inbac-undershoot --class crash] reproduces it) — it has no
   crash-failure agreement or validity claim to check here. *)

let tests =
  List.map
    (fun protocol ->
      Alcotest.test_case protocol `Slow (fun () ->
          let runs = matrix_for protocol in
          check tbool
            (Printf.sprintf "%s: exhaustive matrix ran (%d executions)"
               protocol runs)
            true (runs > 0)))
    strict_protocols

(* Sampled double crashes (f = 2 budget fully spent) for the protocols
   claiming crash-failure NBAC. *)
let double_crash_protocols =
  [ "inbac"; "3pc"; "(n-1+f)nbac"; "(2n-2)nbac"; "(2n-2+f)nbac";
    "paxos-commit"; "faster-paxos-commit"; "1nbac"; "0nbac" ]

let double_crash_test protocol =
  Alcotest.test_case protocol `Slow (fun () ->
      let runner = Registry.find_exn protocol in
      let claimed = (Complexity.find_exn protocol).Complexity.cell.Props.cf in
      let rng = Rng.create 2024 in
      for _ = 1 to 40 do
        let horizon_slots = horizon protocol in
        let pid () = Pid.of_rank (1 + Rng.int rng ~bound:n) in
        let p1 = pid () in
        let p2 =
          let rec fresh () =
            let q = pid () in
            if Pid.equal q p1 then fresh () else q
          in
          fresh ()
        in
        let kind () =
          let at = Rng.int rng ~bound:horizon_slots * u in
          if Rng.bool rng then Scenario.Before at
          else Scenario.During_sends (at, Rng.int rng ~bound:n)
        in
        let scenario =
          Scenario.with_crashes (Scenario.nice ~n ~f ())
            [ (p1, kind ()); (p2, kind ()) ]
        in
        let verdict = Check.run (runner.Registry.run scenario) in
        check tbool
          (Printf.sprintf "%s keeps %s under a double crash" protocol
             (Props.to_string claimed))
          true
          (Check.holds verdict claimed)
      done)

(* Large systems: the closed forms keep holding far beyond the bench
   sweep. *)
let large_scale_test =
  Alcotest.test_case "n = 64 and n = 128" `Slow (fun () ->
      List.iter
        (fun (protocol, n, f) ->
          let m = Measure.nice_run ~protocol ~n ~f () in
          check tbool
            (Printf.sprintf "%s n=%d f=%d matches closed form" protocol n f)
            true
            (Measure.ok m))
        [
          ("inbac", 64, 31); ("inbac", 128, 1); ("2pc", 128, 1);
          ("(n-1+f)nbac", 64, 63); ("(2n-2+f)nbac", 64, 20);
          ("0nbac", 128, 64); ("paxos-commit", 64, 10);
        ])

let () =
  Alcotest.run "crash-matrix"
    [
      ("single-crash exhaustive", tests);
      ("double-crash sampled", List.map double_crash_test double_crash_protocols);
      ("large scale", [ large_scale_test ]);
    ]
